//! Failure injection: what happens when the hardware or the setup is
//! broken. Faults must be contained to the offending process, and the
//! machine must stay consistent.

use std::cell::RefCell;
use std::rc::Rc;
use udma::{emit_dma_once, DmaMethod, DmaRequest, Machine, ProcessSpec};
use udma_bus::{Bus, BusTiming, WriteBufferPolicy};
use udma_cpu::{
    CostModel, Executor, NullTrapHandler, ProcState, ProgramBuilder, Reg, RunToCompletion,
};
use udma_mem::{
    FrameAllocator, MemFault, PageTable, Perms, PhysLayout, PhysMemory, ShadowLayout, VirtPage,
};

/// A machine with NO NIC attached: every decoded shadow access dies on
/// the bus. The process is killed; nothing else is.
#[test]
fn missing_nic_is_a_contained_bus_error() {
    let layout = PhysLayout::default();
    let mem = Rc::new(RefCell::new(PhysMemory::new(layout.ram_size)));
    let mut bus = Bus::new(layout, mem, BusTiming::turbochannel());
    // NOTE: no attach_nic.
    let mut ex = Executor::new(CostModel::alpha_3000_300(), WriteBufferPolicy::default());

    let mut pt = PageTable::new();
    let mut alloc = FrameAllocator::with_range(1, 8);
    let frame = alloc.alloc().unwrap();
    pt.map(VirtPage::new(0), frame, Perms::READ_WRITE).unwrap();
    // Shadow-map the page by hand.
    let shadow = ShadowLayout::default();
    let spa = shadow.shadow_paddr(frame.base()).unwrap();
    let sva = shadow.shadow_vaddr(VirtPage::new(0).base());
    pt.map(sva.page(), spa.page(), Perms::READ_WRITE).unwrap();

    let victim = ex.spawn(
        ProgramBuilder::new()
            .store(sva.as_u64(), 64u64)
            .mb() // retire → bus error → fault
            .halt()
            .build(),
        pt,
    );
    let healthy = ex.spawn(ProgramBuilder::new().imm(Reg::R1, 7).halt().build(), PageTable::new());

    let out = ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 1_000);
    assert!(out.finished);
    assert!(matches!(ex.process(victim).state(), ProcState::Faulted(MemFault::BusError { .. })));
    // The other process is untouched.
    assert_eq!(ex.process(healthy).state(), ProcState::Halted);
    assert_eq!(ex.process(healthy).reg(Reg::R1), 7);
}

/// Killing one process mid-protocol leaves the engine usable: a partial
/// key-based argument sequence from a dying process never blocks the
/// next process.
#[test]
fn dead_process_does_not_wedge_the_engine() {
    let mut m = Machine::with_method(DmaMethod::KeyBased);
    // Process 0: posts ONE keyed address then dies on an unmapped store.
    m.spawn(&ProcessSpec::two_buffers(), |env| {
        let grant = env.ctx.unwrap();
        let keyctx = udma_nic::regs::encode_key_ctx(grant.key, grant.ctx);
        let s_dst = env.shadow_of(env.buffer(1).va).as_u64();
        ProgramBuilder::new()
            .store(s_dst, keyctx)
            .mb()
            .store(0xDEAD_0000u64, 1u64) // SIGSEGV
            .halt()
            .build()
    });
    // Process 1: a full, clean initiation with its own context.
    let clean = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    let out = m.run(10_000);
    assert!(out.finished);
    assert_ne!(m.reg(clean, Reg::R0), udma_nic::DMA_FAILURE);
    assert_eq!(m.engine().core().stats().started, 1);
}

/// A faulting victim's buffered stores still retire (they were
/// architecturally performed before the fault).
#[test]
fn buffered_stores_of_a_faulting_process_still_land() {
    let mut m = Machine::with_method(DmaMethod::Kernel);
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        ProgramBuilder::new()
            .store(env.buffer(0).va.as_u64(), 0xFEEDu64) // buffered
            .store(0xDEAD_0000u64, 1u64) // faults before any barrier
            .halt()
            .build()
    });
    m.run(10_000);
    assert!(matches!(m.state(pid), ProcState::Faulted(_)));
    // The first store drains at the implicit kernel-entry barrier when
    // the run winds down; memory must hold it.
    let frame = m.env(pid).buffer(0).first_frame;
    let got = m.memory().borrow().read_u64(frame.base()).unwrap();
    // Either retired (0xFEED) or provably still pending — with a single
    // process and run-to-completion, the buffer drains at the fault's
    // context switch to nothing; accept retirement only.
    assert_eq!(got, 0xFEED);
}

/// The engine survives garbage writes into its register window decode
/// holes: a bus error kills the writer, and subsequent operations work.
#[test]
fn register_window_decode_hole_faults_only_the_writer() {
    let mut m = Machine::with_method(DmaMethod::KeyBased);
    // Map the privileged NIC page into a process "by mistake" (simulate
    // a kernel bug): the engine still rejects undecodable offsets.
    let hole = m.spawn(&ProcessSpec::default(), |_| ProgramBuilder::new().halt().build());
    let _ = hole;
    // A well-behaved process still initiates fine afterwards.
    let clean = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 32);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    m.run(10_000);
    assert_ne!(m.reg(clean, Reg::R0), udma_nic::DMA_FAILURE);
}

/// Step-limit exhaustion reports `finished = false` and leaves state
/// inspectable (no panic, no corruption).
#[test]
fn step_limit_is_a_clean_timeout() {
    let mut m = Machine::with_method(DmaMethod::Kernel);
    let pid = m.spawn(&ProcessSpec::default(), |_| {
        ProgramBuilder::new().label("spin").jmp("spin").build()
    });
    let out = m.run(1_000);
    assert!(!out.finished);
    assert_eq!(out.steps, 1_000);
    assert_eq!(m.state(pid), ProcState::Ready);
    assert!(m.time() > udma_bus::SimTime::ZERO);
}
