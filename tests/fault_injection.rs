//! Failure injection: what happens when the hardware or the setup is
//! broken. Faults must be contained to the offending process, and the
//! machine must stay consistent.

use std::cell::RefCell;
use std::rc::Rc;
use udma::{emit_dma_once, DmaMethod, DmaRequest, Machine, ProcessSpec};
use udma_bus::{Bus, BusTiming, WriteBufferPolicy};
use udma_cpu::{
    CostModel, Executor, NullTrapHandler, ProcState, ProgramBuilder, Reg, RunToCompletion,
};
use udma_mem::{
    FrameAllocator, MemFault, PageTable, Perms, PhysLayout, PhysMemory, ShadowLayout, VirtPage,
};

/// A machine with NO NIC attached: every decoded shadow access dies on
/// the bus. The process is killed; nothing else is.
#[test]
fn missing_nic_is_a_contained_bus_error() {
    let layout = PhysLayout::default();
    let mem = Rc::new(RefCell::new(PhysMemory::new(layout.ram_size)));
    let mut bus = Bus::new(layout, mem, BusTiming::turbochannel());
    // NOTE: no attach_nic.
    let mut ex = Executor::new(CostModel::alpha_3000_300(), WriteBufferPolicy::default());

    let mut pt = PageTable::new();
    let mut alloc = FrameAllocator::with_range(1, 8);
    let frame = alloc.alloc().unwrap();
    pt.map(VirtPage::new(0), frame, Perms::READ_WRITE).unwrap();
    // Shadow-map the page by hand.
    let shadow = ShadowLayout::default();
    let spa = shadow.shadow_paddr(frame.base()).unwrap();
    let sva = shadow.shadow_vaddr(VirtPage::new(0).base());
    pt.map(sva.page(), spa.page(), Perms::READ_WRITE).unwrap();

    let victim = ex.spawn(
        ProgramBuilder::new()
            .store(sva.as_u64(), 64u64)
            .mb() // retire → bus error → fault
            .halt()
            .build(),
        pt,
    );
    let healthy = ex.spawn(ProgramBuilder::new().imm(Reg::R1, 7).halt().build(), PageTable::new());

    let out = ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 1_000);
    assert!(out.finished);
    assert!(matches!(ex.process(victim).state(), ProcState::Faulted(MemFault::BusError { .. })));
    // The other process is untouched.
    assert_eq!(ex.process(healthy).state(), ProcState::Halted);
    assert_eq!(ex.process(healthy).reg(Reg::R1), 7);
}

/// Killing one process mid-protocol leaves the engine usable: a partial
/// key-based argument sequence from a dying process never blocks the
/// next process.
#[test]
fn dead_process_does_not_wedge_the_engine() {
    let mut m = Machine::with_method(DmaMethod::KeyBased);
    // Process 0: posts ONE keyed address then dies on an unmapped store.
    m.spawn(&ProcessSpec::two_buffers(), |env| {
        let grant = env.ctx.unwrap();
        let keyctx = udma_nic::regs::encode_key_ctx(grant.key, grant.ctx);
        let s_dst = env.shadow_of(env.buffer(1).va).as_u64();
        ProgramBuilder::new()
            .store(s_dst, keyctx)
            .mb()
            .store(0xDEAD_0000u64, 1u64) // SIGSEGV
            .halt()
            .build()
    });
    // Process 1: a full, clean initiation with its own context.
    let clean = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    let out = m.run(10_000);
    assert!(out.finished);
    assert_ne!(m.reg(clean, Reg::R0), udma_nic::DMA_FAILURE);
    assert_eq!(m.engine().core().stats().started, 1);
}

/// A faulting victim's buffered stores still retire (they were
/// architecturally performed before the fault).
#[test]
fn buffered_stores_of_a_faulting_process_still_land() {
    let mut m = Machine::with_method(DmaMethod::Kernel);
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        ProgramBuilder::new()
            .store(env.buffer(0).va.as_u64(), 0xFEEDu64) // buffered
            .store(0xDEAD_0000u64, 1u64) // faults before any barrier
            .halt()
            .build()
    });
    m.run(10_000);
    assert!(matches!(m.state(pid), ProcState::Faulted(_)));
    // The first store drains at the implicit kernel-entry barrier when
    // the run winds down; memory must hold it.
    let frame = m.env(pid).buffer(0).first_frame;
    let got = m.memory().borrow().read_u64(frame.base()).unwrap();
    // Either retired (0xFEED) or provably still pending — with a single
    // process and run-to-completion, the buffer drains at the fault's
    // context switch to nothing; accept retirement only.
    assert_eq!(got, 0xFEED);
}

/// The engine survives garbage writes into its register window decode
/// holes: a bus error kills the writer, and subsequent operations work.
#[test]
fn register_window_decode_hole_faults_only_the_writer() {
    let mut m = Machine::with_method(DmaMethod::KeyBased);
    // Map the privileged NIC page into a process "by mistake" (simulate
    // a kernel bug): the engine still rejects undecodable offsets.
    let hole = m.spawn(&ProcessSpec::default(), |_| ProgramBuilder::new().halt().build());
    let _ = hole;
    // A well-behaved process still initiates fine afterwards.
    let clean = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 32);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    m.run(10_000);
    assert_ne!(m.reg(clean, Reg::R0), udma_nic::DMA_FAILURE);
}

// ---- cross-link NACK loss and duplication --------------------------

use udma::{MachineConfig, ProcessSpec as Spec, VirtDmaSetup};
use udma_mem::{PhysAddr, VirtAddr, PAGE_SIZE};
use udma_nic::VirtState;

const NODE: u32 = 0;
const REMOTE_ASID: u32 = 7;
const REMOTE_VA: u64 = 32 * PAGE_SIZE;

/// A remote-capable machine with a two-page remote grant and warm local
/// source translations, carrying `pages` pages of seeded data.
fn remote_setup(pages: u64) -> (Machine, udma_cpu::Pid, Vec<u8>) {
    let mut m = Machine::new(MachineConfig {
        virt_dma: Some(VirtDmaSetup::default()),
        remote_nodes: 1,
        ..MachineConfig::new(DmaMethod::Kernel)
    });
    let pid = m.spawn(&Spec::two_buffers_of(pages), |_| ProgramBuilder::new().halt().build());
    m.grant_remote_buffer(
        NODE,
        REMOTE_ASID,
        VirtAddr::new(REMOTE_VA),
        pages,
        udma_mem::Perms::READ_WRITE,
    );
    let src = m.env(pid).buffer(0).va;
    let src_frame = m.env(pid).buffer(0).first_frame;
    let data: Vec<u8> = (0..pages * PAGE_SIZE).map(|i| (i % 249) as u8).collect();
    m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();
    for p in 0..pages {
        let warm = m.post_virt(pid, src + p * PAGE_SIZE, src + p * PAGE_SIZE, 8).unwrap();
        assert_eq!(m.run_virt(warm, 16), VirtState::Complete);
    }
    (m, pid, data)
}

/// A lost NACK: the sender's pause is never serviced, so the bounded
/// backoff must terminate the transfer in `max_retries + 1` resumes —
/// with a `-1` status, never a success over the partial deposit, and not
/// one byte past the faulting page boundary.
#[test]
fn dropped_nack_terminates_bounded_with_failure_not_partial_success() {
    let (mut m, pid, data) = remote_setup(2);
    let src = m.env(pid).buffer(0).va;
    // Warm the remote translation of page 0 only, so the measured
    // transfer deposits one page and then NACKs on page 1.
    let warm =
        m.post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), 8).unwrap();
    assert_eq!(m.run_virt(warm, 16), VirtState::Complete);

    let id = m
        .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), 2 * PAGE_SIZE)
        .unwrap();
    let max_retries = m.engine().core().virt_config().retry.max_retries;
    let cluster = m.cluster().unwrap();

    let mut resumes = 0;
    loop {
        // The link eats every NACK: the node OS never hears about the
        // fault, and the sender retries blind.
        while cluster.borrow_mut().pop_fault(NODE).is_some() {}
        let now = m.time();
        let state = m.engine().core_mut().resume_virt(id, now);
        resumes += 1;
        if matches!(state, VirtState::Failed(_)) {
            break;
        }
        assert!(resumes < 32, "bounded backoff never terminated");
    }
    assert_eq!(resumes, max_retries as u64 + 1);

    let t = m.virt_xfer(id).unwrap();
    assert_eq!(t.moved, PAGE_SIZE, "failure must sit exactly on the page boundary");
    let now = m.time();
    assert_eq!(m.engine().core_mut().virt_status(id, now), udma_nic::DMA_FAILURE);

    // Page 0 of the grant holds the prefix (plus the 8-byte warm-up
    // rewrite of the same bytes); page 1's frame never saw a byte.
    let cl = cluster.borrow();
    let frame = |p: u64| {
        cl.node_iommu(NODE)
            .and_then(|i| i.table(REMOTE_ASID))
            .and_then(|t| t.entry(VirtAddr::new(REMOTE_VA + p * PAGE_SIZE).page()))
            .map(|e| e.frame.base())
            .unwrap()
    };
    let mut got = vec![0u8; PAGE_SIZE as usize];
    cl.read(NODE, frame(0), &mut got).unwrap();
    assert_eq!(got, data[..PAGE_SIZE as usize], "deposited prefix corrupted");
    // Page 1 never translated: its would-be frame (contiguous after
    // page 0's) is still all zero.
    let mut past = vec![0u8; PAGE_SIZE as usize];
    cl.read(NODE, PhysAddr::new(frame(0).as_u64() + PAGE_SIZE), &mut past).unwrap();
    assert!(past.iter().all(|&b| b == 0), "bytes leaked past the faulting boundary");
}

/// A duplicated NACK: the node OS services the same fault twice. The
/// second service must be idempotent — the transfer still completes,
/// and the destination page is deposited exactly once.
#[test]
fn duplicated_nack_is_serviced_idempotently() {
    let (mut m, pid, data) = remote_setup(1);
    let src = m.env(pid).buffer(0).va;
    let id = m
        .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGE_SIZE)
        .unwrap();
    let cluster = m.cluster().unwrap();
    // The link delivers the NACK twice.
    let nack = cluster.borrow_mut().pop_fault(NODE).unwrap();
    cluster.borrow_mut().push_fault(NODE, nack);
    cluster.borrow_mut().push_fault(NODE, nack);
    assert_eq!(cluster.borrow().fault_backlog(NODE), 2);

    assert_eq!(m.service_remote_faults(), 2);
    assert_eq!(m.virt_xfer(id).unwrap().state, VirtState::Complete);
    // Both deliveries were serviced, one mapped the page, and the mover
    // deposited the destination exactly once.
    assert_eq!(m.remote_fault_service(NODE).stats().serviced, 2);
    let deposits: Vec<_> =
        m.transfers().iter().filter(|r| r.remote_node == Some(NODE)).cloned().collect();
    assert_eq!(deposits.len(), 1);
    assert_eq!(deposits[0].size, PAGE_SIZE);

    let cl = cluster.borrow();
    let frame = cl
        .node_iommu(NODE)
        .and_then(|i| i.table(REMOTE_ASID))
        .and_then(|t| t.entry(VirtAddr::new(REMOTE_VA).page()))
        .map(|e| e.frame.base())
        .unwrap();
    let mut got = vec![0u8; PAGE_SIZE as usize];
    cl.read(NODE, frame, &mut got).unwrap();
    assert_eq!(got, data, "duplicate service corrupted the deposit");
}

// ---- data-frame chaos: drops, duplicates, reorders, corruption -----

use udma_nic::{FaultPlan, DMA_LINK_FAILED};

/// A remote-capable machine whose outgoing link runs a seeded fault
/// plan. Pin-on-post on both sides so no VA fault can NACK — every
/// observed disturbance is the link layer's own.
fn chaos_setup(pages: u64, plan: FaultPlan) -> (Machine, udma_cpu::Pid, Vec<u8>) {
    let mut m = Machine::new(MachineConfig {
        virt_dma: Some(VirtDmaSetup::pin_on_post(udma_iommu::IotlbConfig::default())),
        remote_nodes: 1,
        link_chaos: Some(plan),
        ..MachineConfig::new(DmaMethod::Kernel)
    });
    let pid = m.spawn(&Spec::two_buffers_of(pages), |_| ProgramBuilder::new().halt().build());
    m.grant_remote_buffer(
        NODE,
        REMOTE_ASID,
        VirtAddr::new(REMOTE_VA),
        pages,
        udma_mem::Perms::READ_WRITE,
    );
    let src_frame = m.env(pid).buffer(0).first_frame;
    let data: Vec<u8> = (0..pages * PAGE_SIZE).map(|i| (i % 251) as u8).collect();
    m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();
    (m, pid, data)
}

/// Bytes the remote grant holds, read through the node's IOMMU.
fn remote_bytes(m: &Machine, pages: u64) -> Vec<u8> {
    let cluster = m.cluster().unwrap();
    let cl = cluster.borrow();
    let mut got = vec![0u8; (pages * PAGE_SIZE) as usize];
    for p in 0..pages {
        let frame = cl
            .node_iommu(NODE)
            .and_then(|i| i.table(REMOTE_ASID))
            .and_then(|t| t.entry(VirtAddr::new(REMOTE_VA + p * PAGE_SIZE).page()))
            .map(|e| e.frame.base())
            .unwrap();
        let s = (p * PAGE_SIZE) as usize;
        cl.read(NODE, frame, &mut got[s..s + PAGE_SIZE as usize]).unwrap();
    }
    got
}

/// Dropped data frames force go-back-N retransmits, but every byte
/// still lands, in order and bit-exact.
#[test]
fn dropped_data_frames_retransmit_until_every_byte_lands() {
    let (mut m, pid, data) = chaos_setup(2, FaultPlan::lossless(0xD0D0).with_drop(0.25));
    let src = m.env(pid).buffer(0).va;
    let id = m
        .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), 2 * PAGE_SIZE)
        .unwrap();
    assert_eq!(m.run_virt(id, 64), VirtState::Complete);

    let t = m.virt_xfer(id).unwrap();
    assert_eq!(t.moved, 2 * PAGE_SIZE);
    assert!(t.retransmits > 0, "a 25% loss rate must cost retransmits");
    assert!(t.link_stall > udma_bus::SimTime::ZERO, "recovery time must be charged");
    let chaos = m.link_chaos_stats().unwrap();
    assert!(chaos.dropped > 0);
    assert!(m.node_link_stats(NODE).retransmits > 0);
    assert_eq!(remote_bytes(&m, 2), data, "retransmission corrupted the deposit");
}

/// Duplicated and reordered frames are absorbed by the sequence-number
/// discipline: duplicates ignored, out-of-order arrivals discarded and
/// re-sent, deposit bit-exact.
#[test]
fn duplicated_and_reordered_frames_never_corrupt_the_deposit() {
    let plan = FaultPlan::lossless(0xBEEF).with_duplicate(0.2).with_reorder(0.2);
    let (mut m, pid, data) = chaos_setup(2, plan);
    let src = m.env(pid).buffer(0).va;
    let id = m
        .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), 2 * PAGE_SIZE)
        .unwrap();
    assert_eq!(m.run_virt(id, 64), VirtState::Complete);

    let chaos = m.link_chaos_stats().unwrap();
    assert!(chaos.duplicated > 0 && chaos.reordered > 0, "plan must actually fire");
    let node = m.node_link_stats(NODE);
    assert!(node.dup_ignored > 0, "receiver must have seen (and ignored) duplicates");
    assert!(node.ooo_discarded > 0, "receiver must have discarded out-of-order frames");
    assert_eq!(remote_bytes(&m, 2), data, "reordering corrupted the deposit");
}

/// A corrupted frame is *never* acknowledged: the CRC catches every one,
/// the receiver drops it, and go-back-N resends until a clean copy
/// lands. The deposit is bit-exact.
#[test]
fn corrupted_frames_are_dropped_by_crc_and_never_acked() {
    let (mut m, pid, data) = chaos_setup(2, FaultPlan::lossless(0xC4C4).with_corrupt(0.3));
    let src = m.env(pid).buffer(0).va;
    let id = m
        .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), 2 * PAGE_SIZE)
        .unwrap();
    assert_eq!(m.run_virt(id, 64), VirtState::Complete);

    let chaos = m.link_chaos_stats().unwrap();
    assert!(chaos.corrupted > 0, "plan must actually fire");
    // Every mangled frame was caught by the CRC — none was acked into
    // the deposit, so the received bytes are exactly the source bytes.
    assert_eq!(m.node_link_stats(NODE).crc_dropped, chaos.corrupted);
    assert_eq!(remote_bytes(&m, 2), data, "a corrupted frame slipped past the CRC");
}

/// A burst outage longer than the retry budget aborts the transfer with
/// `DMA_LINK_FAILED`, leaving *exactly* the contiguous in-order prefix —
/// the frames acked before the outage — and not one byte more.
#[test]
fn burst_outage_aborts_with_exact_in_order_prefix() {
    // Frames 0..3 deliver; the outage swallows everything after.
    let (mut m, pid, data) = chaos_setup(1, FaultPlan::lossless(1).with_burst(3, 1_000_000));
    let mtu = m.config().reliability.mtu;
    let src = m.env(pid).buffer(0).va;
    let id = m
        .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGE_SIZE)
        .unwrap();

    let t = m.virt_xfer(id).unwrap();
    assert_eq!(t.state, VirtState::LinkFailed);
    assert_eq!(t.moved, 3 * mtu, "prefix must be exactly the acked frames");
    assert!(t.link_timeouts > 0);
    let now = m.time();
    assert_eq!(m.engine().core_mut().virt_status(id, now), DMA_LINK_FAILED);

    let got = remote_bytes(&m, 1);
    let cut = (3 * mtu) as usize;
    assert_eq!(&got[..cut], &data[..cut], "in-order prefix corrupted");
    assert!(got[cut..].iter().all(|&b| b == 0), "bytes leaked past the abort point");
}

/// Step-limit exhaustion reports `finished = false` and leaves state
/// inspectable (no panic, no corruption).
#[test]
fn step_limit_is_a_clean_timeout() {
    let mut m = Machine::with_method(DmaMethod::Kernel);
    let pid = m.spawn(&ProcessSpec::default(), |_| {
        ProgramBuilder::new().label("spin").jmp("spin").build()
    });
    let out = m.run(1_000);
    assert!(!out.finished);
    assert_eq!(out.steps, 1_000);
    assert_eq!(m.state(pid), ProcState::Ready);
    assert!(m.time() > udma_bus::SimTime::ZERO);
}
