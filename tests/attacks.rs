//! Experiments E4/E5: the paper's attacks on the 3- and 4-instruction
//! repeated-passing variants (Figures 5 and 6), rediscovered by
//! exhaustive interleaving search rather than by hand.

use udma::{explore, DmaMethod};
use udma_workloads::{
    illegal_transfer, misinformation, AdversaryKind, AttackScenario, ADVERSARY, VICTIM,
};

#[test]
fn figure_5_attack_is_found_on_the_3_instruction_variant() {
    // Victim: LOAD A, STORE B, LOAD A. Malicious process (read access to
    // its own pages only!) wraps loads of its page C around the victim's
    // store — and the engine launches C→B into the victim's private
    // destination.
    let s = AttackScenario::new(DmaMethod::Repeated3, AdversaryKind::Figure5);
    let report = explore(|| s.build(), 5_000, illegal_transfer);
    assert!(report.exhaustive);
    assert!(!report.safe(), "expected the Figure 5 attack among {} schedules", report.schedules);

    // The stolen transfer's source is the adversary's page C (second page
    // of its buffer 0), exactly as in the figure.
    let probe = s.build();
    let c_frame = probe.env(ADVERSARY).buffer(0).first_frame.offset(1);
    let b_frame = probe.env(VICTIM).buffer(1).first_frame;
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.detail.src.page() == c_frame && f.detail.dst.page() == b_frame),
        "no finding matches the C→B transfer of Figure 5"
    );
}

#[test]
fn figure_6_misinformation_is_found_on_the_4_instruction_variant() {
    // Victim: ST B, LD A, ST B, LD A, with A readable by the adversary.
    // One adversary load of A completes the sequence: the DMA starts, the
    // adversary receives the success status, and the victim's own final
    // load is told FAILURE.
    let s = AttackScenario::new(DmaMethod::Repeated4, AdversaryKind::ProbeSharedSource);
    let report = explore(|| s.build(), 5_000, misinformation);
    assert!(report.exhaustive);
    assert!(
        !report.safe(),
        "expected the Figure 6 misinformation among {} schedules",
        report.schedules
    );
    // In the misinformation case the transfer itself is the victim's own
    // (A→B) — the harm is the false failure report.
    let probe = s.build();
    let a = probe.env(VICTIM).buffer(0).first_frame;
    let b = probe.env(VICTIM).buffer(1).first_frame;
    assert!(report.findings.iter().any(|f| f.detail.src.page() == a && f.detail.dst.page() == b));
}

#[test]
fn four_instruction_variant_never_starts_a_wrong_transfer_here() {
    // Figure 6's harm is misinformation, not an illegal transfer: with
    // this adversary (one shared-source load) the bytes that move are
    // exactly the victim's request.
    let s = AttackScenario::new(DmaMethod::Repeated4, AdversaryKind::ProbeSharedSource);
    let report = explore(|| s.build(), 5_000, illegal_transfer);
    assert!(report.safe());
}

#[test]
fn three_instruction_attack_needs_the_malicious_interleaving() {
    // Sanity: under run-to-completion (no preemption) even the broken
    // variant behaves.
    let s = AttackScenario::new(DmaMethod::Repeated3, AdversaryKind::Figure5);
    let mut m = s.build();
    m.run(10_000);
    assert!(illegal_transfer(&m).is_none());
    assert!(misinformation(&m).is_none());
}

#[test]
fn attack_rate_is_a_small_fraction_of_schedules() {
    // The attacks exist but need precise timing — most interleavings are
    // harmless. (This mirrors why such bugs survive testing and need
    // model checking: the paper found them by proof, we by enumeration.)
    let s = AttackScenario::new(DmaMethod::Repeated3, AdversaryKind::Figure5);
    let report = explore(|| s.build(), 5_000, illegal_transfer);
    let rate = report.findings.len() as f64 / report.schedules as f64;
    assert!(rate > 0.0 && rate < 0.5, "attack rate {rate}");
}

#[test]
fn key_based_and_ext_shadow_resist_the_same_adversaries() {
    for method in [DmaMethod::KeyBased, DmaMethod::ExtShadow] {
        for adv in [AdversaryKind::Figure5, AdversaryKind::ProbeSharedSource] {
            let s = AttackScenario::new(method, adv);
            let report =
                explore(|| s.build(), 5_000, |m| illegal_transfer(m).or_else(|| misinformation(m)));
            assert!(report.safe(), "{method} vs {adv:?}: {} violations", report.findings.len());
        }
    }
}
