//! Property tests for the sharded sim kernel's ordering contract, plus
//! an interleaving-explorer case for the NACK-vs-retransmit race
//! crossing a shard boundary.
//!
//! The kernel's promise: on *every* backend, each component processes
//! its arrivals in `(timestamp, source, sequence)` order — timestamp
//! order with a stable tie-break — so a parallel run is a replay of the
//! sequential one, not merely an equivalent one.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use udma::{ClusterConfig, ClusterSim};
use udma_bus::sim::{
    ChannelBuilder, RunnerKind, ShardId, SimComponent, SimReceiver, SimRunner, SimSender, Stamped,
};
use udma_bus::SimTime;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};
use udma_nic::{FaultPlan, XferState};
use udma_testkit::prop::{vec, Strategy};
use udma_testkit::sched::{explore, Budget};
use udma_testkit::{prop_assert, prop_assert_eq, props};

/// A message delivery as one component records it.
type Rx = (SimTime, ShardId, u64, u32);

/// A planned send: at `at`, shard `src` sends `tag` to shard `dst`.
#[derive(Clone, Copy, Debug)]
struct Send {
    at: SimTime,
    dst: ShardId,
    tag: u32,
}

/// A minimal component: executes a fixed send plan and logs every
/// arrival in processing order.
struct Echo {
    plan: Vec<Send>,
    next_plan: usize,
    pending: BinaryHeap<Reverse<Rx>>,
    tx: Vec<SimSender<u32>>,
    rx: Vec<SimReceiver<u32>>,
    received: Vec<Rx>,
}

impl SimComponent for Echo {
    fn drain(&mut self) {
        let mut scratch = Vec::new();
        for r in &mut self.rx {
            r.drain_into(&mut scratch);
        }
        for Stamped { at, src, seq, payload } in scratch.drain(..) {
            self.pending.push(Reverse((at, src, seq, payload)));
        }
    }

    fn next_time(&self) -> Option<SimTime> {
        let planned = self.plan.get(self.next_plan).map(|s| s.at);
        let arrival = self.pending.peek().map(|Reverse(r)| r.0);
        match (planned, arrival) {
            (Some(p), Some(a)) => Some(p.min(a)),
            (p, a) => p.or(a),
        }
    }

    fn advance(&mut self, horizon: SimTime) -> u64 {
        let mut done = 0;
        loop {
            let planned = self.plan.get(self.next_plan).map(|s| s.at);
            let arrival = self.pending.peek().map(|Reverse(r)| r.0);
            // Planned sends break timestamp ties in favour of sending —
            // an arbitrary but *fixed* rule, applied by every backend.
            match (planned, arrival) {
                (Some(p), a) if p < horizon && a.is_none_or(|a| p <= a) => {
                    let s = self.plan[self.next_plan];
                    self.next_plan += 1;
                    self.tx[s.dst].send(s.at, s.tag);
                }
                (_, Some(a)) if a < horizon => {
                    let Reverse(r) = self.pending.pop().expect("peeked");
                    self.received.push(r);
                }
                _ => break,
            }
            done += 1;
        }
        done
    }
}

/// Builds `shards` Echo components wired all-to-all (self-channels
/// included) with each component's slice of the global plan.
fn echo_mesh(shards: usize, plan: &[(usize, Send)]) -> Vec<Echo> {
    let builder = ChannelBuilder::new(SimTime::from_us(2));
    let mut rx_grid: Vec<Vec<Option<SimReceiver<u32>>>> =
        (0..shards).map(|_| (0..shards).map(|_| None).collect()).collect();
    let mut tx_grid = Vec::new();
    for src in 0..shards {
        let mut row = Vec::new();
        for rx_row in rx_grid.iter_mut() {
            let (tx, rx) = builder.channel(src);
            row.push(tx);
            rx_row[src] = Some(rx);
        }
        tx_grid.push(row);
    }
    tx_grid
        .into_iter()
        .zip(rx_grid)
        .enumerate()
        .map(|(id, (tx, rx_row))| {
            let mut mine: Vec<Send> =
                plan.iter().filter(|(src, _)| *src == id).map(|&(_, s)| s).collect();
            mine.sort_by_key(|s| s.at);
            Echo {
                plan: mine,
                next_plan: 0,
                pending: BinaryHeap::new(),
                tx,
                rx: rx_row.into_iter().map(|r| r.expect("full matrix")).collect(),
                received: Vec::new(),
            }
        })
        .collect()
}

fn run_mesh(shards: usize, plan: &[(usize, Send)], kind: RunnerKind) -> Vec<Vec<Rx>> {
    let mut mesh = echo_mesh(shards, plan);
    SimRunner::new(kind, SimTime::from_us(2)).run(&mut mesh);
    mesh.into_iter().map(|e| e.received).collect()
}

fn plan_strategy() -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    // (src, dst, at_us) triples; src/dst are folded mod the shard count
    // inside the property.
    vec((0usize..8, 0usize..8, 0u64..40), 1..32)
}

props! {
    config(cases = 48);

    /// Parallel per-component delivery order equals timestamp order
    /// with the stable `(at, src, seq)` tie-break — and is identical,
    /// message for message, to the sequential oracle's.
    fn parallel_delivery_order_is_timestamp_order(
        shards in 2usize..5,
        raw in plan_strategy(),
    ) {
        let plan: Vec<(usize, Send)> = raw
            .iter()
            .enumerate()
            .map(|(i, &(src, dst, at))| {
                (src % shards, Send { at: SimTime::from_us(at), dst: dst % shards, tag: i as u32 })
            })
            .collect();
        let seq = run_mesh(shards, &plan, RunnerKind::Sequential);
        let par = run_mesh(shards, &plan, RunnerKind::Parallel);
        prop_assert_eq!(&seq, &par, "parallel delivery log diverged from sequential");
        let total: usize = par.iter().map(Vec::len).sum();
        prop_assert_eq!(total, plan.len(), "messages lost or duplicated");
        for (shard, log) in par.iter().enumerate() {
            for w in log.windows(2) {
                let (a, b) = (&w[0], &w[1]);
                prop_assert!(
                    (a.0, a.1, a.2) <= (b.0, b.1, b.2),
                    "shard {} processed {:?} before {:?} — not (at, src, seq) order",
                    shard, a, b
                );
            }
        }
    }
}

/// The NACK-vs-retransmit race across a shard boundary: node 0 streams
/// into a *cold* buffer on node 1 (every page a NACK round trip) while
/// node 2 streams into a *pinned* buffer on the same node over the same
/// chaotic wire (pure go-back-N retransmits). In a 2-shard layout the
/// senders live on shard 0 and the receiver on shard 1, so the NACK and
/// the retransmitted data chunk race across the boundary. The explorer
/// drives every relative post timing; for each one the 2-shard parallel
/// run must match the sequential oracle exactly.
#[test]
fn nack_vs_retransmit_race_is_deterministic_across_the_boundary() {
    const ASID: u32 = 5;
    const COLD_VA: u64 = 16 * PAGE_SIZE;
    const WARM_VA: u64 = 24 * PAGE_SIZE;
    let build = |t_cold: u64, t_warm: u64, shards: usize, runner: RunnerKind| {
        let mut cfg = ClusterConfig::new(4);
        cfg.shards = shards;
        cfg.runner = runner;
        cfg.record_log = true;
        cfg.chaos = Some(FaultPlan::lossless(0xACE).with_drop(0.25));
        let mut sim = ClusterSim::new(cfg);
        sim.grant(1, ASID, VirtAddr::new(COLD_VA), 3, Perms::READ_WRITE).unwrap();
        sim.grant(1, ASID, VirtAddr::new(WARM_VA), 3, Perms::READ_WRITE).unwrap();
        sim.pin(1, ASID, VirtAddr::new(WARM_VA), 3 * PAGE_SIZE).unwrap();
        sim.post(0, 1, ASID, VirtAddr::new(COLD_VA), 3 * PAGE_SIZE, SimTime::from_us(t_cold));
        sim.post(2, 1, ASID, VirtAddr::new(WARM_VA), 3 * PAGE_SIZE, SimTime::from_us(t_warm));
        sim.run();
        sim
    };
    // Schedule space: 3 steps per contender; a contender posts on its
    // first step, so the interleaving sets the relative post timing
    // (including exact ties) while later steps pad the spacing.
    let exploration = explore(&[3, 3], Budget::new(64, 0x5EED), |schedule| {
        let first = |thread: usize| {
            schedule.iter().position(|&t| t == thread).expect("3 steps each") as u64
        };
        let (t_cold, t_warm) = (first(0), first(1));
        let oracle = build(t_cold, t_warm, 1, RunnerKind::Sequential);
        let sharded = build(t_cold, t_warm, 2, RunnerKind::Parallel);
        let (exp, got) = (oracle.digest(), sharded.digest());
        let nacked = exp.xfers[0].counters.nacks > 0;
        let retransmitted = exp.xfers.iter().any(|x| x.counters.retransmits > 0);
        if !(nacked && retransmitted) {
            return Some(format!(
                "race not exercised at ({t_cold}, {t_warm}): nacks={} retransmits={}",
                exp.xfers[0].counters.nacks,
                exp.xfers.iter().map(|x| x.counters.retransmits).sum::<u64>()
            ));
        }
        if exp.xfers.iter().any(|x| x.state != XferState::Complete) {
            return Some(format!("a contender failed at ({t_cold}, {t_warm})"));
        }
        exp.diff(&got).map(|d| format!("divergence at ({t_cold}, {t_warm}):\n{d}"))
    });
    assert!(exploration.exhaustive, "20-schedule space must be exhaustively explored");
    assert!(
        exploration.safe(),
        "NACK-vs-retransmit race broke determinism:\n{}",
        exploration
            .findings
            .iter()
            .map(|(s, d)| format!("schedule {s:?}: {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Unused-variable guard: `ClusterSim::run` already happened inside
/// `build`; digesting twice must be stable (pure observation).
#[test]
fn digest_is_a_pure_observation() {
    let mut cfg = ClusterConfig::new(2);
    cfg.pin_on_post = true;
    let mut sim = ClusterSim::new(cfg);
    sim.grant(1, 5, VirtAddr::new(16 * PAGE_SIZE), 2, Perms::READ_WRITE).unwrap();
    sim.post(0, 1, 5, VirtAddr::new(16 * PAGE_SIZE), 2 * PAGE_SIZE, SimTime::ZERO);
    sim.run();
    assert_eq!(sim.digest(), sim.digest());
}
