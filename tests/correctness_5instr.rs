//! Experiment E6: the §3.3.1 correctness argument for the 5-instruction
//! repeated-passing protocol, checked by exhaustive enumeration instead
//! of the paper's hand-waved case analysis — and strengthened with an
//! adversary shape (SandwichSteal) the paper's well-formedness assumption
//! does not cover.

use udma::{
    emit_dma, explore, explore_sampled, DmaMethod, DmaRequest, Machine, MachineConfig, ProcessSpec,
};
use udma_cpu::{ProgramBuilder, RandomPreempt, Reg};
use udma_nic::DMA_FAILURE;
use udma_workloads::{any_violation, AdversaryKind, AttackScenario, VICTIM};

#[test]
fn five_instruction_protocol_is_safe_against_every_adversary_exhaustively() {
    for adv in [
        AdversaryKind::OwnInitiation,
        AdversaryKind::ProbeSharedSource,
        AdversaryKind::Figure5,
        AdversaryKind::SandwichSteal,
    ] {
        let s = AttackScenario::new(DmaMethod::Repeated5, adv);
        let report = explore(|| s.build(), 10_000, any_violation);
        assert!(report.exhaustive, "{adv:?}");
        assert!(
            report.safe(),
            "{adv:?}: {} violations in {} schedules — the §3.3.1 proof \
             would be wrong",
            report.findings.len(),
            report.schedules
        );
        assert!(report.schedules >= 45, "{adv:?}: trivial space?");
    }
}

#[test]
fn misinformation_is_impossible_for_the_5_instruction_variant() {
    // The very attack that breaks the 4-instruction variant: the
    // adversary's probe load of the shared source. The fifth access (the
    // extra destination load) means only the *victim* can complete a
    // sequence whose destination is the victim's page.
    let s = AttackScenario::new(DmaMethod::Repeated5, AdversaryKind::ProbeSharedSource);
    let report = explore(|| s.build(), 10_000, udma_workloads::misinformation);
    assert!(report.safe(), "{} violations", report.findings.len());
}

#[test]
fn sampled_three_process_schedules_stay_safe() {
    // Three-way interleavings (victim + two adversaries) blow up the
    // exhaustive space; sample it.
    let factory = || {
        let s = AttackScenario::new(DmaMethod::Repeated5, AdversaryKind::Figure5);
        let mut m = s.build();
        // A third process: another sandwich-style attacker.
        let spec = ProcessSpec { buffers: vec![udma::BufferSpec::rw(1)], ..Default::default() };
        m.spawn(&spec, |env| {
            let d = env.shadow_of(env.buffer(0).va).as_u64();
            ProgramBuilder::new()
                .store(d, 64u64)
                .mb()
                .store(d, 64u64)
                .mb()
                .load(Reg::R1, d)
                .halt()
                .build()
        });
        m
    };
    let report = explore_sampled(factory, 20_000, 3_000, 0xA77AC4, any_violation);
    assert_eq!(report.schedules, 3_000);
    assert!(!report.exhaustive);
    assert!(report.safe(), "{} violations", report.findings.len());
}

#[test]
fn victim_with_retry_loop_eventually_succeeds_despite_interference() {
    // Liveness: Figure 7's retry loop recovers from broken sequences.
    // Under heavy random preemption against an interfering process, the
    // victim's transfer still completes, correctly.
    for seed in 0..20u64 {
        let mut m = Machine::new(MachineConfig::new(DmaMethod::Repeated5));
        let victim = m.spawn(&ProcessSpec::two_buffers(), |env| {
            let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
            let mut uniq = 0;
            emit_dma(env, ProgramBuilder::new(), &req, &mut uniq).halt().build()
        });
        let spec = ProcessSpec {
            buffers: vec![udma::BufferSpec::rw(1), udma::BufferSpec::rw(1)],
            ..Default::default()
        };
        m.spawn(&spec, |env| {
            let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 32);
            let mut uniq = 0;
            emit_dma(env, ProgramBuilder::new(), &req, &mut uniq).halt().build()
        });
        let out = m.run_with(&mut RandomPreempt::new(seed, 0.3), 200_000);
        assert!(out.finished, "seed {seed}: livelock under random preemption");
        assert_ne!(m.reg(victim, Reg::R0), DMA_FAILURE, "seed {seed}");
        let env = m.env(VICTIM);
        assert!(
            m.transfers().iter().any(|r| {
                r.src.page() == env.buffer(0).first_frame
                    && r.dst.page() == env.buffer(1).first_frame
            }),
            "seed {seed}: victim transfer missing"
        );
        // Interference costs retries, never correctness.
        assert!(any_violation(&m).is_none(), "seed {seed}");
    }
}

#[test]
fn schedule_space_of_the_full_scenario_is_what_the_paper_reasoned_over() {
    // Victim 8 instructions (incl. halt) × adversary 8 → 12 870 merge
    // orders; the paper's Figure 8 hand analysis covered 3 of them.
    let s = AttackScenario::new(DmaMethod::Repeated5, AdversaryKind::OwnInitiation);
    let report = explore(|| s.build(), 10_000, any_violation);
    assert_eq!(report.schedules, 12_870);
    assert!(report.safe());
}
