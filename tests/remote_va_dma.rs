//! End-to-end *remote* virtual-address DMA: receive-side translation,
//! the cross-link NACK/retry fault protocol, the protection property
//! against a straight-line oracle, exhaustive interleaving coverage of
//! {sender retry, remote fault service, remote swap-out}, and the
//! receive-side translation pipeline (announced ranges, one-NACK cold
//! start, prefetch vs shootdown).

use udma::{DmaMethod, Machine, MachineConfig, ProcessSpec, VirtDmaSetup};
use udma_cpu::ProgramBuilder;
use udma_mem::{Perms, PhysAddr, VirtAddr, PAGE_SIZE};
use udma_nic::{Initiator, PrefetchConfig, VirtState, DMA_FAILURE};
use udma_testkit::sched::{explore, Budget};
use udma_testkit::{prop_assert, prop_assert_eq, props};

const NODE: u32 = 0;
const REMOTE_ASID: u32 = 7;
const REMOTE_VA: u64 = 32 * PAGE_SIZE;
const NODE_BYTES: u64 = 1 << 20;

/// A VA neither side maps.
const WILD_VA: u64 = 0x5000_0000;

fn remote_machine() -> Machine {
    remote_machine_with(PrefetchConfig::default())
}

fn remote_machine_with(prefetch: PrefetchConfig) -> Machine {
    let mut setup = VirtDmaSetup::default();
    setup.virt.prefetch = prefetch;
    Machine::new(MachineConfig {
        virt_dma: Some(setup),
        remote_nodes: 1,
        remote_node_bytes: NODE_BYTES,
        ..MachineConfig::new(DmaMethod::Kernel)
    })
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 13 + 5) as u8).collect()
}

#[test]
fn remote_demand_transfer_completes_with_one_nack_per_page() {
    let mut m = remote_machine();
    let pid = m.spawn(&ProcessSpec::two_buffers_of(2), |_| ProgramBuilder::new().halt().build());
    let buf =
        m.grant_remote_buffer(NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), 2, Perms::READ_WRITE);
    let src = m.env(pid).buffer(0).va;
    let src_frame = m.env(pid).buffer(0).first_frame;
    let data = payload(2 * PAGE_SIZE as usize);
    m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();

    let id = m
        .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), data.len() as u64)
        .unwrap();
    assert_eq!(m.run_virt(id, 64), VirtState::Complete);

    let t = m.virt_xfer(id).unwrap();
    assert_eq!(t.nacks, 2, "one NACK per cold remote page");
    // Each NACK costs a full link round trip on the sender's clock.
    let rtt =
        m.engine().core().mover().link().latency() + m.engine().core().mover().link().latency();
    assert_eq!(t.nack_stall, rtt + rtt);
    assert_eq!(m.remote_fault_service(NODE).stats().mapped, 2);

    let cluster = m.cluster().unwrap();
    let mut got = vec![0u8; data.len()];
    cluster.borrow().read(NODE, buf.first_frame.base(), &mut got).unwrap();
    assert_eq!(got, data, "remote deposit mismatch");
}

/// Tentpole acceptance (remote half): with the translation pipeline on,
/// the sender announces the destination range at post time, so the
/// first receive-side fault hands the node's OS the *whole* range — a
/// contiguous cold remote buffer costs exactly one NACK round trip
/// instead of one per page.
#[test]
fn announced_cold_range_costs_exactly_one_nack_round_trip() {
    const PAGES: u64 = 4;
    let run = |prefetch: PrefetchConfig| {
        let mut m = remote_machine_with(prefetch);
        let pid =
            m.spawn(&ProcessSpec::two_buffers_of(PAGES), |_| ProgramBuilder::new().halt().build());
        let buf = m.grant_remote_buffer(
            NODE,
            REMOTE_ASID,
            VirtAddr::new(REMOTE_VA),
            PAGES,
            Perms::READ_WRITE,
        );
        let src = m.env(pid).buffer(0).va;
        let src_frame = m.env(pid).buffer(0).first_frame;
        let data = payload((PAGES * PAGE_SIZE) as usize);
        m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();
        // Warm the local source so every fault is receive-side.
        for p in 0..PAGES {
            let warm = m.post_virt(pid, src + p * PAGE_SIZE, src + p * PAGE_SIZE, 8).unwrap();
            assert_eq!(m.run_virt(warm, 16), VirtState::Complete);
        }
        let id = m
            .post_virt_remote(
                pid,
                src,
                NODE,
                REMOTE_ASID,
                VirtAddr::new(REMOTE_VA),
                data.len() as u64,
            )
            .unwrap();
        assert_eq!(m.run_virt(id, 64), VirtState::Complete);
        let cluster = m.cluster().unwrap();
        let mut got = vec![0u8; data.len()];
        cluster.borrow().read(NODE, buf.first_frame.base(), &mut got).unwrap();
        assert_eq!(got, data, "remote deposit mismatch");
        (m.virt_xfer(id).unwrap(), m.remote_fault_service(NODE).stats())
    };

    let (demand, demand_os) = run(PrefetchConfig::default());
    let (piped, piped_os) = run(PrefetchConfig::depth(4));
    assert_eq!(u64::from(demand.nacks), PAGES, "demand path NACKs once per cold page");
    assert_eq!(piped.nacks, 1, "announced range collapses to a single NACK");
    // One round trip on the wire instead of four.
    assert_eq!(piped.nack_stall.as_ps() * PAGES, demand.nack_stall.as_ps());
    // The single service installed the remaining pages in one entry.
    assert_eq!(demand_os.mapped, PAGES);
    assert_eq!(piped_os.mapped, 1);
    assert_eq!(piped_os.range_prefilled, PAGES - 1);
    // Strictly faster end to end.
    let done = |t: udma_nic::VirtTransfer| t.finished.unwrap() - t.started;
    assert!(done(piped) < done(demand));
}

props! {
    config(cases = 48);

    /// Acceptance property: whatever mix of mapped, boundary-straddling
    /// and wild addresses is posted at a remote node, the deposit equals
    /// a straight-line oracle copy that stops at the first faulting page
    /// boundary — no byte ever lands in a frame the destination ASID
    /// does not map, and no byte ever lands past that boundary.
    fn remote_transfers_match_the_straight_line_oracle(
        src_pick in 0u32..4,
        dst_pick in 0u32..4,
        off_words in 0u64..64,
        size_words in 1u64..2048,
    ) {
        let mut m = remote_machine();
        let pid = m.spawn(&ProcessSpec::two_buffers_of(3), |_| {
            ProgramBuilder::new().halt().build()
        });
        let buf = m.grant_remote_buffer(
            NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), 2, Perms::READ_WRITE,
        );
        let off = off_words * 8;
        let size = size_words * 8;
        // Seed the whole local source buffer so every picked range has
        // known bytes behind it.
        let src_base = m.env(pid).buffer(0).va;
        let src_frame = m.env(pid).buffer(0).first_frame;
        let fill = payload(3 * PAGE_SIZE as usize);
        m.memory().borrow_mut().write_bytes(src_frame.base(), &fill).unwrap();

        // Mostly-mapped sources (off + size ≤ 512 + 16 KiB < 3 pages);
        // one wild pick exercises the local-fault-first path.
        let src = if src_pick == 3 { VirtAddr::new(WILD_VA) } else { src_base + off };
        let dst = match dst_pick {
            // Fully inside the grant, page-straddling, past-the-end, wild.
            0 => VirtAddr::new(REMOTE_VA + off),
            1 => VirtAddr::new(REMOTE_VA + PAGE_SIZE - 256 + off),
            2 => VirtAddr::new(REMOTE_VA + PAGE_SIZE + off),
            _ => VirtAddr::new(WILD_VA + off),
        };

        let id = m.post_virt_remote(pid, src, NODE, REMOTE_ASID, dst, size).unwrap();
        let state = m.run_virt(id, 128);
        prop_assert!(
            matches!(state, VirtState::Complete | VirtState::Failed(_)),
            "transfer not driven to a terminal state: {state:?}"
        );

        // Straight-line oracle: bytes copy one by one until either side
        // hits an unmapped page; nothing at or past that point moves.
        let src_limit = if src_pick == 3 { 0 } else { size };
        let grant_end = REMOTE_VA + 2 * PAGE_SIZE;
        let dst_limit = if dst_pick == 3 {
            0
        } else {
            grant_end.saturating_sub(dst.as_u64()).min(size)
        };
        let deposited = src_limit.min(dst_limit);
        let mut oracle = vec![0u8; NODE_BYTES as usize];
        let gbase = buf.first_frame.base().as_u64();
        for i in 0..deposited {
            let dva = dst.as_u64() + i;
            let frame_off = gbase + (dva - REMOTE_VA - (dva - REMOTE_VA) % PAGE_SIZE)
                + dva % PAGE_SIZE;
            oracle[frame_off as usize] = fill[(src.as_u64() + i - src_base.as_u64()) as usize];
        }

        let t = m.virt_xfer(id).unwrap();
        prop_assert_eq!(t.moved, deposited, "moved bytes disagree with the oracle");
        prop_assert_eq!(
            state == VirtState::Complete,
            deposited == size,
            "completion status disagrees with the oracle"
        );
        if state != VirtState::Complete {
            let now = m.time();
            prop_assert_eq!(m.engine().core_mut().virt_status(id, now), DMA_FAILURE);
        }

        // The node's entire memory, byte for byte: equality with the
        // oracle rules out deposits into unmapped frames *and* deposits
        // past the faulting boundary in one shot.
        let cluster = m.cluster().unwrap();
        let mut node_mem = vec![0u8; NODE_BYTES as usize];
        cluster.borrow().read(NODE, PhysAddr::new(0), &mut node_mem).unwrap();
        prop_assert!(node_mem == oracle, "node memory deviates from the oracle copy");
    }
}

/// Satellite 2 — exhaustive interleaving of {sender retry, remote fault
/// service, remote swap-out} over a two-page remote transfer: every
/// schedule must converge to completion (no lost completion) with each
/// destination byte written exactly once (no double deposit).
#[test]
fn every_retry_service_swap_interleaving_converges_exactly_once() {
    let data = payload(2 * PAGE_SIZE as usize);
    // Thread 0: two spontaneous sender retries (below the budget of 3).
    // Thread 1: two remote fault-service drains.
    // Thread 2: one swap-out attempt on the transfer's second page.
    let lens = [2usize, 2, 1];
    let exploration = explore(&lens, Budget::new(2_000, 0xE13), |schedule| {
        let mut m = remote_machine();
        let pid =
            m.spawn(&ProcessSpec::two_buffers_of(2), |_| ProgramBuilder::new().halt().build());
        m.grant_remote_buffer(NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), 2, Perms::READ_WRITE);
        let src = m.env(pid).buffer(0).va;
        let src_frame = m.env(pid).buffer(0).first_frame;
        m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();
        // Warm the *local* source translations so only the receive side
        // faults under the schedule: the retry budget resets on byte
        // progress, and a cold local page would burn one fruitless
        // resume per side.
        for p in 0..2 {
            let warm = m.post_virt(pid, src + p * PAGE_SIZE, src + p * PAGE_SIZE, 8).unwrap();
            assert_eq!(m.run_virt(warm, 16), VirtState::Complete);
        }
        let id = m
            .post_virt_remote(
                pid,
                src,
                NODE,
                REMOTE_ASID,
                VirtAddr::new(REMOTE_VA),
                data.len() as u64,
            )
            .unwrap();

        for &actor in schedule {
            match actor {
                0 => {
                    let now = m.time();
                    m.engine().core_mut().resume_virt(id, now);
                }
                1 => {
                    m.service_remote_faults();
                }
                _ => {
                    // May be refused once the page is pinned; a success
                    // forces a swap-in on the next service. Both legal.
                    let _ =
                        m.swap_out_remote(NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA + PAGE_SIZE));
                }
            }
        }

        // However the actions interleaved, the OS-driven drain finishes
        // the transfer: a lost completion would stick at Faulted here.
        let state = m.run_virt(id, 64);
        if state != VirtState::Complete {
            return Some(format!("lost completion: terminal state {state:?}"));
        }

        // Exactly-once deposit: the mover's chunk log must tile the
        // destination without overlap, and the bytes must match.
        let mut chunks: Vec<(u64, u64)> = m
            .transfers()
            .iter()
            .filter(|r| {
                matches!(r.initiator, Initiator::VirtDma { .. }) && r.remote_node == Some(NODE)
            })
            .map(|r| (r.dst.as_u64(), r.size))
            .collect();
        chunks.sort_unstable();
        let total: u64 = chunks.iter().map(|&(_, s)| s).sum();
        if total != data.len() as u64 {
            return Some(format!("deposited {total} bytes for a {}-byte transfer", data.len()));
        }
        for w in chunks.windows(2) {
            if w[0].0 + w[0].1 > w[1].0 {
                return Some(format!("overlapping deposits at {:#x}", w[1].0));
            }
        }

        // Read back through the node's final translations (a swap-in may
        // have moved a page to a fresh frame).
        let cluster = m.cluster().unwrap();
        let cl = cluster.borrow();
        for p in 0..2u64 {
            let va = VirtAddr::new(REMOTE_VA + p * PAGE_SIZE);
            let Some(entry) = cl
                .node_iommu(NODE)
                .and_then(|i| i.table(REMOTE_ASID))
                .and_then(|t| t.entry(va.page()))
            else {
                return Some(format!("page {p} lost its I/O translation"));
            };
            let mut got = vec![0u8; PAGE_SIZE as usize];
            cl.read(NODE, entry.frame.base(), &mut got).unwrap();
            let lo = (p * PAGE_SIZE) as usize;
            if got != data[lo..lo + PAGE_SIZE as usize] {
                return Some(format!("page {p} bytes corrupted"));
            }
        }
        None
    });
    assert!(exploration.exhaustive, "30-schedule space must be enumerated exhaustively");
    assert_eq!(exploration.schedules, 30);
    assert!(
        exploration.findings.is_empty(),
        "violation under schedule {:?}: {}",
        exploration.findings[0].0,
        exploration.findings[0].1
    );
}

/// Satellite — the prefetch/shootdown race: a swap-out landing between
/// the receive-side prewalk and the chunk that uses its entry must
/// invalidate the prefetched IOTLB line, so the chunk NACKs and is
/// re-serviced instead of silently depositing into the stale frame.
/// Every interleaving of {sender resume, remote fault service,
/// unpin-then-swap-out of page 1} must converge with each byte readable
/// through the node's *final* translations — a stale-frame write would
/// leave page 1 without a translation or with the wrong bytes behind it.
#[test]
fn shootdown_between_prewalk_and_use_faults_instead_of_writing_stale_frames() {
    let data = payload(2 * PAGE_SIZE as usize);
    // Thread 0: two sender resumes (below the retry budget of 3).
    // Thread 1: two service drains. Thread 2: unpin page 1 (the OS
    // pinned it on install), then swap it out — the shootdown racing
    // the prefetched IOTLB entry.
    let lens = [2usize, 2, 2];
    let exploration = explore(&lens, Budget::new(2_000, 0xE15), |schedule| {
        let mut m = remote_machine_with(PrefetchConfig::depth(4));
        let pid =
            m.spawn(&ProcessSpec::two_buffers_of(2), |_| ProgramBuilder::new().halt().build());
        m.grant_remote_buffer(NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), 2, Perms::READ_WRITE);
        let src = m.env(pid).buffer(0).va;
        let src_frame = m.env(pid).buffer(0).first_frame;
        m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();
        for p in 0..2 {
            let warm = m.post_virt(pid, src + p * PAGE_SIZE, src + p * PAGE_SIZE, 8).unwrap();
            assert_eq!(m.run_virt(warm, 16), VirtState::Complete);
        }
        let id = m
            .post_virt_remote(
                pid,
                src,
                NODE,
                REMOTE_ASID,
                VirtAddr::new(REMOTE_VA),
                data.len() as u64,
            )
            .unwrap();

        let page1 = VirtAddr::new(REMOTE_VA + PAGE_SIZE);
        let mut unpinned = false;
        // A swap-out that lands *before* page 1's bytes are down races
        // the prefetched translation: the deposit must re-fault.
        let mut swapped_mid_transfer = false;
        for &actor in schedule {
            match actor {
                0 => {
                    let now = m.time();
                    m.engine().core_mut().resume_virt(id, now);
                }
                1 => {
                    m.service_remote_faults();
                }
                _ if !unpinned => {
                    // The range service pins what it installs; release
                    // page 1 so the swapper is allowed to race.
                    unpinned = true;
                    let cluster = m.cluster().unwrap();
                    let mut cl = cluster.borrow_mut();
                    let _ = cl.node_iommu_mut(NODE).unwrap().set_pinned(
                        REMOTE_ASID,
                        page1.page(),
                        false,
                    );
                }
                _ => {
                    let before = m.virt_xfer(id).unwrap().moved;
                    if m.swap_out_remote(NODE, REMOTE_ASID, page1).is_ok() && before < 2 * PAGE_SIZE
                    {
                        swapped_mid_transfer = true;
                    }
                }
            }
        }

        let state = m.run_virt(id, 64);
        if state != VirtState::Complete {
            return Some(format!("lost completion: terminal state {state:?}"));
        }

        // If the shootdown preceded the deposit, the prefetched IOTLB
        // entry must NOT have been used: the chunk re-faulted and the
        // node's OS paid a swap-in. A stale-entry write would complete
        // without one, with the ledger still claiming the page is out.
        if swapped_mid_transfer && m.remote_fault_service(NODE).stats().swapped_in == 0 {
            return Some("deposit went through a shot-down prefetched entry".into());
        }

        // Each destination byte must be readable through the node's
        // final translations; page 1's may be legitimately gone only if
        // the swap landed *after* its bytes were already delivered.
        let cluster = m.cluster().unwrap();
        let cl = cluster.borrow();
        for p in 0..2u64 {
            let va = VirtAddr::new(REMOTE_VA + p * PAGE_SIZE);
            let entry = cl
                .node_iommu(NODE)
                .and_then(|i| i.table(REMOTE_ASID))
                .and_then(|t| t.entry(va.page()));
            let Some(entry) = entry else {
                if p == 1 && !swapped_mid_transfer {
                    continue; // clean post-completion shootdown
                }
                return Some(format!("page {p} lost its I/O translation"));
            };
            let mut got = vec![0u8; PAGE_SIZE as usize];
            cl.read(NODE, entry.frame.base(), &mut got).unwrap();
            let lo = (p * PAGE_SIZE) as usize;
            if got != data[lo..lo + PAGE_SIZE as usize] {
                return Some(format!("page {p} bytes lost to a stale frame"));
            }
        }
        None
    });
    assert!(exploration.exhaustive, "schedule space must be enumerated exhaustively");
    assert!(exploration.schedules > 1);
    assert!(
        exploration.findings.is_empty(),
        "violation under schedule {:?}: {}",
        exploration.findings[0].0,
        exploration.findings[0].1
    );
}
