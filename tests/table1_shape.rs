//! Experiment E1: Table 1's shape must reproduce — who wins, by roughly
//! what factor, in which order.

use udma::{measure_initiation, table1, DmaMethod};

#[test]
fn table1_reproduces_within_tolerance() {
    // The paper's absolute numbers, measured on the simulated testbed.
    // We require every comparable row within 15% of the paper.
    for cost in table1(1_000) {
        let paper = cost.paper_us.expect("table1 rows have paper numbers");
        let ours = cost.mean.as_us();
        let err = (ours - paper).abs() / paper;
        assert!(
            err < 0.15,
            "{}: measured {ours:.2} µs vs paper {paper} µs ({:.0}% off)",
            cost.method,
            err * 100.0
        );
    }
}

#[test]
fn user_level_methods_are_an_order_of_magnitude_faster() {
    // "All user-level DMA methods perform about an order of magnitude
    // better than the kernel-based DMA."
    let rows = table1(500);
    let kernel = rows[0].mean;
    assert_eq!(rows[0].method, DmaMethod::Kernel);
    for row in &rows[1..] {
        let speedup = kernel.as_ns() / row.mean.as_ns();
        assert!(speedup > 6.0, "{}: only {speedup:.1}× faster than kernel DMA", row.method);
    }
}

#[test]
fn method_ordering_matches_the_paper() {
    // "Best of all methods is the Extended Shadow Addressing … The other
    // user-level DMA methods take 2.3–2.6 microseconds."
    let ext = measure_initiation(DmaMethod::ExtShadow, 500).mean;
    let key = measure_initiation(DmaMethod::KeyBased, 500).mean;
    let rep5 = measure_initiation(DmaMethod::Repeated5, 500).mean;
    let kernel = measure_initiation(DmaMethod::Kernel, 300).mean;
    assert!(ext < key, "ext {ext} !< key {key}");
    assert!(key < rep5, "key {key} !< rep5 {rep5}");
    assert!(rep5 < kernel, "rep5 {rep5} !< kernel {kernel}");
}

#[test]
fn access_counts_explain_the_costs() {
    // The 2-access method is roughly half the 4-access method, which is
    // a bit under the 5-access one — cost is bus transactions, not CPU.
    let ext = measure_initiation(DmaMethod::ExtShadow, 500).mean.as_ns();
    let key = measure_initiation(DmaMethod::KeyBased, 500).mean.as_ns();
    let rep5 = measure_initiation(DmaMethod::Repeated5, 500).mean.as_ns();
    let key_ratio = key / ext;
    let rep_ratio = rep5 / ext;
    assert!((1.7..=2.6).contains(&key_ratio), "key/ext = {key_ratio:.2}");
    assert!((2.2..=3.2).contains(&rep_ratio), "rep5/ext = {rep_ratio:.2}");
}

#[test]
fn reported_instruction_counts_match_the_paper_claim() {
    // "A DMA operation can be initiated in only 2–5 assembly
    // instructions all issued from user level."
    let rows = table1(100);
    assert_eq!(rows[0].user_instructions, None); // kernel: thousands
    for row in &rows[1..] {
        let n = row.user_instructions.expect("user methods have counts");
        assert!((2..=5).contains(&n), "{}: {n}", row.method);
    }
}

#[test]
fn kernel_cost_tracks_the_empty_syscall() {
    // "Kernel level DMA costs close to 19 µs, which is a little more
    // than the cost of an empty system call on this workstation."
    let kernel = measure_initiation(DmaMethod::Kernel, 300).mean.as_us();
    let syscall = udma_cpu::CostModel::alpha_3000_300().syscall_round_trip().as_us();
    assert!(kernel > syscall);
    assert!(kernel < syscall * 1.5, "kernel {kernel} ≫ syscall {syscall}");
}

#[test]
fn measurement_is_deterministic() {
    let a = measure_initiation(DmaMethod::KeyBased, 200).mean;
    let b = measure_initiation(DmaMethod::KeyBased, 200).mean;
    assert_eq!(a, b);
}
