//! Experiment E10: the §3.1 key-guessing analysis.
//!
//! "It would be easier for a malicious process to guess the UNIX password
//! of another user, rather than to guess a DMA key!"

use udma_workloads::{guess_acceptance, pollution_with_known_key};

#[test]
fn exhaustive_sweep_of_small_keyspaces_accepts_exactly_one_key() {
    for bits in [4, 5, 6, 8] {
        let space = (1u64 << bits) - 1; // keys are nonzero
        let stats = guess_acceptance(bits, space, 0xBEEF + bits as u64);
        assert_eq!(stats.accepted, 1, "{bits}-bit sweep: exactly the victim's key must match");
        let expected = 1.0 / space as f64;
        assert!((stats.acceptance_rate() - expected).abs() < 1e-12);
    }
}

#[test]
fn per_guess_acceptance_halves_per_extra_bit() {
    // With a partial sweep of `n` guesses over a `b`-bit space the hit
    // count is 1 if the key lies in the first n values, else 0; across
    // seeds the frequency approaches n/2^b.
    let mut hits = 0u32;
    let trials = 40;
    let bits = 8;
    let guesses = 64; // a quarter of the space
    for seed in 0..trials {
        hits += guess_acceptance(bits, guesses, seed as u64).accepted as u32;
    }
    let freq = hits as f64 / trials as f64;
    let expected = guesses as f64 / ((1u64 << bits) - 1) as f64;
    assert!((freq - expected).abs() < 0.2, "observed {freq}, expected ≈{expected}");
}

#[test]
fn realistic_keys_resist_thousands_of_guesses() {
    // 61-bit keys, 5 000 guesses: the chance of any acceptance is
    // ~2^-49; observing one would indicate a protocol bug.
    let stats = guess_acceptance(61, 5_000, 424242);
    assert_eq!(stats.accepted, 0);
    assert_eq!(stats.attempts, 5_000);
}

#[test]
fn a_correct_key_defeats_the_scheme_entirely() {
    // The flip side the paper concedes: key possession *is* the
    // protection. Given the key, the adversary redirects the victim's
    // transfer and the victim never notices.
    assert!(pollution_with_known_key());
}
