//! Context virtualization end to end: the spill/fill round-trip oracle
//! property, exhaustive interleaving coverage of the
//! steal-vs-in-flight-transfer race, the Machine logical-process
//! surface, and the E17 QoS acceptance bound.

use std::cell::RefCell;
use std::rc::Rc;
use udma::{DmaMethod, Machine, MachineConfig, PostPath};
use udma_bus::{SharedMemory, SimTime};
use udma_mem::{PhysAddr, PhysLayout, PhysMemory};
use udma_nic::{regs, CtxBusy, EngineConfig, EngineCore, Initiator};
use udma_os::{ArbiterConfig, CtxCacheConfig, CtxVictimPolicy, QosClass};
use udma_testkit::sched::{explore, Budget};
use udma_testkit::{prop_assert_eq, props};
use udma_workloads::hostile_tenant_scenario;

fn engine(contexts: u32) -> (EngineCore, SharedMemory) {
    let layout = PhysLayout::default();
    let mem: SharedMemory = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
    let core = EngineCore::new(
        layout,
        mem.clone(),
        EngineConfig { num_contexts: contexts, ..EngineConfig::default() },
    );
    (core, mem)
}

props! {
    config(cases = 96);

    /// Oracle property: a context that is spilled and refilled — at any
    /// point of a random staging-operation sequence, any number of
    /// times, through any slot — is observationally identical to a
    /// context that was never touched by the cache. The oracle context
    /// receives the same operation stream with no spills; at the end,
    /// register file, key, and `CTX_VIRT_*` window must match exactly.
    fn spill_fill_round_trip_is_invisible(
        key in 1u64..1_000_000,
        ops in 0u64..u64::MAX,
        spill_mask in 0u64..u64::MAX,
        via_slot in 0u32..2,
    ) {
        let (mut subject, _smem) = engine(4);
        let (mut oracle, _omem) = engine(4);
        subject.set_key(0, key);
        oracle.set_key(0, key);

        let mut op_bits = ops;
        let mut spills = spill_mask;
        for step in 0..16u64 {
            let op = op_bits % 6;
            op_bits /= 6;
            let arg = 0x1000 + step * 8;
            for core in [&mut subject, &mut oracle] {
                match op {
                    0 => core.context_mut(0).push_addr(PhysAddr::new(arg)),
                    1 => core.context_mut(0).set_size(arg),
                    2 => core.context_mut(0).set_atomic_operand((step % 2) as usize, arg),
                    3 => core.context_mut(0).set_atomic_result(arg),
                    4 => core.ctx_virt_store(0, regs::CTX_VIRT_SRC, arg, SimTime::ZERO),
                    _ => core.ctx_virt_store(0, regs::CTX_VIRT_DST, arg, SimTime::ZERO),
                }
            }
            // Subject only: maybe spill here, bounce through another
            // slot, and come back. The oracle never spills.
            if spills % 4 == 0 {
                let image = subject.save_context(0, SimTime::ZERO)
                    .expect("idle context must be spillable");
                prop_assert_eq!(subject.key(0), 0, "spilled slot must be scrubbed");
                if via_slot == 1 {
                    // Park the image in a different slot first — the
                    // image, not the slot, carries the state.
                    subject.restore_context(2, &image);
                    let moved = subject.save_context(2, SimTime::ZERO)
                        .expect("parked context is idle");
                    subject.restore_context(0, &moved);
                } else {
                    subject.restore_context(0, &image);
                }
            }
            spills /= 4;
        }

        prop_assert_eq!(subject.key(0), oracle.key(0), "key must survive");
        prop_assert_eq!(*subject.context(0), *oracle.context(0), "register file must survive");
        prop_assert_eq!(
            subject.ctx_virt_load(0, regs::CTX_VIRT_SRC, SimTime::ZERO),
            oracle.ctx_virt_load(0, regs::CTX_VIRT_SRC, SimTime::ZERO),
            "CTX_VIRT_SRC must survive"
        );
        prop_assert_eq!(
            subject.ctx_virt_load(0, regs::CTX_VIRT_DST, SimTime::ZERO),
            oracle.ctx_virt_load(0, regs::CTX_VIRT_DST, SimTime::ZERO),
            "CTX_VIRT_DST must survive"
        );

        // Behavioural check: both post with whatever arguments the
        // sequence staged, and must agree on accept/reject.
        let s_args = subject.context_mut(0).take_args();
        let o_args = oracle.context_mut(0).take_args();
        prop_assert_eq!(s_args, o_args, "staged arguments must survive");
    }
}

/// The steal-vs-in-flight-transfer race, explored exhaustively. Thread
/// V (victim, context 0) stages and posts a transfer, then lets the
/// wire drain; thread S (the OS) tries to steal context 0 at every
/// point. Invariants, on every one of the 10 interleavings:
/// * a save succeeds iff the context was not busy at that instant —
///   the engine, not scheduling luck, is the guard;
/// * the payload arrives at the destination intact no matter where the
///   steals landed;
/// * every denied save is counted.
#[test]
fn steal_vs_in_flight_transfer_exhaustive() {
    const SIZE: u64 = 512;
    let src = 0x2000u64;
    let dst = 0x6000u64;

    // V: [stage+post, drain]; S: [steal, steal, steal].
    let report = explore(&[2, 3], Budget::new(1_000, 0), |schedule| {
        let (mut core, mem) = engine(2);
        let payload: Vec<u8> = (0..SIZE as usize).map(|i| (i * 13 + 5) as u8).collect();
        mem.borrow_mut().write_bytes(PhysAddr::new(src), &payload).unwrap();
        core.set_key(0, 0xFEED);

        let mut now = SimTime::ZERO;
        let mut v_step = 0;
        let mut saves = 0u64;
        let mut denials = 0u64;
        for &actor in schedule {
            if actor == 0 {
                // Victim thread.
                if v_step == 0 {
                    let idx = core
                        .start_user_dma(
                            PhysAddr::new(src),
                            PhysAddr::new(dst),
                            SIZE,
                            Initiator::Context(0),
                            now,
                        )
                        .expect("post accepted");
                    core.context_mut(0).set_last_transfer(idx);
                } else {
                    // Drain: jump past the transfer's completion.
                    now = SimTime::from_us(100_000);
                }
                v_step += 1;
            } else {
                // OS thread: attempt the steal.
                let busy_before = core.context_busy(0, now);
                match core.save_context(0, now) {
                    Ok(image) => {
                        assert!(!busy_before, "save succeeded on a busy context");
                        saves += 1;
                        // Hand the slot to someone else, then restore
                        // the victim — the usual steal/refill cycle.
                        core.set_key(0, 0xDEAD);
                        core.restore_context(0, &image);
                    }
                    Err(e) => {
                        assert!(busy_before, "save denied on an idle context: {e:?}");
                        assert_eq!(e, CtxBusy::Transfer);
                        denials += 1;
                    }
                }
            }
        }
        assert_eq!(core.ctx_stats().busy_denials, denials);
        assert_eq!(core.ctx_stats().spills, saves);

        // The payload always lands intact: steals never corrupt an
        // in-flight transfer because busy contexts refuse to spill.
        let mut got = vec![0u8; SIZE as usize];
        mem.borrow().read_bytes(PhysAddr::new(dst), &mut got).unwrap();
        (got != payload).then(|| format!("payload corrupted (saves={saves} denials={denials})"))
    });
    assert!(report.exhaustive, "the 10-schedule space must be fully enumerated");
    assert_eq!(report.schedules, 10);
    assert!(report.safe(), "findings: {:?}", report.findings);
}

/// The same race through the OS cache: a hostile process tries to
/// acquire while the victim's transfer is in flight. The cache must
/// route the hostile acquisition away from the busy context (another
/// victim, or starvation) on every interleaving.
#[test]
fn cache_steal_respects_in_flight_exhaustive() {
    let report = explore(&[2, 2], Budget::new(1_000, 0), |schedule| {
        let (mut core, _mem) = engine(1);
        let mut cache = udma_os::CtxCache::new(1, CtxCacheConfig::default());
        let victim = cache.register(QosClass::BestEffort, SimTime::ZERO);
        let hostile = cache.register(QosClass::BestEffort, SimTime::ZERO);
        cache.acquire(victim, &mut core, SimTime::ZERO);

        let mut now = SimTime::ZERO;
        let mut v_step = 0;
        for &actor in schedule {
            if actor == 0 {
                if v_step == 0 {
                    // Re-acquire first: a hostile steal may have
                    // displaced the victim before it got to post.
                    let ctx = cache
                        .acquire(victim, &mut core, now)
                        .ctx()
                        .expect("the hostile context is idle, so the victim can always win it");
                    let idx = core
                        .start_user_dma(
                            PhysAddr::new(0x2000),
                            PhysAddr::new(0x6000),
                            512,
                            Initiator::Context(ctx),
                            now,
                        )
                        .expect("post accepted");
                    core.context_mut(ctx).set_last_transfer(idx);
                } else {
                    now = SimTime::from_us(100_000);
                }
                v_step += 1;
            } else {
                let busy =
                    cache.resident(victim).map(|c| core.context_busy(c, now)).unwrap_or(false);
                let acq = cache.acquire(hostile, &mut core, now);
                if busy {
                    // The only context belongs to a busy victim: the
                    // hostile acquisition must not get it.
                    if acq.ctx().is_some() {
                        return Some(format!("stole a busy context: {acq:?}"));
                    }
                }
            }
        }
        None
    });
    assert!(report.exhaustive);
    assert!(report.safe(), "findings: {:?}", report.findings);
}

#[test]
fn machine_logical_posts_move_real_data() {
    let mut config = MachineConfig::new(DmaMethod::KeyBased);
    config.num_contexts = 1;
    let mut m = Machine::new(config);
    m.enable_ctx_virtualization(CtxCacheConfig {
        victim: CtxVictimPolicy::Lru,
        ..CtxCacheConfig::default()
    });
    let a = m.register_logical(QosClass::BestEffort);
    let b = m.register_logical(QosClass::BestEffort);
    assert_ne!(
        m.ctx_cache().unwrap().key_of(a),
        m.ctx_cache().unwrap().key_of(b),
        "every logical process gets its own key"
    );

    let payload: Vec<u8> = (0..256).map(|i| (i * 7 + 3) as u8).collect();
    m.memory().borrow_mut().write_bytes(PhysAddr::new(0x2000), &payload).unwrap();

    // a posts, drains, then b posts (stealing a's context), drains,
    // then a posts again (stealing back).
    let mut now = SimTime::ZERO;
    let p1 = m.logical_post_at(a, PhysAddr::new(0x2000), PhysAddr::new(0x6000), 256, now);
    assert!(matches!(p1.path, PostPath::UserLevel { ctx: 0, stole: None }));
    now += SimTime::from_us(200);
    let p2 = m.logical_post_at(b, PhysAddr::new(0x2000), PhysAddr::new(0x8000), 256, now);
    assert!(
        matches!(p2.path, PostPath::UserLevel { ctx: 0, stole: Some(v) } if v == a),
        "b must steal a's context: {:?}",
        p2.path
    );
    assert!(p2.initiation > p1.initiation, "a steal costs more than a fresh fill's post");
    now += SimTime::from_us(200);
    let p3 = m.logical_post_at(a, PhysAddr::new(0x2000), PhysAddr::new(0xA000), 256, now);
    assert!(p3.stole());

    for dst in [0x6000u64, 0x8000, 0xA000] {
        let mut got = vec![0u8; 256];
        m.memory().borrow().read_bytes(PhysAddr::new(dst), &mut got).unwrap();
        assert_eq!(got, payload, "post to {dst:#x} lost data");
    }

    // The NI counters tell the story: 2 steals, 2 spills, 3 fills.
    let ni = m.engine().core().ctx_stats();
    assert_eq!(ni.steals, 2);
    assert_eq!(ni.spills, 2);
    assert_eq!(ni.fills, 3);
    assert_eq!(m.engine().core().stats().started, 3);
}

#[test]
fn machine_kernel_fallback_still_transfers() {
    // One context, one resident process with an endless transfer in
    // flight: a second process's post must take the kernel path and
    // still move the bytes.
    let mut config = MachineConfig::new(DmaMethod::KeyBased);
    config.num_contexts = 1;
    let mut m = Machine::new(config);
    m.enable_ctx_virtualization(CtxCacheConfig::default());
    let a = m.register_logical(QosClass::BestEffort);
    let b = m.register_logical(QosClass::BestEffort);

    let payload: Vec<u8> = (0..128).map(|i| (i * 3 + 1) as u8).collect();
    m.memory().borrow_mut().write_bytes(PhysAddr::new(0x2000), &payload).unwrap();

    m.logical_post_at(a, PhysAddr::new(0x2000), PhysAddr::new(0x6000), 4096, SimTime::ZERO);
    // 1 µs in, a's 4 KB transfer is still on the wire: b is starved.
    let p = m.logical_post_at(
        b,
        PhysAddr::new(0x2000),
        PhysAddr::new(0x8000),
        128,
        SimTime::from_us(1),
    );
    assert_eq!(p.path, PostPath::KernelFallback { throttled: false });
    assert!(p.record.is_some(), "the kernel path still starts the transfer");
    let mut got = vec![0u8; 128];
    m.memory().borrow().read_bytes(PhysAddr::new(0x8000), &mut got).unwrap();
    assert_eq!(got, payload);
    assert_eq!(m.engine().core().ctx_stats().starvations, 1);
}

/// E17 acceptance bound: with QoS enabled, a hostile bursty tenant
/// cannot push a well-behaved (guaranteed-tier) tenant's p99 initiation
/// above 2× its uncontended value.
#[test]
fn qos_bounds_hostile_tenant_damage() {
    let row = hostile_tenant_scenario(6, 2, 48, 50, true, 0xE17);
    assert!(
        row.degradation <= 2.0,
        "QoS on: victim p99 {} vs uncontended {} = {:.2}×",
        row.victim_p99,
        row.uncontended_p99,
        row.degradation
    );
    assert_eq!(row.victim_fallbacks, 0, "the guaranteed tier never hits the kernel fallback");

    let off = hostile_tenant_scenario(6, 2, 48, 50, false, 0xE17);
    assert!(
        off.degradation > 2.0,
        "without QoS the same burst must do real damage ({:.2}×)",
        off.degradation
    );
}

#[test]
fn victim_policies_all_sustain_pressure() {
    for policy in [CtxVictimPolicy::Lru, CtxVictimPolicy::Clock, CtxVictimPolicy::Random] {
        let rows = udma_workloads::context_pressure_sweep(&[1_000], 4, 500, policy, 42);
        let r = &rows[0];
        assert!(r.hit_rate > 0.0, "{policy:?}: some locality must survive");
        assert!(r.ni.steals > 0, "{policy:?}: pressure must steal");
        assert_eq!(r.ni.spills, r.os.spills, "{policy:?}: NI and OS must agree");
    }
}

/// Satellite guard: the OS-side allocator and the NI register map share
/// one context-count definition.
#[test]
fn context_count_is_unified() {
    assert!(std::panic::catch_unwind(|| {
        udma_os::KeyRegistry::new(regs::MAX_CONTEXTS + 1, 0, 61)
    })
    .is_err());
    assert!(std::panic::catch_unwind(|| {
        udma_os::CtxCache::new(regs::MAX_CONTEXTS + 1, CtxCacheConfig::default())
    })
    .is_err());
    let grid = udma_workloads::a3_context_grid();
    assert_eq!(grid.last().copied(), Some(regs::MAX_CONTEXTS));
    let e17 = udma_workloads::e17_context_grid();
    assert_eq!(e17.last().copied(), Some(regs::MAX_CONTEXTS));
}

/// Satellite regression: queued descriptor-ring work pins a context
/// exactly like an in-flight transfer does. A save must refuse — naming
/// the ring — while descriptors sit posted-but-undoorbelled *and* while
/// a doorbelled batch is still draining; once quiescent the spill
/// succeeds and carries the ring registration in the image.
#[test]
fn save_refuses_pending_ring_descriptors() {
    use udma_mem::{Perms, PhysFrame, VirtAddr, VirtPage, PAGE_SIZE};
    use udma_nic::{DescDst, DmaDescriptor, RingConfig, VirtDmaConfig};

    let (mut core, _mem) = engine(2);
    core.enable_iommu(udma_iommu::IotlbConfig::default(), VirtDmaConfig::default());
    let iommu = core.iommu_mut().unwrap();
    iommu.create_context(1);
    for p in 0..2u64 {
        iommu.map(1, VirtPage::new(p), PhysFrame::new(8 + p), Perms::READ_WRITE, true).unwrap();
        iommu
            .map(1, VirtPage::new(8 + p), PhysFrame::new(16 + p), Perms::READ_WRITE, true)
            .unwrap();
    }
    core.enable_rings(RingConfig::default());
    core.set_ring_base(1, 0x40000);
    core.set_ring_ctl(1, 16);

    let desc =
        DmaDescriptor::new(VirtAddr::new(0), DescDst::Local(VirtAddr::new(8 * PAGE_SIZE)), 64);
    core.ring_post(1, &desc, SimTime::ZERO).unwrap();
    // Posted but undoorbelled: the descriptor would be lost to a spill.
    assert!(core.context_busy(1, SimTime::ZERO));
    assert_eq!(core.save_context(1, SimTime::ZERO), Err(CtxBusy::RingPending));
    // Doorbelled but still draining: same answer.
    core.ring_doorbell(1, 1, SimTime::ZERO);
    assert_eq!(core.save_context(1, SimTime::ZERO), Err(CtxBusy::RingPending));
    assert_eq!(core.ctx_stats().busy_denials, 2);
    // Quiescent: the spill succeeds and the image carries the ring.
    let image = core.save_context(1, SimTime::from_us(100_000)).expect("drained ring spills");
    let ring = image.ring.expect("the image must carry the ring registration");
    assert_eq!((ring.base, ring.capacity), (0x40000, 16));
}

#[test]
fn arbiter_disabled_is_the_unprotected_baseline() {
    let _ = ArbiterConfig::disabled();
    let on = ArbiterConfig::default();
    assert!(on.enabled);
    assert_eq!(on.reserved, 0, "no reservation unless the operator provisions one");
}
