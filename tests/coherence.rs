//! Coherence-aware DMA (E18 infrastructure): differential oracles, MESI
//! safety under explored snoop races, the missing-flush hazard, and the
//! zero-overhead pin for the flat/disabled configurations.
//!
//! The differential property: a MESI world (CPU agents + snooping DMA)
//! and a non-coherent world (cached CPU + raw DMA bracketed by software
//! flushes) must both be byte-identical to a flat `Vec<u8>` oracle — on
//! every load, every DMA payload, and the final memory image. The
//! negative test shows the bracket is load-bearing: skip the flush and
//! the DMA observably moves stale bytes.

use std::cell::RefCell;
use std::rc::Rc;
use udma::{
    emit_dma_once, CoherenceMode, CoherenceSetup, DmaMethod, DmaRequest, Machine, MachineConfig,
    ProcessSpec,
};
use udma_bus::{CacheConfig, CoherenceDomain, CoherenceTiming, SharedCoherence, SimTime};
use udma_cpu::{ProgramBuilder, Reg};
use udma_mem::{PhysAddr, PhysMemory};
use udma_testkit::prop::vec;
use udma_testkit::sched::{explore, Budget};
use udma_testkit::{prop_assert, prop_assert_eq, props};

/// Arena the random ops play in: 1 KiB at a page-aligned base.
const ARENA_BASE: u64 = 0x8000;
const ARENA: u64 = 1024;
/// Scratch range DMA reads deposit into / writes are staged from.
const MEM_BYTES: u64 = 1 << 16;

/// One random step of the differential workload, decoded from a
/// `(kind, slot, value)` tuple: `slot` picks an 8-aligned arena offset.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// CPU `agent` stores `val` at the slot.
    CpuStore { agent: usize, off: u64, val: u64 },
    /// CPU `agent` loads the slot (checked against the oracle).
    CpuLoad { agent: usize, off: u64 },
    /// DMA writes `len` bytes of pattern at the slot.
    DmaWrite { off: u64, len: u64, val: u64 },
    /// DMA reads `len` bytes at the slot (payload checked).
    DmaRead { off: u64, len: u64 },
}

fn decode(kind: u64, slot: u64, val: u64) -> Op {
    let off = (slot % (ARENA / 8)) * 8;
    // DMA lengths stress partial-line handling: sub-line, odd multiples
    // of a word, and runs that cross line boundaries, clamped to the
    // arena end.
    let len = (8 + (val % 13) * 8).min(ARENA - off);
    match kind % 6 {
        0 => Op::CpuStore { agent: 0, off, val },
        1 => Op::CpuStore { agent: 1, off, val: val ^ 0xFFFF },
        2 => Op::CpuLoad { agent: 0, off },
        3 => Op::CpuLoad { agent: 1, off },
        4 => Op::DmaWrite { off, len, val },
        _ => Op::DmaRead { off, len },
    }
}

fn fresh_domain(agents: usize) -> (SharedCoherence, Vec<usize>) {
    let mem = Rc::new(RefCell::new(PhysMemory::new(MEM_BYTES)));
    let domain = CoherenceDomain::new(mem, CoherenceTiming::default()).shared();
    let ids =
        (0..agents).map(|_| domain.borrow_mut().add_agent(CacheConfig::alpha_21064())).collect();
    (domain, ids)
}

fn pattern(val: u64, len: u64) -> Vec<u8> {
    (0..len).map(|i| (val as u8).wrapping_add(i as u8).wrapping_mul(31)).collect()
}

props! {
    config(cases = 96);

    /// The tentpole differential: MESI world and flush-bracketed
    /// non-coherent world both track the flat oracle byte for byte —
    /// every CPU load, every DMA payload, and the final image — and the
    /// MESI invariants hold after every single operation.
    fn coherent_and_flushed_noncoherent_match_flat_oracle(
        raw_ops in vec((0u64..6, 0u64..(ARENA / 8), 0u64..1 << 32), 1..48),
    ) {
        // World 0: the oracle — flat bytes, no caches anywhere.
        let mut oracle = vec![0u8; ARENA as usize];
        // World 1: two CPU agents + snooping DMA.
        let (coh, coh_agents) = fresh_domain(2);
        // World 2: two CPU agents, raw DMA bracketed by software
        // flushes (the non-coherent contract).
        let (ncoh, ncoh_agents) = fresh_domain(2);

        let base = |off: u64| PhysAddr::new(ARENA_BASE + off);
        for &(kind, slot, val) in &raw_ops {
            match decode(kind, slot, val) {
                Op::CpuStore { agent, off, val } => {
                    let bytes = val.to_le_bytes();
                    oracle[off as usize..off as usize + 8].copy_from_slice(&bytes);
                    coh.borrow_mut()
                        .agent_write(coh_agents[agent], base(off), &bytes)
                        .unwrap();
                    ncoh.borrow_mut()
                        .agent_write(ncoh_agents[agent], base(off), &bytes)
                        .unwrap();
                }
                Op::CpuLoad { agent, off } => {
                    let want = &oracle[off as usize..off as usize + 8];
                    let mut got = [0u8; 8];
                    coh.borrow_mut()
                        .agent_read(coh_agents[agent], base(off), &mut got)
                        .unwrap();
                    prop_assert_eq!(&got, want, "coherent load at {off}");
                    ncoh.borrow_mut()
                        .agent_read(ncoh_agents[agent], base(off), &mut got)
                        .unwrap();
                    prop_assert_eq!(&got, want, "non-coherent load at {off}");
                }
                Op::DmaWrite { off, len, val } => {
                    let bytes = pattern(val, len);
                    oracle[off as usize..(off + len) as usize].copy_from_slice(&bytes);
                    // Coherent: the engine's write snoops for itself.
                    coh.borrow_mut().dma_write(base(off), &bytes).unwrap();
                    // Non-coherent: software must flush the target range
                    // from EVERY cache first (dirty lines written back,
                    // clean copies discarded), then DMA raw.
                    for &a in &ncoh_agents {
                        ncoh.borrow_mut().flush_range(a, base(off), len);
                    }
                    let mem = ncoh.borrow().memory();
                    mem.borrow_mut().write_bytes(base(off), &bytes).unwrap();
                }
                Op::DmaRead { off, len } => {
                    let want = &oracle[off as usize..(off + len) as usize];
                    let mut got = vec![0u8; len as usize];
                    coh.borrow_mut().dma_read(base(off), &mut got).unwrap();
                    prop_assert_eq!(&got[..], want, "coherent DMA payload at {off}");
                    for &a in &ncoh_agents {
                        ncoh.borrow_mut().flush_range(a, base(off), len);
                    }
                    let mem = ncoh.borrow().memory();
                    mem.borrow().read_bytes(base(off), &mut got).unwrap();
                    prop_assert_eq!(&got[..], want, "non-coherent DMA payload at {off}");
                }
            }
            let inv = coh.borrow().check_invariants();
            prop_assert!(inv.is_ok(), "MESI invariant broken: {:?}", inv);
        }

        // Final image: write everything back and compare both worlds to
        // the oracle byte for byte.
        coh.borrow_mut().sync();
        ncoh.borrow_mut().sync();
        for world in [&coh, &ncoh] {
            let mem = world.borrow().memory();
            let mut image = vec![0u8; ARENA as usize];
            mem.borrow().read_bytes(PhysAddr::new(ARENA_BASE), &mut image).unwrap();
            prop_assert_eq!(&image, &oracle, "final memory image diverged");
        }
    }
}

/// Bounded exploration of the snoop races on ONE line: a CPU store
/// thread, a DMA-write thread, and a second CPU's store thread (each
/// field disjoint — false sharing, not data races). Every interleaving
/// must keep the MESI invariants and converge to the same final bytes:
/// last (= only) writer per field wins, no schedule can leak a stale
/// writeback over DMA data.
#[test]
fn snoop_race_exploration_is_safe_and_exhaustive() {
    const LINE: u64 = ARENA_BASE;
    let cpu0_word = 0x1111_2222_3333_4444u64;
    let cpu1_word = 0x5555_6666_7777_8888u64;
    let dma_bytes = pattern(0xD0, 8);

    // Thread op counts: CPU0 does store+readback, DMA one write, CPU1
    // one store → 3!·4 / … = 12 schedules, fully enumerable.
    let lens = [2usize, 1, 1];
    let exploration = explore(&lens, Budget::new(10_000, 0xE18), |schedule| {
        let (domain, agents) = fresh_domain(2);
        let mut next = [0usize; 3];
        let mut cpu0_read = None;
        for &t in schedule {
            let step = next[t];
            next[t] += 1;
            let r: Result<_, udma_mem::MemFault> = match (t, step) {
                // CPU0: store its field, then read it back.
                (0, 0) => domain
                    .borrow_mut()
                    .agent_write(agents[0], PhysAddr::new(LINE + 8), &cpu0_word.to_le_bytes())
                    .map(|_| ()),
                (0, 1) => {
                    let mut buf = [0u8; 8];
                    let res = domain
                        .borrow_mut()
                        .agent_read(agents[0], PhysAddr::new(LINE + 8), &mut buf)
                        .map(|_| ());
                    cpu0_read = Some(buf);
                    res
                }
                // DMA: partial-line write to bytes 0..8.
                (1, 0) => {
                    domain.borrow_mut().dma_write(PhysAddr::new(LINE), &dma_bytes).map(|_| ())
                }
                // CPU1: store the third field.
                (2, 0) => domain
                    .borrow_mut()
                    .agent_write(agents[1], PhysAddr::new(LINE + 16), &cpu1_word.to_le_bytes())
                    .map(|_| ()),
                _ => unreachable!("schedule exceeded thread lengths"),
            };
            if let Err(f) = r {
                return Some(format!("fault {f:?} under {schedule:?}"));
            }
            if let Err(e) = domain.borrow().check_invariants() {
                return Some(format!("invariant: {e} under {schedule:?}"));
            }
        }
        // CPU0's read-back happens program-order after its own store and
        // nothing else writes that field: it must see its own bytes.
        if cpu0_read != Some(cpu0_word.to_le_bytes()) {
            return Some(format!("CPU0 read back stale bytes under {schedule:?}"));
        }
        // Convergence: every field holds its only writer's value.
        domain.borrow_mut().sync();
        let mem = domain.borrow().memory();
        let mut line = [0u8; 24];
        mem.borrow().read_bytes(PhysAddr::new(LINE), &mut line).unwrap();
        if line[..8] != dma_bytes[..]
            || line[8..16] != cpu0_word.to_le_bytes()
            || line[16..24] != cpu1_word.to_le_bytes()
        {
            return Some(format!("final bytes diverged: {line:?} under {schedule:?}"));
        }
        None
    });
    assert!(exploration.exhaustive, "12-schedule space must enumerate fully");
    assert_eq!(exploration.schedules, 12);
    assert!(
        exploration.safe(),
        "snoop races found: {:?}",
        exploration.findings.first().map(|(s, d)| (s.clone(), d.clone()))
    );
}

/// The negative test the whole non-coherent design hangs on: skip the
/// producer's `flush_range` and the raw engine observably reads stale
/// memory; run the same post through the coherence-aware path (or on
/// the snooping machine) and the fresh bytes arrive.
#[test]
fn missing_flush_moves_stale_bytes_and_the_bracket_fixes_it() {
    let fresh: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(17).wrapping_add(5)).collect();

    let run = |setup: CoherenceSetup, flush: bool| -> Vec<u8> {
        let mut m = Machine::new(MachineConfig {
            coherence: setup,
            ..MachineConfig::new(DmaMethod::Kernel)
        });
        let src = PhysAddr::new(0x10_000);
        let dst = PhysAddr::new(0x20_000);
        // Producer writes through the CPU cache: fresh bytes live in
        // Modified lines, memory still holds zeroes.
        let (domain, agent) = m.executor().coherence().expect("cached machine");
        for (i, chunk) in fresh.chunks(8).enumerate() {
            domain
                .borrow_mut()
                .agent_write(agent, PhysAddr::new(0x10_000 + i as u64 * 8), chunk)
                .unwrap();
        }
        drop(domain);
        if flush {
            m.post_dma_coherence_aware(src, dst, 64).unwrap();
        } else {
            // The raw post: exactly what a driver that forgot the
            // flush would run.
            let now = m.time();
            m.engine().core_mut().start_kernel_dma_direct(src, dst, 64, now).unwrap();
        }
        let mut got = vec![0u8; 64];
        m.memory().borrow().read_bytes(dst, &mut got).unwrap();
        got
    };

    // Non-coherent + no flush: the hazard is real — stale zeroes moved.
    let stale = run(CoherenceSetup::non_coherent(), false);
    assert_eq!(stale, vec![0u8; 64], "raw DMA must observably read stale memory");
    // Non-coherent + the bracket: correct.
    assert_eq!(run(CoherenceSetup::non_coherent(), true), fresh);
    // Coherent: even the forgetful driver is safe — the engine snoops.
    assert_eq!(run(CoherenceSetup::coherent(), false), fresh);
    assert_eq!(run(CoherenceSetup::coherent(), true), fresh);
}

/// Zero-overhead pin: with the cache disabled (`ways == 0`, the
/// first-class miss-everything geometry) the coherence layer must add
/// literally nothing — identical end-to-end SimTime to the flat
/// machine on the same end-to-end kernel-DMA flow, zero snoop time,
/// zero coherence bus traffic.
#[test]
fn disabled_cache_coherence_is_free() {
    let run = |setup: CoherenceSetup| {
        let mut m = Machine::new(MachineConfig {
            coherence: setup,
            cache: CacheConfig::disabled(),
            ..MachineConfig::new(DmaMethod::Kernel)
        });
        let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
            let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 256);
            emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
        });
        let src = m.env(pid).buffer(0).first_frame;
        m.memory().borrow_mut().write_bytes(src.base(), &pattern(0xEE, 256)).unwrap();
        m.run(10_000);
        let dst = m.env(pid).buffer(1).first_frame;
        let mut got = vec![0u8; 256];
        m.memory().borrow().read_bytes(dst.base(), &mut got).unwrap();
        (m.time(), got, m.coherence_stats())
    };

    let (flat_time, flat_bytes, _) = run(CoherenceSetup::flat());
    assert_eq!(flat_bytes, pattern(0xEE, 256));
    for setup in [CoherenceSetup::non_coherent(), CoherenceSetup::coherent()] {
        let (time, bytes, stats) = run(setup);
        assert_eq!(bytes, flat_bytes, "{:?}: data diverged", setup.mode);
        assert_eq!(
            time, flat_time,
            "{:?}: disabled-cache coherence must not change timing",
            setup.mode
        );
        assert_eq!(stats.snoop_time, SimTime::ZERO, "{:?}", setup.mode);
        assert_eq!(stats.coherence_traffic(), 0, "{:?}", setup.mode);
    }
}

/// Differential pin for the bus-accounting hook: a coherent machine's
/// loads and stores are served by MESI caches and never touch the RAM
/// device, but the bus must still account them — the same program
/// reports identical `ram_reads`/`ram_writes` on the flat,
/// non-coherent and coherent machines.
#[test]
fn coherent_ram_accounting_matches_flat() {
    let run = |setup: CoherenceSetup| {
        let mut m = Machine::new(MachineConfig {
            coherence: setup,
            ..MachineConfig::new(DmaMethod::Kernel)
        });
        m.spawn(&ProcessSpec::two_buffers(), |env| {
            let base = env.buffer(0).va.as_u64();
            let mut p = ProgramBuilder::new();
            // Stores first, a barrier to drain the write buffer, then
            // loads — so the loads actually reach the bus instead of
            // forwarding from the buffer in every world alike.
            for i in 0..16u64 {
                p = p.store(base + i * 8, i * 0x0101 + 1);
            }
            p = p.mb();
            for i in 0..16u64 {
                p = p.load(Reg::R1, base + i * 8);
            }
            p.halt().build()
        });
        m.run(100_000);
        m.bus().stats()
    };

    let flat = run(CoherenceSetup::flat());
    assert!(flat.ram_writes >= 16 && flat.ram_reads >= 16, "workload must reach RAM");
    for setup in [CoherenceSetup::non_coherent(), CoherenceSetup::coherent()] {
        let s = run(setup);
        assert_eq!(s.ram_reads, flat.ram_reads, "{:?}: RAM read accounting diverged", setup.mode);
        assert_eq!(
            s.ram_writes, flat.ram_writes,
            "{:?}: RAM write accounting diverged",
            setup.mode
        );
    }
}

/// The coherence-aware post on a *flat* machine is exactly the plain
/// post: zero extras, no sweeps, no interventions.
#[test]
fn flat_coherence_aware_post_adds_nothing() {
    let mut m = Machine::new(MachineConfig::new(DmaMethod::Kernel));
    assert_eq!(m.config().coherence.mode, CoherenceMode::Flat);
    m.memory().borrow_mut().write_bytes(PhysAddr::new(0x4000), &pattern(9, 128)).unwrap();
    let report =
        m.post_dma_coherence_aware(PhysAddr::new(0x4000), PhysAddr::new(0x6000), 128).unwrap();
    assert_eq!(report.total_extra(), SimTime::ZERO);
    assert_eq!(report.flush_lines, 0);
    assert_eq!(report.interventions, 0);
    let mut got = vec![0u8; 128];
    m.memory().borrow().read_bytes(PhysAddr::new(0x6000), &mut got).unwrap();
    assert_eq!(got, pattern(9, 128));
}
