//! Network-of-workstations flows: SHRIMP-1 mapped-out pages whose twins
//! live on remote cluster nodes (§1, §2.4).

use udma::{BufferSpec, DmaMethod, Machine, MachineConfig, ProcessSpec};
use udma_cpu::{ProgramBuilder, Reg};
use udma_mem::{PhysAddr, PAGE_SIZE};
use udma_nic::{Destination, DMA_FAILURE, DMA_STARTED};

fn now_machine() -> Machine {
    Machine::new(MachineConfig { remote_nodes: 2, ..MachineConfig::new(DmaMethod::Shrimp1) })
}

#[test]
fn remote_mapped_out_send_delivers_bytes() {
    let mut m = now_machine();
    let spec = ProcessSpec {
        buffers: vec![BufferSpec::rw(2)],
        mapped_out_remote: vec![(0, 1, 0x8000)],
        ..Default::default()
    };
    let pid = m.spawn(&spec, |env| {
        let s = env.shadow_of(env.addr_in(0, 0x40));
        ProgramBuilder::new().store(s.as_u64(), 32u64).load(Reg::R0, s.as_u64()).halt().build()
    });
    let frame = m.env(pid).buffer(0).first_frame;
    m.memory()
        .borrow_mut()
        .write_bytes(frame.base() + 0x40, b"across the wire, 32 bytes long!!")
        .unwrap();

    m.run(10_000);
    assert_eq!(m.reg(pid, Reg::R0), DMA_STARTED);

    let cluster = m.cluster().unwrap();
    let mut buf = [0u8; 32];
    // Page 0 of the buffer maps out to node 1 at 0x8000; the in-page
    // offset is preserved.
    cluster.borrow().read(1, PhysAddr::new(0x8000 + 0x40), &mut buf).unwrap();
    assert_eq!(&buf, b"across the wire, 32 bytes long!!");

    let rec = &m.transfers()[0];
    assert_eq!(rec.remote_node, Some(1));
    assert_eq!(rec.destination(), Destination::Remote { node: 1, addr: PhysAddr::new(0x8040) });
    // Nothing landed on node 0.
    let mut other = [0u8; 32];
    cluster.borrow().read(0, PhysAddr::new(0x8040), &mut other).unwrap();
    assert_eq!(other, [0u8; 32]);
}

#[test]
fn second_page_maps_to_the_next_remote_page() {
    let mut m = now_machine();
    let spec = ProcessSpec {
        buffers: vec![BufferSpec::rw(2)],
        mapped_out_remote: vec![(0, 0, 0x0)],
        ..Default::default()
    };
    let pid = m.spawn(&spec, |env| {
        let s = env.shadow_of(env.addr_in(0, PAGE_SIZE));
        ProgramBuilder::new().store(s.as_u64(), 8u64).load(Reg::R0, s.as_u64()).halt().build()
    });
    let frame = m.env(pid).buffer(0).first_frame.offset(1);
    m.memory().borrow_mut().write_u64(frame.base(), 0xFEED).unwrap();
    m.run(10_000);
    assert_eq!(m.reg(pid, Reg::R0), DMA_STARTED);
    let cluster = m.cluster().unwrap();
    assert_eq!(cluster.borrow().read_u64(0, PhysAddr::new(PAGE_SIZE)).unwrap(), 0xFEED);
}

#[test]
fn remote_transfer_cannot_cross_the_remote_page() {
    let mut m = now_machine();
    let spec = ProcessSpec {
        buffers: vec![BufferSpec::rw(1)],
        mapped_out_remote: vec![(0, 0, 0x0)],
        ..Default::default()
    };
    let pid = m.spawn(&spec, |env| {
        let s = env.shadow_of(env.addr_in(0, PAGE_SIZE - 8));
        ProgramBuilder::new()
            .store(s.as_u64(), 64u64) // 64 bytes from 8 before the edge
            .load(Reg::R0, s.as_u64())
            .halt()
            .build()
    });
    m.run(10_000);
    assert_eq!(m.reg(pid, Reg::R0), DMA_FAILURE);
    assert!(m.transfers().is_empty());
}

#[test]
fn remote_arrival_time_follows_the_link_model() {
    let mut m = now_machine();
    let spec = ProcessSpec {
        buffers: vec![BufferSpec::rw(1)],
        mapped_out_remote: vec![(0, 0, 0x0)],
        ..Default::default()
    };
    m.spawn(&spec, |env| {
        let s = env.shadow_of(env.buffer(0).va);
        ProgramBuilder::new().store(s.as_u64(), 4096u64).mb().halt().build()
    });
    m.run(10_000);
    let rec = &m.transfers()[0];
    let wire = m.config().link.transfer_time(4096);
    assert_eq!(rec.finished - rec.started, wire);
    assert!(rec.remaining_at(rec.started) > 0);
    assert_eq!(rec.remaining_at(rec.finished), 0);
}

#[test]
fn local_machines_reject_remote_mapped_out_config() {
    let result = std::panic::catch_unwind(|| {
        let mut m = Machine::with_method(DmaMethod::Shrimp1); // no nodes
        let spec = ProcessSpec {
            buffers: vec![BufferSpec::rw(1)],
            mapped_out_remote: vec![(0, 0, 0x0)],
            ..Default::default()
        };
        m.spawn(&spec, |_| ProgramBuilder::new().halt().build());
    });
    assert!(result.is_err(), "configuring remote twins without a cluster must panic");
}
