//! Node-level fault domain: crash/restart injection, incarnation-fenced
//! recovery, and health-gated degraded mode.
//!
//! The contracts under test, in both worlds:
//!
//! - **Fencing**: a frame stamped for a previous incarnation of a
//!   rebooted node is discarded, never merged into fresh state; the
//!   sender restarts (cursor 0) or aborts (torn prefix) on the node's
//!   Hello.
//! - **Fail fast with an honest prefix**: transfers to a `Down` node end
//!   `NodeDown` reporting exactly their in-order acked prefix, and new
//!   posts are rejected before a frame is wasted.
//! - **Zero delta**: a run that injects no [`CrashPlan`] schedules no
//!   lease, probe or fence event at all.
//! - **Determinism**: all of the above replays the sequential oracle
//!   bit for bit at every shard count, for random plans and exhaustively
//!   across the crash-timing race window.

use udma::{
    ClusterConfig, ClusterSim, DmaMethod, Machine, MachineConfig, ProcessSpec, VirtDmaSetup,
};
use udma_bus::sim::RunnerKind;
use udma_bus::SimTime;
use udma_cpu::ProgramBuilder;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};
use udma_nic::{
    CrashPlan, CrashStats, HealthState, HealthStats, RejectReason, VirtState, XferId, XferState,
};
use udma_testkit::prop::vec;
use udma_testkit::sched::{explore, Budget};
use udma_testkit::{prop_assert, prop_assert_eq, props};

const ASID: u32 = 7;
const DST_VA: u64 = 16 * PAGE_SIZE;

/// A pinned-destination cluster (every deposit lands, no NACK noise)
/// with the given ACK lease, every node granting the same region.
fn cluster(nodes: u32, lease_us: u64, pages: u64) -> ClusterSim {
    let mut cfg = ClusterConfig::new(nodes);
    cfg.pin_on_post = true;
    cfg.record_log = true;
    cfg.node_bytes = 1 << 19;
    cfg.health.lease = SimTime::from_us(lease_us);
    let mut sim = ClusterSim::new(cfg);
    for node in 0..nodes {
        sim.grant(node, ASID, VirtAddr::new(DST_VA), pages, Perms::READ_WRITE).unwrap();
    }
    sim
}

/// A frame launched into the downtime window arrives *after* the
/// reboot, stamped for incarnation 0 of a node now at incarnation 1: it
/// must be fenced. The rebooted node's Hello then restarts the transfer
/// into the new epoch and it completes into the replayed grant.
#[test]
fn stale_incarnation_frames_are_fenced_and_the_transfer_recovers() {
    let mut sim = cluster(2, 2000, 8);
    // Node 1 dies at 100 µs and reboots at 150 µs.
    sim.inject_crash(CrashPlan::crash(1, SimTime::from_us(100), SimTime::from_us(50)));
    // Launch just before the reboot: ~36 µs of wire time lands the frame
    // well after it, carrying the stale destination incarnation.
    let id = sim.post(0, 1, ASID, VirtAddr::new(DST_VA), 512, SimTime::from_us(149));
    sim.run();

    let stats = sim.crash_stats(1);
    assert_eq!(stats.crashes, 1, "{stats:?}");
    assert_eq!(stats.reboots, 1, "{stats:?}");
    assert!(stats.fenced >= 1, "the pre-reboot frame must be fenced: {stats:?}");
    assert!(stats.regrants >= 1, "the reboot must replay the grant ledger: {stats:?}");
    assert_eq!(sim.node_incarnation(1), 1);

    // The Hello broadcast restarted the transfer from byte zero into
    // incarnation 1; the payload landed whole in the *fresh* memory.
    assert_eq!(sim.xfer(id).state, XferState::Complete);
    let pa = sim.probe(1, ASID, VirtAddr::new(DST_VA)).expect("replayed grant translates");
    let mut got = vec![0u8; 512];
    sim.read_mem(1, pa, &mut got).unwrap();
    assert_eq!(got, ClusterSim::expected_payload(id, 512), "deposit diverged from the payload");
}

/// A destination that crashes mid-stream and never returns: the
/// in-flight transfer ends `NodeDown` with exactly its in-order acked
/// prefix in remote memory, the detector concludes `Down`, and a post
/// launched after detection fails fast without one frame on the wire.
#[test]
fn dead_destination_fails_fast_with_exactly_the_acked_prefix() {
    // Two page-sized chunks; at 155 Mb/s each spends ~433 µs on the
    // wire, so chunk 1 acks near 443 µs and chunk 2 lands near 876 µs.
    const LEN: u64 = 2 * PAGE_SIZE;
    let mut sim = cluster(2, 200, 8);
    // Die between chunk 1's ack and chunk 2's arrival: the victim
    // swallows chunk 2, and three missed leases conclude `Down`.
    sim.inject_crash(CrashPlan::crash_forever(1, SimTime::from_us(600)));
    let id = sim.post(0, 1, ASID, VirtAddr::new(DST_VA), LEN, SimTime::ZERO);
    let late = sim.post(0, 1, ASID, VirtAddr::new(DST_VA), 256, SimTime::from_us(50_000));
    sim.run();

    let x = sim.xfer(id);
    assert_eq!(x.state, XferState::NodeDown);
    let moved = x.counters.moved;
    assert!(moved > 0 && moved < LEN, "crash mid-stream should leave a partial prefix: {moved}");
    assert_eq!(moved % PAGE_SIZE, 0, "go-back-N acks whole in-order chunks: {moved}");

    // The prefix is byte-exact; the node died before a reboot could
    // zero it, so the image is inspectable.
    let pa = sim.probe(1, ASID, VirtAddr::new(DST_VA)).unwrap();
    let mut got = vec![0u8; LEN as usize];
    sim.read_mem(1, pa, &mut got).unwrap();
    let want = ClusterSim::expected_payload(id, LEN);
    assert_eq!(&got[..moved as usize], &want[..moved as usize], "prefix not in order");
    assert!(
        got[moved as usize..].iter().all(|&b| b == 0),
        "bytes beyond the acked prefix reached memory"
    );

    assert_eq!(sim.node_health(0, 1), HealthState::Down);
    let late_x = sim.xfer(late);
    assert_eq!(late_x.state, XferState::NodeDown, "post after detection must fail fast");
    assert_eq!(late_x.counters.moved, 0);
    assert_eq!(late_x.counters.wire_bytes, 0, "fail fast means zero wire traffic");
    assert_eq!(late_x.counters.launches, 0);
}

/// The zero-delta pin: with no [`CrashPlan`] injected, the fault domain
/// is never armed — no lease, probe, crash or fence event exists in the
/// log, and every crash/health counter and incarnation is zero.
#[test]
fn no_injected_plan_means_a_crash_free_bit_identical_world() {
    let mut sim = cluster(3, 100, 8);
    let id = sim.post(0, 1, ASID, VirtAddr::new(DST_VA), 2048, SimTime::ZERO);
    sim.post(2, 0, ASID, VirtAddr::new(DST_VA), 4096, SimTime::from_us(5));
    sim.run();
    assert_eq!(sim.xfer(id).state, XferState::Complete);

    let digest = sim.digest();
    for n in &digest.nodes {
        assert_eq!(n.crash, CrashStats::default(), "node {}", n.node);
        assert_eq!(n.health, HealthStats::default(), "node {}", n.node);
        assert_eq!(n.inc, 0, "node {}", n.node);
    }
    for line in &digest.log {
        let what = line.to_string();
        assert!(
            !what.contains("lease") && !what.contains("probe") && !what.contains("fenced"),
            "fault-domain event in a crash-free run: {what}"
        );
    }
}

props! {
    config(cases = 24);

    /// Random workloads under random crash plans: every transfer settles
    /// terminal, its reported `moved` is an in-order byte-exact prefix
    /// of the payload (checked in memory wherever the destination never
    /// lost its RAM), and 2- and 4-shard parallel runs replay the
    /// sequential oracle digest exactly.
    fn random_crash_plans_preserve_prefixes_and_determinism(
        raw_posts in vec((0u64..6, 1u64..6, 1u64..3 * PAGE_SIZE, 0u64..250), 1..8),
        raw_plans in vec((0u64..6, 0u64..4, 0u64..300, 10u64..200), 1..4),
    ) {
        const NODES: u32 = 6;
        let build = |shards: usize, runner: RunnerKind| {
            let mut cfg = ClusterConfig::new(NODES);
            cfg.shards = shards;
            cfg.runner = runner;
            cfg.pin_on_post = true;
            cfg.record_log = true;
            cfg.node_bytes = 1 << 19;
            cfg.health.lease = SimTime::from_us(120);
            let mut sim = ClusterSim::new(cfg);
            for node in 0..NODES {
                // Room for 8 posts × 3 pages of disjoint ranges.
                sim.grant(node, ASID, VirtAddr::new(DST_VA), 24, Perms::READ_WRITE).unwrap();
            }
            for (i, &(src, hop, len, at)) in raw_posts.iter().enumerate() {
                let src = (src % u64::from(NODES)) as u32;
                let dst = (src + hop as u32) % NODES;
                let va = DST_VA + i as u64 * 3 * PAGE_SIZE;
                sim.post(src, dst, ASID, VirtAddr::new(va), len, SimTime::from_us(at));
            }
            for &(node, kind, at, dur) in &raw_plans {
                let node = (node % u64::from(NODES)) as u32;
                let (at, dur) = (SimTime::from_us(at), SimTime::from_us(dur));
                sim.inject_crash(match kind % 4 {
                    0 => CrashPlan::crash(node, at, dur),
                    1 => CrashPlan::hang(node, at, dur),
                    2 => CrashPlan::stall(node, at, dur),
                    _ => CrashPlan::crash_forever(node, at),
                });
            }
            sim.run();
            sim
        };

        // Reconstruct each post's XferId (per-source index order).
        let mut next_index = [0u32; 6];
        let mut posts = Vec::new();
        for (i, &(src, hop, len, _)) in raw_posts.iter().enumerate() {
            let src = (src % u64::from(NODES)) as u32;
            let dst = (src + hop as u32) % NODES;
            let id = XferId { node: src, index: next_index[src as usize] };
            next_index[src as usize] += 1;
            posts.push((id, dst, DST_VA + i as u64 * 3 * PAGE_SIZE, len));
        }

        let mut oracle = build(1, RunnerKind::Sequential);
        let expect = oracle.digest();
        for &(id, dst, va, len) in &posts {
            let x = expect.xfers.iter().find(|x| x.id == id).expect("digest carries every post");
            prop_assert!(x.state.terminal(), "{id} never settled: {:?}", x.state);
            let moved = x.counters.moved;
            prop_assert!(moved <= len, "{id} over-reported: {moved} > {len}");
            if x.state == XferState::Complete {
                prop_assert_eq!(moved, len, "{id} complete but short");
            }
            // Byte-exact prefix check wherever the destination's RAM
            // survived (a reboot zeroes it; `moved` stays honest — the
            // bytes were delivered before the crash).
            if expect.nodes[dst as usize].crash.crashes == 0 && moved > 0 {
                let pa = oracle.probe(dst, ASID, VirtAddr::new(va)).expect("pinned grant");
                let mut got = vec![0u8; moved as usize];
                oracle.read_mem(dst, pa, &mut got).unwrap();
                let want = ClusterSim::expected_payload(id, len);
                prop_assert_eq!(
                    &got[..], &want[..moved as usize],
                    "{} delivered an out-of-order prefix", id
                );
            }
        }
        for shards in [2usize, 4] {
            let sharded = build(shards, RunnerKind::Parallel);
            if let Some(diff) = expect.diff(&sharded.digest()) {
                prop_assert!(
                    false,
                    "{}-shard parallel run diverged from the sequential oracle:\n{}",
                    shards, diff
                );
            }
        }
    }
}

/// Exhaustive exploration of the crash-timing race: every relative
/// timing of {post, crash} on a 70 µs grid spanning the whole transfer
/// (before launch, between chunks, after the last ack) must settle
/// safely and replay identically on the 2-shard parallel runner.
#[test]
fn crash_timing_race_is_exhaustively_deterministic() {
    const LEN: u64 = 4 * 1024;
    let build = |post_us: u64, crash_us: u64, shards: usize, runner: RunnerKind| {
        let mut cfg = ClusterConfig::new(4);
        cfg.shards = shards;
        cfg.runner = runner;
        cfg.pin_on_post = true;
        cfg.record_log = true;
        cfg.node_bytes = 1 << 18;
        cfg.health.lease = SimTime::from_us(100);
        let mut sim = ClusterSim::new(cfg);
        for node in 0..4 {
            sim.grant(node, ASID, VirtAddr::new(DST_VA), 8, Perms::READ_WRITE).unwrap();
        }
        sim.post(0, 1, ASID, VirtAddr::new(DST_VA), LEN, SimTime::from_us(post_us));
        sim.inject_crash(CrashPlan::crash(
            1,
            SimTime::from_us(40 + crash_us),
            SimTime::from_us(120),
        ));
        sim.run();
        sim
    };
    // Schedule space: each contender's first step sets its timing on
    // the grid — C(6,3) = 20 relative timings, fully enumerable.
    let exploration = explore(&[3, 3], Budget::new(64, 0x19F), |schedule| {
        let first = |thread: usize| {
            schedule.iter().position(|&t| t == thread).expect("3 steps each") as u64
        };
        let (post_us, crash_us) = (first(0) * 70, first(1) * 70);
        let oracle = build(post_us, crash_us, 1, RunnerKind::Sequential);
        let expect = oracle.digest();
        let x = &expect.xfers[0];
        if !x.state.terminal() {
            return Some(format!("unsettled at ({post_us}, {crash_us}): {:?}", x.state));
        }
        if x.counters.moved > LEN {
            return Some(format!("over-delivery at ({post_us}, {crash_us})"));
        }
        let sharded = build(post_us, crash_us, 2, RunnerKind::Parallel);
        expect
            .diff(&sharded.digest())
            .map(|d| format!("divergence at ({post_us}, {crash_us}):\n{d}"))
    });
    assert!(exploration.exhaustive, "20-timing space must be exhaustively explored");
    assert!(
        exploration.safe(),
        "crash-timing race broke safety or determinism:\n{}",
        exploration
            .findings
            .iter()
            .map(|(s, d)| format!("schedule {s:?}: {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// ---------------------------------------------------------------------
// Machine world: the same fault domain on the single-machine `Cluster`.
// ---------------------------------------------------------------------

const RNODE: u32 = 0;

fn remote_machine() -> Machine {
    Machine::new(MachineConfig {
        virt_dma: Some(VirtDmaSetup::default()),
        remote_nodes: 1,
        remote_node_bytes: 1 << 20,
        ..MachineConfig::new(DmaMethod::Kernel)
    })
}

/// Machine-world crash lifecycle: detection concludes `NodeDown` (not a
/// link failure), posts fail fast while `Down`, the reboot bumps the
/// incarnation and replays the grant ledger, a probe moves the detector
/// to `Recovering`, and service is restored end to end.
#[test]
fn machine_world_crash_detection_failfast_and_recovery() {
    let mut m = remote_machine();
    let pid = m.spawn(&ProcessSpec::two_buffers_of(4), |_| ProgramBuilder::new().halt().build());
    m.grant_remote_buffer(RNODE, ASID, VirtAddr::new(DST_VA), 4, Perms::READ_WRITE);
    let src = m.env(pid).buffer(0).va;
    let src_frame = m.env(pid).buffer(0).first_frame;
    let data: Vec<u8> = (0..2 * PAGE_SIZE).map(|i| (i * 7 + 3) as u8).collect();
    m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();

    // Healthy baseline.
    let ok = m.post_virt_remote(pid, src, RNODE, ASID, VirtAddr::new(DST_VA), PAGE_SIZE).unwrap();
    assert_eq!(m.run_virt(ok, 64), VirtState::Complete);
    assert_eq!(m.node_health(RNODE), HealthState::Up);

    // Crash: pumps miss ACK leases until the detector concludes the
    // *node* (not the link) is gone.
    m.crash_remote_node(RNODE);
    assert!(!m.remote_node_up(RNODE));
    let id =
        m.post_virt_remote(pid, src, RNODE, ASID, VirtAddr::new(DST_VA), 2 * PAGE_SIZE).unwrap();
    assert_eq!(m.run_virt(id, 64), VirtState::NodeDown);
    assert_eq!(m.node_health(RNODE), HealthState::Down);

    // Degraded mode: fail fast at post time, zero wire traffic wasted.
    assert_eq!(
        m.post_virt_remote(pid, src, RNODE, ASID, VirtAddr::new(DST_VA), PAGE_SIZE),
        Err(RejectReason::NodeDown)
    );

    // Reboot: new incarnation, fresh volatile state, the grant ledger
    // replayed so peers' handles still translate.
    let inc = m.reboot_remote_node(RNODE);
    assert_eq!(inc, 1);
    assert_eq!(m.remote_node_incarnation(RNODE), 1);
    let cs = m.remote_crash_stats(RNODE);
    assert_eq!((cs.crashes, cs.reboots), (1, 1), "{cs:?}");
    assert!(cs.regrants >= 1, "reboot must replay the grant ledger: {cs:?}");

    // Probe answers: Down → Recovering; the next transfer completes and
    // confirms Up.
    let (state, advanced) = m.probe_remote_node(RNODE);
    assert!(advanced, "the probe must report the epoch advance of the reboot");
    assert_eq!(state, HealthState::Recovering);
    let again =
        m.post_virt_remote(pid, src, RNODE, ASID, VirtAddr::new(DST_VA), 2 * PAGE_SIZE).unwrap();
    assert_eq!(m.run_virt(again, 64), VirtState::Complete);
    assert_eq!(m.node_health(RNODE), HealthState::Up);
    assert!(m.node_health_stats().recoveries >= 1);
}

/// An NI-engine hang is detected like a crash but recovers in place: no
/// incarnation bump, no ledger replay — the same epoch resumes service
/// after the unhang.
#[test]
fn machine_world_hang_recovers_without_a_new_incarnation() {
    let mut m = remote_machine();
    let pid = m.spawn(&ProcessSpec::two_buffers_of(4), |_| ProgramBuilder::new().halt().build());
    m.grant_remote_buffer(RNODE, ASID, VirtAddr::new(DST_VA), 4, Perms::READ_WRITE);
    let src = m.env(pid).buffer(0).va;
    let src_frame = m.env(pid).buffer(0).first_frame;
    m.memory().borrow_mut().write_bytes(src_frame.base(), &[0xC5; 512]).unwrap();

    m.hang_remote_node(RNODE);
    assert!(!m.remote_node_up(RNODE), "a hung NI is unresponsive");
    let id = m.post_virt_remote(pid, src, RNODE, ASID, VirtAddr::new(DST_VA), 512).unwrap();
    assert_eq!(m.run_virt(id, 64), VirtState::NodeDown);
    assert_eq!(m.node_health(RNODE), HealthState::Down);

    m.unhang_remote_node(RNODE);
    let (state, advanced) = m.probe_remote_node(RNODE);
    assert_eq!(state, HealthState::Recovering);
    assert!(!advanced, "a hang must not look like a reboot to the prober");
    // Same life: nothing was lost, nothing replays.
    assert_eq!(m.remote_node_incarnation(RNODE), 0);
    let cs = m.remote_crash_stats(RNODE);
    assert_eq!(cs.reboots, 0, "{cs:?}");
    assert_eq!(cs.regrants, 0, "{cs:?}");

    let again = m.post_virt_remote(pid, src, RNODE, ASID, VirtAddr::new(DST_VA), 512).unwrap();
    assert_eq!(m.run_virt(again, 64), VirtState::Complete);
    assert_eq!(m.node_health(RNODE), HealthState::Up);
}
