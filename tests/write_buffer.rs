//! The footnote-6 hazard: write buffers collapse repeated same-address
//! stores, and memory barriers are what keep the repeated-passing
//! protocol's accesses visible to the engine (§3.4: "a memory barrier was
//! used to make sure that repeated accesses to the same address were not
//! collapsed in (or serviced by) the write buffer").

use udma::{emit_dma_once, DmaMethod, DmaRequest, Machine, MachineConfig, ProcessSpec};
use udma_bus::WriteBufferPolicy;
use udma_cpu::{ProgramBuilder, Reg};
use udma_nic::DMA_FAILURE;

#[test]
fn back_to_back_stores_to_one_shadow_address_collapse() {
    let mut m = Machine::with_method(DmaMethod::Repeated5);
    m.spawn(&ProcessSpec::two_buffers(), |env| {
        let dst = env.shadow_of(env.buffer(1).va).as_u64();
        // Two stores, no barrier, then a barrier to drain.
        ProgramBuilder::new().store(dst, 64u64).store(dst, 64u64).mb().halt().build()
    });
    m.run(1_000);
    // The engine saw ONE store: the second was merged in the buffer.
    assert_eq!(m.bus().stats().device_writes, 1);
    assert_eq!(m.executor().write_buffer().collapsed_count(), 1);
}

#[test]
fn barriers_make_both_stores_visible() {
    let mut m = Machine::with_method(DmaMethod::Repeated5);
    m.spawn(&ProcessSpec::two_buffers(), |env| {
        let dst = env.shadow_of(env.buffer(1).va).as_u64();
        ProgramBuilder::new().store(dst, 64u64).mb().store(dst, 64u64).mb().halt().build()
    });
    m.run(1_000);
    assert_eq!(m.bus().stats().device_writes, 2);
    assert_eq!(m.executor().write_buffer().collapsed_count(), 0);
}

#[test]
fn ram_loads_can_be_serviced_by_the_buffer_device_loads_cannot() {
    let mut m = Machine::with_method(DmaMethod::Repeated5);
    m.spawn(&ProcessSpec::two_buffers(), |env| {
        let data = env.buffer(0).va.as_u64();
        ProgramBuilder::new()
            .store(data, 0xAAu64)
            .load(Reg::R1, data) // forwarded: no bus read
            .halt()
            .build()
    });
    m.run(1_000);
    assert_eq!(m.executor().write_buffer().serviced_count(), 1);
    assert_eq!(m.bus().stats().ram_reads, 0);
}

#[test]
fn five_instruction_protocol_fails_when_collapsing_eats_an_access() {
    // An (incorrect) variant without the intermediate source loads: two
    // adjacent stores collapse, the engine never sees a 5-sequence, and
    // the final status load reports failure. This is exactly the bug the
    // paper's barriers prevent.
    let mut m = Machine::with_method(DmaMethod::Repeated5);
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let dst = env.shadow_of(env.buffer(1).va).as_u64();
        let src = env.shadow_of(env.buffer(0).va).as_u64();
        ProgramBuilder::new()
            .store(dst, 64u64)
            .store(dst, 64u64) // collapses into the first
            .load(Reg::R4, src)
            .load(Reg::R4, src)
            .load(Reg::R0, dst)
            .halt()
            .build()
    });
    m.run(1_000);
    assert_eq!(m.reg(pid, Reg::R0), DMA_FAILURE);
    assert_eq!(m.engine().core().stats().started, 0);
}

#[test]
fn disabled_write_buffer_still_runs_every_method_correctly() {
    // Ablation: with a pass-through buffer (no collapsing, no
    // forwarding), all protocols behave identically — the buffer is a
    // performance artefact, not a correctness dependency.
    for method in [DmaMethod::KeyBased, DmaMethod::ExtShadow, DmaMethod::Repeated5] {
        let mut m = Machine::new(MachineConfig {
            wb_policy: WriteBufferPolicy::disabled(),
            ..MachineConfig::new(method)
        });
        let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
            let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
            emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
        });
        m.run(10_000);
        assert_ne!(m.reg(pid, Reg::R0), DMA_FAILURE, "{method}");
        assert_eq!(m.engine().core().stats().started, 1, "{method}");
    }
}

#[test]
fn collapsing_buffer_does_not_break_the_barriered_figure_7_sequence() {
    // The shipped Repeated5 sequence (with barriers) survives an
    // aggressive 16-entry collapsing buffer.
    let mut m = Machine::new(MachineConfig {
        wb_policy: WriteBufferPolicy { capacity: 16, ..WriteBufferPolicy::default() },
        ..MachineConfig::new(DmaMethod::Repeated5)
    });
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    m.run(10_000);
    assert_ne!(m.reg(pid, Reg::R0), DMA_FAILURE);
    assert_eq!(m.engine().core().stats().started, 1);
}
