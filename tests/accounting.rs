//! Per-process CPU-time attribution.

use udma::{emit_dma_once, DmaMethod, DmaRequest, Machine, ProcessSpec};
use udma_bus::SimTime;
use udma_cpu::{Pid, ProgramBuilder, Reg, RoundRobin};

#[test]
fn kernel_method_time_is_mostly_kernel_time() {
    let mut m = Machine::with_method(DmaMethod::Kernel);
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    m.run(10_000);
    let p = m.executor().process(pid);
    assert!(p.kernel_time > SimTime::from_us(14), "{}", p.kernel_time);
    assert!(p.user_time < SimTime::from_us(2), "{}", p.user_time);
    assert_eq!(p.cpu_time(), p.user_time + p.kernel_time);
}

#[test]
fn user_level_method_time_is_all_user_time() {
    let mut m = Machine::with_method(DmaMethod::ExtShadow);
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    m.run(10_000);
    let p = m.executor().process(pid);
    assert_eq!(p.kernel_time, SimTime::ZERO);
    assert!(p.user_time > SimTime::ZERO);
}

#[test]
fn attributed_time_accounts_for_the_run() {
    // One process, run to completion: attributed time = total time minus
    // the initial-dispatch bookkeeping (which charges nothing here).
    let mut m = Machine::with_method(DmaMethod::KeyBased);
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    m.run(10_000);
    let p = m.executor().process(pid);
    assert_eq!(p.cpu_time(), m.time());
}

#[test]
fn round_robin_shares_time_roughly_equally() {
    let mut m = Machine::with_method(DmaMethod::Kernel);
    for _ in 0..2 {
        m.spawn(&ProcessSpec::default(), |_| {
            let mut b = ProgramBuilder::new();
            for _ in 0..300 {
                b = b.imm(Reg::R1, 1);
            }
            b.halt().build()
        });
    }
    m.run_with(&mut RoundRobin::new(10), 100_000);
    let a = m.executor().process(Pid::new(0)).cpu_time();
    let b = m.executor().process(Pid::new(1)).cpu_time();
    let ratio = a.as_ns() / b.as_ns();
    assert!((0.9..1.1).contains(&ratio), "unfair split: {a} vs {b}");
    // Attributed time excludes the context-switch overhead, so it is
    // strictly less than wall time.
    assert!(a + b < m.time());
}
