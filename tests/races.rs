//! Experiment E3: the §2.5 race — SHRIMP-2 and FLASH mix arguments under
//! an unmodified kernel, and their kernel patches (or PAL execution)
//! eliminate the race. The explorer enumerates *every* interleaving of
//! two honest initiating processes.

use udma::{explore, schedule_space, DmaMethod};
use udma_workloads::{any_violation, illegal_transfer, AdversaryKind, AttackScenario};

fn explore_method(method: DmaMethod) -> udma::ExploreReport<udma_nic::TransferRecord> {
    let s = AttackScenario::new(method, AdversaryKind::OwnInitiation);
    explore(|| s.build(), 5_000, any_violation)
}

#[test]
fn shrimp2_races_under_an_unmodified_kernel() {
    let report = explore_method(DmaMethod::Shrimp2 { patched_kernel: false });
    assert!(report.exhaustive);
    assert!(!report.safe(), "expected the §2.5 race among {} schedules", report.schedules);
    // The violation is argument mixing: the adversary's source landed in
    // the victim's private destination.
    let f = &report.findings[0];
    let victim_dst = {
        let s = AttackScenario::new(
            DmaMethod::Shrimp2 { patched_kernel: false },
            AdversaryKind::OwnInitiation,
        );
        let m = s.build();
        m.env(udma_workloads::VICTIM).buffer(1).first_frame
    };
    assert_eq!(f.detail.dst.page(), victim_dst);
}

#[test]
fn shrimp_kernel_patch_closes_the_race() {
    let report = explore_method(DmaMethod::Shrimp2 { patched_kernel: true });
    assert!(report.exhaustive);
    assert!(
        report.safe(),
        "SHRIMP abort-on-switch must prevent mixing; found {} violations in {} schedules",
        report.findings.len(),
        report.schedules
    );
}

#[test]
fn flash_races_without_its_kernel_patch() {
    let report = explore_method(DmaMethod::Flash { patched_kernel: false });
    assert!(
        !report.safe(),
        "FLASH degrades to the SHRIMP-2 race when the \
        kernel never updates the current-pid register"
    );
}

#[test]
fn flash_kernel_patch_closes_the_race() {
    let report = explore_method(DmaMethod::Flash { patched_kernel: true });
    assert!(report.safe(), "{} violations", report.findings.len());
}

#[test]
fn pal_code_is_safe_without_any_kernel_change() {
    // Same engine protocol as SHRIMP-2, same vanilla kernel — but the
    // two accesses execute inside one uninterruptible PAL call (§2.7).
    let report = explore_method(DmaMethod::Pal);
    assert!(report.exhaustive);
    assert!(report.safe(), "{} violations", report.findings.len());
}

#[test]
fn the_papers_methods_are_race_free_with_vanilla_kernels() {
    for method in [
        DmaMethod::KeyBased,
        DmaMethod::ExtShadow,
        DmaMethod::ExtShadowPairwise,
        DmaMethod::Repeated5,
    ] {
        assert!(method.kernel_free(), "{method}");
        let report = explore_method(method);
        assert!(report.exhaustive, "{method}");
        assert!(
            report.safe(),
            "{method}: {} violations in {} schedules",
            report.findings.len(),
            report.schedules
        );
    }
}

#[test]
fn both_processes_eventually_transfer_in_every_interleaving_for_contexts() {
    // Stronger than safety: for the context-based schemes, *both* honest
    // processes' transfers complete correctly under every interleaving.
    for method in [DmaMethod::KeyBased, DmaMethod::ExtShadow] {
        let s = AttackScenario::new(method, AdversaryKind::OwnInitiation);
        let report = explore(
            || s.build(),
            5_000,
            |m| {
                let venv = m.env(udma_workloads::VICTIM);
                let aenv = m.env(udma_workloads::ADVERSARY);
                let transfers = m.transfers();
                let victim_ok = transfers.iter().any(|r| {
                    r.src.page() == venv.buffer(0).first_frame
                        && r.dst.page() == venv.buffer(1).first_frame
                });
                // The "adversary" here is honest: src buffer 1 → dst 0.
                let adv_ok = transfers.iter().any(|r| {
                    r.src.page() == aenv.buffer(1).first_frame
                        && r.dst.page() == aenv.buffer(0).first_frame
                });
                if victim_ok && adv_ok && transfers.len() == 2 {
                    None
                } else {
                    Some(transfers.len() as u64)
                }
            },
        );
        assert!(
            report.safe(),
            "{method}: some interleaving lost a transfer ({} findings)",
            report.findings.len()
        );
    }
}

#[test]
fn schedule_spaces_match_the_multinomials() {
    let s = AttackScenario::new(
        DmaMethod::Shrimp2 { patched_kernel: false },
        AdversaryKind::OwnInitiation,
    );
    // Victim: store, load, halt = 3; adversary: 3 → C(6,3) = 20.
    assert_eq!(schedule_space(|| s.build()), 20);
    let report = explore_method(DmaMethod::Shrimp2 { patched_kernel: false });
    assert_eq!(report.schedules, 20);
}

#[test]
fn pairwise_ext_shadow_refuses_mixed_pairs_instead_of_mixing() {
    // The context-less §3.2 variant: an interleaved store/load pair from
    // two processes is *detected* (CtxMismatch) — both processes fail and
    // must retry, but no wrong transfer ever starts.
    let s = AttackScenario::new(DmaMethod::ExtShadowPairwise, AdversaryKind::OwnInitiation);
    let report = explore(|| s.build(), 5_000, any_violation);
    assert!(report.safe(), "{} violations", report.findings.len());
    // At least one schedule must actually hit the mismatch path.
    let mut mismatches_seen = false;
    let lens = 20; // victim 3 instrs × adversary 3 instrs → 20 schedules
    let _ = lens;
    for inter in udma_cpu::interleavings(&[3, 3]) {
        let mut m = s.build();
        let schedule: Vec<udma_cpu::Pid> =
            inter.iter().map(|&i| udma_cpu::Pid::new(i as u32)).collect();
        m.run_with(&mut udma_cpu::FixedSchedule::new(schedule), 5_000);
        if m.engine().core().stats().rejected_for(udma_nic::RejectReason::CtxMismatch) > 0 {
            mismatches_seen = true;
        }
    }
    assert!(mismatches_seen, "no schedule exercised the pairwise check");
}

#[test]
fn pairwise_retry_loop_recovers_liveness() {
    use udma::{emit_dma, DmaRequest, Machine, ProcessSpec};
    use udma_cpu::{ProgramBuilder, RandomPreempt};
    for seed in 0..10u64 {
        let mut m = Machine::with_method(DmaMethod::ExtShadowPairwise);
        let mut pids = Vec::new();
        for _ in 0..2 {
            pids.push(m.spawn(&ProcessSpec::two_buffers(), |env| {
                let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
                let mut uniq = 0;
                emit_dma(env, ProgramBuilder::new(), &req, &mut uniq).halt().build()
            }));
        }
        let out = m.run_with(&mut RandomPreempt::new(seed, 0.4), 100_000);
        assert!(out.finished, "seed {seed}: pairwise retry livelocked");
        for &pid in &pids {
            assert_ne!(m.reg(pid, udma_cpu::Reg::R0), udma_nic::DMA_FAILURE, "seed {seed}");
        }
        assert_eq!(m.engine().core().stats().started, 2, "seed {seed}");
    }
}

#[test]
fn illegal_transfer_predicate_ignores_correct_runs() {
    let s = AttackScenario::new(DmaMethod::KeyBased, AdversaryKind::OwnInitiation);
    let mut m = s.build();
    m.run(10_000); // run-to-completion: no interleaving at all
    assert!(illegal_transfer(&m).is_none());
}
