//! End-to-end virtual-address DMA: demand paging, pin-on-post
//! registration, fault handling mid-transfer, swap interactions, the
//! protection property, and interleaving coverage of the fault-pause
//! vs context-switch race.

use udma::{
    emit_virt_dma, explore, DmaMethod, Machine, MachineConfig, ProcessSpec, SwapRefused,
    VirtDmaSetup,
};
use udma_bus::SimTime;
use udma_cpu::{Pid, ProcState, ProgramBuilder, Reg};
use udma_iommu::IotlbConfig;
use udma_mem::{VirtAddr, PAGE_SIZE};
use udma_nic::{Initiator, PrefetchConfig, VirtState, DMA_FAILURE};
use udma_testkit::{prop_assert, prop_assert_eq, props};

fn va_machine(setup: VirtDmaSetup) -> Machine {
    Machine::new(MachineConfig { virt_dma: Some(setup), ..MachineConfig::new(DmaMethod::Kernel) })
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 11 + 7) as u8).collect()
}

/// A VA nothing maps (buffers live at much lower addresses).
const WILD_VA: u64 = 0x5000_0000;

#[test]
fn demand_paging_transfer_completes_after_fault_service() {
    let mut m = va_machine(VirtDmaSetup::default());
    let pid = m.spawn(&ProcessSpec::two_buffers_of(2), |env| {
        emit_virt_dma(env, ProgramBuilder::new(), env.buffer(0).va, env.buffer(1).va, 2 * PAGE_SIZE)
            .halt()
            .build()
    });
    let src_frame = m.env(pid).buffer(0).first_frame;
    let dst_frame = m.env(pid).buffer(1).first_frame;
    let data = payload(2 * PAGE_SIZE as usize);
    m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();

    // The program posts through its context page; the empty I/O page
    // table makes the very first chunk fault, pausing the transfer.
    m.run(10_000);
    assert_eq!(m.state(pid), ProcState::Halted);
    assert_eq!(m.engine().core().virt_stats().posted, 1);
    assert!(matches!(m.virt_xfer(0).unwrap().state, VirtState::Faulted(_)));

    // The OS fault service maps-and-pins page by page; the engine
    // resumes each time and finishes the whole two-page transfer.
    assert_eq!(m.run_virt(0, 64), VirtState::Complete);
    let mut got = vec![0u8; data.len()];
    m.memory().borrow().read_bytes(dst_frame.base(), &mut got).unwrap();
    assert_eq!(got, data, "demand-paged transfer data mismatch");

    // Two pages on each side faulted exactly once.
    assert_eq!(m.engine().core().virt_stats().faults, 4);
    assert_eq!(m.fault_service().stats().mapped, 4);
}

#[test]
fn pin_on_post_transfers_never_fault() {
    let mut m = va_machine(VirtDmaSetup::pin_on_post(IotlbConfig::default()));
    let pid = m.spawn(&ProcessSpec::two_buffers_of(2), |env| {
        emit_virt_dma(env, ProgramBuilder::new(), env.buffer(0).va, env.buffer(1).va, 2 * PAGE_SIZE)
            .halt()
            .build()
    });
    let src_frame = m.env(pid).buffer(0).first_frame;
    let dst_frame = m.env(pid).buffer(1).first_frame;
    let data = payload(2 * PAGE_SIZE as usize);
    m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();

    m.run(10_000);
    assert_ne!(m.reg(pid, Reg::R0), DMA_FAILURE);
    // Registration at spawn pinned every buffer page: the multi-page
    // transfer streamed through without a single I/O fault.
    assert_eq!(m.virt_xfer(0).unwrap().state, VirtState::Complete);
    assert_eq!(m.engine().core().virt_stats().faults, 0);
    let mut got = vec![0u8; data.len()];
    m.memory().borrow().read_bytes(dst_frame.base(), &mut got).unwrap();
    assert_eq!(got, data, "pinned transfer data mismatch");
}

#[test]
fn unresolvable_fault_fails_cleanly() {
    let mut m = va_machine(VirtDmaSetup::default());
    let pid = m.spawn(&ProcessSpec::two_buffers_of(1), |_| ProgramBuilder::new().halt().build());
    let dst = m.env(pid).buffer(1).va;
    let id = m.post_virt(pid, VirtAddr::new(WILD_VA), dst, 64).unwrap();
    assert!(matches!(m.run_virt(id, 16), VirtState::Failed(_)));
    assert_eq!(m.engine().core().virt_stats().failed, 1);
    assert_eq!(m.fault_service().stats().unresolvable, 1);
    // Status reads as the paper's -1 and the destination was never
    // touched.
    let now = m.time();
    assert_eq!(m.engine().core_mut().virt_status(id, now), DMA_FAILURE);
    let dst_frame = m.env(pid).buffer(1).first_frame;
    assert_eq!(m.memory().borrow().read_u64(dst_frame.base()).unwrap(), 0);
}

#[test]
fn retry_budget_exhausts_to_failure_without_os_service() {
    let mut m = va_machine(VirtDmaSetup::default());
    let pid = m.spawn(&ProcessSpec::two_buffers_of(1), |_| ProgramBuilder::new().halt().build());
    let (src, dst) = (m.env(pid).buffer(0).va, m.env(pid).buffer(1).va);
    let id = m.post_virt(pid, src, dst, 64).unwrap();
    let max_retries = m.engine().core().virt_config().retry.max_retries;

    // Model a lost fault: the OS never services it, the engine retries
    // on its own with bounded backoff until the budget runs out.
    let mut resumes = 0;
    loop {
        let state = {
            let mut core = m.engine().core_mut();
            core.pop_fault();
            core.resume_virt(id, SimTime::ZERO)
        };
        resumes += 1;
        if matches!(state, VirtState::Failed(_)) {
            break;
        }
        assert!(resumes < 32, "retry budget never exhausted");
    }
    assert_eq!(resumes, max_retries as u64 + 1);
    let now = m.time();
    assert_eq!(m.engine().core_mut().virt_status(id, now), DMA_FAILURE);
    // Nothing moved: the first page never resolved.
    assert_eq!(m.virt_xfer(id).unwrap().moved, 0);
}

#[test]
fn swapped_out_page_is_paged_back_in_mid_transfer() {
    let mut m = va_machine(VirtDmaSetup::default());
    let pid = m.spawn(&ProcessSpec::two_buffers_of(1), |_| ProgramBuilder::new().halt().build());
    let (src, dst) = (m.env(pid).buffer(0).va, m.env(pid).buffer(1).va);
    let src_frame = m.env(pid).buffer(0).first_frame;
    m.memory().borrow_mut().write_u64(src_frame.base(), 0xFEED_BEEF).unwrap();

    // The swapper takes the source page while no transfer holds it.
    m.swap_out_va(pid, src).unwrap();

    let id = m.post_virt(pid, src, dst, 64).unwrap();
    assert_eq!(m.run_virt(id, 16), VirtState::Complete);
    // The fault service paid the swap-in cost, not just a mapping.
    assert_eq!(m.fault_service().stats().swapped_in, 1);
    let dst_frame = m.env(pid).buffer(1).first_frame;
    assert_eq!(m.memory().borrow().read_u64(dst_frame.base()).unwrap(), 0xFEED_BEEF);
}

#[test]
fn pinned_pages_refuse_swap_out() {
    let mut m = va_machine(VirtDmaSetup::default());
    let pid = m.spawn(&ProcessSpec::two_buffers_of(1), |_| ProgramBuilder::new().halt().build());
    let (src, dst) = (m.env(pid).buffer(0).va, m.env(pid).buffer(1).va);
    let id = m.post_virt(pid, src, dst, 64).unwrap();
    assert_eq!(m.run_virt(id, 16), VirtState::Complete);
    // Demand faulting pinned both pages; the swapper must leave them.
    assert_eq!(m.swap_out_va(pid, src), Err(SwapRefused::Pinned));
    assert_eq!(m.swap_out_va(pid, dst), Err(SwapRefused::Pinned));
    // And a VA that was never mapped has nothing to take.
    assert_eq!(m.swap_out_va(pid, VirtAddr::new(WILD_VA)), Err(SwapRefused::NotMapped));
}

/// Runs one `pages`-page registered transfer on a cold `entries`-entry
/// IOTLB under the given pipeline config; returns (machine, xfer id).
fn pinned_transfer(prefetch: PrefetchConfig, entries: usize, pages: u64) -> (Machine, usize) {
    let mut setup = VirtDmaSetup::pin_on_post(IotlbConfig::fully_associative(entries));
    setup.virt.prefetch = prefetch;
    let mut m = va_machine(setup);
    let pid =
        m.spawn(&ProcessSpec::two_buffers_of(pages), |_| ProgramBuilder::new().halt().build());
    let (src, dst) = (m.env(pid).buffer(0).va, m.env(pid).buffer(1).va);
    let src_frame = m.env(pid).buffer(0).first_frame;
    let data = payload((pages * PAGE_SIZE) as usize);
    m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();
    let id = m.post_virt(pid, src, dst, pages * PAGE_SIZE).unwrap();
    assert_eq!(m.run_virt(id, (4 * pages + 16) as u32), VirtState::Complete);
    let dst_frame = m.env(pid).buffer(1).first_frame;
    let mut got = vec![0u8; data.len()];
    m.memory().borrow().read_bytes(dst_frame.base(), &mut got).unwrap();
    assert_eq!(got, data, "transfer data mismatch");
    (m, id)
}

/// Tentpole acceptance (local half): on a cold IOTLB, prewalk batches
/// replace the per-miss blocking walks of the demand path — strictly
/// less translation stall for byte-identical output — and coalescing
/// merges contiguous prewalked pages into fewer mover chunks.
#[test]
fn prefetch_strictly_reduces_translation_stall_on_a_cold_iotlb() {
    const PAGES: u64 = 8;
    let (demand, d_id) = pinned_transfer(PrefetchConfig::default(), 16, PAGES);
    let (pref, p_id) = pinned_transfer(PrefetchConfig::depth(4), 16, PAGES);
    let (piped, c_id) = pinned_transfer(PrefetchConfig::pipelined(4, 4), 16, PAGES);

    let d = demand.virt_xfer(d_id).unwrap();
    let p = pref.virt_xfer(p_id).unwrap();
    let c = piped.virt_xfer(c_id).unwrap();
    assert!(p.stall < d.stall, "prefetch stall {:?} not < demand stall {:?}", p.stall, d.stall);
    assert!(c.stall < d.stall);

    // Fewer blocking walks: every demand lookup lands on a prewalked
    // entry, so the IOTLB records no demand-path misses at all.
    let d_stats = demand.engine().core().iommu().unwrap().stats();
    let p_stats = pref.engine().core().iommu().unwrap().stats();
    assert_eq!(d_stats.tlb.misses, 2 * PAGES, "demand path walks every page of both ranges");
    assert_eq!(p_stats.tlb.misses, 0, "prewalk leaves no blocking walks");
    assert_eq!(p_stats.prefetch_hidden, 2 * PAGES);

    // Coalescing shrinks the chunk count; the pipeline never slows the
    // transfer down.
    assert!(piped.engine().core().virt_stats().chunks < pref.engine().core().virt_stats().chunks);
    let done = |t: &udma_nic::VirtTransfer| t.finished.unwrap() - t.started;
    assert!(done(&p) < done(&d));
    assert!(done(&c) <= done(&p));
}

props! {
    config(cases = 48);

    /// Acceptance property: no virtual-address transfer ever reaches a
    /// frame the posting context's page table does not map — whatever
    /// mix of mapped, second-page and wild addresses is posted, and with
    /// a second process's frames sitting right next door.
    fn va_transfers_stay_inside_the_posting_context(
        src_pick in 0u32..4,
        dst_pick in 0u32..4,
        off_words in 0u64..64,
        size_words in 1u64..64,
    ) {
        let mut m = va_machine(VirtDmaSetup::default());
        let a = m.spawn(&ProcessSpec::two_buffers_of(2), |_| {
            ProgramBuilder::new().halt().build()
        });
        let b = m.spawn(&ProcessSpec::two_buffers_of(2), |_| {
            ProgramBuilder::new().halt().build()
        });
        let off = off_words * 8;
        let size = size_words * 8;
        let pick = |k: u32| match k {
            0 => m.env(a).buffer(0).va + off,
            1 => m.env(a).buffer(1).va + off,
            2 => m.env(a).buffer(0).va + PAGE_SIZE + off,
            _ => VirtAddr::new(WILD_VA + off),
        };
        // Seed A's frames so any leak into B would be visible.
        for i in 0..2 {
            let f = m.env(a).buffer(i).first_frame;
            let fill = vec![0xA5u8; (2 * PAGE_SIZE) as usize];
            m.memory().borrow_mut().write_bytes(f.base(), &fill).unwrap();
        }

        let id = m.post_virt(a, pick(src_pick), pick(dst_pick), size).unwrap();
        let state = m.run_virt(id, 64);
        prop_assert!(
            matches!(state, VirtState::Complete | VirtState::Failed(_)),
            "transfer not driven to a terminal state: {state:?}"
        );

        // Every chunk the engine actually moved lies inside a frame
        // range process A maps.
        let asid_a = m.env(a).ctx.unwrap().ctx;
        let allowed: Vec<(u64, u64)> = m
            .env(a)
            .buffers
            .iter()
            .map(|buf| (buf.first_frame.base().as_u64(), buf.len()))
            .collect();
        for rec in m.transfers() {
            let Initiator::VirtDma { asid } = rec.initiator else { continue };
            prop_assert_eq!(asid, asid_a);
            for addr in [rec.src, rec.dst] {
                let lo = addr.as_u64();
                prop_assert!(
                    allowed.iter().any(|&(base, len)| lo >= base && lo + rec.size <= base + len),
                    "chunk {lo:#x}+{} outside process A's frames", rec.size
                );
            }
        }
        // B's frames never saw a byte.
        for i in 0..2 {
            let f = m.env(b).buffer(i).first_frame;
            let mut got = vec![0u8; (2 * PAGE_SIZE) as usize];
            m.memory().borrow().read_bytes(f.base(), &mut got).unwrap();
            prop_assert!(got.iter().all(|&x| x == 0), "process B's frames were written");
        }
    }

    /// Tentpole acceptance property: the pipelined engine (prefetch +
    /// coalescing) is byte- and status-identical to the plain
    /// demand-translation engine for every mix of mapped, unmapped and
    /// page-straddling ranges — only simulated time may differ, and for
    /// transfers that complete (lossless, local) it never increases.
    fn pipelined_engine_matches_the_demand_oracle(
        src_pick in 0u32..4,
        dst_pick in 0u32..4,
        off_words in 0u64..64,
        size_words in 1u64..512,
        tuning in 0u64..32,
    ) {
        // Pack the pipeline tuning into one draw: depth 1–4, coalesce
        // bound 1–4, and the registration discipline.
        let depth = 1 + (tuning & 3);
        let max_coalesce = 1 + ((tuning >> 2) & 3);
        let pin = (tuning >> 4) & 1;
        let run = |prefetch: PrefetchConfig| {
            let mut setup = if pin == 1 {
                VirtDmaSetup::pin_on_post(IotlbConfig::fully_associative(8))
            } else {
                VirtDmaSetup::demand(IotlbConfig::fully_associative(8))
            };
            setup.virt.prefetch = prefetch;
            let mut m = va_machine(setup);
            let pid = m.spawn(&ProcessSpec::two_buffers_of(3), |_| {
                ProgramBuilder::new().halt().build()
            });
            let src_frame = m.env(pid).buffer(0).first_frame;
            let fill = payload(3 * PAGE_SIZE as usize);
            m.memory().borrow_mut().write_bytes(src_frame.base(), &fill).unwrap();
            let off = off_words * 8;
            let pick = |k: u32| match k {
                0 => m.env(pid).buffer(0).va + off,
                1 => m.env(pid).buffer(1).va + off,
                2 => m.env(pid).buffer(0).va + 2 * PAGE_SIZE + off,
                _ => VirtAddr::new(WILD_VA + off),
            };
            let id = m.post_virt(pid, pick(src_pick), pick(dst_pick), size_words * 8).unwrap();
            let state = m.run_virt(id, 128);
            let t = m.virt_xfer(id).unwrap();
            // Snapshot every frame of both buffers: a write the oracle
            // did not make shows up wherever it lands.
            let mut mem = vec![0u8; (6 * PAGE_SIZE) as usize];
            for (i, half) in mem.chunks_mut((3 * PAGE_SIZE) as usize).enumerate() {
                let f = m.env(pid).buffer(i).first_frame;
                m.memory().borrow().read_bytes(f.base(), half).unwrap();
            }
            (state, t, mem)
        };
        let (oracle_state, oracle_t, oracle_mem) = run(PrefetchConfig::default());
        let (state, t, mem) = run(PrefetchConfig::pipelined(depth, max_coalesce));

        prop_assert_eq!(state, oracle_state, "terminal state diverged from the demand oracle");
        prop_assert_eq!(t.moved, oracle_t.moved, "byte count diverged from the demand oracle");
        prop_assert!(mem == oracle_mem, "destination bytes diverged from the demand oracle");
        if state == VirtState::Complete {
            let done = t.finished.unwrap() - t.started;
            let oracle_done = oracle_t.finished.unwrap() - oracle_t.started;
            prop_assert!(
                done <= oracle_done,
                "pipeline slowed a lossless local transfer: {done:?} > {oracle_done:?}"
            );
        }
    }
}

#[test]
fn no_interleaving_of_fault_pause_and_context_switch_leaks_bytes() {
    let build = || {
        let mut m = va_machine(VirtDmaSetup::default());
        let v = m.spawn(&ProcessSpec::two_buffers_of(2), |env| {
            emit_virt_dma(
                env,
                ProgramBuilder::new(),
                env.buffer(0).va,
                env.buffer(1).va,
                2 * PAGE_SIZE,
            )
            .halt()
            .build()
        });
        // Pre-fault the first page pair, so the program's transfer moves
        // one page and then pauses Faulted on the second.
        let (src, dst) = (m.env(v).buffer(0).va, m.env(v).buffer(1).va);
        let warm = m.post_virt(v, src, dst, 8).unwrap();
        assert_eq!(m.run_virt(warm, 16), VirtState::Complete);
        // An unrelated process scribbles its own buffers while the
        // victim's transfer sits paused.
        m.spawn(&ProcessSpec::two_buffers(), |env| {
            ProgramBuilder::new()
                .store(env.buffer(0).va.as_u64(), 0xAD5E_AD5E)
                .store(env.buffer(1).va.as_u64(), 0xAD5E_AD5E)
                .halt()
                .build()
        });
        let sf = m.env(v).buffer(0).first_frame;
        let mem = m.memory();
        mem.borrow_mut().write_u64(sf.base(), 0xFACE_0001).unwrap();
        mem.borrow_mut().write_u64(sf.base() + PAGE_SIZE, 0xFACE_0002).unwrap();
        drop(mem);
        m
    };
    let report = explore(build, 10_000, |m| {
        let v = Pid::new(0);
        // Transfer 0 is the warm-up; 1 is the program's.
        let t = *m.engine().core().virt_xfer(1).unwrap();
        if !matches!(t.state, VirtState::Faulted(_)) {
            return Some(format!("expected a fault pause, got {:?}", t.state));
        }
        if t.moved != PAGE_SIZE {
            return Some(format!("paused off the page boundary: moved {}", t.moved));
        }
        let dst = m.env(v).buffer(1).first_frame.base();
        let mem = m.memory();
        let mem = mem.borrow();
        let page0 = mem.read_u64(dst).unwrap();
        let page1 = mem.read_u64(dst + PAGE_SIZE).unwrap();
        if page0 != 0xFACE_0001 {
            return Some(format!("first page not copied: {page0:#x}"));
        }
        if page1 != 0 {
            return Some(format!("silent write past the fault boundary: {page1:#x}"));
        }
        None
    });
    assert!(report.exhaustive, "race space should be enumerable");
    assert!(report.schedules > 1);
    assert!(
        report.findings.is_empty(),
        "violation under some interleaving: {}",
        report.findings[0].detail
    );
}
