//! Doorbell-batched descriptor rings end to end: the batched-vs-
//! sequential oracle property, exhaustive interleaving coverage of the
//! doorbell-ring vs context-steal vs node-crash race, and the E20
//! acceptance bounds — depth-1 posts pin to the pre-ring per-post cost
//! with zero SimTime delta, and per-transfer initiation cost falls
//! monotonically toward the fetch asymptote as queue depth grows.

use std::cell::RefCell;
use std::rc::Rc;
use udma::{measure_initiation, measure_ring_initiation, DmaMethod};
use udma_bus::{SharedMemory, SimTime};
use udma_iommu::IotlbConfig;
use udma_mem::{Perms, PhysAddr, PhysFrame, PhysLayout, PhysMemory, VirtAddr, VirtPage, PAGE_SIZE};
use udma_nic::{
    Cluster, CtxBusy, DescDst, DmaDescriptor, EngineConfig, EngineCore, RingConfig, RingLaunch,
    VirtDmaConfig, DMA_NODE_DOWN,
};
use udma_testkit::sched::{explore, Budget};
use udma_testkit::{prop_assert, prop_assert_eq, props};
use udma_workloads::{e20_depth_grid, ring_initiation_sweep};

/// An engine with the IOMMU on, context 1 mapped (VA pages 0..4 →
/// frames 8..12 for sources, VA pages 8..12 → frames 16..20 for
/// destinations) and a 64-slot descriptor ring registered — the same
/// address plan the NIC crate's unit tests use.
fn ring_engine() -> (EngineCore, SharedMemory) {
    let layout = PhysLayout::default();
    let mem: SharedMemory = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
    let mut core = EngineCore::new(
        layout,
        mem.clone(),
        EngineConfig { num_contexts: 4, ..EngineConfig::default() },
    );
    core.enable_iommu(IotlbConfig::default(), VirtDmaConfig::default());
    let iommu = core.iommu_mut().unwrap();
    iommu.create_context(1);
    for p in 0..4u64 {
        iommu.map(1, VirtPage::new(p), PhysFrame::new(8 + p), Perms::READ_WRITE, true).unwrap();
        iommu
            .map(1, VirtPage::new(8 + p), PhysFrame::new(16 + p), Perms::READ_WRITE, true)
            .unwrap();
    }
    core.enable_rings(RingConfig::default());
    core.set_ring_base(1, 0x40000);
    core.set_ring_ctl(1, 64);
    (core, mem)
}

props! {
    config(cases = 64);

    /// Oracle property: a batched post of N descriptors through one
    /// doorbell is byte- and status-identical to N sequential
    /// register-window posts of the same transfers. Only the clock may
    /// differ (the batch pays fetches, the sequence pays register
    /// writes); the data and every completion status must not.
    fn batched_doorbell_matches_sequential_posts(
        n in 1u64..7,
        lens in 0u64..u64::MAX,
        pattern in 0u64..u64::MAX,
    ) {
        let (mut subject, smem) = ring_engine();
        let (mut oracle, omem) = ring_engine();

        // Identical source bytes on both machines: fill the four source
        // frames with a pattern-seeded word stream.
        let mut word = pattern | 1;
        for w in 0..(4 * PAGE_SIZE / 8) {
            word = word
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pa = PhysAddr::new(8 * PAGE_SIZE + w * 8);
            smem.borrow_mut().write_u64(pa, word).unwrap();
            omem.borrow_mut().write_u64(pa, word).unwrap();
        }

        // N transfers with varying lengths, disjoint destination
        // windows, all inside the mapped pages.
        let mut lenbits = lens;
        let mut descs = Vec::new();
        for i in 0..n {
            let len = 1 + lenbits % 0x140;
            lenbits /= 0x140;
            descs.push(DmaDescriptor::new(
                VirtAddr::new(i * 0x140),
                DescDst::Local(VirtAddr::new(8 * PAGE_SIZE + i * 0x140)),
                len,
            ));
        }

        // Subject: N ring posts, one doorbell.
        for d in &descs {
            subject.ring_post(1, d, SimTime::ZERO).unwrap();
        }
        let launches = subject.ring_doorbell(1, n, SimTime::ZERO);
        prop_assert_eq!(launches.len(), n as usize, "every descriptor must launch");

        // Oracle: the same transfers, one register-window post each.
        let mut oracle_ids = Vec::new();
        for d in &descs {
            let DescDst::Local(dst) = d.dst else { unreachable!() };
            oracle_ids.push(oracle.post_virt_dma(1, d.src, dst, d.len, SimTime::ZERO).unwrap());
        }

        let late = SimTime::from_us(100_000);
        for (l, oid) in launches.iter().zip(&oracle_ids) {
            prop_assert!(
                matches!(l, RingLaunch::Virt(_)),
                "local descriptor launched as {:?}",
                l
            );
            let RingLaunch::Virt(sid) = l else { unreachable!() };
            prop_assert_eq!(
                subject.virt_status(*sid, late),
                oracle.virt_status(*oid, late),
                "status must match"
            );
        }
        prop_assert_eq!(
            subject.virt_stats().completed,
            oracle.virt_stats().completed,
            "completion counts must match"
        );

        // Byte identity over the whole destination region.
        let mut sbytes = vec![0u8; (4 * PAGE_SIZE) as usize];
        let mut obytes = vec![0u8; (4 * PAGE_SIZE) as usize];
        smem.borrow().read_bytes(PhysAddr::new(16 * PAGE_SIZE), &mut sbytes).unwrap();
        omem.borrow().read_bytes(PhysAddr::new(16 * PAGE_SIZE), &mut obytes).unwrap();
        prop_assert!(sbytes == obytes, "destination bytes diverged");
    }
}

/// The doorbell-ring vs context-steal vs node-crash race, explored
/// exhaustively (90 interleavings). Thread V posts two remote-VA
/// descriptors and rings the doorbell, then drains; thread S (the OS)
/// tries to steal context 1 at every point; thread C crashes the
/// destination node. Invariants on every schedule:
/// * a save succeeds iff the context was not busy at that instant, and
///   a denial while ring work is queued or draining names the ring;
/// * transfers complete iff the crash landed after the doorbell, and a
///   completed transfer's bytes are intact on the destination node;
/// * once the batch settles the context is always stealable again.
#[test]
fn doorbell_vs_steal_vs_crash_exhaustive() {
    const LEN: u64 = 256;
    let report = explore(&[2, 2, 2], Budget::new(1_000, 0), |schedule| {
        let (mut core, mem) = ring_engine();
        let mut cluster = Cluster::new(2, 1 << 16);
        cluster.enable_virt(IotlbConfig::default());
        let iommu = cluster.node_iommu_mut(0).unwrap();
        iommu.create_context(7);
        for p in 0..4u64 {
            iommu.map(7, VirtPage::new(p), PhysFrame::new(2 + p), Perms::READ_WRITE, true).unwrap();
        }
        let shared = cluster.shared();
        core.attach_cluster(shared.clone());
        core.set_key(1, 0xBEEF);

        let payload: Vec<u8> = (0..2 * LEN as usize).map(|i| (i * 13 + 7) as u8).collect();
        mem.borrow_mut().write_bytes(PhysAddr::new(8 * PAGE_SIZE), &payload).unwrap();

        let mut now = SimTime::ZERO;
        let mut v_step = 0;
        let mut c_step = 0;
        let mut crashed_before_doorbell = false;
        let mut doorbelled = false;
        let mut launches = Vec::new();
        for &actor in schedule {
            match actor {
                0 => {
                    // Victim: post the batch and ring once, then drain.
                    if v_step == 0 {
                        for i in 0..2u64 {
                            let desc = DmaDescriptor::new(
                                VirtAddr::new(i * LEN),
                                DescDst::RemoteVirt {
                                    node: 0,
                                    asid: 7,
                                    va: VirtAddr::new(i * LEN),
                                },
                                LEN,
                            );
                            core.ring_post(1, &desc, now).unwrap();
                        }
                        launches = core.ring_doorbell(1, 2, now);
                        doorbelled = true;
                    } else {
                        now = SimTime::from_us(100_000);
                    }
                    v_step += 1;
                }
                1 => {
                    // OS: attempt the steal.
                    let busy_before = core.context_busy(1, now);
                    match core.save_context(1, now) {
                        Ok(image) => {
                            assert!(!busy_before, "save succeeded on a busy context");
                            core.restore_context(1, &image);
                        }
                        Err(e) => {
                            assert!(busy_before, "save denied on an idle context: {e:?}");
                            assert_eq!(e, CtxBusy::RingPending, "queued ring work names the ring");
                        }
                    }
                }
                _ => {
                    // Crash injector: the destination node dies once.
                    if c_step == 0 {
                        shared.borrow_mut().crash_node(0);
                        crashed_before_doorbell = !doorbelled;
                    }
                    c_step += 1;
                }
            }
        }

        let late = SimTime::from_us(200_000);
        assert_eq!(launches.len(), 2, "both descriptors must dequeue");
        for (i, l) in launches.iter().enumerate() {
            if crashed_before_doorbell {
                // The dequeue hits a dead node: the first descriptor's
                // transfer times out and trips the peer-health detector
                // to Down; once tripped, later descriptors are rejected
                // on the spot. Either way the outcome names the node.
                match l {
                    RingLaunch::Virt(id) => {
                        let status = core.virt_status(*id, late);
                        if status != DMA_NODE_DOWN {
                            return Some(format!(
                                "crash preceded the doorbell, status {status:#x}"
                            ));
                        }
                    }
                    RingLaunch::Rejected(udma_nic::RejectReason::NodeDown) => {}
                    other => {
                        return Some(format!("crash preceded the doorbell, launched as {other:?}"))
                    }
                }
                continue;
            }
            let RingLaunch::Virt(id) = l else {
                return Some(format!("remote-VA descriptor launched as {l:?}"));
            };
            // The batch drained ahead of the crash: both transfers
            // completed, and the deposits landed whole in node 0's
            // frames before it went dark.
            let status = core.virt_status(*id, late);
            if status != 0 {
                return Some(format!("batch launched pre-crash, status {status:#x}"));
            }
            let base = 2 * PAGE_SIZE + i as u64 * LEN;
            for w in 0..LEN / 8 {
                let got = shared.borrow().read_u64(0, PhysAddr::new(base + w * 8)).unwrap();
                let off = (i as u64 * LEN + w * 8) as usize;
                let want = u64::from_le_bytes(payload[off..off + 8].try_into().unwrap());
                if got != want {
                    return Some(format!("deposit {i} word {w} corrupted"));
                }
            }
        }
        // The settled batch releases the context: terminal states
        // (complete or node-down) never wedge the steal path.
        if core.save_context(1, late).is_err() {
            return Some("context unstealable after the batch settled".into());
        }
        None
    });
    assert!(report.exhaustive, "the 90-schedule space must be fully enumerated");
    assert_eq!(report.schedules, 90);
    assert!(report.safe(), "findings: {:?}", report.findings);
}

/// E20 zero-delta pin: at queue depth 1 the descriptor-ring machine's
/// per-post cost is *exactly* the pre-ring key-based per-post cost —
/// the same SimTime, not merely close. Enabling the ring hardware
/// costs nothing until a batch is actually posted.
#[test]
fn depth_one_pins_to_the_per_post_baseline() {
    let ring = measure_ring_initiation(1, 16);
    let base = measure_initiation(DmaMethod::KeyBased, 16);
    assert_eq!(
        ring.mean, base.mean,
        "depth-1 ring cost must equal the per-post baseline with zero SimTime delta"
    );
}

/// E20 amortization bounds: per-transfer initiation cost is
/// monotonically non-increasing in queue depth, and at depth 16 the
/// batch is at least 2× cheaper than depth 1.
#[test]
fn e20_amortizes_initiation_with_depth() {
    let rows = ring_initiation_sweep(&e20_depth_grid(), 32);
    assert_eq!(rows[0].depth, 1);
    for w in rows.windows(2) {
        assert!(
            w[1].mean_initiation <= w[0].mean_initiation,
            "cost rose from depth {} ({}) to depth {} ({})",
            w[0].depth,
            w[0].mean_initiation,
            w[1].depth,
            w[1].mean_initiation
        );
    }
    let d1 = rows[0].mean_initiation;
    let d16 = rows.iter().find(|r| r.depth == 16).expect("grid includes depth 16").mean_initiation;
    assert!(
        d1.as_ps() >= 2 * d16.as_ps(),
        "depth 16 must amortize ≥ 2×: depth-1 {d1} vs depth-16 {d16}"
    );
}
