//! Reliable delivery over a lossy link, end to end: the acceptance
//! property against a lossless oracle machine, the zero-overhead
//! guarantee of an attached-but-quiet chaos plan, the transfer
//! watchdog, the circuit breaker, and exhaustive interleaving coverage
//! of {sender retry, fault service, watchdog}.

use udma::{DmaMethod, Machine, MachineConfig, ProcessSpec, VirtDmaSetup};
use udma_bus::SimTime;
use udma_cpu::ProgramBuilder;
use udma_iommu::IotlbConfig;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};
use udma_nic::{
    FaultPlan, RejectReason, ReliabilityConfig, RetryPolicy, VirtState, DMA_LINK_FAILED,
};
use udma_testkit::sched::{explore, Budget};
use udma_testkit::{prop_assert, prop_assert_eq, props};

const NODE: u32 = 0;
const REMOTE_ASID: u32 = 7;
const REMOTE_VA: u64 = 32 * PAGE_SIZE;

/// A remote-capable machine, pin-on-post on both sides (no VA fault can
/// NACK — every disturbance is the link layer's), with `pages` pages of
/// seeded source data and a matching remote grant.
fn lossy_machine(
    pages: u64,
    chaos: Option<FaultPlan>,
    rel: ReliabilityConfig,
) -> (Machine, udma_cpu::Pid, Vec<u8>) {
    let mut m = Machine::new(MachineConfig {
        virt_dma: Some(VirtDmaSetup::pin_on_post(IotlbConfig::default())),
        remote_nodes: 1,
        link_chaos: chaos,
        reliability: rel,
        ..MachineConfig::new(DmaMethod::Kernel)
    });
    let pid =
        m.spawn(&ProcessSpec::two_buffers_of(pages), |_| ProgramBuilder::new().halt().build());
    m.grant_remote_buffer(NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), pages, Perms::READ_WRITE);
    let src_frame = m.env(pid).buffer(0).first_frame;
    let data: Vec<u8> = (0..pages * PAGE_SIZE).map(|i| (i.wrapping_mul(31) % 253) as u8).collect();
    m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();
    (m, pid, data)
}

/// Bytes the remote grant holds, read through the node's IOMMU.
fn remote_bytes(m: &Machine, pages: u64) -> Vec<u8> {
    let cluster = m.cluster().unwrap();
    let cl = cluster.borrow();
    let mut got = vec![0u8; (pages * PAGE_SIZE) as usize];
    for p in 0..pages {
        let frame = cl
            .node_iommu(NODE)
            .and_then(|i| i.table(REMOTE_ASID))
            .and_then(|t| t.entry(VirtAddr::new(REMOTE_VA + p * PAGE_SIZE).page()))
            .map(|e| e.frame.base())
            .unwrap();
        let s = (p * PAGE_SIZE) as usize;
        cl.read(NODE, frame, &mut got[s..s + PAGE_SIZE as usize]).unwrap();
    }
    got
}

props! {
    config(cases = 48);

    /// Acceptance property: under ANY seeded fault plan with loss < 1
    /// and any retry budget, every remote transfer either completes
    /// byte-identical to a lossless oracle machine, or aborts with
    /// `DMA_LINK_FAILED` leaving exactly a contiguous in-order prefix.
    /// A plan with zero fault probability adds zero extra `SimTime`.
    fn chaos_transfers_match_the_lossless_oracle(
        seed in 0u64..100_000,
        drop_pct in 0u32..45,
        corrupt_pct in 0u32..25,
        budget in 1u32..8,
        pages in 1u64..4,
    ) {
        let plan = FaultPlan::lossless(seed)
            .with_drop(drop_pct as f64 / 100.0)
            .with_corrupt(corrupt_pct as f64 / 100.0);
        let rel = ReliabilityConfig {
            retry: RetryPolicy::new(budget, SimTime::from_us(5)),
            ..ReliabilityConfig::default()
        };
        let size = pages * PAGE_SIZE;

        let (mut m, pid, data) = lossy_machine(pages, Some(plan), rel);
        let (mut oracle, opid, odata) = lossy_machine(pages, None, rel);
        prop_assert_eq!(&data, &odata);

        let src = m.env(pid).buffer(0).va;
        let id = m
            .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), size)
            .unwrap();
        let state = m.run_virt(id, 256);

        let osrc = oracle.env(opid).buffer(0).va;
        let oid = oracle
            .post_virt_remote(opid, osrc, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), size)
            .unwrap();
        prop_assert_eq!(oracle.run_virt(oid, 256), VirtState::Complete);

        let t = m.virt_xfer(id).unwrap();
        let got = remote_bytes(&m, pages);
        match state {
            VirtState::Complete => {
                prop_assert_eq!(t.moved, size);
                prop_assert!(got == remote_bytes(&oracle, pages),
                    "completed transfer deviates from the oracle bytes");
            }
            VirtState::LinkFailed => {
                let now = m.time();
                prop_assert_eq!(m.engine().core_mut().virt_status(id, now), DMA_LINK_FAILED);
                let cut = t.moved as usize;
                prop_assert!(got[..cut] == data[..cut], "in-order prefix corrupted");
                prop_assert!(got[cut..].iter().all(|&b| b == 0),
                    "bytes leaked past the abort point");
            }
            other => prop_assert!(false, "non-terminal end state {other:?}"),
        }

        // A quiet plan is free: identical completion instant, no
        // retransmits, no link stall — the framing costs nothing extra.
        if drop_pct == 0 && corrupt_pct == 0 {
            prop_assert_eq!(state, VirtState::Complete);
            prop_assert_eq!(t.retransmits, 0);
            prop_assert_eq!(t.link_stall, SimTime::ZERO);
            prop_assert_eq!(t.finished, oracle.virt_xfer(oid).unwrap().finished,
                "a zero-loss plan must add zero SimTime");
        }
    }
}

/// A lossless chaos plan attached to the link costs exactly nothing
/// against a machine built without one: same completion instant, same
/// stall, byte-identical deposit.
#[test]
fn attached_lossless_plan_adds_zero_sim_time() {
    let rel = ReliabilityConfig::default();
    let (mut a, apid, data) = lossy_machine(3, Some(FaultPlan::lossless(42)), rel);
    let (mut b, bpid, _) = lossy_machine(3, None, rel);
    let size = 3 * PAGE_SIZE;

    let asrc = a.env(apid).buffer(0).va;
    let aid =
        a.post_virt_remote(apid, asrc, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), size).unwrap();
    assert_eq!(a.run_virt(aid, 64), VirtState::Complete);
    let bsrc = b.env(bpid).buffer(0).va;
    let bid =
        b.post_virt_remote(bpid, bsrc, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), size).unwrap();
    assert_eq!(b.run_virt(bid, 64), VirtState::Complete);

    let ta = a.virt_xfer(aid).unwrap();
    let tb = b.virt_xfer(bid).unwrap();
    assert_eq!(ta.finished, tb.finished, "framing must be free on a clean link");
    assert_eq!(ta.stall, tb.stall);
    assert_eq!(ta.retransmits, 0);
    assert_eq!(remote_bytes(&a, 3), data);
}

/// The watchdog aborts a remote transfer stuck without forward progress
/// (here: a NACKed fault the OS never services) once — and only once —
/// its deadline passes, leaving the exact delivered prefix.
#[test]
fn watchdog_aborts_stalled_transfer_after_deadline() {
    // Demand mode: the cold remote page NACKs and the transfer pauses.
    let mut m = Machine::new(MachineConfig {
        virt_dma: Some(VirtDmaSetup::default()),
        remote_nodes: 1,
        ..MachineConfig::new(DmaMethod::Kernel)
    });
    let pid = m.spawn(&ProcessSpec::two_buffers(), |_| ProgramBuilder::new().halt().build());
    m.grant_remote_buffer(NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), 1, Perms::READ_WRITE);
    let src = m.env(pid).buffer(0).va;
    let id = m
        .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGE_SIZE)
        .unwrap();
    assert!(matches!(m.virt_xfer(id).unwrap().state, VirtState::Faulted(_)));

    let deadline = m.config().reliability.watchdog;
    let posted = m.virt_xfer(id).unwrap().last_progress;
    // Before the deadline: the watchdog leaves the transfer alone.
    assert!(m.link_watchdog_at(posted + deadline).is_empty());
    assert!(matches!(m.virt_xfer(id).unwrap().state, VirtState::Faulted(_)));
    // Past the deadline: aborted, prefix exact (nothing was delivered).
    assert_eq!(m.link_watchdog_at(posted + deadline + SimTime::from_us(1)), vec![id]);
    let t = m.virt_xfer(id).unwrap();
    assert_eq!(t.state, VirtState::LinkFailed);
    assert_eq!(t.moved, 0);
    let now = m.time();
    assert_eq!(m.engine().core_mut().virt_status(id, now), DMA_LINK_FAILED);
    // A second pass finds nothing new; a late fault service cannot
    // resurrect the aborted transfer.
    assert!(m.link_watchdog_at(posted + deadline + SimTime::from_us(2)).is_empty());
    m.service_remote_faults();
    assert_eq!(m.virt_xfer(id).unwrap().state, VirtState::LinkFailed);
}

/// After `breaker_threshold` consecutive link-failed transfers the
/// machine circuit-breaks: remote posts fail fast with
/// `RejectReason::LinkDown` until `link_repair()`.
#[test]
fn consecutive_aborts_trip_the_breaker_and_repair_clears_it() {
    // A permanent outage from the first frame on.
    let (mut m, pid, _) = lossy_machine(
        1,
        Some(FaultPlan::lossless(5).with_burst(0, u64::MAX)),
        ReliabilityConfig::default(),
    );
    let threshold = m.config().reliability.breaker_threshold;
    let src = m.env(pid).buffer(0).va;
    for i in 0..threshold {
        assert!(!m.link_down(), "breaker tripped early, after {i} aborts");
        let id = m
            .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGE_SIZE)
            .unwrap();
        assert_eq!(m.virt_xfer(id).unwrap().state, VirtState::LinkFailed);
    }
    assert!(m.link_down(), "{threshold} consecutive aborts must trip the breaker");
    // Fail-fast: the post is rejected before any bytes move.
    assert_eq!(
        m.post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGE_SIZE),
        Err(RejectReason::LinkDown)
    );
    // Purely local transfers are unaffected by the breaker.
    let local = m.post_virt(pid, src, m.env(pid).buffer(1).va, 64).unwrap();
    assert_eq!(m.run_virt(local, 16), VirtState::Complete);

    m.link_repair();
    assert!(!m.link_down());
    assert!(m
        .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGE_SIZE)
        .is_ok());
}

/// A remote completion between aborts heals the breaker: the count is
/// of *consecutive* failures, not cumulative ones.
#[test]
fn remote_completion_resets_the_breaker_count() {
    // The outage swallows exactly two transfers' worth of retransmit
    // rounds, then the link turns clean: 7 rounds × 8 frames each.
    let outage = 2 * 7 * 8;
    let (mut m, pid, data) = lossy_machine(
        1,
        Some(FaultPlan::lossless(9).with_burst(0, outage)),
        ReliabilityConfig::default(),
    );
    let src = m.env(pid).buffer(0).va;
    for _ in 0..2 {
        let id = m
            .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGE_SIZE)
            .unwrap();
        assert_eq!(m.virt_xfer(id).unwrap().state, VirtState::LinkFailed);
    }
    assert_eq!(m.engine().core().link_failures_row(), 2);
    assert!(!m.link_down(), "two aborts sit below the default threshold of 3");
    // The link is clean again: this one completes and heals the row.
    let id = m
        .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGE_SIZE)
        .unwrap();
    assert_eq!(m.run_virt(id, 64), VirtState::Complete);
    assert_eq!(m.engine().core().link_failures_row(), 0);
    assert!(!m.link_down());
    assert_eq!(remote_bytes(&m, 1), data);
}

/// Exhaustive interleaving of {sender retry, fault service, watchdog}
/// over a one-page remote transfer paused on a NACK: under EVERY
/// schedule the transfer reaches exactly one terminal verdict — no
/// schedule loses the completion, and none produces both a completion
/// and a link abort (double completion).
#[test]
fn no_retry_service_watchdog_interleaving_double_completes_or_loses_one() {
    // Thread 0: two spontaneous sender retries (timer fires).
    // Thread 1: two fault-service drains (the ACK/NACK answer arrives).
    // Thread 2: one watchdog sweep past the deadline.
    let lens = [2usize, 2, 1];
    let exploration = explore(&lens, Budget::new(2_000, 0xE14), |schedule| {
        let mut m = Machine::new(MachineConfig {
            virt_dma: Some(VirtDmaSetup::default()),
            remote_nodes: 1,
            ..MachineConfig::new(DmaMethod::Kernel)
        });
        let pid = m.spawn(&ProcessSpec::two_buffers(), |_| ProgramBuilder::new().halt().build());
        m.grant_remote_buffer(NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), 1, Perms::READ_WRITE);
        let src = m.env(pid).buffer(0).va;
        let src_frame = m.env(pid).buffer(0).first_frame;
        let data: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 247) as u8).collect();
        m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();
        // Warm the local source translation so only the receive side
        // faults under the schedule.
        let warm = m.post_virt(pid, src, src, 8).unwrap();
        assert_eq!(m.run_virt(warm, 16), VirtState::Complete);
        let id = m
            .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGE_SIZE)
            .unwrap();
        let deadline = m.config().reliability.watchdog + SimTime::from_us(1);
        let before = m.engine().core().virt_stats();

        for &actor in schedule {
            match actor {
                0 => {
                    let now = m.time();
                    m.engine().core_mut().resume_virt(id, now);
                }
                1 => {
                    m.service_remote_faults();
                }
                _ => {
                    let t = m.virt_xfer(id).unwrap();
                    m.link_watchdog_at(t.last_progress + deadline);
                }
            }
        }
        // Drain whatever the schedule left queued.
        let state = m.run_virt(id, 64);

        // Exactly one terminal verdict: the completion and link-abort
        // counters together moved by exactly one, matching the state.
        let after = m.engine().core().virt_stats();
        let completions = after.completed - before.completed;
        let aborts = after.link_failed - before.link_failed;
        if completions + aborts != 1 {
            return Some(format!("{completions} completions + {aborts} aborts under one transfer"));
        }
        match state {
            VirtState::Complete => {
                let t = m.virt_xfer(id).unwrap();
                if t.moved != PAGE_SIZE {
                    return Some(format!("completed with {} of {} bytes", t.moved, PAGE_SIZE));
                }
            }
            VirtState::LinkFailed => {
                // The watchdog won the race before the service: legal,
                // but the prefix must be exact (nothing was delivered).
                if m.virt_xfer(id).unwrap().moved != 0 {
                    return Some("aborted transfer claims moved bytes it never delivered".into());
                }
            }
            other => return Some(format!("lost completion: end state {other:?}")),
        }
        None
    });
    assert!(exploration.exhaustive, "30-schedule space must be enumerated exhaustively");
    assert_eq!(exploration.schedules, 30);
    assert!(
        exploration.findings.is_empty(),
        "violation under schedule {:?}: {}",
        exploration.findings[0].0,
        exploration.findings[0].1
    );
}
