//! The compiled initiation sequences match the paper's figures,
//! instruction for instruction.

use udma::{dma_program, emit_dma, emit_dma_once, DmaMethod, DmaRequest, Machine, ProcessSpec};
use udma_cpu::{Instr, ProgramBuilder};

/// Compiles one initiation (no retry) for `method` and returns the
/// instruction kinds as single letters: S(t), L(d), M(b), I(mm), Y
/// (syscall), P(al), B(ranch), H(alt), A(dd), J(mp), C(ompute).
fn shape(method: DmaMethod, retry: bool) -> String {
    let mut m = Machine::with_method(method);
    let mut spec = ProcessSpec::two_buffers();
    if method == DmaMethod::Shrimp1 {
        spec.mapped_out.push((0, 1));
    }
    let mut out = String::new();
    m.spawn(&spec, |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
        let prog = if retry {
            let mut uniq = 0;
            emit_dma(env, ProgramBuilder::new(), &req, &mut uniq).build()
        } else {
            emit_dma_once(env, ProgramBuilder::new(), &req).build()
        };
        for ins in prog.instrs() {
            out.push(match ins {
                Instr::Store { .. } => 'S',
                Instr::Load { .. } => 'L',
                Instr::Mb => 'M',
                Instr::Imm { .. } => 'I',
                Instr::Syscall { .. } => 'Y',
                Instr::CallPal { .. } => 'P',
                Instr::Beq { .. } | Instr::Bne { .. } => 'B',
                Instr::Halt => 'H',
                Instr::Add { .. } | Instr::AddImm { .. } => 'A',
                Instr::Jmp { .. } => 'J',
                Instr::Compute { .. } => 'C',
            });
        }
        ProgramBuilder::new().halt().build()
    });
    out
}

#[test]
fn figure_1_kernel_sequence() {
    // Three argument loads + the trap.
    assert_eq!(shape(DmaMethod::Kernel, false), "IIIY");
}

#[test]
fn figure_2_and_4_two_access_sequences() {
    // STORE size TO shadow(vdest); LOAD status FROM shadow(vsource).
    assert_eq!(shape(DmaMethod::Shrimp2 { patched_kernel: true }, false), "SL");
    assert_eq!(shape(DmaMethod::Flash { patched_kernel: true }, false), "SL");
    assert_eq!(shape(DmaMethod::ExtShadow, false), "SL");
    assert_eq!(shape(DmaMethod::ExtShadowPairwise, false), "SL");
}

#[test]
fn figure_3_key_based_sequence() {
    // Two keyed address stores, the size store, the status load — "the
    // key-based approach to user-level DMA".
    assert_eq!(shape(DmaMethod::KeyBased, false), "SSSL");
}

#[test]
fn figure_7_five_access_sequence_with_barriers_and_retries() {
    // STORE, (mb), LOAD, branch, STORE, (mb), LOAD, branch, LOAD, branch.
    assert_eq!(shape(DmaMethod::Repeated5, true), "SMLBSMLBLB");
    // The straight-line variant drops the branches, keeps the barriers.
    assert_eq!(shape(DmaMethod::Repeated5, false), "SMLSMLL");
}

#[test]
fn insecure_variants_shapes() {
    assert_eq!(shape(DmaMethod::Repeated3, false), "LSL");
    assert_eq!(shape(DmaMethod::Repeated4, false), "SLSL");
}

#[test]
fn pal_call_wraps_the_two_accesses() {
    // Three argument registers + the PAL invocation; the SL pair lives
    // inside the PAL function.
    assert_eq!(shape(DmaMethod::Pal, false), "IIIP");
}

#[test]
fn shrimp1_single_argument_store() {
    assert_eq!(shape(DmaMethod::Shrimp1, false), "SL");
}

#[test]
fn user_instruction_claim_of_the_paper() {
    // "a DMA operation can be initiated in only 2-5 assembly
    // instructions": count the *accesses + data-register setup* of each
    // kernel-free method's straight-line form.
    for (method, max) in [
        (DmaMethod::ExtShadow, 2),
        (DmaMethod::ExtShadowPairwise, 2),
        (DmaMethod::KeyBased, 4),
        (DmaMethod::Repeated5, 5),
    ] {
        let s = shape(method, false);
        let accesses = s.chars().filter(|&c| c == 'S' || c == 'L').count();
        assert_eq!(accesses, max, "{method}: {s}");
    }
}

#[test]
fn dma_program_concatenates_and_halts() {
    let mut m = Machine::with_method(DmaMethod::ExtShadow);
    m.spawn(&ProcessSpec::two_buffers(), |env| {
        let r1 = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 8);
        let r2 = DmaRequest::new(env.buffer(0).va + 8, env.buffer(1).va + 8, 8);
        let prog = dma_program(env, &[r1, r2]);
        assert_eq!(prog.len(), 5); // SL SL H
        assert_eq!(prog.instrs().last(), Some(&Instr::Halt));
        prog
    });
    m.run(10_000);
    assert_eq!(m.engine().core().stats().started, 2);
}
