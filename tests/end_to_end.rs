//! Whole-machine flows: every initiation method actually moves bytes,
//! and the protection model holds end to end.

use udma::{emit_dma_once, DmaMethod, DmaRequest, Machine, ProcessSpec};
use udma_cpu::{ProcState, ProgramBuilder, Reg};
use udma_mem::{MemFault, Perms, PhysAddr, PAGE_SIZE};
use udma_nic::DMA_FAILURE;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 7 + 3) as u8).collect()
}

/// Builds a machine, runs one `size`-byte transfer at `src_off`/`dst_off`
/// within the two buffers, returns the machine and the victim pid.
fn one_transfer(
    method: DmaMethod,
    src_off: u64,
    dst_off: u64,
    size: u64,
) -> (Machine, udma_cpu::Pid) {
    let mut m = Machine::with_method(method);
    let mut spec = ProcessSpec::two_buffers();
    if method == DmaMethod::Shrimp1 {
        spec.mapped_out.push((0, 1));
    }
    let pid = m.spawn(&spec, |env| {
        let req = DmaRequest::new(env.buffer(0).va + src_off, env.buffer(1).va + dst_off, size);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    // Seed the source.
    let src_frame = m.env(pid).buffer(0).first_frame;
    m.memory()
        .borrow_mut()
        .write_bytes(src_frame.base() + src_off, &payload(size as usize))
        .unwrap();
    m.run(10_000);
    (m, pid)
}

#[test]
fn every_method_moves_the_bytes() {
    for method in DmaMethod::ALL {
        let (m, pid) = one_transfer(method, 0x100, 0x300, 64);
        assert_eq!(m.state(pid), ProcState::Halted, "{method}");
        assert_ne!(m.reg(pid, Reg::R0), DMA_FAILURE, "{method}: status");
        assert_eq!(m.engine().core().stats().started, 1, "{method}");

        let dst_frame = m.env(pid).buffer(1).first_frame;
        let want_off = if method == DmaMethod::Shrimp1 { 0x100 } else { 0x300 };
        let mut got = vec![0u8; 64];
        m.memory().borrow().read_bytes(dst_frame.base() + want_off, &mut got).unwrap();
        assert_eq!(got, payload(64), "{method}: data mismatch");
    }
}

#[test]
fn user_level_initiations_avoid_the_kernel() {
    for method in [DmaMethod::KeyBased, DmaMethod::ExtShadow, DmaMethod::Repeated5, DmaMethod::Pal]
    {
        let (m, _) = one_transfer(method, 0, 0, 32);
        assert_eq!(m.kernel().stats().dma_syscalls, 0, "{method}: user-level path must not trap");
        assert_eq!(m.executor().stats().syscalls, 0, "{method}");
    }
    let (m, _) = one_transfer(DmaMethod::Kernel, 0, 0, 32);
    assert_eq!(m.kernel().stats().dma_syscalls, 1);
}

#[test]
fn kernel_dma_crosses_pages_but_user_level_cannot() {
    // Kernel path: a 3-page transfer is fine (check_size walked it).
    let mut m = Machine::with_method(DmaMethod::Kernel);
    let pid = m.spawn(&ProcessSpec::two_buffers_of(4), |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 3 * PAGE_SIZE);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    m.run(10_000);
    assert_ne!(m.reg(pid, Reg::R0), DMA_FAILURE);
    assert_eq!(m.engine().core().stats().started, 1);

    // User-level: the same request is refused — a shadow address proves
    // access to one page only.
    for method in [DmaMethod::KeyBased, DmaMethod::ExtShadow, DmaMethod::Repeated5] {
        let mut m = Machine::with_method(method);
        let pid = m.spawn(&ProcessSpec::two_buffers_of(4), |env| {
            let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 3 * PAGE_SIZE);
            emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
        });
        m.run(10_000);
        assert_eq!(m.reg(pid, Reg::R0), DMA_FAILURE, "{method}");
        assert_eq!(m.engine().core().stats().started, 0, "{method}");
        assert_eq!(
            m.engine().core().stats().rejected_for(udma_nic::RejectReason::PageCross),
            1,
            "{method}"
        );
    }
}

#[test]
fn shadow_store_to_readonly_buffer_faults_the_process() {
    // Protection flows through the shadow mapping: a process whose
    // destination is read-only cannot even *name* it to the engine.
    let mut m = Machine::with_method(DmaMethod::Repeated5);
    let spec = ProcessSpec {
        buffers: vec![
            udma::BufferSpec::rw(1),
            udma::BufferSpec { pages: 1, perms: Perms::READ, share: None },
        ],
        ..Default::default()
    };
    let pid = m.spawn(&spec, |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    m.run(10_000);
    assert!(
        matches!(m.state(pid), ProcState::Faulted(MemFault::Protection { .. })),
        "got {:?}",
        m.state(pid)
    );
    assert_eq!(m.engine().core().stats().started, 0);
}

#[test]
fn unmapped_shadow_address_faults_the_process() {
    let mut m = Machine::with_method(DmaMethod::KeyBased);
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        // A virtual address far outside any mapping, shadow bit set.
        let bogus = env.shadow_of(udma_mem::VirtAddr::new(0x7777_0000));
        ProgramBuilder::new().store(bogus.as_u64(), 1u64).halt().build()
    });
    m.run(10_000);
    assert!(matches!(m.state(pid), ProcState::Faulted(MemFault::Unmapped { .. })));
}

#[test]
fn kernel_dma_protection_checks_fail_cleanly() {
    // The kernel path refuses bad arguments without killing the process.
    let mut m = Machine::with_method(DmaMethod::Kernel);
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va, udma_mem::VirtAddr::new(0x7777_0000), 64);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    m.run(10_000);
    assert_eq!(m.state(pid), ProcState::Halted);
    assert_eq!(m.reg(pid, Reg::R0), DMA_FAILURE);
    assert_eq!(m.kernel().stats().failed_syscalls, 1);
    assert_eq!(m.engine().core().stats().started, 0);
}

#[test]
fn zero_size_user_transfer_is_refused() {
    for method in [DmaMethod::KeyBased, DmaMethod::ExtShadow] {
        let (m, pid) = one_transfer(method, 0, 0, 0);
        assert_eq!(m.reg(pid, Reg::R0), DMA_FAILURE, "{method}");
        assert_eq!(m.engine().core().stats().started, 0, "{method}");
    }
}

#[test]
fn transfers_at_page_edges_work() {
    // Largest in-page transfer: full page at offset 0.
    let (m, pid) = one_transfer(DmaMethod::ExtShadow, 0, 0, PAGE_SIZE);
    assert_ne!(m.reg(pid, Reg::R0), DMA_FAILURE);

    // Last 8 bytes of the page.
    let (m, pid) = one_transfer(DmaMethod::KeyBased, PAGE_SIZE - 8, PAGE_SIZE - 8, 8);
    assert_ne!(m.reg(pid, Reg::R0), DMA_FAILURE);

    // One byte over the edge fails.
    let mut m = Machine::with_method(DmaMethod::KeyBased);
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va + (PAGE_SIZE - 8), env.buffer(1).va, 9);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    m.run(10_000);
    assert_eq!(m.reg(pid, Reg::R0), DMA_FAILURE);
    let _ = pid;
}

#[test]
fn status_poll_reaches_zero_after_wire_time() {
    // The register-context status load reports bytes remaining (§3.1).
    let mut m = Machine::with_method(DmaMethod::ExtShadow);
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 4096);
        let ctx_page = env.ctx_page_va.unwrap().as_u64();
        let mut b = emit_dma_once(env, ProgramBuilder::new(), &req);
        // Immediately after initiation, bytes remain; poll until zero.
        b = b
            .label("poll")
            .compute(15_000) // 100 µs of "work"
            .load(Reg::R4, ctx_page)
            .bne(Reg::R4, 0, "poll");
        b.halt().build()
    });
    let out = m.run(100_000);
    assert!(out.finished);
    assert_eq!(m.reg(pid, Reg::R4), 0);
}

#[test]
fn trace_shows_exactly_the_expected_device_accesses() {
    let mut m = Machine::with_method(DmaMethod::ExtShadow);
    m.spawn(&ProcessSpec::two_buffers(), |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
        emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
    });
    // Ignore setup traffic (the kernel programming the key table).
    m.bus_mut().reset_stats();
    m.bus_mut().trace_mut().enable();
    m.run(10_000);
    // Extended shadow = exactly two device transactions: a store then a
    // load, both in the shadow window.
    let stats = m.bus().stats();
    assert_eq!(stats.device_writes, 1);
    assert_eq!(stats.device_reads, 1);
    let events = m.bus().trace().events();
    let device: Vec<_> =
        events.iter().filter(|e| m.config().layout.shadow.is_shadow(e.paddr)).collect();
    assert_eq!(device.len(), 2);
    assert_eq!(device[0].op, udma_bus::BusOp::Write);
    assert_eq!(device[1].op, udma_bus::BusOp::Read);
}

#[test]
fn atomic_ops_end_to_end_for_all_three_paths() {
    use udma::{emit_atomic, AtomicRequest};
    use udma_nic::AtomicOp;

    for method in [DmaMethod::Kernel, DmaMethod::KeyBased, DmaMethod::ExtShadow] {
        let mut m = Machine::with_method(method);
        let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
            let req = AtomicRequest {
                va: env.buffer(0).va,
                op: AtomicOp::CompareSwap,
                operand1: 17,
                operand2: 99,
            };
            emit_atomic(env, ProgramBuilder::new(), &req).halt().build()
        });
        let frame = m.env(pid).buffer(0).first_frame;
        m.memory().borrow_mut().write_u64(frame.base(), 17).unwrap();
        m.run(10_000);
        assert_eq!(m.reg(pid, Reg::R0), 17, "{method}: old value");
        assert_eq!(
            m.memory().borrow().read_u64(frame.base()).unwrap(),
            99,
            "{method}: swap applied"
        );
        let _ = PhysAddr::new(0);
    }
}
