//! Property-based tests over the whole machine.

use udma_testkit::prop::{any, vec, Just, OneOf};
use udma_testkit::{one_of, prop_assert, prop_assert_eq, prop_assert_ne, props};

use udma::{emit_dma_once, DmaMethod, DmaRequest, Machine, ProcessSpec};
use udma_cpu::{FixedSchedule, Pid, ProgramBuilder, Reg};
use udma_mem::PAGE_SIZE;
use udma_nic::{Initiator, DMA_FAILURE};

fn user_methods() -> OneOf<DmaMethod> {
    one_of![
        Just(DmaMethod::KeyBased),
        Just(DmaMethod::ExtShadow),
        Just(DmaMethod::Repeated5),
        Just(DmaMethod::Pal),
        Just(DmaMethod::Kernel),
    ]
}

props! {
    config(cases = 64);

    /// For any method, any aligned in-page request: the transfer happens
    /// exactly once, copies exactly the requested bytes, and the status
    /// says success.
    fn any_in_page_request_transfers_exactly(
        method in user_methods(),
        src_word in 0u64..(PAGE_SIZE / 8),
        dst_word in 0u64..(PAGE_SIZE / 8),
        size_words in 1u64..32,
    ) {
        let src_off = src_word * 8;
        let dst_off = dst_word * 8;
        let size = (size_words * 8)
            .min(PAGE_SIZE - src_off)
            .min(PAGE_SIZE - dst_off);
        let mut m = Machine::with_method(method);
        let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
            let req = DmaRequest::new(
                env.buffer(0).va + src_off,
                env.buffer(1).va + dst_off,
                size,
            );
            emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
        });
        let data: Vec<u8> = (0..size).map(|i| (i * 13 + 5) as u8).collect();
        let src_frame = m.env(pid).buffer(0).first_frame;
        let dst_frame = m.env(pid).buffer(1).first_frame;
        m.memory().borrow_mut().write_bytes(src_frame.base() + src_off, &data).unwrap();

        m.run(10_000);

        prop_assert_ne!(m.reg(pid, Reg::R0), DMA_FAILURE);
        prop_assert_eq!(m.engine().core().stats().started, 1);
        let mut got = vec![0u8; size as usize];
        m.memory().borrow().read_bytes(dst_frame.base() + dst_off, &mut got).unwrap();
        prop_assert_eq!(got, data);
    }

    /// Protection invariant: under ANY interleaving of two context-based
    /// processes, every transfer the engine performs is one that some
    /// process legitimately requested (its own src page → its own dst
    /// page).
    fn context_methods_never_mix_under_arbitrary_schedules(
        method in one_of![Just(DmaMethod::KeyBased), Just(DmaMethod::ExtShadow)],
        schedule_bits in vec(any::<bool>(), 10..40),
    ) {
        let mut m = Machine::with_method(method);
        for _ in 0..2 {
            m.spawn(&ProcessSpec::two_buffers(), |env| {
                let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
                emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
            });
        }
        let schedule: Vec<Pid> =
            schedule_bits.iter().map(|&b| Pid::new(b as u32)).collect();
        m.run_with(&mut FixedSchedule::new(schedule), 10_000);

        let legit: Vec<_> = (0..2u32)
            .map(|i| {
                let env = m.env(Pid::new(i));
                (env.buffer(0).first_frame, env.buffer(1).first_frame)
            })
            .collect();
        for rec in m.transfers() {
            prop_assert!(
                legit.iter().any(|&(s, d)| rec.src.page() == s && rec.dst.page() == d),
                "foreign transfer {rec:?}"
            );
        }
        // And both processes completed successfully.
        for i in 0..2u32 {
            prop_assert_ne!(m.reg(Pid::new(i), Reg::R0), DMA_FAILURE);
        }
    }

    /// The kernel path refuses any request that touches unmapped space,
    /// and never kills the process for it.
    fn kernel_dma_rejects_wild_addresses_cleanly(
        wild in (1u64 << 20)..(1u64 << 40),
        size in 1u64..65536,
    ) {
        let mut m = Machine::with_method(DmaMethod::Kernel);
        let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
            let req = DmaRequest::new(
                udma_mem::VirtAddr::new(wild & !7),
                env.buffer(1).va,
                size,
            );
            emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
        });
        m.run(10_000);
        prop_assert_eq!(m.reg(pid, Reg::R0), DMA_FAILURE);
        prop_assert_eq!(m.engine().core().stats().started, 0);
        prop_assert_eq!(m.state(pid), udma_cpu::ProcState::Halted);
    }

    /// Initiator bookkeeping: user transfers are never attributed to the
    /// kernel and vice versa.
    fn initiator_attribution_is_consistent(
        method in user_methods(),
    ) {
        let mut m = Machine::with_method(method);
        m.spawn(&ProcessSpec::two_buffers(), |env| {
            let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 16);
            emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
        });
        m.run(10_000);
        for rec in m.transfers() {
            match method {
                DmaMethod::Kernel => prop_assert_eq!(rec.initiator, Initiator::Kernel),
                DmaMethod::KeyBased | DmaMethod::ExtShadow => prop_assert!(
                    matches!(rec.initiator, Initiator::Context(_))
                ),
                _ => prop_assert_eq!(rec.initiator, Initiator::Anonymous),
            }
        }
    }

    /// Simulated time is deterministic and strictly positive, and grows
    /// with the iteration count.
    fn measurement_time_scales_with_iterations(
        method in user_methods(),
        n in 2u32..20,
    ) {
        let a = udma::measure_initiation(method, n).mean;
        let b = udma::measure_initiation(method, n).mean;
        prop_assert_eq!(a, b, "nondeterministic measurement");
        prop_assert!(a.as_ns() > 0.0);
    }
}
