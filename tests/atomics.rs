//! §3.5 in depth: user-level atomic operations are *atomic* under every
//! interleaving — model-checked, not just spot-tested.

use udma::{
    emit_atomic, explore, AtomicRequest, BufferSpec, DmaMethod, Machine, MachineConfig,
    ProcessSpec, ShareRef,
};
use udma_cpu::{Pid, ProgramBuilder, Reg};
use udma_mem::Perms;
use udma_nic::AtomicOp;

/// Two processes each add 1 to a shared word through the user-level
/// atomic path. Builds a fresh machine for the explorer.
fn two_adders(method: DmaMethod) -> Machine {
    let mut m = Machine::new(MachineConfig::new(method));
    let owner =
        m.spawn(&ProcessSpec { buffers: vec![BufferSpec::rw(1)], ..Default::default() }, |env| {
            let req =
                AtomicRequest { va: env.buffer(0).va, op: AtomicOp::Add, operand1: 1, operand2: 0 };
            emit_atomic(env, ProgramBuilder::new(), &req).halt().build()
        });
    let spec = ProcessSpec {
        buffers: vec![BufferSpec::shared(ShareRef { pid: owner, buffer: 0 }, Perms::READ_WRITE)],
        ..Default::default()
    };
    m.spawn(&spec, |env| {
        let req =
            AtomicRequest { va: env.buffer(0).va, op: AtomicOp::Add, operand1: 1, operand2: 0 };
        emit_atomic(env, ProgramBuilder::new(), &req).halt().build()
    });
    m
}

fn shared_word(m: &Machine) -> u64 {
    let frame = m.env(Pid::new(0)).buffer(0).first_frame;
    m.memory().borrow().read_u64(frame.base()).unwrap()
}

#[test]
fn user_level_atomic_add_is_exact_under_every_interleaving() {
    // Key-based: 5 user instructions per atomic; two processes → a
    // nontrivial interleaving space, every schedule must end at 2.
    for method in [DmaMethod::KeyBased, DmaMethod::ExtShadow, DmaMethod::Kernel] {
        let report = explore(
            || two_adders(method),
            10_000,
            |m| {
                let v = shared_word(m);
                (v != 2).then_some(v)
            },
        );
        assert!(report.exhaustive, "{method}");
        assert!(
            report.safe(),
            "{method}: {} schedules produced a wrong sum (first: {:?})",
            report.findings.len(),
            report.findings.first().map(|f| f.detail)
        );
        assert!(report.schedules >= 20, "{method}: {}", report.schedules);
    }
}

#[test]
fn both_adders_see_distinct_old_values() {
    // Atomicity implies linearisability here: the two returned old
    // values are {0, 1} in some order, for every schedule.
    let report = explore(
        || two_adders(DmaMethod::KeyBased),
        10_000,
        |m| {
            let a = m.reg(Pid::new(0), Reg::R0);
            let b = m.reg(Pid::new(1), Reg::R0);
            let mut pair = [a, b];
            pair.sort_unstable();
            (pair != [0, 1]).then_some((a, b))
        },
    );
    assert!(report.safe(), "{:?}", report.findings.first().map(|f| f.detail));
}

#[test]
fn compare_and_swap_elects_exactly_one_winner() {
    // Classic leader election: both processes CAS(0 → own ticket); in
    // every interleaving exactly one wins and the loser reads the
    // winner's ticket.
    let build = || {
        let mut m = Machine::with_method(DmaMethod::KeyBased);
        let owner = m.spawn(
            &ProcessSpec { buffers: vec![BufferSpec::rw(1)], ..Default::default() },
            |env| {
                let req = AtomicRequest {
                    va: env.buffer(0).va,
                    op: AtomicOp::CompareSwap,
                    operand1: 0,
                    operand2: 11,
                };
                emit_atomic(env, ProgramBuilder::new(), &req).halt().build()
            },
        );
        let spec = ProcessSpec {
            buffers: vec![BufferSpec::shared(
                ShareRef { pid: owner, buffer: 0 },
                Perms::READ_WRITE,
            )],
            ..Default::default()
        };
        m.spawn(&spec, |env| {
            let req = AtomicRequest {
                va: env.buffer(0).va,
                op: AtomicOp::CompareSwap,
                operand1: 0,
                operand2: 22,
            };
            emit_atomic(env, ProgramBuilder::new(), &req).halt().build()
        });
        m
    };
    let report = explore(build, 10_000, |m| {
        let winner_value = shared_word(m);
        let a_old = m.reg(Pid::new(0), Reg::R0);
        let b_old = m.reg(Pid::new(1), Reg::R0);
        let ok = match winner_value {
            11 => a_old == 0 && b_old == 11,
            22 => b_old == 0 && a_old == 22,
            _ => false,
        };
        (!ok).then_some((winner_value, a_old, b_old))
    });
    assert!(report.safe(), "{:?}", report.findings.first().map(|f| f.detail));
    assert!(report.schedules >= 20);
}

#[test]
fn fetch_and_store_chains_hand_over_the_previous_value() {
    // Two fetch_and_stores: the final value is one of the tickets, and
    // the *other* ticket's owner observed either 0 (went first against
    // the initial value) — every schedule must be a valid serialisation.
    let build = || {
        let mut m = Machine::with_method(DmaMethod::ExtShadow);
        let owner = m.spawn(
            &ProcessSpec { buffers: vec![BufferSpec::rw(1)], ..Default::default() },
            |env| {
                let req = AtomicRequest {
                    va: env.buffer(0).va,
                    op: AtomicOp::FetchStore,
                    operand1: 7,
                    operand2: 0,
                };
                emit_atomic(env, ProgramBuilder::new(), &req).halt().build()
            },
        );
        let spec = ProcessSpec {
            buffers: vec![BufferSpec::shared(
                ShareRef { pid: owner, buffer: 0 },
                Perms::READ_WRITE,
            )],
            ..Default::default()
        };
        m.spawn(&spec, |env| {
            let req = AtomicRequest {
                va: env.buffer(0).va,
                op: AtomicOp::FetchStore,
                operand1: 9,
                operand2: 0,
            };
            emit_atomic(env, ProgramBuilder::new(), &req).halt().build()
        });
        m
    };
    let report = explore(build, 10_000, |m| {
        let final_v = shared_word(m);
        let a = m.reg(Pid::new(0), Reg::R0);
        let b = m.reg(Pid::new(1), Reg::R0);
        // Valid serialisations: a first (a=0, b=7, final 9) or b first
        // (b=0, a=9, final 7).
        let ok = (a == 0 && b == 7 && final_v == 9) || (b == 0 && a == 9 && final_v == 7);
        (!ok).then_some((final_v, a, b))
    });
    assert!(report.safe(), "{:?}", report.findings.first().map(|f| f.detail));
}
