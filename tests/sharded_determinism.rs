//! Differential determinism: the sharded parallel runner must replay
//! the sequential oracle's history *exactly* — final memories, IOTLB
//! and fault-service counters, link counters, per-transfer completion
//! times and (when recorded) the merged event log — at every shard
//! count, on every workload shape the cluster experiments use.
//!
//! Each scenario runs at a pinned seed; on divergence the failure
//! message names the scenario, the seed and the first diverging sim
//! event so the run can be replayed and bisected.

use udma::{ClusterConfig, ClusterSim};
use udma_bus::sim::RunnerKind;
use udma_bus::SimTime;
use udma_iommu::Asid;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};
use udma_nic::{CrashPlan, FaultPlan, XferState};
use udma_testkit::rng::TestRng;

const ASID: Asid = 3;
const BASE: u64 = 64 * PAGE_SIZE;
const REGION_PAGES: u64 = 12;
const NODES: u32 = 12;

/// The three workload shapes of the cluster experiments.
#[derive(Clone, Copy, Debug)]
enum Scenario {
    /// E13 shape: demand-faulting destinations, partially pinned, some
    /// pages swapped out so the swap-in fault path fires.
    ColdDemand,
    /// E14 shape: pin-on-post (no destination faults) under seeded
    /// chaos frame loss, exercising go-back-N and the retry budget.
    ChaosLoss,
    /// E15 shape: cold destinations with range announcements, buying
    /// one NACK per range instead of one per page.
    ColdAnnounced,
}

/// Builds the scenario's cluster on a given backend. Every decision
/// (destinations, lengths, launch times, swap-outs) comes from a
/// `TestRng` stream seeded identically for every backend, so the only
/// variable across calls is the runner under test.
fn build(scenario: Scenario, seed: u64, shards: usize, runner: RunnerKind) -> ClusterSim {
    let mut cfg = ClusterConfig::new(NODES);
    cfg.shards = shards;
    cfg.runner = runner;
    cfg.record_log = true;
    // The workload touches 12 pages per node; a small RAM keeps the
    // digest's full-memory CRC cheap across the 45 runs this suite does.
    cfg.node_bytes = 1 << 18;
    match scenario {
        Scenario::ColdDemand => {}
        Scenario::ChaosLoss => {
            cfg.pin_on_post = true;
            cfg.chaos = Some(FaultPlan::lossless(seed).with_drop(0.15));
        }
        Scenario::ColdAnnounced => cfg.announce = true,
    }
    let mut sim = ClusterSim::new(cfg);
    let mut rng = TestRng::seed_from_u64(seed);
    for node in 0..NODES {
        sim.grant(node, ASID, VirtAddr::new(BASE), REGION_PAGES, Perms::READ_WRITE)
            .expect("fresh region");
        if matches!(scenario, Scenario::ColdDemand) {
            // Pin a random warm prefix; swap one unpinned page back out
            // so some chunks hit the swap-in (not just map-in) path.
            let warm = rng.next_u64() % (REGION_PAGES / 2);
            if warm > 0 {
                sim.pin(node, ASID, VirtAddr::new(BASE), warm * PAGE_SIZE).expect("pinnable");
            }
            let cold = warm + rng.next_u64() % (REGION_PAGES - warm);
            sim.swap_out(node, ASID, VirtAddr::new(BASE + cold * PAGE_SIZE).page())
                .expect("unpinned page swaps out");
        }
    }
    for src in 0..NODES {
        for _ in 0..2 {
            let dst = (src + 1 + (rng.next_u64() % u64::from(NODES - 1)) as u32) % NODES;
            // Arbitrary (non-page-aligned, overlapping) destination
            // ranges inside the region: overlaps make the final memory
            // image sensitive to event order, which is the point.
            let max_len = 3 * PAGE_SIZE;
            let off = rng.next_u64() % (REGION_PAGES * PAGE_SIZE - max_len);
            let len = 1 + rng.next_u64() % max_len;
            let at = SimTime::from_us(rng.next_u64() % 40);
            sim.post(src, dst, ASID, VirtAddr::new(BASE + off), len, at);
        }
    }
    sim
}

/// Runs the scenario on the oracle and on the parallel runner at 1, 2,
/// 4 and 8 shards, requiring digest identity every time.
fn differential(scenario: Scenario, seed: u64) {
    let mut oracle = build(scenario, seed, 1, RunnerKind::Sequential);
    oracle.run();
    let expect = oracle.digest();
    assert!(
        expect.xfers.iter().any(|x| x.state == XferState::Complete),
        "{scenario:?} seed {seed:#x}: oracle completed nothing — workload is vacuous"
    );
    for shards in [1usize, 2, 4, 8] {
        let mut sim = build(scenario, seed, shards, RunnerKind::Parallel);
        sim.run();
        let got = sim.digest();
        if let Some(diff) = expect.diff(&got) {
            panic!(
                "{scenario:?} seed {seed:#x}: parallel {shards}-shard run diverged from the \
                 sequential oracle\n{diff}"
            );
        }
    }
}

#[test]
fn cold_demand_matches_oracle_at_every_shard_count() {
    for seed in [0xD13, 0xD1301, 0xD1302] {
        differential(Scenario::ColdDemand, seed);
    }
}

#[test]
fn chaos_loss_matches_oracle_at_every_shard_count() {
    for seed in [0xD14, 0xD1401, 0xD1402] {
        differential(Scenario::ChaosLoss, seed);
    }
}

#[test]
fn cold_announced_matches_oracle_at_every_shard_count() {
    for seed in [0xD15, 0xD1501, 0xD1502] {
        differential(Scenario::ColdAnnounced, seed);
    }
}

/// E19 shape: the announced-cold workload with the node fault domain
/// fully lit — a crash-and-reboot (incarnation fence + ledger replay),
/// an NI-engine hang, a fault-service stall and a permanent crash, all
/// in the same run. Seeded plans are part of the workload, so the
/// digest identity across shard counts covers every crash-driven path:
/// leases, fences, probes, Hello broadcasts and grant replay.
fn build_crashy(seed: u64, shards: usize, runner: RunnerKind) -> ClusterSim {
    let mut cfg = ClusterConfig::new(NODES);
    cfg.shards = shards;
    cfg.runner = runner;
    cfg.record_log = true;
    cfg.node_bytes = 1 << 18;
    cfg.announce = true;
    // Tight lease so detection, fail-fast and probing all happen inside
    // the workload's own time span.
    cfg.health.lease = SimTime::from_us(150);
    let mut sim = ClusterSim::new(cfg);
    let mut rng = TestRng::seed_from_u64(seed);
    for node in 0..NODES {
        sim.grant(node, ASID, VirtAddr::new(BASE), REGION_PAGES, Perms::READ_WRITE)
            .expect("fresh region");
    }
    for src in 0..NODES {
        for _ in 0..2 {
            let dst = (src + 1 + (rng.next_u64() % u64::from(NODES - 1)) as u32) % NODES;
            let max_len = 3 * PAGE_SIZE;
            let off = rng.next_u64() % (REGION_PAGES * PAGE_SIZE - max_len);
            let len = 1 + rng.next_u64() % max_len;
            let at = SimTime::from_us(rng.next_u64() % 40);
            sim.post(src, dst, ASID, VirtAddr::new(BASE + off), len, at);
        }
    }
    // One plan of each kind, on seeded victims and times.
    let mut victim = |salt: u64| (rng.next_u64().wrapping_add(salt) % u64::from(NODES)) as u32;
    let plans = [
        CrashPlan::crash(victim(1), SimTime::from_us(30), SimTime::from_us(250)),
        CrashPlan::hang(victim(2), SimTime::from_us(15), SimTime::from_us(90)),
        CrashPlan::stall(victim(3), SimTime::from_us(10), SimTime::from_us(120)),
        CrashPlan::crash_forever(victim(4), SimTime::from_us(60)),
    ];
    for plan in plans {
        sim.inject_crash(plan);
    }
    sim
}

#[test]
fn crash_churn_matches_oracle_at_every_shard_count() {
    for seed in [0xD19, 0xD1901, 0xD1902] {
        let mut oracle = build_crashy(seed, 1, RunnerKind::Sequential);
        oracle.run();
        let expect = oracle.digest();
        assert!(
            expect.nodes.iter().any(|n| n.crash.crashes > 0),
            "seed {seed:#x}: no crash landed — the plan is vacuous"
        );
        assert!(
            expect.nodes.iter().any(|n| n.health.misses > 0),
            "seed {seed:#x}: no lease ever missed — the detector never engaged"
        );
        for shards in [1usize, 2, 4, 8] {
            let mut sim = build_crashy(seed, shards, RunnerKind::Parallel);
            sim.run();
            if let Some(diff) = expect.diff(&sim.digest()) {
                panic!(
                    "seed {seed:#x}: crash-churn parallel {shards}-shard run diverged from the \
                     sequential oracle\n{diff}"
                );
            }
        }
    }
}

/// The digest really carries what the differential check claims it
/// does: perturbing the workload perturbs the digest.
#[test]
fn digest_is_sensitive_to_the_workload() {
    let mut a = build(Scenario::ColdDemand, 0xD13, 1, RunnerKind::Sequential);
    a.run();
    let mut b = build(Scenario::ColdDemand, 0xD13 + 1, 1, RunnerKind::Sequential);
    b.run();
    assert!(
        a.digest().diff(&b.digest()).is_some(),
        "two different seeds produced identical digests — the digest is too coarse to trust"
    );
}

/// Completion times, not just end states, are part of the contract:
/// the digest distinguishes runs whose transfers finish at different
/// sim times even when everything completes either way.
#[test]
fn digest_carries_completion_times() {
    let run = |pin: bool| {
        let mut cfg = ClusterConfig::new(2);
        cfg.pin_on_post = pin;
        cfg.record_log = false;
        let mut sim = ClusterSim::new(cfg);
        sim.grant(1, ASID, VirtAddr::new(BASE), 4, Perms::READ_WRITE).unwrap();
        sim.post(0, 1, ASID, VirtAddr::new(BASE), 4 * PAGE_SIZE, SimTime::ZERO);
        sim.run();
        sim.digest()
    };
    let (pinned, faulting) = (run(true), run(false));
    assert_eq!(pinned.xfers[0].state, XferState::Complete);
    assert_eq!(faulting.xfers[0].state, XferState::Complete);
    assert!(
        faulting.xfers[0].finished.expect("complete") > pinned.xfers[0].finished.expect("complete"),
        "fault round trips must show up in completion times"
    );
}
