//! Quickstart: build the paper's machine, map two buffers, and start a
//! user-level DMA with the key-based method (§3.1) — four user-mode
//! instructions, zero kernel involvement.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use udma::{emit_dma, DmaMethod, DmaRequest, Machine, ProcessSpec};
use udma_cpu::{ProgramBuilder, Reg};
use udma_nic::DMA_FAILURE;

fn main() {
    // A DEC Alpha 3000/300 with a 12.5 MHz TurboChannel NIC, running the
    // key-based initiation protocol.
    let mut m = Machine::with_method(DmaMethod::KeyBased);

    // The kernel maps a source and a destination buffer (data + shadow
    // mappings), grants the process a register context, and programs its
    // key into the engine. The process's program does one DMA.
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        println!("process {} granted context {:?}", env.pid, env.ctx.map(|g| g.ctx));
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 256);
        println!("issuing {req}");
        let mut uniq = 0;
        emit_dma(env, ProgramBuilder::new(), &req, &mut uniq).halt().build()
    });

    // Put something recognisable in the source.
    let src = m.env(pid).buffer(0).first_frame;
    let dst = m.env(pid).buffer(1).first_frame;
    m.memory()
        .borrow_mut()
        .write_bytes(src.base(), b"user-level DMA without kernel modification")
        .unwrap();

    m.run(10_000);

    let status = m.reg(pid, Reg::R0);
    assert_ne!(status, DMA_FAILURE, "initiation failed");
    let mut buf = vec![0u8; 42];
    m.memory().borrow().read_bytes(dst.base(), &mut buf).unwrap();

    println!("status register   : {status:#x} (not -1 → started)");
    println!("destination bytes : {}", String::from_utf8_lossy(&buf));
    println!("transfers started : {}", m.engine().core().stats().started);
    println!("kernel DMA traps  : {}", m.kernel().stats().dma_syscalls);
    println!("simulated time    : {}", m.time());
    println!();
    println!(
        "the whole initiation took {} user instructions and no syscall",
        m.executor().stats().instructions
    );
}
