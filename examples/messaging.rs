//! The application the paper's intro motivates: a message-passing layer
//! where every send is a user-level DMA. Two processes exchange messages
//! over a shared-memory ring with per-slot flags — zero syscalls on the
//! fast path — and the per-message cost is compared across initiation
//! methods and message sizes.
//!
//! ```text
//! cargo run --release --example messaging
//! ```

use udma::{DmaMethod, Table};
use udma_msg::{measure_messaging, ChannelConfig};

fn main() {
    let methods = [
        DmaMethod::Kernel,
        DmaMethod::KeyBased,
        DmaMethod::ExtShadow,
        DmaMethod::Repeated5,
        DmaMethod::Pal,
    ];
    let sizes = [
        ("32 B", ChannelConfig { slots: 4, payload_words: 4 }),
        ("128 B", ChannelConfig { slots: 4, payload_words: 16 }),
        ("1 KiB", ChannelConfig { slots: 4, payload_words: 128 }),
        ("4 KiB", ChannelConfig { slots: 4, payload_words: 512 }),
    ];

    let mut t = Table::new(
        "End-to-end per-message cost of the udma-msg channel (µs, 24 messages)",
        &["method", "32 B", "128 B", "1 KiB", "4 KiB"],
    );
    for method in methods {
        let mut row = vec![method.name().to_string()];
        for (_, cfg) in &sizes {
            let cost = measure_messaging(method, cfg, 24);
            row.push(format!("{:.2}", cost.per_message.as_us()));
        }
        t.row_owned(row);
    }
    println!("{t}");
    println!(
        "For 32-byte messages the kernel path pays the ~19 µs initiation \
         per send; the paper's methods pay 1–3 µs. As messages grow, wire \
         and staging costs take over and the gap narrows — the crossover \
         trend of the introduction, measured through a real (simulated) \
         application stack."
    );
}
