//! Remote virtual-address DMA walkthrough: a local process posts a
//! multi-page transfer whose destination is a *virtual* address in
//! another workstation's address space. The receiving node's IOMMU
//! translates; a cold translation NACKs back over the link, the sender
//! pauses at the page boundary, the remote node's OS services the fault,
//! and the sender retries.
//!
//! ```text
//! cargo run --release --example remote_va
//! ```

use udma::{DmaMethod, Machine, MachineConfig, ProcessSpec, VirtDmaSetup};
use udma_iommu::IotlbConfig;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};

const NODE: u32 = 0;
const REMOTE_ASID: u32 = 7;
const REMOTE_VA: u64 = 32 * PAGE_SIZE;
const PAGES: u64 = 4;

fn run(label: &str, setup: VirtDmaSetup) {
    let mut m = Machine::new(MachineConfig {
        virt_dma: Some(setup),
        remote_nodes: 1,
        ..MachineConfig::new(DmaMethod::Kernel)
    });
    let pid = m.spawn(&ProcessSpec::two_buffers_of(PAGES), |env| {
        let _ = env;
        udma_cpu::ProgramBuilder::new().halt().build()
    });
    // The far-side process offers a buffer for incoming RDMA.
    m.grant_remote_buffer(NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGES, Perms::READ_WRITE);

    // Seed the local source frames.
    let src_va = m.env(pid).buffer(0).va;
    let src_frame = m.env(pid).buffer(0).first_frame;
    let data: Vec<u8> = (0..PAGES * PAGE_SIZE).map(|i| (i % 251) as u8).collect();
    m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();

    let id = m
        .post_virt_remote(
            pid,
            src_va,
            NODE,
            REMOTE_ASID,
            VirtAddr::new(REMOTE_VA),
            data.len() as u64,
        )
        .unwrap();
    let state = m.run_virt(id, 64);

    let t = m.virt_xfer(id).unwrap();
    let vstats = m.engine().core().virt_stats();
    let node_os = m.remote_fault_service(NODE).stats();
    println!("{label}:");
    println!("  transfer : {state:?}, {} bytes in {} chunks", t.moved, t.chunks);
    println!(
        "  link     : {} NACKs, NACK stall {:.2} µs (of {:.2} µs total stall)",
        t.nacks,
        t.nack_stall.as_us(),
        t.stall.as_us()
    );
    println!(
        "  node OS  : {} serviced ({} mapped, {} swapped in, {} unresolvable)",
        node_os.serviced, node_os.mapped, node_os.swapped_in, node_os.unresolvable
    );
    println!("  engine   : {} remote faults, {} retries", vstats.remote_faults, vstats.retries);

    // Verify the bytes actually landed in the remote process's frames.
    let cluster = m.cluster().unwrap();
    let cl = cluster.borrow();
    let mut got = vec![0u8; data.len()];
    for p in 0..PAGES {
        let va = VirtAddr::new(REMOTE_VA + p * PAGE_SIZE);
        let pa = cl
            .node_iommu(NODE)
            .unwrap()
            .table(REMOTE_ASID)
            .and_then(|t| t.entry(va.page()))
            .map(|e| e.frame.base())
            .expect("page translated after the transfer");
        let lo = (p * PAGE_SIZE) as usize;
        cl.read(NODE, pa, &mut got[lo..lo + PAGE_SIZE as usize]).unwrap();
    }
    assert_eq!(got, data, "remote deposit mismatch");
    println!("  data     : {} bytes verified on node {NODE}\n", data.len());
}

fn main() {
    run("demand paging (cold node I/O page table, one NACK per page)", VirtDmaSetup::default());
    run(
        "pin-on-post (remote buffer registered at grant, zero NACKs)",
        VirtDmaSetup::pin_on_post(IotlbConfig::default()),
    );
}
