//! Many processes initiating DMA concurrently (§3.1/§3.2): register
//! contexts are shared out by the kernel, and when they run out the
//! overflow processes "will have to go through the kernel".
//!
//! ```text
//! cargo run --release --example contention
//! ```

use udma::{DmaMethod, Table};
use udma_workloads::run_contention;

fn main() {
    let mut t = Table::new(
        "Contention: 1–8 processes × 50 initiations, round-robin quantum 200 (4 register contexts)",
        &["method", "procs", "user-level", "kernel-fallback", "mean/init", "ctx switches"],
    );
    for method in
        [DmaMethod::KeyBased, DmaMethod::ExtShadow, DmaMethod::Repeated5, DmaMethod::Kernel]
    {
        for procs in [1u32, 2, 4, 6, 8] {
            let r = run_contention(method, procs, 50, 200);
            assert!(r.finished, "{method} with {procs} processes did not finish");
            t.row_owned(vec![
                method.name().to_string(),
                procs.to_string(),
                r.user_level_processes.to_string(),
                r.kernel_fallback_processes.to_string(),
                format!("{:.2} µs", r.mean_per_init().as_us()),
                r.context_switches.to_string(),
            ]);
        }
    }
    println!("{t}");
    println!(
        "Note how the context-based methods stay fast until the fifth \
         process, whose initiations pay full kernel price — while the \
         repeated-passing scheme needs no contexts at all."
    );
}
