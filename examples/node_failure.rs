//! Node failure walkthrough: a destination crashes mid-stream, its
//! peers detect the outage over missed ACK leases and fail fast, the
//! node reboots under a new incarnation epoch (stale frames fenced,
//! grant ledger replayed), probes find it, and service resumes — all
//! deterministically, digest-identical on the sharded parallel runner.
//!
//! ```bash
//! cargo run --release --example node_failure
//! ```

use udma::{ClusterConfig, ClusterSim};
use udma_bus::sim::RunnerKind;
use udma_bus::SimTime;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};
use udma_nic::{CrashPlan, XferState};

const ASID: u32 = 1;
const VA: u64 = 16 * PAGE_SIZE;
const NODES: u32 = 8;
const VICTIM: u32 = 3;

fn build(shards: usize, runner: RunnerKind) -> ClusterSim {
    let mut cfg = ClusterConfig::new(NODES);
    cfg.shards = shards;
    cfg.runner = runner;
    cfg.pin_on_post = true;
    cfg.announce = true;
    cfg.record_log = true;
    // A tight ACK lease so detection happens inside the example's span.
    cfg.health.lease = SimTime::from_us(200);
    let mut sim = ClusterSim::new(cfg);
    for node in 0..NODES {
        sim.grant(node, ASID, VirtAddr::new(VA), 8, Perms::READ_WRITE).expect("fresh region");
    }
    // A ring over the victim: node 2's stream is mid-flight when node 3
    // dies; the rest of the ring never notices.
    for src in 0..NODES {
        sim.post(src, (src + 1) % NODES, ASID, VirtAddr::new(VA), 2 * PAGE_SIZE, SimTime::ZERO);
    }
    // Late traffic into the rebooted victim: posted long after the
    // crash, it completes into the replayed grants of incarnation 1.
    sim.post(
        VICTIM + 2,
        VICTIM,
        ASID,
        VirtAddr::new(VA + 4 * PAGE_SIZE),
        PAGE_SIZE,
        SimTime::from_us(4_000),
    );
    // The victim dies at 600 µs and reboots 1.5 ms later.
    sim.inject_crash(CrashPlan::crash(VICTIM, SimTime::from_us(600), SimTime::from_us(1_500)));
    sim
}

fn main() {
    let mut oracle = build(1, RunnerKind::Sequential);
    oracle.run();
    let expect = oracle.digest();

    let stats = oracle.crash_stats(VICTIM);
    println!(
        "victim n{VICTIM}: {} crash, {} reboot → incarnation {}",
        stats.crashes,
        stats.reboots,
        oracle.node_incarnation(VICTIM)
    );
    println!(
        "  fenced {} stale frame(s); replayed {} grant(s), {} pin(s) on reboot",
        stats.fenced, stats.regrants, stats.repins
    );
    for x in &expect.xfers {
        let into_victim = x.id.node == (VICTIM + NODES - 1) % NODES || x.id.node == VICTIM + 2;
        if into_victim || x.id.node == VICTIM {
            println!(
                "  {}: {:?}, {} bytes delivered in order{}",
                x.id,
                x.state,
                x.counters.moved,
                x.finished.map_or_else(String::new, |t| format!(", settled at {t}")),
            );
        }
    }
    let outages = oracle.recovery_samples();
    if let Some(worst) = outages.iter().max() {
        println!("  sender-observed outage(s): {:?} (worst {worst})", outages.len());
    }
    let done = expect.xfers.iter().filter(|x| x.state == XferState::Complete).count();
    let down = expect.xfers.iter().filter(|x| x.state == XferState::NodeDown).count();
    println!("cluster: {done} complete, {down} node-down of {} posted", expect.xfers.len());

    // The whole story — crash, fences, probes, Hello, replayed grants —
    // replays bit-identically on the parallel runner.
    for shards in [2usize, 4, 8] {
        let mut sim = build(shards, RunnerKind::Parallel);
        sim.run();
        match expect.diff(&sim.digest()) {
            None => println!("{shards}-shard parallel run: digest identical to the oracle"),
            Some(diff) => panic!("{shards}-shard run diverged:\n{diff}"),
        }
    }
}
