//! Doorbell-batched descriptor rings (E20): one user-level store
//! launches a whole batch of DMA transfers.
//!
//! Part 1 — **gather-send**: three fragments scattered through the
//! source buffer are chained behind one head descriptor
//! (`DESC_FLAG_CHAIN` → `DESC_FLAG_FRAG` links); a single doorbell
//! dequeues the chain and deposits the fragments contiguously at the
//! destination.
//!
//! Part 2 — **amortization**: per-transfer initiation cost at queue
//! depth 1 (which pins exactly to the key-based per-post register
//! sequence — the ring is pure opt-in) vs depth 16, in µs and 150 MHz
//! Alpha cycles.
//!
//! ```text
//! cargo run --release --example doorbell
//! ```

use udma::{
    measure_ring_initiation, BufferSpec, DmaMethod, Machine, MachineConfig, ProcessSpec,
    VirtDmaSetup,
};
use udma_cpu::ProgramBuilder;
use udma_iommu::IotlbConfig;
use udma_mem::{PhysAddr, VirtAddr};
use udma_nic::{DescDst, DmaDescriptor, RingConfig, DESC_FLAG_CHAIN, DESC_FLAG_FRAG};

/// 150 MHz Alpha 21064 cycles for a simulated duration.
fn cycles(t: udma_bus::SimTime) -> u64 {
    t.as_ps() * 150 / 1_000_000
}

fn main() {
    // ---- part 1: gather-send through one doorbell -------------------
    let mut m = Machine::new(MachineConfig {
        virt_dma: Some(VirtDmaSetup::pin_on_post(IotlbConfig::default())),
        ..MachineConfig::new(DmaMethod::KeyBased)
    });
    m.enable_desc_rings(RingConfig::default());

    // Buffer 0: fragmented source; buffer 1: destination; buffer 2: the
    // one-page descriptor ring the kernel registers with the NI.
    let spec = ProcessSpec {
        buffers: vec![BufferSpec::rw(1), BufferSpec::rw(1), BufferSpec::rw(1)],
        ..Default::default()
    };
    let pid = m.spawn(&spec, |_| ProgramBuilder::new().halt().build());
    assert!(m.register_ring(pid, 2, 16), "ring registration");

    // Scatter three 16-byte fragments through the source page.
    let src_pa = m.env(pid).buffer(0).first_frame.base();
    let frags: [(u64, &[u8; 16]); 3] =
        [(0x000, b"user-level DMA: "), (0x400, b"one doorbell,   "), (0x800, b"one gather-send.")];
    for (off, bytes) in frags {
        m.memory()
            .borrow_mut()
            .write_bytes(PhysAddr::new(src_pa.as_u64() + off), &bytes[..])
            .unwrap();
    }

    // A chain: the head names the destination and links fragment
    // descriptors; each fragment contributes its own source + length.
    let src_va = m.env(pid).buffer(0).va;
    let dst_va = m.env(pid).buffer(1).va;
    let mut head = DmaDescriptor::new(src_va, DescDst::Local(dst_va), 16);
    head.flags = DESC_FLAG_CHAIN;
    head.link = Some(1);
    let mut f1 =
        DmaDescriptor::new(VirtAddr::new(src_va.as_u64() + 0x400), DescDst::Local(dst_va), 16);
    f1.flags = DESC_FLAG_FRAG;
    f1.link = Some(2);
    let mut f2 =
        DmaDescriptor::new(VirtAddr::new(src_va.as_u64() + 0x800), DescDst::Local(dst_va), 16);
    f2.flags = DESC_FLAG_FRAG;
    for d in [&head, &f1, &f2] {
        m.post_ring(pid, d).expect("ring post");
    }
    let launches = m.ring_doorbell(pid);
    let stats = m.ring_stats();

    let dst_pa = m.env(pid).buffer(1).first_frame.base();
    let mut got = vec![0u8; 48];
    m.memory().borrow().read_bytes(dst_pa, &mut got).unwrap();
    println!("gather-send: {} descriptors, 1 doorbell, {} launches", stats.fetched, launches.len());
    println!("  deposited: {:?}", String::from_utf8_lossy(&got));
    assert_eq!(&got, b"user-level DMA: one doorbell,   one gather-send.");

    // ---- part 2: the amortization numbers ---------------------------
    println!("\nper-transfer initiation cost (key-based machine):");
    for depth in [1u32, 16] {
        let cost = measure_ring_initiation(depth, 32);
        println!(
            "  queue depth {depth:>2}: {:>5.2} µs  = {:>4} cycles @ 150 MHz",
            cost.mean.as_us(),
            cycles(cost.mean)
        );
    }
    println!("\ndepth 1 is byte-for-byte the per-post register sequence; at depth 16");
    println!("the doorbell and protection checks amortize across the batch.");
}
