//! Context virtualization under pressure: thousands of logical
//! processes multiplexed onto the NI's handful of register contexts
//! (§3.1's "say 4 to 8") by the OS context cache, then the
//! hostile-tenant QoS scenario.
//!
//! ```text
//! cargo run --release --example context_pressure
//! ```

use udma_os::CtxVictimPolicy;
use udma_workloads::{context_pressure_sweep, e17_context_grid, hostile_tenant_scenario};

fn main() {
    println!("== E17: initiation cost vs process count and context count ==");
    for &contexts in &e17_context_grid() {
        for row in
            context_pressure_sweep(&[100, 1_000, 10_000], contexts, 1_000, CtxVictimPolicy::Lru, 7)
        {
            println!(
                "{:>6} procs / {} ctx: p50 {:>8.2} µs  p99 {:>8.2} µs  hit {:.3}  \
                 steals {:>4}  spills {:>4}  starved {:>4}",
                row.processes,
                row.contexts,
                row.p50_initiation.as_us(),
                row.p99_initiation.as_us(),
                row.hit_rate,
                row.ni.steals,
                row.ni.spills,
                row.ni.starvations
            );
        }
    }

    println!("\n== victim policies at 1 000 procs / 4 ctx ==");
    for policy in [CtxVictimPolicy::Lru, CtxVictimPolicy::Clock, CtxVictimPolicy::Random] {
        let row = &context_pressure_sweep(&[1_000], 4, 1_000, policy, 7)[0];
        println!(
            "{:>6}: hit {:.3}  steal/post {:.3}  p99 {:>8.2} µs",
            row.policy,
            row.hit_rate,
            row.steal_rate,
            row.p99_initiation.as_us()
        );
    }

    println!("\n== hostile tenant: a best-effort burst vs 2 guaranteed victims ==");
    for qos in [false, true] {
        let row = hostile_tenant_scenario(6, 2, 48, 50, qos, 7);
        println!(
            "QoS {:>3}: victim p99 {:>8.2} µs vs uncontended {:>5.2} µs ({:>7.2}x), \
             {} victim fallbacks, {} hostile steals throttled",
            if qos { "on" } else { "off" },
            row.victim_p99.as_us(),
            row.uncontended_p99.as_us(),
            row.degradation,
            row.victim_fallbacks,
            row.hostile_throttled
        );
    }
}
