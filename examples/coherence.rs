//! What DMA really costs on a cached host: the flat (paper) machine vs
//! non-coherent DMA (software flush/invalidate brackets) vs a snooping
//! NI — plus the missing-flush stale-data hazard, demonstrated live.
//!
//! ```text
//! cargo run --release --example coherence
//! ```

use udma::{CoherenceSetup, DmaMethod, Machine, MachineConfig};
use udma_mem::PhysAddr;
use udma_workloads::{coherence_cost_sweep, false_sharing_adversary, mode_label};

fn main() {
    println!("== E18: coherence extras per post (cold/warm/dirty producer) ==");
    for row in coherence_cost_sweep(&[1024, 8192, 65536]) {
        println!(
            "{:>6} {:>5} {:>6}B: +{:>8.2} µs (flush {:>7.2}, snoop {:>7.2}, inval {:>7.2})  \
             {:>4} lines flushed, {:>4} interventions",
            mode_label(row.mode),
            row.prep.label(),
            row.bytes,
            row.total_extra.as_us(),
            row.initiation_extra.as_us(),
            row.snoop_extra.as_us(),
            row.completion_extra.as_us(),
            row.flush_lines,
            row.interventions
        );
    }

    println!("\n== the missing-flush hazard, live ==");
    let mut m = Machine::new(MachineConfig {
        coherence: CoherenceSetup::non_coherent(),
        ..MachineConfig::new(DmaMethod::Kernel)
    });
    let (src, dst) = (PhysAddr::new(0x10_000), PhysAddr::new(0x20_000));
    // The producer writes through the CPU cache: the fresh bytes live
    // only in Modified lines, memory still holds zeroes.
    let (domain, agent) = m.executor().coherence().expect("non-coherent machine has a cache");
    domain.borrow_mut().agent_write(agent, src, &0xFEED_FACE_CAFE_F00Du64.to_le_bytes()).unwrap();
    drop(domain);
    // A forgetful driver posts without the flush bracket...
    let now = m.time();
    m.engine().core_mut().start_kernel_dma_direct(src, dst, 8, now).unwrap();
    let mut stale = [0u8; 8];
    m.memory().borrow().read_bytes(dst, &mut stale).unwrap();
    println!("raw post, no flush:      dst = {stale:02x?}   <- stale memory, not the producer");
    // ...and the coherence-aware post runs the bracket and gets it right.
    let report = m.post_dma_coherence_aware(src, dst, 8).unwrap();
    let mut fresh = [0u8; 8];
    m.memory().borrow().read_bytes(dst, &mut fresh).unwrap();
    println!(
        "bracketed post:          dst = {fresh:02x?}   ({} line flushed, +{:.2} µs)",
        report.flush_dirty,
        report.total_extra().as_us()
    );

    println!("\n== false-sharing adversary: CPU vs DMA on one line ==");
    let fs = false_sharing_adversary(32);
    println!(
        "{} rounds: {} writeback-interventions, {} invalidations, {:.2} µs snoop time, merge {}",
        fs.rounds,
        fs.interventions,
        fs.invalidations,
        fs.dma_snoop_time.as_us(),
        if fs.merge_exact && fs.consumer_reads_ok { "exact" } else { "CORRUPT" }
    );
}
