//! A master/worker pool over user-level DMA channels: the master farms
//! out work items to two workers over per-worker request channels; each
//! worker computes `3x + 1` and returns the result over its reply
//! channel. Every hop is a user-level DMA; the kernel is idle after
//! setup.
//!
//! ```text
//! cargo run --release --example work_queue
//! ```

use udma::{BufferSpec, DmaMethod, Machine, ProcessSpec, ShareRef};
use udma_cpu::{Pid, ProgramBuilder, Reg, RoundRobin};
use udma_mem::Perms;
use udma_msg::{emit_recv_one, emit_send_one, receiver_spec, ChannelConfig, ChannelView};

const ITEMS: u64 = 12;
const WORKERS: u64 = 2;

fn main() {
    // Rings sized so neither requests nor replies can back up (6 items
    // per worker): no cyclic blocking between master sends and worker
    // replies.
    let cfg = ChannelConfig { slots: 8, payload_words: 1 };
    let mut m = Machine::with_method(DmaMethod::KeyBased);

    // Reply channels, owned by two placeholder processes the master will
    // alias (pids 0 and 1 own reply rings; the master reads them).
    let reply_owner: Vec<Pid> = (0..WORKERS)
        .map(|_| {
            let mut spec = receiver_spec(&cfg);
            spec.want_ctx = Some(false); // placeholders must not consume contexts
            m.spawn(&spec, |_| ProgramBuilder::new().halt().build())
        })
        .collect();

    // Workers own their request channels and send replies.
    let workers: Vec<Pid> = (0..WORKERS)
        .map(|w| {
            let mut spec = receiver_spec(&cfg); // 0/1: own request channel
            spec.buffers.push(BufferSpec::rw(1)); // 2: staging
            spec.buffers.push(BufferSpec::shared(
                ShareRef { pid: reply_owner[w as usize], buffer: 0 },
                Perms::READ_WRITE,
            )); // 3: reply ring
            spec.buffers.push(BufferSpec::shared(
                ShareRef { pid: reply_owner[w as usize], buffer: 1 },
                Perms::READ_WRITE,
            )); // 4: reply ctrl
            let items_for_worker = (0..ITEMS).filter(|i| i % WORKERS == w).count() as u64;
            m.spawn(&spec, |env| {
                let recv = ChannelView::RECEIVER;
                let send = ChannelView { staging: 2, ring: 3, ctrl: 4 };
                let mut b = ProgramBuilder::new();
                let mut uniq = 0;
                for seq in 0..items_for_worker {
                    // Receive x (first word lands in r6)…
                    b = emit_recv_one(env, &cfg, recv, seq, &mut uniq, b);
                    // …compute 3x + 1…
                    b = b
                        .add(Reg::R1, Reg::R6, Reg::R6)
                        .add(Reg::R1, Reg::R1, Reg::R6)
                        .add_imm(Reg::R1, Reg::R1, 1)
                        .store(env.buffer(2).va.as_u64() + 8, Reg::R1); // park it
                                                                        // …and reply. The payload staging store happens inside
                                                                        // emit_send_one from an immediate, so instead send via
                                                                        // the parked register: stage manually then reuse the
                                                                        // send path with an empty message body.
                    b = b
                        .load(Reg::R2, env.buffer(2).va.as_u64() + 8)
                        .store(env.buffer(2).va.as_u64(), Reg::R2)
                        .mb();
                    b = emit_send_one(env, &cfg, send, seq, &[], &mut uniq, b);
                }
                b.halt().build()
            })
        })
        .collect();

    // The master: sends items to each worker's request channel, then
    // collects all replies.
    let master = {
        let mut spec = ProcessSpec::default();
        for &w in &workers {
            // Per worker: staging + request ring/ctrl views.
            spec.buffers.push(BufferSpec::rw(1));
            spec.buffers
                .push(BufferSpec::shared(ShareRef { pid: w, buffer: 0 }, Perms::READ_WRITE));
            spec.buffers
                .push(BufferSpec::shared(ShareRef { pid: w, buffer: 1 }, Perms::READ_WRITE));
        }
        for &r in &reply_owner {
            // Per worker: reply ring/ctrl views (read + flag writes).
            spec.buffers
                .push(BufferSpec::shared(ShareRef { pid: r, buffer: 0 }, Perms::READ_WRITE));
            spec.buffers
                .push(BufferSpec::shared(ShareRef { pid: r, buffer: 1 }, Perms::READ_WRITE));
        }
        m.spawn(&spec, |env| {
            let mut b = ProgramBuilder::new().imm(udma_msg::CHECKSUM_REG, 0);
            let mut uniq = 0;
            let mut seq = [0u64; WORKERS as usize];
            for i in 0..ITEMS {
                let w = (i % WORKERS) as usize;
                let send = ChannelView { staging: 3 * w, ring: 3 * w + 1, ctrl: 3 * w + 2 };
                b = emit_send_one(env, &cfg, send, seq[w], &[i], &mut uniq, b);
                seq[w] += 1;
            }
            let base = 3 * WORKERS as usize;
            let mut rseq = [0u64; WORKERS as usize];
            for i in 0..ITEMS {
                let w = (i % WORKERS) as usize;
                let recv = ChannelView { staging: 0, ring: base + 2 * w, ctrl: base + 2 * w + 1 };
                b = emit_recv_one(env, &cfg, recv, rseq[w], &mut uniq, b);
                rseq[w] += 1;
            }
            b.halt().build()
        })
    };

    let out = m.run_with(&mut RoundRobin::new(50), 20_000_000);
    assert!(out.finished, "pool did not drain");

    // Sum of all replies: Σ (3i + 1) for i in 0..ITEMS.
    let expect: u64 = (0..ITEMS).map(|i| 3 * i + 1).sum();
    let got = m.reg(master, udma_msg::CHECKSUM_REG);
    assert_eq!(got, expect);

    println!("{ITEMS} work items → {WORKERS} workers → {ITEMS} replies");
    println!("Σ(3x+1) = {got} (expected {expect}) ✓");
    assert_eq!(m.kernel().stats().dma_syscalls, 0, "fast path must stay user-level");
    println!(
        "user-level DMAs: {}, kernel DMA syscalls: {}, context switches: {}",
        m.engine().core().stats().started,
        m.kernel().stats().dma_syscalls,
        m.executor().stats().context_switches,
    );
    println!("simulated time: {}", m.time());
}
