//! A Network-of-Workstations send (§1, §2.4): a process on the local
//! workstation pushes messages to *remote* nodes with SHRIMP-1
//! mapped-out pages — one user-mode store per message, the destination
//! fixed per page by the kernel at map time, data landing in the remote
//! node's memory after the wire time.
//!
//! ```text
//! cargo run --release --example now_cluster
//! ```

use udma::{BufferSpec, DmaMethod, Machine, MachineConfig, ProcessSpec};
use udma_cpu::{ProgramBuilder, Reg};
use udma_mem::{PhysAddr, PAGE_SIZE};
use udma_nic::DMA_STARTED;

fn main() {
    let mut m =
        Machine::new(MachineConfig { remote_nodes: 3, ..MachineConfig::new(DmaMethod::Shrimp1) });

    // One send buffer of 3 pages; page i will be mapped out to node i
    // (fan-out needs per-page destinations, configured below).
    let spec = ProcessSpec { buffers: vec![BufferSpec::rw(3)], ..Default::default() };
    let pid = m.spawn(&spec, |env| {
        // One store per page: the shadow address names the source page,
        // the data carries the message length. Then read the status.
        let mut b = ProgramBuilder::new();
        for page in 0..3u64 {
            let s = env.shadow_of(env.addr_in(0, page * PAGE_SIZE));
            b = b.store(s.as_u64(), 64u64).load(Reg::R0, s.as_u64());
        }
        b.halt().build()
    });

    // Configure the mapped-out table: page i of the buffer → node i.
    {
        let env = m.env(pid).clone();
        let core = m.engine().clone();
        let mut core = core.core_mut();
        for page in 0..3u64 {
            core.set_mapped_out(
                env.buffer(0).first_frame.offset(page),
                udma_nic::Destination::Remote { node: page as u32, addr: PhysAddr::new(0x4000) },
            );
        }
    }

    // Seed each page with a distinct message.
    for page in 0..3u64 {
        let frame = m.env(pid).buffer(0).first_frame.offset(page);
        let msg = format!("message for node {page}!");
        let mut bytes = msg.into_bytes();
        bytes.resize(64, b' ');
        m.memory().borrow_mut().write_bytes(frame.base(), &bytes).unwrap();
    }

    m.run(10_000);
    assert_eq!(m.reg(pid, Reg::R0), DMA_STARTED);

    let cluster = m.cluster().expect("configured with remote nodes");
    for (i, rec) in m.transfers().iter().enumerate() {
        let mut buf = vec![0u8; 64];
        cluster.borrow().read(rec.remote_node.unwrap(), rec.dst, &mut buf).unwrap();
        println!(
            "transfer {i}: {} -> {}  arrived at t={}  payload = {:?}",
            rec.src,
            rec.destination(),
            rec.finished,
            String::from_utf8_lossy(&buf[..22]),
        );
    }
    println!(
        "\n3 messages delivered to 3 workstations, 2 user instructions \
         each, {} kernel DMA syscalls.",
        m.kernel().stats().dma_syscalls
    );
}
