//! §3.5 in action: two processes on the simulated workstation bump a
//! shared counter 200 times each — first with plain load/add/store
//! (updates get lost under preemption), then with NIC-resident
//! `atomic_add` issued entirely from user level through the key-based
//! context pages. No kernel call anywhere in the fast path.
//!
//! ```text
//! cargo run --release --example shared_counter
//! ```

use udma::{
    emit_atomic, AtomicRequest, BufferSpec, DmaMethod, Machine, MachineConfig, ProcessSpec,
    ShareRef,
};
use udma_cpu::{Pid, ProgramBuilder, RandomPreempt, Reg};
use udma_mem::Perms;
use udma_nic::AtomicOp;

const INCREMENTS: u32 = 200;

fn spawn_pair(m: &mut Machine, racy: bool) -> Pid {
    // First process owns the counter page; second maps it shared.
    let owner = m
        .spawn(&ProcessSpec { buffers: vec![BufferSpec::rw(1)], ..Default::default() }, |env| {
            increment_program(env, racy)
        });
    let spec = ProcessSpec {
        buffers: vec![BufferSpec::shared(ShareRef { pid: owner, buffer: 0 }, Perms::READ_WRITE)],
        ..Default::default()
    };
    m.spawn(&spec, |env| increment_program(env, racy));
    owner
}

fn increment_program(env: &udma::ProcessEnv, racy: bool) -> udma_cpu::Program {
    let mut b = ProgramBuilder::new();
    if racy {
        // load; add 1; store — a classic lost-update window.
        let va = env.buffer(0).va.as_u64();
        b = b.imm(Reg::R2, INCREMENTS as u64).label("loop");
        b = b
            .load(Reg::R1, va)
            .add_imm(Reg::R1, Reg::R1, 1)
            .store(va, Reg::R1)
            .mb()
            .add_imm(Reg::R2, Reg::R2, -1)
            .bne(Reg::R2, 0, "loop");
    } else {
        // NIC-resident atomic_add through the process's register context.
        let req =
            AtomicRequest { va: env.buffer(0).va, op: AtomicOp::Add, operand1: 1, operand2: 0 };
        for _ in 0..INCREMENTS {
            b = emit_atomic(env, b, &req);
        }
    }
    b.halt().build()
}

fn run(racy: bool, seed: u64) -> (u64, u64) {
    let mut m = Machine::new(MachineConfig::new(DmaMethod::KeyBased));
    let owner = spawn_pair(&mut m, racy);
    let out = m.run_with(&mut RandomPreempt::new(seed, 0.2), 2_000_000);
    assert!(out.finished, "did not finish");
    let frame = m.env(owner).buffer(0).first_frame;
    let value = m.memory().borrow().read_u64(frame.base()).unwrap();
    (value, m.kernel().stats().atomic_syscalls)
}

fn main() {
    let expect = 2 * INCREMENTS as u64;
    println!("two processes × {INCREMENTS} increments, preemption p=0.2\n");

    let mut lost_somewhere = false;
    for seed in 0..5 {
        let (racy, _) = run(true, seed);
        let (atomic, traps) = run(false, seed);
        let note = if racy == expect { "  (lucky schedule)" } else { "  LOST UPDATES" };
        if racy != expect {
            lost_somewhere = true;
        }
        println!(
            "seed {seed}: plain load/add/store → {racy:>4}{note:<16} | \
             user-level atomic_add → {atomic:>4} (kernel atomic traps: {traps})"
        );
        assert_eq!(atomic, expect, "user-level atomics must never lose an update");
    }
    assert!(lost_somewhere, "expected at least one seed to demonstrate the lost-update race");
    println!("\nexpected total: {expect}. The atomic path is exact on every seed —");
    println!("and never enters the kernel, which is the point of §3.5.");
}
