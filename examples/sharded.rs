//! Sharded cluster quickstart: the same 16-node workload on the
//! sequential oracle and on the parallel runner, digest-identical.
//!
//! ```bash
//! cargo run --release --example sharded
//! ```

use udma::{ClusterConfig, ClusterSim};
use udma_bus::sim::RunnerKind;
use udma_bus::SimTime;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};
use udma_nic::{FaultPlan, XferState};

const ASID: u32 = 1;
const VA: u64 = 16 * PAGE_SIZE;

fn build(shards: usize, runner: RunnerKind) -> ClusterSim {
    let mut cfg = ClusterConfig::new(16);
    cfg.shards = shards;
    cfg.runner = runner;
    // 10% frame loss on every wire; receive buffers demand-fault, so
    // both the go-back-N and the NACK fault path are live.
    cfg.chaos = Some(FaultPlan::lossless(0x5EED).with_drop(0.10));
    let mut sim = ClusterSim::new(cfg);
    for node in 0..16 {
        sim.grant(node, ASID, VirtAddr::new(VA), 4, Perms::READ_WRITE).expect("fresh region");
    }
    for src in 0..16u32 {
        // A ring: every node streams 4 pages to its right neighbour.
        sim.post(src, (src + 1) % 16, ASID, VirtAddr::new(VA), 4 * PAGE_SIZE, SimTime::ZERO);
    }
    sim
}

fn main() {
    let mut oracle = build(1, RunnerKind::Sequential);
    oracle.run();
    let expect = oracle.digest();
    let done = expect.xfers.iter().filter(|x| x.state == XferState::Complete).count();
    println!(
        "oracle: {} events in {} rounds, {done}/16 transfers complete, {:.0} events/sec",
        expect.events,
        expect.rounds,
        oracle.events_per_sec()
    );
    for x in expect.xfers.iter().take(3) {
        println!(
            "  {}: {:?} after {} NACKs / {} retransmits, finished at {}",
            x.id,
            x.state,
            x.counters.nacks,
            x.counters.retransmits,
            x.finished.map_or_else(|| "-".into(), |t| format!("{t}")),
        );
    }
    for shards in [2usize, 4, 8] {
        let mut sim = build(shards, RunnerKind::Parallel);
        sim.run();
        let got = sim.digest();
        match expect.diff(&got) {
            None => println!(
                "parallel ×{shards}: identical digest ({} events, {:.0} events/sec)",
                got.events,
                sim.events_per_sec()
            ),
            Some(diff) => println!("parallel ×{shards}: DIVERGED\n{diff}"),
        }
    }
}
