//! Runs the paper's attack figures as experiments: the Figure 5 attack on
//! the 3-instruction variant, the Figure 6 misinformation on the
//! 4-instruction variant, and the (failed) exhaustive attack on the
//! 5-instruction protocol the paper proves correct in §3.3.1.
//!
//! ```text
//! cargo run --release --example adversary
//! ```

use udma::{explore, DmaMethod};
use udma_workloads::{
    any_violation, illegal_transfer, misinformation, AdversaryKind, AttackScenario,
};

fn main() {
    println!("== Figure 5: 3-instruction repeated passing ==");
    let s = AttackScenario::new(DmaMethod::Repeated3, AdversaryKind::Figure5);
    let report = explore(|| s.build(), 5_000, illegal_transfer);
    println!(
        "explored {} interleavings exhaustively → {} illegal transfers",
        report.schedules,
        report.findings.len()
    );
    if let Some(f) = report.findings.first() {
        println!(
            "first bad schedule : {:?}",
            f.schedule.iter().map(|p| p.as_u32()).collect::<Vec<_>>()
        );
        println!(
            "stolen transfer    : {} -> {} ({} bytes)",
            f.detail.src, f.detail.dst, f.detail.size
        );
        println!("(the malicious process wrote ITS data into the victim's private page)");
    }
    println!();

    println!("== Figure 6: 4-instruction repeated passing ==");
    let s = AttackScenario::new(DmaMethod::Repeated4, AdversaryKind::ProbeSharedSource);
    let report = explore(|| s.build(), 5_000, misinformation);
    println!(
        "explored {} interleavings → {} misinformation outcomes",
        report.schedules,
        report.findings.len()
    );
    if !report.findings.is_empty() {
        println!("(the DMA started, but the victim's status load said FAILURE)");
    }
    println!();

    println!("== §3.3.1: 5-instruction repeated passing ==");
    let mut total = 0u64;
    for adv in [
        AdversaryKind::OwnInitiation,
        AdversaryKind::ProbeSharedSource,
        AdversaryKind::Figure5,
        AdversaryKind::SandwichSteal,
    ] {
        let s = AttackScenario::new(DmaMethod::Repeated5, adv);
        let report = explore(|| s.build(), 10_000, any_violation);
        println!(
            "adversary {adv:?}: {} schedules, {} violations",
            report.schedules,
            report.findings.len()
        );
        assert!(report.safe(), "the paper's proof would be wrong!");
        total += report.schedules;
    }
    println!("{total} schedules, zero violations: the paper's correctness argument holds.");
}
