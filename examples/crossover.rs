//! The paper's motivation, quantified (intro / §2.2): "the operating
//! system overhead keeps getting an ever-increasing percentage of the DMA
//! transfer time". For each network generation, what fraction of a
//! message's life is spent starting the kernel DMA — and below what
//! message size does initiation dominate the wire?
//!
//! ```text
//! cargo run --release --example crossover
//! ```

use udma::{crossover_rows, measure_initiation, os_bound_message_size, DmaMethod, Table};
use udma_nic::LinkModel;

fn main() {
    let kernel = measure_initiation(DmaMethod::Kernel, 500).mean;
    let user = measure_initiation(DmaMethod::ExtShadow, 500).mean;
    println!("measured initiation: kernel = {kernel}, ext-shadow = {user}\n");

    for link in
        [LinkModel::ethernet10(), LinkModel::atm155(), LinkModel::atm622(), LinkModel::gigabit()]
    {
        let mut t = Table::new(
            &format!("{}: kernel vs user-level initiation", link.name()),
            &["message (B)", "wire", "kernel total", "user total", "OS fraction", "speedup"],
        );
        let sizes = [64, 256, 1024, 4096, 16384, 65536, 262144];
        for row in crossover_rows(kernel, user, link, &sizes) {
            t.row_owned(vec![
                row.msg_bytes.to_string(),
                row.wire.to_string(),
                row.kernel_total.to_string(),
                row.user_total.to_string(),
                format!("{:.0}%", row.kernel_init_fraction * 100.0),
                format!("{:.2}×", row.speedup),
            ]);
        }
        println!("{t}");
        println!(
            "messages up to {} bytes spend more time in the OS than on the wire\n",
            os_bound_message_size(kernel, link)
        );
    }

    println!(
        "Trend: each faster network raises the OS-bound message size — \
         exactly the paper's argument for user-level DMA."
    );
}
