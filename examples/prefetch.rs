//! Translation-pipeline walkthrough: the same transfers with the
//! pipeline off (demand translation) and on (IOTLB prefetch + batched
//! walks + chunk coalescing), printing the stall counters side by side.
//!
//! Locally, prewalk batches hide the per-miss blocking page-table walks
//! and the coalescer merges physically-contiguous pages into fewer
//! mover chunks. Across the link, the sender announces the destination
//! range at post time, so a cold remote buffer costs exactly one NACK
//! round trip instead of one per page.
//!
//! ```text
//! cargo run --release --example prefetch
//! ```

use udma::{DmaMethod, Machine, MachineConfig, ProcessSpec, VirtDmaSetup};
use udma_iommu::IotlbConfig;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};
use udma_nic::PrefetchConfig;

const NODE: u32 = 0;
const REMOTE_ASID: u32 = 7;
const REMOTE_VA: u64 = 32 * PAGE_SIZE;
const PAGES: u64 = 8;

fn local(label: &str, prefetch: PrefetchConfig) {
    // Pin-on-post with a cold 16-entry IOTLB: every page is registered,
    // so the only translation cost is the walks the IOTLB cannot hide.
    let mut setup = VirtDmaSetup::pin_on_post(IotlbConfig::fully_associative(16));
    setup.virt.prefetch = prefetch;
    let mut m = Machine::new(MachineConfig {
        virt_dma: Some(setup),
        ..MachineConfig::new(DmaMethod::Kernel)
    });
    let pid = m.spawn(&ProcessSpec::two_buffers_of(PAGES), |_| {
        udma_cpu::ProgramBuilder::new().halt().build()
    });
    let (src, dst) = (m.env(pid).buffer(0).va, m.env(pid).buffer(1).va);
    let id = m.post_virt(pid, src, dst, PAGES * PAGE_SIZE).unwrap();
    let state = m.run_virt(id, 64);

    let t = m.virt_xfer(id).unwrap();
    let tlb = m.engine().core().iommu().unwrap().stats();
    println!("local  | {label}:");
    println!(
        "  {state:?}, {} chunks, {} blocking walks, {} prewalked ({} hidden), \
         stall {:.2} µs, completion {:.2} µs",
        m.engine().core().virt_stats().chunks,
        tlb.tlb.misses,
        tlb.prefetch_fills,
        tlb.prefetch_hidden,
        t.stall.as_us(),
        (t.finished.unwrap() - t.started).as_us()
    );
}

fn remote(label: &str, prefetch: PrefetchConfig) {
    let mut setup = VirtDmaSetup::default();
    setup.virt.prefetch = prefetch;
    let mut m = Machine::new(MachineConfig {
        virt_dma: Some(setup),
        remote_nodes: 1,
        ..MachineConfig::new(DmaMethod::Kernel)
    });
    let pid = m.spawn(&ProcessSpec::two_buffers_of(PAGES), |_| {
        udma_cpu::ProgramBuilder::new().halt().build()
    });
    m.grant_remote_buffer(NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGES, Perms::READ_WRITE);
    let src = m.env(pid).buffer(0).va;
    // Warm the local source so every stall below is receive-side.
    for p in 0..PAGES {
        let warm = m.post_virt(pid, src + p * PAGE_SIZE, src + p * PAGE_SIZE, 8).unwrap();
        m.run_virt(warm, 16);
    }
    let id = m
        .post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGES * PAGE_SIZE)
        .unwrap();
    let state = m.run_virt(id, 64);

    let t = m.virt_xfer(id).unwrap();
    let node_os = m.remote_fault_service(NODE).stats();
    println!("remote | {label}:");
    println!(
        "  {state:?}, {} NACKs (stall {:.2} µs), node OS serviced {} ({} range-prefilled), \
         total stall {:.2} µs, completion {:.2} µs",
        t.nacks,
        t.nack_stall.as_us(),
        node_os.serviced,
        node_os.range_prefilled,
        t.stall.as_us(),
        (t.finished.unwrap() - t.started).as_us()
    );
}

fn main() {
    local("pipeline off (blocking walk per IOTLB miss)", PrefetchConfig::default());
    local("prefetch depth 4 (batched, pipelined walks)", PrefetchConfig::depth(4));
    local("prefetch 4 + coalesce 4 (fewer, larger chunks)", PrefetchConfig::pipelined(4, 4));
    println!();
    remote("pipeline off (one NACK per cold page)", PrefetchConfig::default());
    remote("announced range (one NACK for the whole buffer)", PrefetchConfig::depth(4));
}
