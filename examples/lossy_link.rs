//! Reliable delivery over a lossy link (DESIGN.md §4d): a seeded chaos
//! plan drops a quarter of the data frames crossing the cluster link,
//! and the go-back-N layer retransmits until every byte lands anyway.
//! Then a scripted burst outage kills the link mid-transfer: the
//! transfer aborts `DMA_LINK_FAILED` with exactly its in-order prefix,
//! repeated aborts trip the circuit breaker (`LinkDown` fail-fast), and
//! `link_repair()` brings the path back.
//!
//! ```text
//! cargo run --release --example lossy_link
//! ```

use udma::{DmaMethod, Machine, MachineConfig, ProcessSpec, VirtDmaSetup};
use udma_iommu::IotlbConfig;
use udma_mem::{Perms, VirtAddr, PAGE_SIZE};
use udma_nic::{FaultPlan, RejectReason, VirtState, DMA_LINK_FAILED};

const NODE: u32 = 0;
const REMOTE_ASID: u32 = 9;
const REMOTE_VA: u64 = 32 * PAGE_SIZE;
const PAGES: u64 = 2;

fn machine(plan: FaultPlan) -> (Machine, udma_cpu::Pid, VirtAddr, Vec<u8>) {
    let mut m = Machine::new(MachineConfig {
        virt_dma: Some(VirtDmaSetup::pin_on_post(IotlbConfig::default())),
        remote_nodes: 1,
        link_chaos: Some(plan),
        ..MachineConfig::new(DmaMethod::Kernel)
    });
    let pid = m.spawn(&ProcessSpec::two_buffers_of(PAGES), |_| {
        udma_cpu::ProgramBuilder::new().halt().build()
    });
    m.grant_remote_buffer(NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGES, Perms::READ_WRITE);
    let src_va = m.env(pid).buffer(0).va;
    let src_frame = m.env(pid).buffer(0).first_frame;
    let data: Vec<u8> = (0..PAGES * PAGE_SIZE).map(|i| (i % 251) as u8).collect();
    m.memory().borrow_mut().write_bytes(src_frame.base(), &data).unwrap();
    (m, pid, src_va, data)
}

/// Read the deposit back out of the node's frames via its IOMMU tables.
fn remote_bytes(m: &Machine, len: usize) -> Vec<u8> {
    let cluster = m.cluster().unwrap();
    let cl = cluster.borrow();
    let mut got = vec![0u8; len];
    for p in 0..PAGES {
        let va = VirtAddr::new(REMOTE_VA + p * PAGE_SIZE);
        let pa = cl
            .node_iommu(NODE)
            .unwrap()
            .table(REMOTE_ASID)
            .and_then(|t| t.entry(va.page()))
            .map(|e| e.frame.base())
            .expect("pin-on-post registered every page");
        let lo = (p * PAGE_SIZE) as usize;
        cl.read(NODE, pa, &mut got[lo..lo + PAGE_SIZE as usize]).unwrap();
    }
    got
}

fn post(m: &mut Machine, pid: udma_cpu::Pid, src: VirtAddr) -> Result<usize, RejectReason> {
    m.post_virt_remote(pid, src, NODE, REMOTE_ASID, VirtAddr::new(REMOTE_VA), PAGES * PAGE_SIZE)
}

fn main() {
    // 1. A 25% frame-drop link: go-back-N retransmits until every byte
    //    lands, bit-exact, at the cost of timeouts and link stall.
    let (mut m, pid, src, data) = machine(FaultPlan::lossless(0xC0C0A).with_drop(0.25));
    let id = post(&mut m, pid, src).unwrap();
    let state = m.run_virt(id, 64);
    let t = m.virt_xfer(id).unwrap();
    let chaos = m.link_chaos_stats().unwrap();
    let node = m.node_link_stats(NODE);
    println!("25% frame drop:");
    println!("  transfer : {state:?}, {} bytes moved", t.moved);
    println!(
        "  link     : {} frames sent, {} dropped by chaos, {} retransmitted, {} timeouts",
        chaos.data_frames, chaos.dropped, t.retransmits, t.link_timeouts
    );
    println!(
        "  node     : {} bytes accepted, {} dup ignored, {} out-of-order discarded",
        node.bytes_accepted, node.dup_ignored, node.ooo_discarded
    );
    println!(
        "  stall    : {:.2} µs charged to the retransmit/backoff ladder",
        t.link_stall.as_us()
    );
    assert_eq!(state, VirtState::Complete);
    assert_eq!(remote_bytes(&m, data.len()), data, "deposit must be bit-exact");
    println!("  data     : {} bytes verified on node {NODE}\n", data.len());

    // 2. A burst outage swallows everything after the first 3 frames:
    //    the retry budget burns out, the transfer aborts with exactly
    //    its in-order prefix, and repeated aborts trip the breaker.
    let mtu = m.engine().core().reliability().mtu;
    let threshold = m.engine().core().reliability().breaker_threshold;
    let (mut m, pid, src, data) = machine(FaultPlan::lossless(0xDEAD).with_burst(3, u64::MAX));
    println!("burst outage after 3 frames (breaker threshold {threshold}):");
    let mut last_status = 0;
    for round in 1..=threshold {
        let id = post(&mut m, pid, src).expect("link still up");
        let state = m.run_virt(id, 64);
        let t = m.virt_xfer(id).unwrap();
        let now = m.time();
        last_status = m.engine().core_mut().virt_status(id, now);
        assert_eq!(state, VirtState::LinkFailed);
        // The burst position is global to the plan, so only the first
        // transfer gets its 3 frames through; later rounds move nothing.
        let expect = if round == 1 { 3 * mtu } else { 0 };
        assert_eq!(t.moved, expect, "deposit is exactly the in-order prefix");
        println!(
            "  abort {round}: LinkFailed after {} bytes ({} retransmit rounds), status -{}",
            t.moved,
            t.retransmits,
            u64::MAX - last_status + 1
        );
    }
    assert_eq!(last_status, DMA_LINK_FAILED);
    assert!(m.link_down(), "{threshold} consecutive aborts trip the breaker");
    let prefix = &remote_bytes(&m, data.len())[..(3 * mtu) as usize];
    assert_eq!(prefix, &data[..(3 * mtu) as usize]);

    // 3. Breaker open: new posts fail fast instead of burning a full
    //    retry budget each. Repair arms the path again.
    match post(&mut m, pid, src) {
        Err(RejectReason::LinkDown) => println!("  breaker  : post rejected LinkDown (fail-fast)"),
        other => panic!("expected LinkDown, got {other:?}"),
    }
    m.link_repair();
    println!("  repair   : link_repair() called, breaker reset");

    // The chaos plan's burst is positional (frames 3..), so a repaired
    // link with a fresh plan delivers again end to end.
    let (mut m, pid, src, data) = machine(FaultPlan::lossless(0xFEED));
    let id = post(&mut m, pid, src).unwrap();
    let state = m.run_virt(id, 64);
    assert_eq!(state, VirtState::Complete);
    assert_eq!(remote_bytes(&m, data.len()), data);
    println!("  recovery : lossless plan, transfer Complete, bytes verified\n");
}
