//! Prints the exact instruction sequence each initiation method compiles
//! to — the paper's figures 1–4 and 7 as living code. Useful to see what
//! "2 to 5 assembly instructions" means concretely, and how the kernel
//! baseline differs.
//!
//! ```text
//! cargo run --example disassembly
//! ```

use udma::{emit_dma, DmaMethod, DmaRequest, Machine, ProcessSpec};
use udma_cpu::ProgramBuilder;

fn main() {
    for method in DmaMethod::ALL {
        let mut m = Machine::with_method(method);
        let mut spec = ProcessSpec::two_buffers();
        if method == DmaMethod::Shrimp1 {
            spec.mapped_out.push((0, 1));
        }
        m.spawn(&spec, |env| {
            let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
            let mut uniq = 0;
            let prog = emit_dma(env, ProgramBuilder::new(), &req, &mut uniq).build();
            println!("=== {} ===", method.name());
            println!(
                "(engine protocol: {}; kernel switch policy: {})",
                method.protocol(),
                method.switch_policy()
            );
            print!("{prog}");
            println!();
            // The spawned program itself is irrelevant; halt immediately.
            ProgramBuilder::new().halt().build()
        });
    }
    println!(
        "Addresses with bit 45 set are *shadow* virtual addresses: the \
         TLB routes them into the DMA engine's window, carrying the \
         physical page the process provably has rights to."
    );
}
