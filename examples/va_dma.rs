//! Virtual-address DMA walkthrough: a user program posts a multi-page
//! transfer by *virtual* address through its context page; the NI-side
//! IOMMU translates page by page, faulting to the OS where the I/O page
//! table is cold.
//!
//! ```text
//! cargo run --release --example va_dma
//! ```

use udma::{emit_virt_dma, DmaMethod, Machine, MachineConfig, ProcessSpec, VirtDmaSetup};
use udma_cpu::ProgramBuilder;
use udma_iommu::IotlbConfig;
use udma_mem::PAGE_SIZE;

fn run(label: &str, setup: VirtDmaSetup) {
    let mut m = Machine::new(MachineConfig {
        virt_dma: Some(setup),
        ..MachineConfig::new(DmaMethod::Kernel)
    });
    let pid = m.spawn(&ProcessSpec::two_buffers_of(4), |env| {
        emit_virt_dma(env, ProgramBuilder::new(), env.buffer(0).va, env.buffer(1).va, 4 * PAGE_SIZE)
            .halt()
            .build()
    });
    let src = m.env(pid).buffer(0).first_frame;
    let data: Vec<u8> = (0..4 * PAGE_SIZE).map(|i| (i % 251) as u8).collect();
    m.memory().borrow_mut().write_bytes(src.base(), &data).unwrap();

    // The program runs: three context-page stores and a status load.
    m.run(10_000);
    // The OS drains the engine's I/O fault queue until the transfer is
    // terminal (a no-op for pin-on-post).
    let state = m.run_virt(0, 64);

    let vstats = m.engine().core().virt_stats();
    let tlb = m.engine().core().iommu().unwrap().stats();
    let os = m.fault_service().stats();
    let t = m.virt_xfer(0).unwrap();
    println!("{label}:");
    println!("  transfer : {state:?}, {} bytes in {} chunks", t.moved, t.chunks);
    println!(
        "  engine   : {} faults, {} retries, stall {:.2} µs",
        vstats.faults,
        vstats.retries,
        t.stall.as_us()
    );
    println!(
        "  iotlb    : {} hits / {} misses ({} evictions)",
        tlb.tlb.hits, tlb.tlb.misses, tlb.tlb.evictions
    );
    println!(
        "  os       : {} serviced ({} mapped, {} swapped in, {} unresolvable)",
        os.serviced, os.mapped, os.swapped_in, os.unresolvable
    );

    let dst = m.env(pid).buffer(1).first_frame;
    let mut got = vec![0u8; data.len()];
    m.memory().borrow().read_bytes(dst.base(), &mut got).unwrap();
    assert_eq!(got, data, "transfer data mismatch");
    println!("  data     : {} bytes verified\n", data.len());
}

fn main() {
    run("demand paging (cold I/O page table)", VirtDmaSetup::default());
    run(
        "pin-on-post (buffers registered at spawn)",
        VirtDmaSetup::pin_on_post(IotlbConfig::default()),
    );
}
