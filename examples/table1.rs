//! Regenerates the paper's **Table 1** (§3.4): mean DMA initiation cost
//! per method, 1 000 initiations each to/from different addresses.
//!
//! ```text
//! cargo run --release --example table1
//! ```

use udma::{measure_initiation, table1, DmaMethod, Table};

fn main() {
    let mut t = Table::new(
        "Table 1: Comparison of DMA initiation algorithms (simulated Alpha 3000/300, TurboChannel 12.5 MHz)",
        &["DMA algorithm", "paper (µs)", "measured (µs)", "ratio", "user instrs"],
    );
    for cost in table1(1_000) {
        t.row_owned(vec![
            cost.method.name().to_string(),
            cost.paper_us.map_or("—".into(), |p| format!("{p:.1}")),
            format!("{:.2}", cost.mean.as_us()),
            cost.vs_paper().map_or("—".into(), |r| format!("{r:.2}×")),
            cost.user_instructions.map_or("thousands".into(), |n| n.to_string()),
        ]);
    }
    println!("{t}");

    // The methods the paper describes but does not put in Table 1.
    let mut extra = Table::new(
        "Other methods from the paper (same harness)",
        &["DMA algorithm", "measured (µs)", "kernel-free?"],
    );
    for method in [
        DmaMethod::Shrimp1,
        DmaMethod::Shrimp2 { patched_kernel: true },
        DmaMethod::Flash { patched_kernel: true },
        DmaMethod::Pal,
        DmaMethod::ExtShadowPairwise,
        DmaMethod::Repeated3,
        DmaMethod::Repeated4,
    ] {
        let cost = measure_initiation(method, 1_000);
        extra.row_owned(vec![
            method.name().to_string(),
            format!("{:.2}", cost.mean.as_us()),
            if method.kernel_free() { "yes".into() } else { "no".into() },
        ]);
    }
    println!("{extra}");
}
