//! E11–E13, E15 — virtual-address DMA: IOTLB capacity, the cost of page
//! faults taken mid-transfer, the cross-link remote-fault path, and the
//! translation pipeline (prefetch, batched walks, chunk coalescing).

use std::hint::black_box;
use udma_nic::LinkModel;
use udma_testkit::bench::{run_target, BenchConfig};
use udma_workloads::{
    fault_rate_sweep, iotlb_sweep, pipeline_sweep, remote_fault_sweep, remote_pipeline_sweep,
};

fn main() {
    for row in iotlb_sweep(&[4, 8, 16, 32, 64], 16, 4) {
        println!(
            "E11 iotlb {:>3} entries: hit ratio {:.3} ({} hits / {} misses, {} evictions)",
            row.entries, row.hit_ratio, row.hits, row.misses, row.evictions
        );
    }
    for row in fault_rate_sweep(&[0, 25, 50, 75, 100], 16) {
        println!(
            "E12 {:>3}% prefaulted: {:>2} faults, stall {:>7.2} µs, completion {:>8.2} µs",
            row.prefaulted_pct,
            row.faults,
            row.stall.as_us(),
            row.completion.as_us()
        );
    }
    let links =
        [LinkModel::ethernet10(), LinkModel::atm155(), LinkModel::atm622(), LinkModel::gigabit()];
    for row in remote_fault_sweep(&links, &[0, 50, 100], 8) {
        println!(
            "E13 {:<15} {:>3}% prefaulted: {:>2} NACKs, nack stall {:>7.2} µs, \
             stall {:>8.2} µs, completion {:>9.2} µs",
            row.link,
            row.prefaulted_pct,
            row.remote_faults,
            row.nack_stall.as_us(),
            row.stall.as_us(),
            row.completion.as_us()
        );
    }
    for row in pipeline_sweep(&[0, 2, 8], &[8, 64], &[1, 8], 16) {
        println!(
            "E15 local  depth {:>2} × {:>3} entries × coalesce {:>2}: {:>3} chunks, \
             {:>3} misses ({:>3} hidden), stall {:>7.2} µs, completion {:>8.2} µs",
            row.depth,
            row.entries,
            row.max_coalesce,
            row.chunks,
            row.misses,
            row.prefetch_hidden,
            row.stall.as_us(),
            row.completion.as_us()
        );
    }
    for row in remote_pipeline_sweep(&[0, 2, 8], &[64], &[1, 8], 8) {
        println!(
            "E15 remote depth {:>2} × {:>3} entries × coalesce {:>2}: {:>3} chunks, \
             {:>2} NACKs, stall {:>8.2} µs, completion {:>9.2} µs",
            row.depth,
            row.entries,
            row.max_coalesce,
            row.chunks,
            row.nacks,
            row.stall.as_us(),
            row.completion.as_us()
        );
    }
    run_target(
        "va",
        BenchConfig::iters(10),
        vec![
            (
                "E11_iotlb_sweep",
                Box::new(|| {
                    let rows = iotlb_sweep(&[8, 32, 128], 16, 4);
                    // Hit ratio rises with capacity (acceptance: E11).
                    assert!(rows[0].hit_ratio < rows[2].hit_ratio);
                    black_box(rows);
                }) as Box<dyn FnMut()>,
            ),
            (
                "E12_fault_rate_sweep",
                Box::new(|| {
                    let rows = fault_rate_sweep(&[0, 100], 8);
                    // Fault-path cost ≫ IOTLB-hit cost (acceptance: E12).
                    assert!(rows[0].stall.as_ns() > 10.0 * rows[1].stall.as_ns().max(1.0));
                    black_box(rows);
                }),
            ),
            (
                "E13_remote_fault_sweep",
                Box::new(|| {
                    let links = [LinkModel::gigabit(), LinkModel::ethernet10()];
                    let rows = remote_fault_sweep(&links, &[0, 100], 4);
                    // The NACK round trip scales with wire latency: the
                    // slow link pays 10× the fast one (acceptance: E13).
                    assert_eq!(rows[2].nack_stall.as_ps(), rows[0].nack_stall.as_ps() * 10);
                    assert_eq!(rows[1].remote_faults, 0);
                    black_box(rows);
                }),
            ),
            (
                "E15_pipeline_sweep",
                Box::new(|| {
                    let rows = pipeline_sweep(&[0, 4], &[64], &[1, 4], 8);
                    // Prefetch hides blocking walks; coalescing (behind
                    // the prefetcher) shrinks chunks (acceptance: E15).
                    assert!(rows[2].stall < rows[0].stall);
                    assert!(rows[3].chunks < rows[2].chunks);
                    black_box(rows);
                }),
            ),
            (
                "E15_remote_pipeline_sweep",
                Box::new(|| {
                    let rows = remote_pipeline_sweep(&[0, 4], &[64], &[1], 4);
                    // An announced cold range costs one NACK round trip
                    // instead of one per page (acceptance: E15).
                    assert_eq!(rows[0].nacks, 4);
                    assert_eq!(rows[1].nacks, 1);
                    black_box(rows);
                }),
            ),
        ],
    );
}
