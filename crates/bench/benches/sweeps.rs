//! E7–E10 — parameter sweeps: bus frequency, message-size crossover,
//! atomic operations, key guessing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use std::hint::black_box;
use udma::{crossover_rows, measure_initiation, DmaMethod};
use udma_nic::LinkModel;
use udma_workloads::{atomic_comparison, bus_sweep, guess_acceptance};

fn bench_bus_sweep(c: &mut Criterion) {
    for row in bus_sweep(DmaMethod::ExtShadow, &[12, 25, 33, 50, 66], 500) {
        println!("E7 ext-shadow @ {:>2} MHz bus: {:.2} µs", row.bus_mhz, row.mean.as_us());
    }
    c.bench_function("E7_bus_sweep", |b| {
        b.iter(|| black_box(bus_sweep(DmaMethod::ExtShadow, &[12, 33, 66], 100)))
    });
}

fn bench_crossover(c: &mut Criterion) {
    let kernel = measure_initiation(DmaMethod::Kernel, 300).mean;
    let user = measure_initiation(DmaMethod::ExtShadow, 300).mean;
    c.bench_function("E8_crossover_analysis", |b| {
        b.iter(|| {
            black_box(crossover_rows(
                kernel,
                user,
                LinkModel::gigabit(),
                &[64, 512, 4096, 32768, 262144],
            ))
        })
    });
}

fn bench_atomics(c: &mut Criterion) {
    for (method, t) in atomic_comparison(500) {
        println!("E9 atomic via {:<26}: {:.2} µs", method.name(), t.as_us());
    }
    c.bench_function("E9_atomic_comparison", |b| {
        b.iter(|| black_box(atomic_comparison(100)))
    });
}

fn bench_key_guessing(c: &mut Criterion) {
    c.bench_function("E10_key_guess_sweep", |b| {
        b.iter(|| {
            let stats = guess_acceptance(16, 1_000, 7);
            assert_eq!(stats.accepted, 0);
            black_box(stats.attempts)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(8));
    targets = bench_bus_sweep, bench_crossover, bench_atomics, bench_key_guessing
}
criterion_main!(benches);
