//! E7–E10 — parameter sweeps: bus frequency, message-size crossover,
//! atomic operations, key guessing.

use std::hint::black_box;
use udma::{crossover_rows, measure_initiation, DmaMethod};
use udma_nic::LinkModel;
use udma_testkit::bench::{run_target, BenchConfig};
use udma_workloads::{atomic_comparison, bus_sweep, guess_acceptance};

fn main() {
    for row in bus_sweep(DmaMethod::ExtShadow, &[12, 25, 33, 50, 66], 500) {
        println!("E7 ext-shadow @ {:>2} MHz bus: {:.2} µs", row.bus_mhz, row.mean.as_us());
    }
    for (method, t) in atomic_comparison(500) {
        println!("E9 atomic via {:<26}: {:.2} µs", method.name(), t.as_us());
    }
    let kernel = measure_initiation(DmaMethod::Kernel, 300).mean;
    let user = measure_initiation(DmaMethod::ExtShadow, 300).mean;
    run_target(
        "sweeps",
        BenchConfig::iters(10),
        vec![
            (
                "E7_bus_sweep",
                Box::new(|| {
                    black_box(bus_sweep(DmaMethod::ExtShadow, &[12, 33, 66], 100));
                }) as Box<dyn FnMut()>,
            ),
            (
                "E8_crossover_analysis",
                Box::new(move || {
                    black_box(crossover_rows(
                        kernel,
                        user,
                        LinkModel::gigabit(),
                        &[64, 512, 4096, 32768, 262144],
                    ));
                }),
            ),
            (
                "E9_atomic_comparison",
                Box::new(|| {
                    black_box(atomic_comparison(100));
                }),
            ),
            (
                "E10_key_guess_sweep",
                Box::new(|| {
                    let stats = guess_acceptance(16, 1_000, 7);
                    assert_eq!(stats.accepted, 0);
                    black_box(stats.attempts);
                }),
            ),
        ],
    );
}
