//! E16 — the sharded simulation core's self-benchmark: simulation
//! events per host second, sequential oracle vs parallel runner, with
//! every parallel run digest-checked against the oracle.
//!
//! The ≥1.5× parallel-speedup expectation only makes sense with CPUs to
//! spend; on a single-core host the parallel runner pays barrier
//! overhead for nothing, so the assertion arms only when the host
//! reports 4+ available cores. The ratio is printed either way.

use std::hint::black_box;
use udma_bus::sim::RunnerKind;
use udma_workloads::{build_cluster, shard_scale_sweep, ClusterWorkload};

/// Cores the host will actually run threads on.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn main() {
    let cores = host_cores();
    println!(
        "host cores: {cores} (speedup assertion {})",
        if cores >= 4 { "armed" } else { "off" }
    );
    for row in shard_scale_sweep(&[16, 64], &[1, 2, 4, 8], 0xE16) {
        println!(
            "E16 {:>3} nodes {:>2} shards {:>10}: {:>6} events in {:>8.3} ms = {:>10.0} ev/s, \
             speedup {:>5.2}x, oracle-match {}",
            row.nodes,
            row.shards,
            format!("{:?}", row.runner),
            row.events,
            row.wall_ms,
            row.events_per_sec,
            row.speedup,
            row.matches_oracle
        );
    }
    udma_testkit::bench::run_target(
        "sim",
        udma_testkit::bench::BenchConfig::iters(5),
        vec![
            (
                "E16_sequential_64n",
                Box::new(|| {
                    let w = ClusterWorkload::standard(64, 0xE16);
                    let mut sim = build_cluster(&w, 1, RunnerKind::Sequential);
                    sim.run();
                    assert_eq!(sim.posted(), w.total_xfers());
                    black_box(sim.events_per_sec());
                }) as Box<dyn FnMut()>,
            ),
            (
                "E16_parallel_4shard_64n",
                Box::new(|| {
                    let w = ClusterWorkload::standard(64, 0xE16);
                    let mut sim = build_cluster(&w, 4, RunnerKind::Parallel);
                    sim.run();
                    black_box(sim.events_per_sec());
                }),
            ),
            (
                "E16_differential_and_speedup",
                Box::new(|| {
                    // One full differential pass: oracle vs 4-shard
                    // parallel on the 64-node workload, digests equal.
                    let w = ClusterWorkload::standard(64, 0xE16);
                    let mut seq = build_cluster(&w, 1, RunnerKind::Sequential);
                    seq.run();
                    let mut par = build_cluster(&w, 4, RunnerKind::Parallel);
                    par.run();
                    assert_eq!(
                        seq.digest(),
                        par.digest(),
                        "parallel backend diverged from the sequential oracle"
                    );
                    let speedup = seq.wall().as_secs_f64() / par.wall().as_secs_f64().max(1e-9);
                    if host_cores() >= 4 {
                        assert!(
                            speedup >= 1.5,
                            "expected >=1.5x parallel speedup on a {}-core host, got {speedup:.2}x",
                            host_cores()
                        );
                    }
                    black_box(speedup);
                }),
            ),
        ],
    );
}
