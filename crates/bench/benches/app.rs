//! Application-level benchmarks: the `udma-msg` channel (throughput and
//! ping-pong) built on the library, per initiation method.

use std::hint::black_box;
use udma::DmaMethod;
use udma_msg::{measure_messaging, measure_pingpong, ChannelConfig};
use udma_testkit::bench::{run_target, BenchConfig, NamedBench};

fn main() {
    let cfg = ChannelConfig { slots: 4, payload_words: 16 };
    for method in [DmaMethod::Kernel, DmaMethod::ExtShadow, DmaMethod::Repeated5] {
        let cost = measure_messaging(method, &cfg, 24);
        println!(
            "messaging via {:<34} {:.2} µs per 128-byte message",
            method.name(),
            cost.per_message.as_us()
        );
    }
    for cost in udma_msg::pingpong_comparison(16) {
        println!(
            "ping-pong via {:<34} {:.2} µs round trip",
            cost.method.name(),
            cost.round_trip.as_us()
        );
    }

    let timed = [DmaMethod::Kernel, DmaMethod::ExtShadow];
    let labels: Vec<String> = timed
        .iter()
        .map(|m| format!("messaging/{}", m.name().replace([' ', '(', ')', '.', ',', ':'], "_")))
        .collect();
    let mut benches: Vec<NamedBench<'_>> = timed
        .iter()
        .zip(&labels)
        .map(|(&method, label)| {
            (
                label.as_str(),
                Box::new(move || {
                    black_box(measure_messaging(black_box(method), &cfg, 12));
                }) as Box<dyn FnMut()>,
            )
        })
        .collect();
    benches.push((
        "pingpong_ext_shadow",
        Box::new(|| {
            black_box(measure_pingpong(DmaMethod::ExtShadow, 8));
        }),
    ));
    run_target("app", BenchConfig::iters(10), benches);
}
