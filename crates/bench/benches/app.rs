//! Application-level benchmarks: the `udma-msg` channel (throughput and
//! ping-pong) built on the library, per initiation method.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use udma::DmaMethod;
use udma_msg::{measure_messaging, measure_pingpong, ChannelConfig};

fn bench_messaging(c: &mut Criterion) {
    let cfg = ChannelConfig { slots: 4, payload_words: 16 };
    for method in [DmaMethod::Kernel, DmaMethod::ExtShadow, DmaMethod::Repeated5] {
        let cost = measure_messaging(method, &cfg, 24);
        println!(
            "messaging via {:<34} {:.2} µs per 128-byte message",
            method.name(),
            cost.per_message.as_us()
        );
    }
    let mut group = c.benchmark_group("messaging");
    for method in [DmaMethod::Kernel, DmaMethod::ExtShadow] {
        let label = method.name().replace([' ', '(', ')', '.', ',', ':'], "_");
        group.bench_function(label, |b| {
            b.iter(|| black_box(measure_messaging(black_box(method), &cfg, 12)))
        });
    }
    group.finish();
}

fn bench_pingpong(c: &mut Criterion) {
    for cost in udma_msg::pingpong_comparison(16) {
        println!(
            "ping-pong via {:<34} {:.2} µs round trip",
            cost.method.name(),
            cost.round_trip.as_us()
        );
    }
    c.bench_function("pingpong_ext_shadow", |b| {
        b.iter(|| black_box(measure_pingpong(DmaMethod::ExtShadow, 8)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(8));
    targets = bench_messaging, bench_pingpong
}
criterion_main!(benches);
