//! E14 — reliable delivery over a lossy link: what the go-back-N layer
//! salvages as the drop rate rises, and what the retry budget buys.

use std::hint::black_box;
use udma_workloads::lossy_link_sweep;

fn main() {
    for row in lossy_link_sweep(&[0, 10, 25, 40], &[2, 6], 2, 8) {
        println!(
            "E14 loss {:>2}% budget {}: {:>2}/{} completed, {:>2} aborted, {:>3} retransmits, \
             goodput {:>8.2} MB/s, p99 {:>8.2} µs",
            row.loss_pct,
            row.retry_budget,
            row.completed,
            row.transfers,
            row.link_failed,
            row.retransmits,
            row.goodput_mb_s,
            row.p99_completion.as_us()
        );
    }
    udma_testkit::bench::run_target(
        "lossy",
        udma_testkit::bench::BenchConfig::iters(10),
        vec![
            (
                "E14_lossy_link_sweep",
                Box::new(|| {
                    let rows = lossy_link_sweep(&[0, 30], &[6], 2, 6);
                    // Loss erodes goodput and forces retransmits
                    // (acceptance: E14).
                    assert_eq!(rows[0].retransmits, 0);
                    assert!(rows[1].retransmits > 0);
                    assert!(rows[1].goodput_mb_s < rows[0].goodput_mb_s);
                    black_box(rows);
                }) as Box<dyn FnMut()>,
            ),
            (
                "E14_budget_tradeoff",
                Box::new(|| {
                    let rows = lossy_link_sweep(&[35], &[1, 8], 2, 6);
                    // A roomier budget converts aborts into completions.
                    assert!(rows[1].completed >= rows[0].completed);
                    black_box(rows);
                }),
            ),
        ],
    );
}
