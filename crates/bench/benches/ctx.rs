//! E17 — context virtualization: initiation p50/p99 and steal rate as
//! 100 → 100k logical processes share a handful of NI register
//! contexts, and the hostile-tenant QoS scenario.

use std::hint::black_box;
use udma_os::CtxVictimPolicy;
use udma_testkit::bench::{run_target, BenchConfig};
use udma_workloads::{context_pressure_sweep, e17_context_grid, hostile_tenant_scenario};

fn main() {
    let procs = [100u32, 1_000, 10_000, 100_000];
    for &contexts in &e17_context_grid() {
        for row in context_pressure_sweep(&procs, contexts, 2_000, CtxVictimPolicy::Lru, 0xE17) {
            println!(
                "E17 {:>6} procs on {} ctx ({}): p50 {:>8.2} µs, p99 {:>8.2} µs, \
                 hit {:>5.3}, steal {:>5.3}, {:>4} fallbacks",
                row.processes,
                row.contexts,
                row.policy,
                row.p50_initiation.as_us(),
                row.p99_initiation.as_us(),
                row.hit_rate,
                row.steal_rate,
                row.kernel_fallbacks
            );
        }
    }
    for qos in [false, true] {
        let row = hostile_tenant_scenario(6, 2, 48, 50, qos, 0xE17);
        println!(
            "E17 hostile tenant, QoS {:>3}: victim p99 {:>8.2} µs vs uncontended {:>8.2} µs \
             ({:>6.2}×), {:>4} victim fallbacks, {:>4} hostile throttles",
            if qos { "on" } else { "off" },
            row.victim_p99.as_us(),
            row.uncontended_p99.as_us(),
            row.degradation,
            row.victim_fallbacks,
            row.hostile_throttled
        );
    }
    run_target(
        "ctx",
        BenchConfig::iters(10),
        vec![
            (
                "E17_context_pressure",
                Box::new(|| {
                    let rows =
                        context_pressure_sweep(&[100, 10_000], 4, 500, CtxVictimPolicy::Lru, 0xE17);
                    // Pressure degrades gracefully: more processes means
                    // fewer hits and more steals, never a collapse into
                    // all-fallback (acceptance: E17).
                    assert!(rows[1].hit_rate < rows[0].hit_rate);
                    assert!(rows[1].steal_rate >= rows[0].steal_rate);
                    assert!(rows[1].p99_initiation >= rows[0].p99_initiation);
                    black_box(rows);
                }) as Box<dyn FnMut()>,
            ),
            (
                "E17_hostile_tenant_qos",
                Box::new(|| {
                    // With QoS the hostile burst cannot push the victim's
                    // p99 above 2× uncontended; without it the same burst
                    // does real damage (acceptance: E17).
                    let on = hostile_tenant_scenario(6, 2, 48, 50, true, 0xE17);
                    assert!(on.degradation <= 2.0, "QoS on: degradation {:.2}×", on.degradation);
                    assert_eq!(on.victim_fallbacks, 0);
                    let off = hostile_tenant_scenario(6, 2, 48, 50, false, 0xE17);
                    assert!(off.degradation > on.degradation);
                    black_box((on, off));
                }),
            ),
        ],
    );
}
