//! E19 — node fault domain self-benchmark: what crash churn costs the
//! simulator and the workload.
//!
//! Three targets: the zero-crash baseline (which must be exactly the
//! crash-free simulator — the fault domain only exists once a plan is
//! injected), the same workload under crash-and-reboot churn, and one
//! full differential pass (sequential oracle vs 4-shard parallel under
//! active plans, digests equal).

use std::hint::black_box;
use udma_bus::sim::RunnerKind;
use udma_workloads::{build_crash_cluster, node_fault_sweep, CrashWorkload};

fn main() {
    for row in node_fault_sweep(12, &[0, 2, 4], &[300], &[200], &[2, 4], 0xE19) {
        println!(
            "E19 {:>2} crashes reboot {:>4}µs lease {:>4}µs: {:>2}/{:>2} complete, \
             {:>2} node-down, avail {:.3}, goodput {:>7.1} Mb/s, recovery p50/p99 \
             {:>8.2}/{:>8.2} µs, {} fenced, {} regrants, oracle-match {}",
            row.crashes,
            row.reboot_us,
            row.lease_us,
            row.completed,
            row.posted,
            row.node_down,
            row.availability,
            row.goodput_mbps,
            row.recovery_p50.as_us(),
            row.recovery_p99.as_us(),
            row.fenced,
            row.regrants,
            row.matches_oracle
        );
    }
    udma_testkit::bench::run_target(
        "crash",
        udma_testkit::bench::BenchConfig::iters(5),
        vec![
            (
                "E19_crash_free_baseline_12n",
                Box::new(|| {
                    let w = CrashWorkload::standard(12, 0, 300, 200, 0xE19);
                    let mut sim = build_crash_cluster(&w, 1, RunnerKind::Sequential);
                    sim.run();
                    assert_eq!(sim.posted(), w.total_xfers());
                    black_box(sim.events_per_sec());
                }) as Box<dyn FnMut()>,
            ),
            (
                "E19_crash_churn_12n_4plans",
                Box::new(|| {
                    let w = CrashWorkload::standard(12, 4, 300, 200, 0xE19);
                    let mut sim = build_crash_cluster(&w, 1, RunnerKind::Sequential);
                    sim.run();
                    black_box(sim.events_per_sec());
                }),
            ),
            (
                "E19_differential_under_churn",
                Box::new(|| {
                    let w = CrashWorkload::standard(12, 4, 300, 200, 0xE19);
                    let mut seq = build_crash_cluster(&w, 1, RunnerKind::Sequential);
                    seq.run();
                    let mut par = build_crash_cluster(&w, 4, RunnerKind::Parallel);
                    par.run();
                    assert_eq!(
                        seq.digest(),
                        par.digest(),
                        "parallel backend diverged from the sequential oracle under crash churn"
                    );
                    black_box(seq.events_per_sec());
                }),
            ),
        ],
    );
}
