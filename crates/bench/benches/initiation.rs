//! E1/E2 — Table 1 and the kernel-path decomposition — plus the E20
//! descriptor-ring queue-depth rows.
//!
//! Each target simulates a batch of initiations under one method; the
//! *simulated* per-initiation cost (the paper's number) is printed once
//! per target, and the testkit timer tracks the simulator's own
//! wall-clock throughput (`BENCH` lines + `target/bench-json/`).
//! The ring rows additionally gate the amortization claim: at depth
//! ≥ 8 a doorbell batch of N transfers must cost less than N per-post
//! register sequences.

use std::hint::black_box;
use udma::{measure_initiation, measure_ring_initiation, DmaMethod};
use udma_bench::format_row;
use udma_testkit::bench::{run_target, BenchConfig, NamedBench};
use udma_workloads::{e20_depth_grid, ring_initiation_sweep};

fn main() {
    let mut benches: Vec<(String, DmaMethod)> = Vec::new();
    for method in DmaMethod::TABLE1 {
        println!("{}", format_row(&measure_initiation(method, 1_000)));
        let label = method.name().replace([' ', '(', ')', '.', ','], "_");
        benches.push((format!("table1/{label}"), method));
    }
    for method in [
        DmaMethod::Shrimp1,
        DmaMethod::Shrimp2 { patched_kernel: true },
        DmaMethod::Flash { patched_kernel: true },
        DmaMethod::Pal,
        DmaMethod::Repeated3,
        DmaMethod::Repeated4,
    ] {
        println!("{}", format_row(&measure_initiation(method, 1_000)));
        let label = method.name().replace([' ', '(', ')', '.', ',', ':'], "_");
        benches.push((format!("other_methods/{label}"), method));
    }
    // E20: per-transfer initiation cost vs doorbell queue depth. The
    // simulated numbers are printed as the table; the assert gates the
    // whole point of the ring — batching must beat per-post initiation
    // once the doorbell amortizes over ≥ 8 descriptors.
    let mut ring_benches: Vec<(String, u32)> = Vec::new();
    for row in ring_initiation_sweep(&e20_depth_grid(), 96) {
        println!(
            "ring depth {:>2}                      {:>9.2} µs ({:>4.2}× vs per-post)",
            row.depth,
            row.mean_initiation.as_us(),
            row.speedup
        );
        if row.depth >= 8 {
            assert!(
                row.mean_initiation < row.per_post_baseline,
                "depth {}: batched {} must undercut per-post {}",
                row.depth,
                row.mean_initiation,
                row.per_post_baseline
            );
        }
        ring_benches.push((format!("e20_ring/depth_{}", row.depth), row.depth));
    }

    let mut targets: Vec<NamedBench> = benches
        .iter()
        .map(|(name, method)| {
            let method = *method;
            (
                name.as_str(),
                Box::new(move || {
                    black_box(measure_initiation(black_box(method), 100));
                }) as Box<dyn FnMut()>,
            )
        })
        .collect();
    targets.extend(ring_benches.iter().map(|(name, depth)| {
        let depth = *depth;
        (
            name.as_str(),
            Box::new(move || {
                black_box(measure_ring_initiation(black_box(depth), 96));
            }) as Box<dyn FnMut()>,
        )
    }));
    run_target("initiation", BenchConfig::iters(20), targets);
}
