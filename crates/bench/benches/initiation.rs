//! E1/E2 — Table 1 and the kernel-path decomposition.
//!
//! Each Criterion target simulates a batch of initiations under one
//! method; the *simulated* per-initiation cost (the paper's number) is
//! printed once per target, and Criterion tracks the simulator's own
//! wall-clock throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use std::hint::black_box;
use udma::{measure_initiation, DmaMethod};
use udma_bench::format_row;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    for method in DmaMethod::TABLE1 {
        println!("{}", format_row(&measure_initiation(method, 1_000)));
        let label = method.name().replace([' ', '(', ')', '.', ','], "_");
        group.bench_function(label, |b| {
            b.iter(|| black_box(measure_initiation(black_box(method), 100)))
        });
    }
    group.finish();
}

fn bench_other_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("other_methods");
    for method in [
        DmaMethod::Shrimp1,
        DmaMethod::Shrimp2 { patched_kernel: true },
        DmaMethod::Flash { patched_kernel: true },
        DmaMethod::Pal,
        DmaMethod::Repeated3,
        DmaMethod::Repeated4,
    ] {
        println!("{}", format_row(&measure_initiation(method, 1_000)));
        let label = method.name().replace([' ', '(', ')', '.', ',', ':'], "_");
        group.bench_function(label, |b| {
            b.iter(|| black_box(measure_initiation(black_box(method), 100)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(5));
    targets = bench_table1, bench_other_methods
}
criterion_main!(benches);
