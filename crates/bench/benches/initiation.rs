//! E1/E2 — Table 1 and the kernel-path decomposition.
//!
//! Each target simulates a batch of initiations under one method; the
//! *simulated* per-initiation cost (the paper's number) is printed once
//! per target, and the testkit timer tracks the simulator's own
//! wall-clock throughput (`BENCH` lines + `target/bench-json/`).

use std::hint::black_box;
use udma::{measure_initiation, DmaMethod};
use udma_bench::format_row;
use udma_testkit::bench::{run_target, BenchConfig};

fn main() {
    let mut benches: Vec<(String, DmaMethod)> = Vec::new();
    for method in DmaMethod::TABLE1 {
        println!("{}", format_row(&measure_initiation(method, 1_000)));
        let label = method.name().replace([' ', '(', ')', '.', ','], "_");
        benches.push((format!("table1/{label}"), method));
    }
    for method in [
        DmaMethod::Shrimp1,
        DmaMethod::Shrimp2 { patched_kernel: true },
        DmaMethod::Flash { patched_kernel: true },
        DmaMethod::Pal,
        DmaMethod::Repeated3,
        DmaMethod::Repeated4,
    ] {
        println!("{}", format_row(&measure_initiation(method, 1_000)));
        let label = method.name().replace([' ', '(', ')', '.', ',', ':'], "_");
        benches.push((format!("other_methods/{label}"), method));
    }
    run_target(
        "initiation",
        BenchConfig::iters(20),
        benches
            .iter()
            .map(|(name, method)| {
                let method = *method;
                (
                    name.as_str(),
                    Box::new(move || {
                        black_box(measure_initiation(black_box(method), 100));
                    }) as Box<dyn FnMut()>,
                )
            })
            .collect(),
    );
}
