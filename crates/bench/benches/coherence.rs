//! E18 — coherence-aware DMA: what the paper's cold-cache methodology
//! hid. Non-coherent DMA pays a per-line software flush/invalidate that
//! scales with the buffer footprint; snooping DMA pays per *touched*
//! line; the flat machine (the paper's) pays nothing.

use std::hint::black_box;
use udma::CoherenceMode;
use udma_bus::SimTime;
use udma_testkit::bench::{run_target, BenchConfig};
use udma_workloads::{coherence_cost_sweep, false_sharing_adversary, mode_label, ProducerPrep};

fn main() {
    for row in coherence_cost_sweep(&[1024, 8192, 65536]) {
        println!(
            "E18 {:>6} {:>5} {:>6}B: init {:>8.2} µs, snoop {:>8.2} µs, compl {:>8.2} µs \
             ({:>4} flushed / {:>4} dirty / {:>4} intervened){}",
            mode_label(row.mode),
            row.prep.label(),
            row.bytes,
            row.initiation_extra.as_us(),
            row.snoop_extra.as_us(),
            row.completion_extra.as_us(),
            row.flush_lines,
            row.flush_dirty,
            row.interventions,
            if row.payload_ok { "" } else { "  ** WRONG BYTES **" }
        );
    }
    let fs = false_sharing_adversary(64);
    println!(
        "E18 false sharing, {} rounds: {} interventions, {} invalidations, \
         {:>8.2} µs snoop time, merge {}",
        fs.rounds,
        fs.interventions,
        fs.invalidations,
        fs.dma_snoop_time.as_us(),
        if fs.merge_exact && fs.consumer_reads_ok { "exact" } else { "** CORRUPT **" }
    );
    run_target(
        "coherence",
        BenchConfig::iters(10),
        vec![
            (
                "E18_coherence_cost_sweep",
                Box::new(|| {
                    let rows = coherence_cost_sweep(&[1024, 8192]);
                    for r in &rows {
                        assert!(r.payload_ok);
                    }
                    // Non-coherent: software sweep scales with footprint
                    // even stone-cold; coherent: cold caches cost zero,
                    // dirty producers pay per touched line only
                    // (acceptance: E18).
                    let nc_cold = |b| {
                        rows.iter()
                            .find(|r| {
                                r.mode == CoherenceMode::NonCoherent
                                    && r.prep == ProducerPrep::Cold
                                    && r.bytes == b
                            })
                            .unwrap()
                            .total_extra
                    };
                    assert_eq!(nc_cold(8192).as_ps(), nc_cold(1024).as_ps() * 8);
                    let coh = |p| {
                        *rows
                            .iter()
                            .find(|r| {
                                r.mode == CoherenceMode::Coherent && r.prep == p && r.bytes == 8192
                            })
                            .unwrap()
                    };
                    assert_eq!(coh(ProducerPrep::Cold).total_extra, SimTime::ZERO);
                    assert_eq!(coh(ProducerPrep::Dirty).interventions, 8192 / 32);
                    black_box(rows);
                }) as Box<dyn FnMut()>,
            ),
            (
                "E18_false_sharing_adversary",
                Box::new(|| {
                    // One line, CPU and DMA ping-ponging ownership: the
                    // byte merge must stay exact and every round bills
                    // coherence traffic (acceptance: E18).
                    let fs = false_sharing_adversary(32);
                    assert!(fs.merge_exact && fs.consumer_reads_ok);
                    assert!(fs.interventions >= 32);
                    assert!(fs.invalidations >= 32);
                    black_box(fs);
                }),
            ),
        ],
    );
}
