//! E3–E6 — the race and attack explorations as benchmarks: how fast the
//! model checker covers the interleaving spaces, with the safety results
//! asserted on every run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use std::hint::black_box;
use udma::{explore, DmaMethod};
use udma_workloads::{any_violation, illegal_transfer, misinformation, AdversaryKind, AttackScenario};

fn bench_shrimp_race(c: &mut Criterion) {
    c.bench_function("E3_shrimp2_race_space", |b| {
        b.iter(|| {
            let s = AttackScenario::new(
                DmaMethod::Shrimp2 { patched_kernel: false },
                AdversaryKind::OwnInitiation,
            );
            let report = explore(|| s.build(), 5_000, any_violation);
            assert!(!report.safe());
            black_box(report.schedules)
        })
    });
}

fn bench_figure5(c: &mut Criterion) {
    c.bench_function("E4_figure5_attack_search", |b| {
        b.iter(|| {
            let s = AttackScenario::new(DmaMethod::Repeated3, AdversaryKind::Figure5);
            let report = explore(|| s.build(), 5_000, illegal_transfer);
            assert!(!report.safe());
            black_box(report.findings.len())
        })
    });
}

fn bench_figure6(c: &mut Criterion) {
    c.bench_function("E5_figure6_attack_search", |b| {
        b.iter(|| {
            let s = AttackScenario::new(DmaMethod::Repeated4, AdversaryKind::ProbeSharedSource);
            let report = explore(|| s.build(), 5_000, misinformation);
            assert!(!report.safe());
            black_box(report.findings.len())
        })
    });
}

fn bench_five_instruction_verification(c: &mut Criterion) {
    // The full 12 870-schedule space is a bench in itself; use the
    // Figure5 adversary (1 287 schedules) per iteration.
    c.bench_function("E6_repeated5_model_check", |b| {
        b.iter(|| {
            let s = AttackScenario::new(DmaMethod::Repeated5, AdversaryKind::Figure5);
            let report = explore(|| s.build(), 10_000, any_violation);
            assert!(report.safe());
            black_box(report.schedules)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(8));
    targets = bench_shrimp_race, bench_figure5, bench_figure6, bench_five_instruction_verification
}
criterion_main!(benches);
