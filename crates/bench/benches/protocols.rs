//! E3–E6 — the race and attack explorations as benchmarks: how fast the
//! model checker covers the interleaving spaces, with the safety results
//! asserted on every run.

use std::hint::black_box;
use udma::{explore, DmaMethod};
use udma_testkit::bench::{run_target, BenchConfig};
use udma_workloads::{
    any_violation, illegal_transfer, misinformation, AdversaryKind, AttackScenario,
};

fn main() {
    run_target(
        "protocols",
        BenchConfig::iters(10),
        vec![
            (
                "E3_shrimp2_race_space",
                Box::new(|| {
                    let s = AttackScenario::new(
                        DmaMethod::Shrimp2 { patched_kernel: false },
                        AdversaryKind::OwnInitiation,
                    );
                    let report = explore(|| s.build(), 5_000, any_violation);
                    assert!(!report.safe());
                    black_box(report.schedules);
                }) as Box<dyn FnMut()>,
            ),
            (
                "E4_figure5_attack_search",
                Box::new(|| {
                    let s = AttackScenario::new(DmaMethod::Repeated3, AdversaryKind::Figure5);
                    let report = explore(|| s.build(), 5_000, illegal_transfer);
                    assert!(!report.safe());
                    black_box(report.findings.len());
                }),
            ),
            (
                "E5_figure6_attack_search",
                Box::new(|| {
                    let s =
                        AttackScenario::new(DmaMethod::Repeated4, AdversaryKind::ProbeSharedSource);
                    let report = explore(|| s.build(), 5_000, misinformation);
                    assert!(!report.safe());
                    black_box(report.findings.len());
                }),
            ),
            // The full 12 870-schedule space is a bench in itself; use the
            // Figure5 adversary (1 287 schedules) per iteration.
            (
                "E6_repeated5_model_check",
                Box::new(|| {
                    let s = AttackScenario::new(DmaMethod::Repeated5, AdversaryKind::Figure5);
                    let report = explore(|| s.build(), 10_000, any_violation);
                    assert!(report.safe());
                    black_box(report.schedules);
                }),
            ),
        ],
    );
}
