//! Shared helpers for the benchmark harness.
//!
//! The interesting numbers of this reproduction are *simulated* times
//! (the machine's picosecond clock), printed by the `experiments` binary
//! as the paper's tables. The bench targets (harness-free binaries built
//! on `udma_testkit::bench`) additionally measure the *simulator's*
//! wall-clock throughput, so regressions in the model itself are caught;
//! each emits `BENCH {json}` lines and a `target/bench-json/` file.

#![forbid(unsafe_code)]

use udma::InitiationCost;

/// Formats an [`InitiationCost`] as a Table-1 row.
pub fn format_row(cost: &InitiationCost) -> String {
    format!(
        "{:<34} {:>9.2} µs (paper: {})",
        cost.method.name(),
        cost.mean.as_us(),
        cost.paper_us.map_or("—".to_string(), |p| format!("{p:.1} µs")),
    )
}
