//! Regenerates every table and figure of the paper's evaluation in one
//! run, as markdown. `EXPERIMENTS.md` is produced from this output:
//!
//! ```text
//! cargo run --release -p udma-bench --bin experiments
//! ```
//!
//! `--smoke` runs a reduced-iteration subset (a CI health check that the
//! simulator, the explorations and the measurement plumbing still work —
//! not a report to publish numbers from).

use udma::{
    crossover_rows, explore, measure_initiation, os_bound_message_size, table1, DmaMethod, Table,
};
use udma_nic::LinkModel;
use udma_workloads::{
    a3_context_grid, any_violation, atomic_comparison, bus_sweep, coherence_cost_sweep,
    context_count_ablation, context_pressure_sweep, context_switch, dcache_effect,
    e17_context_grid, e20_depth_grid, empty_syscall, false_sharing_adversary, guess_acceptance,
    hostile_tenant_scenario, illegal_transfer, misinformation, mode_label,
    pollution_with_known_key, quantum_ablation, ring_initiation_sweep, run_contention, tlb_miss,
    write_buffer_ablation, AdversaryKind, AttackScenario,
};

fn e1_table1(iters: u32) {
    let mut t = Table::new(
        "E1 — Table 1: comparison of DMA initiation algorithms",
        &["DMA algorithm", "paper (µs)", "measured (µs)", "measured/paper", "user instrs"],
    );
    for c in table1(iters) {
        t.row_owned(vec![
            c.method.name().to_string(),
            c.paper_us.map_or("—".into(), |p| format!("{p:.1}")),
            format!("{:.2}", c.mean.as_us()),
            c.vs_paper().map_or("—".into(), |r| format!("{r:.2}")),
            c.user_instructions.map_or("thousands".into(), |n| n.to_string()),
        ]);
    }
    println!("{t}");
}

fn e2_kernel_decomposition() {
    // Figure 1's cost structure: the syscall round trip dominates.
    let cost = udma_cpu::CostModel::alpha_3000_300();
    let total = measure_initiation(DmaMethod::Kernel, 1_000).mean;
    let syscall = cost.syscall_round_trip();
    let translate = udma_bus::SimTime::from_ps(2 * cost.translation().as_ps());
    let bus = udma_bus::SimTime::from_ps(
        total.as_ps().saturating_sub(syscall.as_ps() + translate.as_ps()),
    );
    let mut t = Table::new(
        "E2 — Figure 1 cost decomposition (kernel-level DMA)",
        &["component", "time", "share"],
    );
    for (name, v) in [
        ("syscall entry+exit", syscall),
        ("virtual_to_physical ×2 + check_size", translate),
        ("register writes + status read (+ issue)", bus),
        ("total", total),
    ] {
        t.row_owned(vec![
            name.to_string(),
            format!("{:.2} µs", v.as_us()),
            format!("{:.0}%", 100.0 * v.as_ps() as f64 / total.as_ps() as f64),
        ]);
    }
    println!("{t}");
}

fn e3_races() {
    let mut t = Table::new(
        "E3 — §2.5 race matrix (two honest processes, every interleaving)",
        &["method", "kernel patch", "schedules", "violations"],
    );
    for (method, patch) in [
        (DmaMethod::Shrimp2 { patched_kernel: false }, "no"),
        (DmaMethod::Shrimp2 { patched_kernel: true }, "abort"),
        (DmaMethod::Flash { patched_kernel: false }, "no"),
        (DmaMethod::Flash { patched_kernel: true }, "notify"),
        (DmaMethod::Pal, "no (PAL)"),
        (DmaMethod::KeyBased, "no"),
        (DmaMethod::ExtShadow, "no"),
        (DmaMethod::ExtShadowPairwise, "no"),
        (DmaMethod::Repeated5, "no"),
    ] {
        let s = AttackScenario::new(method, AdversaryKind::OwnInitiation);
        let r = explore(|| s.build(), 10_000, any_violation);
        t.row_owned(vec![
            method.name().to_string(),
            patch.to_string(),
            r.schedules.to_string(),
            r.findings.len().to_string(),
        ]);
    }
    println!("{t}");
}

fn e4_e5_e6_attacks() {
    let mut t = Table::new(
        "E4/E5/E6 — Figures 5, 6 and the §3.3.1 verification",
        &["variant", "adversary", "predicate", "schedules", "violations"],
    );
    {
        let s = AttackScenario::new(DmaMethod::Repeated3, AdversaryKind::Figure5);
        let r = explore(|| s.build(), 5_000, illegal_transfer);
        t.row_owned(vec![
            "3-instruction".into(),
            "Figure 5".into(),
            "illegal transfer".into(),
            r.schedules.to_string(),
            r.findings.len().to_string(),
        ]);
    }
    {
        let s = AttackScenario::new(DmaMethod::Repeated4, AdversaryKind::ProbeSharedSource);
        let r = explore(|| s.build(), 5_000, misinformation);
        t.row_owned(vec![
            "4-instruction".into(),
            "shared-source probe".into(),
            "misinformation".into(),
            r.schedules.to_string(),
            r.findings.len().to_string(),
        ]);
    }
    for adv in [
        AdversaryKind::OwnInitiation,
        AdversaryKind::ProbeSharedSource,
        AdversaryKind::Figure5,
        AdversaryKind::SandwichSteal,
    ] {
        let s = AttackScenario::new(DmaMethod::Repeated5, adv);
        let r = explore(|| s.build(), 10_000, any_violation);
        t.row_owned(vec![
            "5-instruction".into(),
            format!("{adv:?}"),
            "any violation".into(),
            r.schedules.to_string(),
            r.findings.len().to_string(),
        ]);
    }
    println!("{t}");
}

fn e7_bus_sweep() {
    let mut t = Table::new(
        "E7 — initiation cost vs I/O bus clock (§3.4: \"our implementation is pessimistic\")",
        &["bus MHz", "Ext. Shadow (µs)", "Key-based (µs)", "Rep. Passing (µs)", "Kernel (µs)"],
    );
    let freqs = [12u64, 25, 33, 50, 66];
    let ext = bus_sweep(DmaMethod::ExtShadow, &freqs, 500);
    let key = bus_sweep(DmaMethod::KeyBased, &freqs, 500);
    let rep = bus_sweep(DmaMethod::Repeated5, &freqs, 500);
    let ker = bus_sweep(DmaMethod::Kernel, &freqs, 300);
    for i in 0..freqs.len() {
        t.row_owned(vec![
            freqs[i].to_string(),
            format!("{:.2}", ext[i].mean.as_us()),
            format!("{:.2}", key[i].mean.as_us()),
            format!("{:.2}", rep[i].mean.as_us()),
            format!("{:.2}", ker[i].mean.as_us()),
        ]);
    }
    println!("{t}");
}

fn e8_crossover(iters: u32) {
    let kernel = measure_initiation(DmaMethod::Kernel, iters).mean;
    let user = measure_initiation(DmaMethod::ExtShadow, iters).mean;
    let mut t = Table::new(
        "E8 — OS-bound message size per network generation (intro trend)",
        &["link", "kernel init", "OS-bound up to (bytes)", "speedup @256B", "speedup @64KiB"],
    );
    for link in
        [LinkModel::ethernet10(), LinkModel::atm155(), LinkModel::atm622(), LinkModel::gigabit()]
    {
        let rows = crossover_rows(kernel, user, link, &[256, 65536]);
        t.row_owned(vec![
            link.name().to_string(),
            format!("{:.1} µs", kernel.as_us()),
            os_bound_message_size(kernel, link).to_string(),
            format!("{:.2}×", rows[0].speedup),
            format!("{:.2}×", rows[1].speedup),
        ]);
    }
    println!("{t}");
}

fn e9_atomics(iters: u32) {
    let mut t = Table::new(
        "E9 — §3.5 atomic operations (atomic_add, mean of 500)",
        &["path", "measured (µs)"],
    );
    for (method, time) in atomic_comparison(iters) {
        t.row_owned(vec![method.name().to_string(), format!("{:.2}", time.as_us())]);
    }
    println!("{t}");
}

fn e10_key_guessing() {
    let mut t = Table::new(
        "E10 — §3.1 key guessing (sequential sweep)",
        &["key bits", "guesses", "accepted", "acceptance rate"],
    );
    for (bits, guesses) in [(4u32, 15u64), (6, 63), (8, 255), (16, 5_000), (61, 5_000)] {
        let s = guess_acceptance(bits, guesses, 0xE10);
        t.row_owned(vec![
            bits.to_string(),
            s.attempts.to_string(),
            s.accepted.to_string(),
            format!("{:.2e}", s.acceptance_rate()),
        ]);
    }
    println!("{t}");
    println!("With the key known, redirection succeeds: {}\n", pollution_with_known_key());
}

fn contention_extra() {
    let mut t = Table::new(
        "Extra — contention and the §3.2 kernel fallback (50 inits/process)",
        &["method", "processes", "user-level", "fallback", "mean/init (µs)"],
    );
    for method in [DmaMethod::KeyBased, DmaMethod::Repeated5] {
        for procs in [2u32, 4, 6, 8] {
            let r = run_contention(method, procs, 50, 200);
            t.row_owned(vec![
                method.name().to_string(),
                procs.to_string(),
                r.user_level_processes.to_string(),
                r.kernel_fallback_processes.to_string(),
                format!("{:.2}", r.mean_per_init().as_us()),
            ]);
        }
    }
    println!("{t}");
}

fn ablation_quantum() {
    let mut t = Table::new(
        "Ablation A1 — scheduler quantum vs the shared repeated-passing FSM (2 procs × 10 inits)",
        &[
            "quantum (instrs)",
            "Rep. Passing finished?",
            "Rep. mean/init",
            "Key-based finished?",
            "Key mean/init",
        ],
    );
    for &q in &[2u64, 5, 12, 50, 300] {
        let rep = &quantum_ablation(DmaMethod::Repeated5, &[q], 2, 10)[0];
        let key = &quantum_ablation(DmaMethod::KeyBased, &[q], 2, 10)[0];
        let fmt = |r: &udma_workloads::QuantumRow| {
            if r.finished {
                format!("{:.2} µs", r.mean_per_init.as_us())
            } else {
                "—".into()
            }
        };
        t.row_owned(vec![
            q.to_string(),
            if rep.finished { "yes".into() } else { "LIVELOCK".into() },
            fmt(rep),
            if key.finished { "yes".into() } else { "LIVELOCK".into() },
            fmt(key),
        ]);
    }
    println!("{t}");
}

fn ablation_write_buffer() {
    let mut t = Table::new(
        "Ablation A2 — write-buffer policy (Rep. Passing, barriered per Figure 7)",
        &["policy", "mean/init (µs)"],
    );
    for row in write_buffer_ablation(DmaMethod::Repeated5, 500) {
        t.row_owned(vec![row.name.to_string(), format!("{:.2}", row.mean.as_us())]);
    }
    println!("{t}");
}

fn ablation_contexts() {
    let mut t = Table::new(
        "Ablation A3 — register-context count, 6 key-based processes × 20 inits (§3.1: \"say 4 to 8\")",
        &["contexts", "user-level", "kernel fallback", "mean/init (µs)"],
    );
    for row in context_count_ablation(6, 20, &a3_context_grid()) {
        t.row_owned(vec![
            row.contexts.to_string(),
            row.user_level.to_string(),
            row.fallback.to_string(),
            format!("{:.2}", row.mean_per_init.as_us()),
        ]);
    }
    println!("{t}");
}

fn trend_projection() {
    // The paper's closing argument: CPUs get faster quicker than OSes.
    // Project Table 1 onto a host with a 10× CPU whose OS paths shrank
    // only 2× in cycles, on a 66 MHz PCI bus.
    let mut t = Table::new(
        "Trend projection — 1997 testbed vs a \"modern\" host (10× CPU, OS only 2× faster, PCI 66)",
        &["method", "1997 (µs)", "projected (µs)", "kernel/user then", "kernel/user now"],
    );
    let project = |m: DmaMethod| {
        udma::measure_initiation_with(
            udma::MachineConfig {
                cost: udma_cpu::CostModel::modern_trend_host(),
                bus_timing: udma_bus::BusTiming::pci66(),
                ..udma::MachineConfig::new(m)
            },
            500,
        )
        .mean
    };
    let old_kernel = measure_initiation(DmaMethod::Kernel, 500).mean;
    let old_user = measure_initiation(DmaMethod::ExtShadow, 500).mean;
    let new_kernel = project(DmaMethod::Kernel);
    let new_user = project(DmaMethod::ExtShadow);
    for (m, old, new) in
        [(DmaMethod::Kernel, old_kernel, new_kernel), (DmaMethod::ExtShadow, old_user, new_user)]
    {
        t.row_owned(vec![
            m.name().to_string(),
            format!("{:.2}", old.as_us()),
            format!("{:.2}", new.as_us()),
            if m == DmaMethod::Kernel {
                format!("{:.1}×", old_kernel.as_ns() / old_user.as_ns())
            } else {
                String::new()
            },
            if m == DmaMethod::Kernel {
                format!("{:.1}×", new_kernel.as_ns() / new_user.as_ns())
            } else {
                String::new()
            },
        ]);
    }
    println!("{t}");
}

fn now_broadcast() {
    let mut t = Table::new(
        "NOW fan-out — SHRIMP-1 broadcast to remote nodes (1 KiB per node)",
        &["nodes", "initiation total (µs)", "completion (µs)", "verified"],
    );
    for nodes in [1u32, 2, 4, 8] {
        let r = udma_workloads::broadcast(nodes, 1024);
        t.row_owned(vec![
            nodes.to_string(),
            format!("{:.2}", r.initiation_time.as_us()),
            format!("{:.2}", r.completion_time.as_us()),
            r.verified.to_string(),
        ]);
    }
    println!("{t}");
}

fn transfer_latency() {
    let mut t = Table::new(
        "Transfer latency — initiation + wire (ATM 155 Mb/s link), one transfer",
        &["size (B)", "Kernel (µs)", "Ext. Shadow (µs)", "Key-based (µs)", "init share @ Ext"],
    );
    for size in [64u64, 256, 1024, 4096, 8192] {
        let k = udma::measure_transfer_latency(DmaMethod::Kernel, size);
        let e = udma::measure_transfer_latency(DmaMethod::ExtShadow, size);
        let key = udma::measure_transfer_latency(DmaMethod::KeyBased, size);
        let init = udma::measure_initiation(DmaMethod::ExtShadow, 100).mean;
        t.row_owned(vec![
            size.to_string(),
            format!("{:.1}", k.as_us()),
            format!("{:.1}", e.as_us()),
            format!("{:.1}", key.as_us()),
            format!("{:.0}%", 100.0 * init.as_us() / e.as_us()),
        ]);
    }
    println!("{t}");
}

fn messaging_layer() {
    let mut t = Table::new(
        "Application level — udma-msg channel, per-message cost (µs, 24 msgs)",
        &["method", "32 B", "128 B", "1 KiB"],
    );
    for method in
        [DmaMethod::Kernel, DmaMethod::KeyBased, DmaMethod::ExtShadow, DmaMethod::Repeated5]
    {
        let mut row = vec![method.name().to_string()];
        for words in [4u64, 16, 128] {
            let cfg = udma_msg::ChannelConfig { slots: 4, payload_words: words };
            let cost = udma_msg::measure_messaging(method, &cfg, 24);
            row.push(format!("{:.2}", cost.per_message.as_us()));
        }
        t.row_owned(row);
    }
    println!("{t}");
}

fn pingpong_latency() {
    let mut t = Table::new(
        "Application level — ping-pong round-trip latency (one-word messages, 16 rounds)",
        &["method", "round trip (µs)"],
    );
    for cost in udma_msg::pingpong_comparison(16) {
        t.row_owned(vec![
            cost.method.name().to_string(),
            format!("{:.2}", cost.round_trip.as_us()),
        ]);
    }
    println!("{t}");
}

fn microbench_host(iters: u32) {
    let mut t = Table::new(
        "Host microbenchmarks (lmbench-style, on the simulated Alpha 3000/300)",
        &["primitive", "measured", "paper/model reference"],
    );
    t.row_owned(vec![
        "empty syscall".into(),
        format!("{:.2} µs", empty_syscall(iters).as_us()),
        "1 000–5 000 cycles (lmbench, cited in §2.2) = 6.7–33 µs @150 MHz".into(),
    ]);
    t.row_owned(vec![
        "context switch".into(),
        format!("{:.2} µs", context_switch(iters.min(300)).as_us()),
        "model constant 1 800 cycles = 12 µs".into(),
    ]);
    t.row_owned(vec![
        "TLB miss".into(),
        format!("{:.0} ns", tlb_miss(64, 4).as_ns()),
        "model constant 30 cycles = 200 ns".into(),
    ]);
    let (hot, cold) = dcache_effect(iters.min(400));
    t.row_owned(vec![
        "cacheable load, hot / thrashing".into(),
        format!("{:.0} ns / {:.0} ns", hot.as_ns(), cold.as_ns()),
        "2 cycles hit, DRAM latency miss (the §3.4 \"caching effects\")".into(),
    ]);
    println!("{t}");
}

fn e13_remote_va(pages: u64) {
    let mut t = Table::new(
        "E13 — remote virtual-address DMA: NACK round-trip cost vs link and fault rate",
        &[
            "link",
            "wire latency",
            "prefaulted",
            "remote faults",
            "NACK stall (µs)",
            "completion (µs)",
        ],
    );
    let links =
        [LinkModel::ethernet10(), LinkModel::atm155(), LinkModel::atm622(), LinkModel::gigabit()];
    for row in udma_workloads::remote_fault_sweep(&links, &[0, 50, 100], pages) {
        t.row_owned(vec![
            row.link.to_string(),
            format!("{:.0} µs", row.link_latency.as_us()),
            format!("{}%", row.prefaulted_pct),
            row.remote_faults.to_string(),
            format!("{:.2}", row.nack_stall.as_us()),
            format!("{:.2}", row.completion.as_us()),
        ]);
    }
    println!("{t}");
}

fn e14_lossy_link(loss_pcts: &[u32], budgets: &[u32], pages: u64, transfers: u32) {
    let mut t = Table::new(
        "E14 — reliable delivery over a lossy link: goodput and p99 completion vs loss × budget",
        &[
            "loss",
            "budget",
            "completed",
            "aborted",
            "breaker trips",
            "retransmits",
            "goodput (MB/s)",
            "p99 completion (µs)",
        ],
    );
    for row in udma_workloads::lossy_link_sweep(loss_pcts, budgets, pages, transfers) {
        t.row_owned(vec![
            format!("{}%", row.loss_pct),
            row.retry_budget.to_string(),
            format!("{}/{}", row.completed, row.transfers),
            row.link_failed.to_string(),
            row.breaker_trips.to_string(),
            row.retransmits.to_string(),
            format!("{:.2}", row.goodput_mb_s),
            format!("{:.2}", row.p99_completion.as_us()),
        ]);
    }
    println!("{t}");
}

fn e15_translation_pipeline(pages: u64) {
    let mut t = Table::new(
        "E15 — translation pipeline: prefetch depth × IOTLB capacity × chunk coalescing",
        &[
            "variant",
            "depth",
            "IOTLB",
            "coalesce",
            "chunks",
            "misses",
            "hidden",
            "NACKs",
            "stall (µs)",
            "completion (µs)",
        ],
    );
    let rows = udma_workloads::pipeline_sweep(&[0, 2, 8], &[8, 64], &[1, 8], pages)
        .into_iter()
        .chain(udma_workloads::remote_pipeline_sweep(&[0, 8], &[64], &[1, 8], pages));
    for row in rows {
        t.row_owned(vec![
            row.variant.to_string(),
            row.depth.to_string(),
            row.entries.to_string(),
            row.max_coalesce.to_string(),
            row.chunks.to_string(),
            row.misses.to_string(),
            row.prefetch_hidden.to_string(),
            row.nacks.to_string(),
            format!("{:.2}", row.stall.as_us()),
            format!("{:.2}", row.completion.as_us()),
        ]);
    }
    println!("{t}");
}

fn e16_shard_scaling(node_counts: &[u32], shard_counts: &[usize]) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut t = Table::new(
        "E16 — sharded sim core: events/sec and speedup by shard count (every row digest-checked \
         against the sequential oracle)",
        &["nodes", "shards", "runner", "events", "rounds", "done", "wall (ms)", "ev/s", "speedup"],
    );
    for row in udma_workloads::shard_scale_sweep(node_counts, shard_counts, 0xE16) {
        t.row_owned(vec![
            row.nodes.to_string(),
            row.shards.to_string(),
            format!("{:?}", row.runner),
            row.events.to_string(),
            row.rounds.to_string(),
            row.completed.to_string(),
            format!("{:.3}", row.wall_ms),
            format!("{:.0}", row.events_per_sec),
            format!("{:.2}x", row.speedup),
        ]);
    }
    println!("{t}");
    println!(
        "(host cores: {cores} — parallel speedup over the oracle needs cores to spend; on a \
         single-core host the parallel rows measure barrier overhead, not scaling)\n"
    );
}

fn e17_context_virtualization(process_counts: &[u32], posts: u32) {
    let mut t = Table::new(
        "E17 — context virtualization: 100 → 100k logical processes on \"say 4 to 8\" register \
         contexts (LRU victims, hot-set locality)",
        &[
            "procs",
            "ctx",
            "p50 (µs)",
            "p99 (µs)",
            "hit",
            "steal/post",
            "fallbacks",
            "spills",
            "fills",
            "steals",
            "busy-skips",
            "starved",
        ],
    );
    for &contexts in &e17_context_grid() {
        for row in context_pressure_sweep(
            process_counts,
            contexts,
            posts,
            udma_os::CtxVictimPolicy::Lru,
            0xE17,
        ) {
            t.row_owned(vec![
                row.processes.to_string(),
                row.contexts.to_string(),
                format!("{:.2}", row.p50_initiation.as_us()),
                format!("{:.2}", row.p99_initiation.as_us()),
                format!("{:.3}", row.hit_rate),
                format!("{:.3}", row.steal_rate),
                row.kernel_fallbacks.to_string(),
                // The NI-side counters, reconciled against the OS cache
                // by the test suite: spills == fills − first-touch
                // fills, steals ≤ spills.
                row.ni.spills.to_string(),
                row.ni.fills.to_string(),
                row.ni.steals.to_string(),
                row.os.busy_skips.to_string(),
                row.ni.starvations.to_string(),
            ]);
        }
    }
    println!("{t}");

    let mut q = Table::new(
        "E17 — hostile-tenant QoS: 2 guaranteed victims vs a best-effort burst on 6 contexts \
         (acceptance: with QoS, victim p99 ≤ 2× uncontended)",
        &[
            "QoS",
            "victim p50 (µs)",
            "victim p99 (µs)",
            "uncontended p99 (µs)",
            "degradation",
            "victim fallbacks",
            "hostile throttled",
            "hostile fallbacks",
        ],
    );
    for qos in [false, true] {
        let row = hostile_tenant_scenario(6, 2, 48, 50, qos, 0xE17);
        q.row_owned(vec![
            if qos { "on" } else { "off" }.to_string(),
            format!("{:.2}", row.victim_p50.as_us()),
            format!("{:.2}", row.victim_p99.as_us()),
            format!("{:.2}", row.uncontended_p99.as_us()),
            format!("{:.2}x", row.degradation),
            row.victim_fallbacks.to_string(),
            row.hostile_throttled.to_string(),
            row.hostile_fallbacks.to_string(),
        ]);
    }
    println!("{q}");
}

fn e18_coherence(sizes: &[u64], adversary_rounds: u64) {
    let mut t = Table::new(
        "E18 — coherence-aware DMA: per-line software flush (non-coherent) vs per-touched-line \
         snooping (coherent) vs the paper's flat model",
        &[
            "mode",
            "producer",
            "bytes",
            "init extra (µs)",
            "snoop extra (µs)",
            "compl extra (µs)",
            "flushed",
            "dirty",
            "intervened",
            "payload",
        ],
    );
    for row in coherence_cost_sweep(sizes) {
        t.row_owned(vec![
            mode_label(row.mode).to_string(),
            row.prep.label().to_string(),
            row.bytes.to_string(),
            format!("{:.2}", row.initiation_extra.as_us()),
            format!("{:.2}", row.snoop_extra.as_us()),
            format!("{:.2}", row.completion_extra.as_us()),
            row.flush_lines.to_string(),
            row.flush_dirty.to_string(),
            row.interventions.to_string(),
            if row.payload_ok { "ok" } else { "WRONG" }.to_string(),
        ]);
    }
    println!("{t}");

    let fs = false_sharing_adversary(adversary_rounds);
    println!(
        "E18 false-sharing adversary ({} rounds on one line): {} writeback-interventions, \
         {} invalidations, {:.2} µs snoop time, merge {}\n",
        fs.rounds,
        fs.interventions,
        fs.invalidations,
        fs.dma_snoop_time.as_us(),
        if fs.merge_exact && fs.consumer_reads_ok { "exact" } else { "CORRUPT" }
    );
}

fn e19_node_fault(
    nodes: u32,
    crash_counts: &[u32],
    reboot_us: &[u64],
    lease_us: &[u64],
    shard_counts: &[usize],
) {
    let mut t = Table::new(
        "E19 — node fault domain: goodput, availability and recovery latency by crash rate × \
         reboot time × detection lease (every row digest-checked against the sequential oracle \
         at every shard count; the zero-crash row pinned delta-free)",
        &[
            "crashes",
            "reboot (µs)",
            "lease (µs)",
            "posted",
            "done",
            "node-down",
            "avail",
            "goodput (Mb/s)",
            "rec p50 (µs)",
            "rec p99 (µs)",
            "fenced",
            "regrants",
        ],
    );
    for row in udma_workloads::node_fault_sweep(
        nodes,
        crash_counts,
        reboot_us,
        lease_us,
        shard_counts,
        0xE19,
    ) {
        t.row_owned(vec![
            row.crashes.to_string(),
            row.reboot_us.to_string(),
            row.lease_us.to_string(),
            row.posted.to_string(),
            row.completed.to_string(),
            row.node_down.to_string(),
            format!("{:.3}", row.availability),
            format!("{:.1}", row.goodput_mbps),
            format!("{:.2}", row.recovery_p50.as_us()),
            format!("{:.2}", row.recovery_p99.as_us()),
            row.fenced.to_string(),
            row.regrants.to_string(),
        ]);
    }
    println!("{t}");
}

fn e20_descriptor_rings(transfers: u32) {
    let mut t = Table::new(
        "E20 — doorbell-batched descriptor rings: per-transfer initiation cost vs queue depth \
         (key-based per-post sequence as the baseline; depth 1 pins to it exactly)",
        &["depth", "per-transfer (µs)", "per-post (µs)", "amortization"],
    );
    for row in ring_initiation_sweep(&e20_depth_grid(), transfers) {
        t.row_owned(vec![
            row.depth.to_string(),
            format!("{:.2}", row.mean_initiation.as_us()),
            format!("{:.2}", row.per_post_baseline.as_us()),
            format!("{:.2}×", row.speedup),
        ]);
    }
    println!("{t}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        // A fast end-to-end health check for CI: one representative
        // experiment per subsystem (measurement, exploration, sweeps,
        // keys, application layer), at reduced iteration counts.
        println!("# udma reproduction — smoke report (reduced iterations)\n");
        e1_table1(50);
        e4_e5_e6_attacks();
        e8_crossover(50);
        e9_atomics(50);
        e10_key_guessing();
        e13_remote_va(4);
        e14_lossy_link(&[0, 25], &[2, 6], 2, 6);
        e15_translation_pipeline(4);
        e16_shard_scaling(&[16], &[2, 4]);
        e17_context_virtualization(&[100, 2_000], 400);
        e18_coherence(&[1024, 8192], 16);
        e19_node_fault(8, &[0, 2], &[300], &[200], &[2, 4]);
        e20_descriptor_rings(32);
        microbench_host(50);
        return;
    }
    println!("# udma reproduction — experiment report\n");
    e1_table1(1_000);
    e2_kernel_decomposition();
    e3_races();
    e4_e5_e6_attacks();
    e7_bus_sweep();
    e8_crossover(500);
    e9_atomics(500);
    e10_key_guessing();
    contention_extra();
    transfer_latency();
    now_broadcast();
    trend_projection();
    ablation_quantum();
    ablation_write_buffer();
    ablation_contexts();
    e13_remote_va(8);
    e14_lossy_link(&[0, 10, 20, 30, 40], &[1, 3, 6], 4, 16);
    e15_translation_pipeline(8);
    e16_shard_scaling(&[16, 64], &[1, 2, 4, 8]);
    e17_context_virtualization(&[100, 1_000, 10_000, 100_000], 2_000);
    e18_coherence(&[1024, 8192, 65536, 262144], 64);
    e19_node_fault(12, &[0, 1, 2, 4], &[150, 300, 600], &[100, 200], &[1, 2, 4, 8]);
    e20_descriptor_rings(480);
    messaging_layer();
    pingpong_latency();
    microbench_host(500);
}
