//! `udma-cli` — drive the reproduction from the command line.
//!
//! ```text
//! cargo run --release -p udma-bench --bin udma_cli -- table1
//! cargo run --release -p udma-bench --bin udma_cli -- measure --method key --iters 2000
//! cargo run --release -p udma-bench --bin udma_cli -- explore --method rep3 --adversary fig5
//! cargo run --release -p udma-bench --bin udma_cli -- crossover --link gigabit
//! cargo run --release -p udma-bench --bin udma_cli -- contention --processes 6
//! cargo run --release -p udma-bench --bin udma_cli -- keyguess --bits 8 --guesses 255
//! cargo run --release -p udma-bench --bin udma_cli -- messaging --method ext --words 16
//! ```
//!
//! Argument parsing is deliberately hand-rolled (`--flag value` pairs
//! only) to keep the workspace dependency-free.

use std::collections::HashMap;
use std::process::ExitCode;
use udma::{
    crossover_rows, explore, measure_initiation, measure_initiation_with, os_bound_message_size,
    table1, DmaMethod, MachineConfig, Table,
};
use udma_bus::BusTiming;
use udma_nic::LinkModel;
use udma_workloads::{
    any_violation, atomic_comparison, guess_acceptance, run_contention, AdversaryKind,
    AttackScenario,
};

fn usage() -> &'static str {
    "udma-cli — User-Level DMA reproduction driver

USAGE: udma_cli <command> [--flag value]...

COMMANDS
  table1      [--iters N]                    regenerate the paper's Table 1
  measure     --method M [--iters N] [--bus-mhz F]
                                             one method's initiation cost
  explore     --method M [--adversary A]     exhaustive interleaving search
  crossover   [--link L]                     OS overhead vs wire time
  atomics     [--iters N]                    §3.5 atomic-operation costs
  contention  --processes P [--inits N] [--quantum Q] [--method M]
  keyguess    --bits B [--guesses G] [--seed S]
  messaging   [--method M] [--words W] [--count N]
  trace       [--method M]                   decoded device trace of one DMA
  pingpong    [--rounds N]                   msg-layer round-trip latency
  broadcast   [--nodes K] [--bytes B]        SHRIMP-1 fan-out to remote nodes
  help                                       this text

METHODS  kernel | shrimp1 | shrimp2 | shrimp2-unpatched | flash |
         flash-unpatched | pal | key | ext | ext-pairwise | rep3 | rep4 | rep5
ADVERSARIES  own | probe | fig5 | sandwich
LINKS    eth10 | atm155 | atm622 | gigabit"
}

fn parse_method(s: &str) -> Option<DmaMethod> {
    Some(match s {
        "kernel" => DmaMethod::Kernel,
        "shrimp1" => DmaMethod::Shrimp1,
        "shrimp2" => DmaMethod::Shrimp2 { patched_kernel: true },
        "shrimp2-unpatched" => DmaMethod::Shrimp2 { patched_kernel: false },
        "flash" => DmaMethod::Flash { patched_kernel: true },
        "flash-unpatched" => DmaMethod::Flash { patched_kernel: false },
        "pal" => DmaMethod::Pal,
        "key" => DmaMethod::KeyBased,
        "ext" => DmaMethod::ExtShadow,
        "ext-pairwise" => DmaMethod::ExtShadowPairwise,
        "rep3" => DmaMethod::Repeated3,
        "rep4" => DmaMethod::Repeated4,
        "rep5" => DmaMethod::Repeated5,
        _ => return None,
    })
}

fn parse_adversary(s: &str) -> Option<AdversaryKind> {
    Some(match s {
        "own" => AdversaryKind::OwnInitiation,
        "probe" => AdversaryKind::ProbeSharedSource,
        "fig5" => AdversaryKind::Figure5,
        "sandwich" => AdversaryKind::SandwichSteal,
        _ => return None,
    })
}

fn parse_link(s: &str) -> Option<LinkModel> {
    Some(match s {
        "eth10" => LinkModel::ethernet10(),
        "atm155" => LinkModel::atm155(),
        "atm622" => LinkModel::atm622(),
        "gigabit" => LinkModel::gigabit(),
        _ => return None,
    })
}

/// `--flag value` pairs into a map; returns `None` on a dangling flag.
fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag.strip_prefix("--")?;
        let value = it.next()?;
        out.insert(key.to_string(), value.clone());
    }
    Some(out)
}

fn get_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key} expects a number, got `{v}`")),
        None => Ok(default),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let flags = parse_flags(rest).ok_or("flags must come in `--flag value` pairs")?;
    let method = |default: DmaMethod| -> Result<DmaMethod, String> {
        match flags.get("method") {
            Some(s) => parse_method(s).ok_or(format!("unknown method `{s}`")),
            None => Ok(default),
        }
    };

    match cmd.as_str() {
        "help" | "--help" | "-h" => println!("{}", usage()),
        "table1" => {
            let iters = get_u64(&flags, "iters", 1000)? as u32;
            let mut t = Table::new(
                "Table 1 (simulated)",
                &["DMA algorithm", "paper (µs)", "measured (µs)"],
            );
            for c in table1(iters) {
                t.row_owned(vec![
                    c.method.name().to_string(),
                    c.paper_us.map_or("—".into(), |p| format!("{p:.1}")),
                    format!("{:.2}", c.mean.as_us()),
                ]);
            }
            println!("{t}");
        }
        "measure" => {
            let m = method(DmaMethod::KeyBased)?;
            let iters = get_u64(&flags, "iters", 1000)? as u32;
            let cost = match flags.get("bus-mhz") {
                Some(f) => {
                    let mhz: u64 = f.parse().map_err(|_| "--bus-mhz expects a number")?;
                    measure_initiation_with(
                        MachineConfig {
                            bus_timing: BusTiming::scaled(mhz * 1_000_000),
                            ..MachineConfig::new(m)
                        },
                        iters,
                    )
                }
                None => measure_initiation(m, iters),
            };
            println!(
                "{}: {:.3} µs per initiation ({} iterations{})",
                m.name(),
                cost.mean.as_us(),
                iters,
                cost.paper_us.map_or(String::new(), |p| format!(", paper: {p} µs")),
            );
        }
        "explore" => {
            let m = method(DmaMethod::Repeated5)?;
            let adv = match flags.get("adversary") {
                Some(s) => parse_adversary(s).ok_or(format!("unknown adversary `{s}`"))?,
                None => AdversaryKind::OwnInitiation,
            };
            let s = AttackScenario::new(m, adv);
            let report = explore(|| s.build(), 10_000, any_violation);
            println!(
                "{} vs {adv:?}: {} schedules explored exhaustively, {} violations",
                m.name(),
                report.schedules,
                report.findings.len()
            );
            for f in report.findings.iter().take(3) {
                println!(
                    "  schedule {:?} → transfer {} -> {}",
                    f.schedule.iter().map(|p| p.as_u32()).collect::<Vec<_>>(),
                    f.detail.src,
                    f.detail.dst
                );
            }
        }
        "crossover" => {
            let link = match flags.get("link") {
                Some(s) => parse_link(s).ok_or(format!("unknown link `{s}`"))?,
                None => LinkModel::atm155(),
            };
            let kernel = measure_initiation(DmaMethod::Kernel, 500).mean;
            let user = measure_initiation(DmaMethod::ExtShadow, 500).mean;
            let mut t = Table::new(
                &format!("{} crossover", link.name()),
                &["message (B)", "kernel total", "user total", "speedup"],
            );
            for row in crossover_rows(kernel, user, link, &[64, 512, 4096, 32768, 262144]) {
                t.row_owned(vec![
                    row.msg_bytes.to_string(),
                    row.kernel_total.to_string(),
                    row.user_total.to_string(),
                    format!("{:.2}×", row.speedup),
                ]);
            }
            println!("{t}");
            println!("OS-bound up to {} bytes", os_bound_message_size(kernel, link));
        }
        "atomics" => {
            let iters = get_u64(&flags, "iters", 500)? as u32;
            for (m, t) in atomic_comparison(iters) {
                println!("{:<36} {:.2} µs per atomic_add", m.name(), t.as_us());
            }
        }
        "contention" => {
            let m = method(DmaMethod::KeyBased)?;
            let processes = get_u64(&flags, "processes", 4)? as u32;
            let inits = get_u64(&flags, "inits", 50)? as u32;
            let quantum = get_u64(&flags, "quantum", 200)?;
            let r = run_contention(m, processes, inits, quantum);
            println!(
                "{}: {} procs × {} inits, quantum {} → finished={}, \
                 user-level={}, fallback={}, {:.2} µs/init, {} switches",
                m.name(),
                r.processes,
                r.inits_per_process,
                quantum,
                r.finished,
                r.user_level_processes,
                r.kernel_fallback_processes,
                r.mean_per_init().as_us(),
                r.context_switches
            );
        }
        "keyguess" => {
            let bits = get_u64(&flags, "bits", 16)? as u32;
            let guesses = get_u64(&flags, "guesses", 1000)?;
            let seed = get_u64(&flags, "seed", 7)?;
            let s = guess_acceptance(bits, guesses, seed);
            println!(
                "{}-bit keys, {} guesses: {} accepted (rate {:.3e})",
                s.key_bits,
                s.attempts,
                s.accepted,
                s.acceptance_rate()
            );
        }
        "pingpong" => {
            let rounds = get_u64(&flags, "rounds", 16)?;
            for cost in udma_msg::pingpong_comparison(rounds) {
                println!("{:<36} {:.2} µs round trip", cost.method.name(), cost.round_trip.as_us());
            }
        }
        "broadcast" => {
            let nodes = get_u64(&flags, "nodes", 4)? as u32;
            let bytes = get_u64(&flags, "bytes", 1024)?;
            let r = udma_workloads::broadcast(nodes, bytes);
            println!(
                "{} nodes × {} B: initiations done at {:.2} µs, last byte at {:.2} µs, verified: {}",
                r.nodes,
                r.bytes_per_node,
                r.initiation_time.as_us(),
                r.completion_time.as_us(),
                r.verified
            );
        }
        "trace" => {
            let mth = method(DmaMethod::KeyBased)?;
            let mut m = udma::Machine::with_method(mth);
            let mut spec = udma::ProcessSpec::two_buffers();
            if mth == DmaMethod::Shrimp1 {
                spec.mapped_out.push((0, 1));
            }
            m.spawn(&spec, |env| {
                let req = udma::DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
                udma::emit_dma_once(env, udma_cpu::ProgramBuilder::new(), &req).halt().build()
            });
            m.bus_mut().reset_stats();
            m.bus_mut().trace_mut().enable();
            m.run(10_000);
            println!("{} — one 64-byte initiation, device traffic:", mth.name());
            print!("{}", udma::device_trace_report(&m));
        }
        "messaging" => {
            let m = method(DmaMethod::ExtShadow)?;
            let words = get_u64(&flags, "words", 16)?;
            let count = get_u64(&flags, "count", 24)?;
            let cfg = udma_msg::ChannelConfig { slots: 4, payload_words: words };
            let cost = udma_msg::measure_messaging(m, &cfg, count);
            println!(
                "{}: {} × {}-byte messages → {:.2} µs per message end to end",
                m.name(),
                cost.messages,
                cost.payload_bytes,
                cost.per_message.as_us()
            );
        }
        other => return Err(format!("unknown command `{other}`\n\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `udma_cli help` for usage");
            ExitCode::FAILURE
        }
    }
}
