//! Differential property tests: the executor against an independent
//! reference interpreter, over random terminating programs.

use udma_testkit::prop::{any, vec, Just, Strategy};
use udma_testkit::{one_of, prop_assert, prop_assert_eq, props};

use std::cell::RefCell;
use std::rc::Rc;
use udma_bus::{Bus, BusTiming, WriteBufferPolicy};
use udma_cpu::{
    CostModel, Executor, Instr, NullTrapHandler, Operand, Program, Reg, RunToCompletion,
};
use udma_mem::{FrameAllocator, PageTable, Perms, PhysLayout, PhysMemory, VirtPage, PAGE_SIZE};

/// Register-and-memory reference interpreter (no timing, no devices).
fn reference_run(prog: &[Instr], max_steps: usize) -> ([u64; 16], Vec<u64>) {
    let mut regs = [0u64; 16];
    let mut mem = vec![0u64; (PAGE_SIZE / 8) as usize]; // one data page
    let mut pc = 0usize;
    let mut steps = 0;
    while pc < prog.len() && steps < max_steps {
        steps += 1;
        match prog[pc] {
            Instr::Imm { dst, value } => regs[dst.index()] = value,
            Instr::AddImm { dst, src, imm } => {
                regs[dst.index()] = regs[src.index()].wrapping_add(imm as u64)
            }
            Instr::Add { dst, a, b } => {
                regs[dst.index()] = regs[a.index()].wrapping_add(regs[b.index()])
            }
            Instr::Load { dst, addr } => {
                let va = match addr {
                    Operand::Imm(v) => v,
                    Operand::Reg(r) => regs[r.index()],
                };
                regs[dst.index()] = mem[((va % PAGE_SIZE) / 8) as usize];
            }
            Instr::Store { addr, src } => {
                let va = match addr {
                    Operand::Imm(v) => v,
                    Operand::Reg(r) => regs[r.index()],
                };
                let v = match src {
                    Operand::Imm(v) => v,
                    Operand::Reg(r) => regs[r.index()],
                };
                mem[((va % PAGE_SIZE) / 8) as usize] = v;
            }
            Instr::Mb | Instr::Compute { .. } => {}
            Instr::Beq { reg, value, target } => {
                if regs[reg.index()] == value {
                    pc = target;
                    continue;
                }
            }
            Instr::Bne { reg, value, target } => {
                if regs[reg.index()] != value {
                    pc = target;
                    continue;
                }
            }
            Instr::Jmp { target } => {
                pc = target;
                continue;
            }
            Instr::Syscall { .. } | Instr::CallPal { .. } => {}
            Instr::Halt => break,
        }
        pc += 1;
    }
    (regs, mem)
}

/// Random terminating instructions: register ops, loads/stores into one
/// page (word-aligned immediates), and *forward-only* branches.
fn instrs() -> impl Strategy<Value = Vec<Instr>> {
    let reg = || (0u8..8).prop_map(Reg::new);
    vec(
        one_of![
            (reg(), any::<u64>()).prop_map(|(dst, value)| Instr::Imm { dst, value }),
            (reg(), reg(), -100i64..100).prop_map(|(dst, src, imm)| Instr::AddImm {
                dst,
                src,
                imm
            }),
            (reg(), reg(), reg()).prop_map(|(dst, a, b)| Instr::Add { dst, a, b }),
            (reg(), 0u64..(PAGE_SIZE / 8))
                .prop_map(|(dst, w)| Instr::Load { dst, addr: Operand::Imm(w * 8) }),
            (0u64..(PAGE_SIZE / 8), reg()).prop_map(|(w, src)| Instr::Store {
                addr: Operand::Imm(w * 8),
                src: Operand::Reg(src)
            }),
            Just(Instr::Mb),
            (1u32..50).prop_map(|cycles| Instr::Compute { cycles }),
            // Forward branches only (skip 1–4 instructions): termination
            // is structural.
            (reg(), 0u64..4, 1usize..5).prop_map(|(r, value, skip)| Instr::Beq {
                reg: r,
                value,
                target: usize::MAX - skip
            }),
            (reg(), 0u64..4, 1usize..5).prop_map(|(r, value, skip)| Instr::Bne {
                reg: r,
                value,
                target: usize::MAX - skip
            }),
        ],
        0..40,
    )
    .prop_map(|mut v| {
        // Resolve the encoded "skip" into absolute forward targets.
        let len = v.len();
        for (i, ins) in v.iter_mut().enumerate() {
            if let Instr::Beq { target, .. } | Instr::Bne { target, .. } = ins {
                let skip = usize::MAX - *target;
                *target = (i + skip).min(len);
            }
        }
        v
    })
}

fn machine() -> (Executor, Bus, PageTable) {
    let layout = PhysLayout::default();
    let mem = Rc::new(RefCell::new(PhysMemory::new(layout.ram_size)));
    let bus = Bus::new(layout, mem, BusTiming::turbochannel());
    let mut pt = PageTable::new();
    let mut alloc = FrameAllocator::with_range(1, 16);
    pt.map(VirtPage::new(0), alloc.alloc().unwrap(), Perms::READ_WRITE).unwrap();
    (Executor::new(CostModel::alpha_3000_300(), WriteBufferPolicy::default()), bus, pt)
}

props! {
    config(cases = 256);

    /// For any terminating straight-line-with-forward-branches program,
    /// the executor's architectural state (registers + the data page)
    /// matches the reference interpreter exactly — independent of the
    /// write buffer, cache and TLB machinery in between.
    fn executor_matches_reference_interpreter(body in instrs()) {
        let (expect_regs, expect_mem) = reference_run(&body, 10_000);

        let (mut ex, mut bus, pt) = machine();
        let frame = pt.entry(VirtPage::new(0)).unwrap().frame;
        let pid = ex.spawn(Program::from_instrs(body), pt);
        let out = ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100_000);
        prop_assert!(out.finished, "forward branches must terminate");

        for i in 0..8u8 {
            prop_assert_eq!(
                ex.process(pid).reg(Reg::new(i)),
                expect_regs[i as usize],
                "r{} differs", i
            );
        }
        // Memory: the executor drains the write buffer at end of run, so
        // the page must match the reference word for word.
        prop_assert!(ex.write_buffer().is_empty());
        let mem = bus.memory();
        for (w, &want) in expect_mem.iter().enumerate() {
            let pa = frame.base() + (w as u64) * 8;
            let got = mem.borrow().read_u64(pa).unwrap();
            prop_assert_eq!(got, want, "word {} differs", w);
        }
    }
}
