//! Programs and the label-resolving builder.

use crate::{Instr, Operand, Reg};
use std::collections::HashMap;
use std::fmt;

/// An immutable instruction sequence.
///
/// Build one with [`ProgramBuilder`], which resolves symbolic labels into
/// instruction indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Creates a program directly from instructions (targets must already
    /// be resolved and in range).
    ///
    /// # Panics
    ///
    /// Panics if any branch target is out of range.
    pub fn from_instrs(instrs: Vec<Instr>) -> Self {
        for (i, ins) in instrs.iter().enumerate() {
            if let Instr::Beq { target, .. } | Instr::Bne { target, .. } | Instr::Jmp { target } =
                ins
            {
                assert!(
                    *target <= instrs.len(),
                    "instruction {i}: branch target {target} out of range"
                );
            }
        }
        Program { instrs }
    }

    /// The instruction at `pc`, or `None` past the end (which halts the
    /// process).
    pub fn fetch(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The raw instruction slice.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Concatenates two programs, rebasing the second one's branch
    /// targets. Useful for prefixing setup code to a protocol sequence.
    pub fn concat(&self, other: &Program) -> Program {
        let base = self.instrs.len();
        let mut out = self.instrs.clone();
        // Drop a trailing Halt of the first program so control falls
        // through into the second.
        if out.last() == Some(&Instr::Halt) {
            out.pop();
        }
        let base = if out.len() < base { out.len() } else { base };
        let rebased = other.instrs.iter().map(|ins| match *ins {
            Instr::Beq { reg, value, target } => Instr::Beq { reg, value, target: target + base },
            Instr::Bne { reg, value, target } => Instr::Bne { reg, value, target: target + base },
            Instr::Jmp { target } => Instr::Jmp { target: target + base },
            other => other,
        });
        out.extend(rebased);
        Program { instrs: out }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ins) in self.instrs.iter().enumerate() {
            writeln!(f, "{i:4}: {ins}")?;
        }
        Ok(())
    }
}

/// Builds a [`Program`] with symbolic labels and a fluent interface.
///
/// ```
/// use udma_cpu::{ProgramBuilder, Reg};
///
/// // Figure-7-style retry loop skeleton: retry while r0 == 0.
/// let prog = ProgramBuilder::new()
///     .label("retry")
///     .load(Reg::R0, 0x1000u64)
///     .beq(Reg::R0, 0, "retry")
///     .halt()
///     .build();
/// assert_eq!(prog.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: HashMap<String, usize>,
    /// (instruction index, label) pairs awaiting resolution.
    fixups: Vec<(usize, String)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(mut self, name: &str) -> Self {
        let prev = self.labels.insert(name.to_string(), self.instrs.len());
        assert!(prev.is_none(), "label `{name}` defined twice");
        self
    }

    /// `dst ← value`.
    pub fn imm(mut self, dst: Reg, value: u64) -> Self {
        self.instrs.push(Instr::Imm { dst, value });
        self
    }

    /// `dst ← src + imm`.
    pub fn add_imm(mut self, dst: Reg, src: Reg, imm: i64) -> Self {
        self.instrs.push(Instr::AddImm { dst, src, imm });
        self
    }

    /// `dst ← a + b`.
    pub fn add(mut self, dst: Reg, a: Reg, b: Reg) -> Self {
        self.instrs.push(Instr::Add { dst, a, b });
        self
    }

    /// `dst ← mem64[addr]`.
    pub fn load(mut self, dst: Reg, addr: impl Into<Operand>) -> Self {
        self.instrs.push(Instr::Load { dst, addr: addr.into() });
        self
    }

    /// `mem64[addr] ← src`.
    pub fn store(mut self, addr: impl Into<Operand>, src: impl Into<Operand>) -> Self {
        self.instrs.push(Instr::Store { addr: addr.into(), src: src.into() });
        self
    }

    /// Memory barrier.
    pub fn mb(mut self) -> Self {
        self.instrs.push(Instr::Mb);
        self
    }

    /// Burn CPU cycles.
    pub fn compute(mut self, cycles: u32) -> Self {
        self.instrs.push(Instr::Compute { cycles });
        self
    }

    /// Branch to `label` if `reg == value`.
    pub fn beq(mut self, reg: Reg, value: u64, label: &str) -> Self {
        self.fixups.push((self.instrs.len(), label.to_string()));
        self.instrs.push(Instr::Beq { reg, value, target: usize::MAX });
        self
    }

    /// Branch to `label` if `reg != value`.
    pub fn bne(mut self, reg: Reg, value: u64, label: &str) -> Self {
        self.fixups.push((self.instrs.len(), label.to_string()));
        self.instrs.push(Instr::Bne { reg, value, target: usize::MAX });
        self
    }

    /// Unconditional jump to `label`.
    pub fn jmp(mut self, label: &str) -> Self {
        self.fixups.push((self.instrs.len(), label.to_string()));
        self.instrs.push(Instr::Jmp { target: usize::MAX });
        self
    }

    /// Trap into the kernel.
    pub fn syscall(mut self, no: u16) -> Self {
        self.instrs.push(Instr::Syscall { no });
        self
    }

    /// Invoke PAL function `index`.
    pub fn call_pal(mut self, index: u16) -> Self {
        self.instrs.push(Instr::CallPal { index });
        self
    }

    /// Stop the process.
    pub fn halt(mut self) -> Self {
        self.instrs.push(Instr::Halt);
        self
    }

    /// Appends a raw instruction.
    pub fn raw(mut self, ins: Instr) -> Self {
        self.instrs.push(ins);
        self
    }

    /// Resolves labels and produces the program.
    ///
    /// # Panics
    ///
    /// Panics on a reference to an undefined label.
    pub fn build(mut self) -> Program {
        for (idx, label) in &self.fixups {
            let target =
                *self.labels.get(label).unwrap_or_else(|| panic!("undefined label `{label}`"));
            match &mut self.instrs[*idx] {
                Instr::Beq { target: t, .. }
                | Instr::Bne { target: t, .. }
                | Instr::Jmp { target: t } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Program::from_instrs(self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let p = ProgramBuilder::new()
            .label("top")
            .imm(Reg::R0, 1)
            .beq(Reg::R0, 0, "top")
            .bne(Reg::R0, 0, "end")
            .jmp("top")
            .label("end")
            .halt()
            .build();
        assert_eq!(p.len(), 5);
        assert_eq!(p.instrs()[1], Instr::Beq { reg: Reg::R0, value: 0, target: 0 });
        assert_eq!(p.instrs()[2], Instr::Bne { reg: Reg::R0, value: 0, target: 4 });
        assert_eq!(p.instrs()[3], Instr::Jmp { target: 0 });
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let _ = ProgramBuilder::new().jmp("nowhere").build();
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let _ = ProgramBuilder::new().label("a").label("a").build();
    }

    #[test]
    fn label_at_end_is_valid_target() {
        // Branching to a label right after the last instruction halts.
        let p = ProgramBuilder::new().jmp("end").label("end").build();
        assert_eq!(p.instrs()[0], Instr::Jmp { target: 1 });
        assert!(p.fetch(1).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_instrs_validates_targets() {
        let _ = Program::from_instrs(vec![Instr::Jmp { target: 5 }]);
    }

    #[test]
    fn concat_rebases_targets_and_drops_halt() {
        let a = ProgramBuilder::new().imm(Reg::R0, 1).halt().build();
        let b = ProgramBuilder::new().label("top").imm(Reg::R1, 2).jmp("top").build();
        let c = a.concat(&b);
        assert_eq!(c.len(), 3); // halt dropped
        assert_eq!(c.instrs()[2], Instr::Jmp { target: 1 });
    }

    #[test]
    fn display_lists_instructions() {
        let p = ProgramBuilder::new().mb().halt().build();
        let s = p.to_string();
        assert!(s.contains("0: mb"));
        assert!(s.contains("1: halt"));
    }

    #[test]
    fn fetch_past_end_is_none() {
        let p = ProgramBuilder::new().halt().build();
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(1).is_none());
    }
}
