//! The CPU-side cost model.

use udma_bus::{Clock, SimTime};

/// Cycle costs charged by the [`crate::Executor`] for everything that is
/// not a bus transaction (those are priced by the bus's own
/// [`udma_bus::BusTiming`]).
///
/// [`CostModel::alpha_3000_300`] is calibrated against the paper's §3.4
/// measurements: a 150 MHz Alpha 21064 whose "kernel level DMA costs close
/// to 19 µs, which is a little more than the cost of an empty system call
/// on this workstation", consistent with lmbench's 1 000–5 000 cycles for
/// commercial UNIX syscalls that the paper cites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// The processor clock.
    pub cpu: Clock,
    /// Issue cost of a simple instruction (imm/add/branch/jmp/halt).
    pub instr_cycles: u64,
    /// Extra cost of a load/store hitting the cache or write buffer
    /// (beyond `instr_cycles`).
    pub mem_instr_cycles: u64,
    /// Cost of a memory-barrier instruction itself (draining is charged
    /// per drained transaction by the bus).
    pub mb_cycles: u64,
    /// Kernel entry: trap, register save, dispatch.
    pub syscall_entry_cycles: u64,
    /// Kernel exit: register restore, return to user.
    pub syscall_exit_cycles: u64,
    /// One software page-table walk inside the kernel
    /// (`virtual_to_physical` of Figure 1).
    pub translation_cycles: u64,
    /// Hardware TLB refill on a user-mode miss.
    pub tlb_miss_cycles: u64,
    /// A cacheable load hitting the data cache (charged instead of the
    /// DRAM latency).
    pub dcache_hit_cycles: u64,
    /// A full context switch (save, switch address space, restore),
    /// excluding TLB refill costs which accrue as misses afterwards.
    pub context_switch_cycles: u64,
    /// Entering/leaving PAL mode (§2.7: "PAL code is organized in
    /// 16-instruction long PAL calls").
    pub pal_call_cycles: u64,
}

impl CostModel {
    /// The paper's host: DEC Alpha 3000 model 300 (150 MHz 21064).
    ///
    /// Calibration targets (paper Table 1, TurboChannel at 12.5 MHz):
    /// kernel DMA ≈ 18.6 µs, dominated by an ≈16 µs empty syscall.
    pub fn alpha_3000_300() -> Self {
        CostModel {
            cpu: Clock::new(150_000_000),
            instr_cycles: 2,
            mem_instr_cycles: 1,
            mb_cycles: 8,
            syscall_entry_cycles: 1_200,
            syscall_exit_cycles: 1_000,
            translation_cycles: 160,
            tlb_miss_cycles: 30,
            dcache_hit_cycles: 2,
            context_switch_cycles: 1_800,
            pal_call_cycles: 40,
        }
    }

    /// A hypothetical "modern" host for trend experiments: a 10× faster
    /// CPU whose OS paths shrank only 2× in cycles — the Ousterhout/
    /// Rosenblum observation the paper builds its motivation on.
    pub fn modern_trend_host() -> Self {
        CostModel {
            cpu: Clock::new(1_500_000_000),
            syscall_entry_cycles: 2 * 1_300 / 2 * 5,
            syscall_exit_cycles: 2 * 1_100 / 2 * 5,
            ..Self::alpha_3000_300()
        }
    }

    /// Time for `cycles` CPU cycles.
    pub fn cycles(&self, cycles: u64) -> SimTime {
        self.cpu.cycles(cycles)
    }

    /// Time for a simple instruction.
    pub fn instr(&self) -> SimTime {
        self.cycles(self.instr_cycles)
    }

    /// Time for the CPU side of a load/store.
    pub fn mem_instr(&self) -> SimTime {
        self.cycles(self.instr_cycles + self.mem_instr_cycles)
    }

    /// Time for a memory barrier (excluding drained transactions).
    pub fn mb(&self) -> SimTime {
        self.cycles(self.mb_cycles)
    }

    /// Kernel entry + exit for one syscall, excluding the work inside.
    pub fn syscall_round_trip(&self) -> SimTime {
        self.cycles(self.syscall_entry_cycles + self.syscall_exit_cycles)
    }

    /// Time for a TLB refill.
    pub fn tlb_miss(&self) -> SimTime {
        self.cycles(self.tlb_miss_cycles)
    }

    /// Time for a context switch.
    pub fn context_switch(&self) -> SimTime {
        self.cycles(self.context_switch_cycles)
    }

    /// Entry+exit overhead of a PAL call.
    pub fn pal_call(&self) -> SimTime {
        self.cycles(self.pal_call_cycles)
    }

    /// One in-kernel page translation.
    pub fn translation(&self) -> SimTime {
        self.cycles(self.translation_cycles)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::alpha_3000_300()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_syscall_is_about_sixteen_microseconds() {
        let m = CostModel::alpha_3000_300();
        let us = m.syscall_round_trip().as_us();
        assert!((14.0..17.0).contains(&us), "syscall round trip = {us} µs");
    }

    #[test]
    fn syscall_cycles_in_lmbench_band() {
        let m = CostModel::alpha_3000_300();
        let cycles = m.syscall_entry_cycles + m.syscall_exit_cycles;
        assert!((1_000..=5_000).contains(&cycles));
    }

    #[test]
    fn helpers_scale_with_clock() {
        let m = CostModel::alpha_3000_300();
        assert_eq!(m.cycles(150), SimTime::from_ns(1000));
        assert!(m.instr() < m.mb());
        assert!(m.mb() < m.context_switch());
    }

    #[test]
    fn default_is_alpha() {
        assert_eq!(CostModel::default(), CostModel::alpha_3000_300());
    }

    #[test]
    fn modern_host_has_relatively_slower_os() {
        let old = CostModel::alpha_3000_300();
        let new = CostModel::modern_trend_host();
        // Absolute syscall time shrinks…
        assert!(new.syscall_round_trip() < old.syscall_round_trip());
        // …but by much less than the 10× clock ratio (the paper's trend).
        let ratio = old.syscall_round_trip().as_ns() / new.syscall_round_trip().as_ns();
        assert!(ratio < 5.0, "OS sped up {ratio}×, should lag the CPU's 10×");
    }
}
