//! The executor: runs processes instruction by instruction through the
//! TLB and write buffer onto the bus.

use crate::{
    CostModel, Instr, Operand, Pid, Process, Program, Reg, Scheduler, SwitchReason, TrapHandler,
};
use std::collections::HashMap;
use udma_bus::{
    AgentId, Bus, BusOp, BusTxn, CacheConfig, CacheStats, DataCache, PendingStore, SharedCoherence,
    SimTime, WriteBuffer, WriteBufferPolicy,
};
use udma_mem::{Access, MemFault, PageTable, Tlb, TlbStats};

/// Counters kept by the executor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired (across all processes, PAL included).
    pub instructions: u64,
    /// Context switches performed (initial dispatch not counted).
    pub context_switches: u64,
    /// Syscalls handled.
    pub syscalls: u64,
    /// PAL calls executed.
    pub pal_calls: u64,
    /// Processes killed by memory faults.
    pub faults: u64,
}

/// Result of [`Executor::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Instructions executed during this call.
    pub steps: u64,
    /// Whether every process reached `Halted`/`Faulted` (as opposed to
    /// hitting the step limit).
    pub finished: bool,
}

/// The CPU: owns the processes, the TLB, the write buffer and the PAL
/// function table, and advances simulated time as it executes.
pub struct Executor {
    processes: Vec<Process>,
    tlb: Tlb,
    wb: WriteBuffer,
    dcache: DataCache,
    cost: CostModel,
    now: SimTime,
    current: Option<Pid>,
    pal: HashMap<u16, Program>,
    stats: ExecStats,
    /// When attached, cacheable loads and retired stores go through this
    /// agent of a data-carrying coherence domain instead of the
    /// timing-only `dcache` + flat RAM: the cache holds real line
    /// contents, so a DMA engine that bypasses it can observably read
    /// stale data. Base costs are unchanged (hit cycles / RAM latency);
    /// only coherence extras are added.
    coherence: Option<(SharedCoherence, AgentId)>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("processes", &self.processes.len())
            .field("now", &self.now)
            .field("current", &self.current)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Executor {
    /// Creates an executor with the given cost model and write-buffer
    /// policy.
    pub fn new(cost: CostModel, wb_policy: WriteBufferPolicy) -> Self {
        Self::with_cache(cost, wb_policy, CacheConfig::alpha_21064())
    }

    /// Creates an executor with an explicit data-cache geometry (use
    /// [`CacheConfig::disabled`] for a cache-less machine).
    pub fn with_cache(cost: CostModel, wb_policy: WriteBufferPolicy, cache: CacheConfig) -> Self {
        Executor {
            processes: Vec::new(),
            tlb: Tlb::default(),
            wb: WriteBuffer::new(wb_policy),
            dcache: DataCache::new(cache),
            cost,
            now: SimTime::ZERO,
            current: None,
            pal: HashMap::new(),
            stats: ExecStats::default(),
            coherence: None,
        }
    }

    /// Routes this CPU's cacheable data traffic through `agent` of a
    /// coherence domain (see the `coherence` field). The timing-only
    /// `dcache` stops being consulted; [`dcache_stats`](Self::dcache_stats)
    /// reports the domain agent's counters instead.
    pub fn attach_coherence(&mut self, domain: SharedCoherence, agent: AgentId) {
        self.coherence = Some((domain, agent));
    }

    /// The attached coherence domain and agent id, if any.
    pub fn coherence(&self) -> Option<(SharedCoherence, AgentId)> {
        self.coherence.clone()
    }

    /// Spawns a ready process and returns its pid (pids are dense,
    /// starting at 0).
    pub fn spawn(&mut self, program: Program, page_table: PageTable) -> Pid {
        let pid = Pid::new(self.processes.len() as u32);
        self.processes.push(Process::new(pid, program, page_table));
        pid
    }

    /// Installs PAL function `index` (§2.7). PAL programs may use memory,
    /// register and branch instructions only; `Syscall`, `CallPal` and
    /// `Halt` inside PAL kill the calling process.
    pub fn install_pal(&mut self, index: u16, program: Program) {
        self.pal.insert(index, program);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Adds externally accounted time (e.g. DMA transfer completion the
    /// caller waited on).
    pub fn advance(&mut self, dt: SimTime) {
        self.now += dt;
    }

    /// The process with `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not spawned here.
    pub fn process(&self, pid: Pid) -> &Process {
        &self.processes[pid.as_u32() as usize]
    }

    /// Mutable access to a process (test setup, kernel bookkeeping).
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not spawned here.
    pub fn process_mut(&mut self, pid: Pid) -> &mut Process {
        &mut self.processes[pid.as_u32() as usize]
    }

    /// All processes in spawn order.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// Pids currently able to run.
    pub fn ready_pids(&self) -> Vec<Pid> {
        self.processes.iter().filter(|p| p.state().is_ready()).map(|p| p.pid()).collect()
    }

    /// Executor counters.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// TLB counters.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// Data-cache counters (the coherence agent's when one is attached).
    pub fn dcache_stats(&self) -> CacheStats {
        match &self.coherence {
            Some((domain, agent)) => domain.borrow().cache(*agent).stats(),
            None => self.dcache.stats(),
        }
    }

    /// The write buffer (inspect collapse/forward counters in tests).
    pub fn write_buffer(&self) -> &WriteBuffer {
        &self.wb
    }

    /// Runs until every process halts/faults or `max_steps` instructions
    /// retire.
    pub fn run(
        &mut self,
        sched: &mut dyn Scheduler,
        kernel: &mut dyn TrapHandler,
        bus: &mut Bus,
        max_steps: u64,
    ) -> RunOutcome {
        let mut steps = 0;
        while steps < max_steps {
            let ready = self.ready_pids();
            if ready.is_empty() {
                // A real write buffer drains within cycles of going idle;
                // retire whatever the last process left behind.
                self.retire_all(bus);
                return RunOutcome { steps, finished: true };
            }
            let pick = sched.pick(self.stats.instructions, self.current, &ready);
            debug_assert!(ready.contains(&pick), "scheduler picked non-ready {pick}");
            if self.current != Some(pick) {
                self.switch_to(pick, kernel, bus);
            }
            self.exec_one(pick, kernel, bus);
            steps += 1;
        }
        RunOutcome { steps, finished: self.ready_pids().is_empty() }
    }

    fn switch_to(&mut self, to: Pid, kernel: &mut dyn TrapHandler, bus: &mut Bus) {
        let from = self.current;
        let reason = match from {
            None => SwitchReason::InitialDispatch,
            Some(c) if self.processes[c.as_u32() as usize].state().is_ready() => {
                SwitchReason::Preemption
            }
            Some(_) => SwitchReason::PreviousExited,
        };
        // Kernel entry implies a barrier: pending stores retire in order.
        self.retire_all(bus);
        self.tlb.flush_all();
        self.dcache.flush_all();
        if let Some((domain, agent)) = self.coherence.clone() {
            // No address-space tags: a switch writes back and drops the
            // whole data cache, exactly like the timing-only model.
            domain.borrow_mut().flush_all(agent);
        }
        if from.is_some() {
            self.now += self.cost.context_switch();
            self.stats.context_switches += 1;
        }
        let extra = kernel.on_context_switch(from, to, reason, bus, self.now);
        self.now += extra;
        self.current = Some(to);
    }

    fn exec_one(&mut self, pid: Pid, kernel: &mut dyn TrapHandler, bus: &mut Bus) {
        let idx = pid.as_u32() as usize;
        let pc = self.processes[idx].pc;
        let ins = match self.processes[idx].program().fetch(pc) {
            Some(i) => *i,
            None => {
                self.processes[idx].halt();
                return;
            }
        };
        self.stats.instructions += 1;
        self.processes[idx].instret += 1;
        self.processes[idx].pc = pc + 1;
        let t0 = self.now;
        let is_syscall = matches!(ins, Instr::Syscall { .. });
        match ins {
            Instr::Imm { dst, value } => {
                self.now += self.cost.instr();
                self.processes[idx].set_reg(dst, value);
            }
            Instr::AddImm { dst, src, imm } => {
                self.now += self.cost.instr();
                let v = self.processes[idx].reg(src).wrapping_add(imm as u64);
                self.processes[idx].set_reg(dst, v);
            }
            Instr::Add { dst, a, b } => {
                self.now += self.cost.instr();
                let v = self.processes[idx].reg(a).wrapping_add(self.processes[idx].reg(b));
                self.processes[idx].set_reg(dst, v);
            }
            Instr::Load { dst, addr } => {
                let _ = self.do_load(idx, dst, addr, bus);
            }
            Instr::Store { addr, src } => {
                let _ = self.do_store(idx, addr, src, bus);
            }
            Instr::Mb => {
                self.now += self.cost.mb();
                self.retire_all(bus);
            }
            Instr::Compute { cycles } => {
                self.now += self.cost.cycles(cycles as u64);
            }
            Instr::Beq { reg, value, target } => {
                self.now += self.cost.instr();
                if self.processes[idx].reg(reg) == value {
                    self.processes[idx].pc = target;
                }
            }
            Instr::Bne { reg, value, target } => {
                self.now += self.cost.instr();
                if self.processes[idx].reg(reg) != value {
                    self.processes[idx].pc = target;
                }
            }
            Instr::Jmp { target } => {
                self.now += self.cost.instr();
                self.processes[idx].pc = target;
            }
            Instr::Syscall { no } => {
                self.stats.syscalls += 1;
                // Kernel entry is a barrier.
                self.retire_all(bus);
                self.now += self.cost.syscall_round_trip();
                let outcome = kernel.syscall(no, &mut self.processes[idx], bus, self.now);
                self.now += outcome.time;
                self.processes[idx].set_reg(Reg::R0, outcome.retval);
            }
            Instr::CallPal { index } => {
                self.stats.pal_calls += 1;
                self.now += self.cost.pal_call();
                self.exec_pal(idx, index, bus);
            }
            Instr::Halt => {
                self.now += self.cost.instr();
                self.processes[idx].halt();
            }
        }
        let dt = self.now - t0;
        if is_syscall {
            self.processes[idx].kernel_time += dt;
        } else {
            self.processes[idx].user_time += dt;
        }
    }

    /// Executes an installed PAL function to completion, uninterrupted.
    fn exec_pal(&mut self, idx: usize, index: u16, bus: &mut Bus) {
        let Some(prog) = self.pal.get(&index).cloned() else {
            // Calling an uninstalled PAL slot is an illegal instruction.
            let va = udma_mem::VirtAddr::new(index as u64);
            self.processes[idx].fault(MemFault::Unmapped { va });
            self.stats.faults += 1;
            return;
        };
        let mut pc = 0usize;
        // PAL calls are bounded; a runaway loop in PAL code is a model
        // bug, so cap generously and kill the process if exceeded.
        let mut fuel = 4096;
        while let Some(&ins) = prog.fetch(pc) {
            fuel -= 1;
            if fuel == 0 {
                self.processes[idx].halt();
                return;
            }
            self.stats.instructions += 1;
            pc += 1;
            match ins {
                Instr::Imm { dst, value } => {
                    self.now += self.cost.instr();
                    self.processes[idx].set_reg(dst, value);
                }
                Instr::AddImm { dst, src, imm } => {
                    self.now += self.cost.instr();
                    let v = self.processes[idx].reg(src).wrapping_add(imm as u64);
                    self.processes[idx].set_reg(dst, v);
                }
                Instr::Add { dst, a, b } => {
                    self.now += self.cost.instr();
                    let v = self.processes[idx].reg(a).wrapping_add(self.processes[idx].reg(b));
                    self.processes[idx].set_reg(dst, v);
                }
                Instr::Load { dst, addr } => {
                    if self.do_load(idx, dst, addr, bus).is_err() {
                        return;
                    }
                }
                Instr::Store { addr, src } => {
                    if self.do_store(idx, addr, src, bus).is_err() {
                        return;
                    }
                }
                Instr::Mb => {
                    self.now += self.cost.mb();
                    self.retire_all(bus);
                }
                Instr::Compute { cycles } => {
                    self.now += self.cost.cycles(cycles as u64);
                }
                Instr::Beq { reg, value, target } => {
                    self.now += self.cost.instr();
                    if self.processes[idx].reg(reg) == value {
                        pc = target;
                    }
                }
                Instr::Bne { reg, value, target } => {
                    self.now += self.cost.instr();
                    if self.processes[idx].reg(reg) != value {
                        pc = target;
                    }
                }
                Instr::Jmp { target } => {
                    self.now += self.cost.instr();
                    pc = target;
                }
                Instr::Syscall { .. } | Instr::CallPal { .. } | Instr::Halt => {
                    // Illegal in PAL mode.
                    let va = udma_mem::VirtAddr::new(pc as u64);
                    self.processes[idx].fault(MemFault::Unmapped { va });
                    self.stats.faults += 1;
                    return;
                }
            }
        }
    }

    fn resolve(&self, idx: usize, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.processes[idx].reg(r),
            Operand::Imm(v) => v,
        }
    }

    fn translate(
        &mut self,
        idx: usize,
        va: u64,
        access: Access,
    ) -> Result<udma_mem::PhysAddr, MemFault> {
        let va = udma_mem::VirtAddr::new(va);
        let (pa, hit) = self.tlb.translate(self.processes[idx].page_table(), va, access)?;
        if !hit {
            self.now += self.cost.tlb_miss();
        }
        Ok(pa)
    }

    fn kill(&mut self, idx: usize, fault: MemFault) {
        self.processes[idx].fault(fault);
        self.stats.faults += 1;
    }

    fn do_load(&mut self, idx: usize, dst: Reg, addr: Operand, bus: &mut Bus) -> Result<(), ()> {
        let va = self.resolve(idx, addr);
        let pa = match self.translate(idx, va, Access::Read) {
            Ok(pa) => pa,
            Err(f) => {
                self.kill(idx, f);
                return Err(());
            }
        };
        self.now += self.cost.mem_instr();
        let mut cache_hit = None;
        if bus.layout().is_device(pa) {
            // Uncached device loads are strongly ordered with respect to
            // buffered stores (TurboChannel semantics): retire the write
            // buffer before the load reaches the NIC. Same-address
            // *stores* can still collapse in the buffer — the hazard the
            // paper's memory barriers guard against.
            self.retire_all(bus);
        } else if let Some(data) = self.wb.service_load(pa) {
            // Forwarded from the write buffer: never reaches the bus.
            self.processes[idx].set_reg(dst, data);
            return Ok(());
        } else if let Some((domain, agent)) = self.coherence.clone() {
            // Coherent load: data comes from the agent's cache (which may
            // hold lines memory has never seen). The bus still accounts
            // the access — counted before the alignment check, exactly
            // where the flat path counts it. Alignment rules match the
            // RAM device's.
            bus.note_ram_access(BusOp::Read);
            if !pa.is_aligned_to(8) {
                self.kill(idx, MemFault::Misaligned { addr: pa.as_u64(), size: 8 });
                return Err(());
            }
            let mut b = [0u8; 8];
            match domain.borrow_mut().agent_read(agent, pa, &mut b) {
                Ok((hit, extra)) => {
                    self.now += if hit {
                        self.cost.cycles(self.cost.dcache_hit_cycles)
                    } else {
                        bus.ram_latency()
                    };
                    self.now += extra;
                    self.processes[idx].set_reg(dst, u64::from_le_bytes(b));
                    return Ok(());
                }
                Err(f) => {
                    self.kill(idx, f);
                    return Err(());
                }
            }
        } else {
            // Cacheable load: the cache decides the *time*; the data
            // still comes from memory (the cache is tags-only, so DMA
            // writes can never be observed stale).
            cache_hit = Some(self.dcache.access(pa));
        }
        let tag = self.processes[idx].pid().as_u32();
        match bus.access(BusTxn::read(pa, tag), self.now) {
            Ok((data, t)) => {
                self.now += match cache_hit {
                    Some(true) => self.cost.cycles(self.cost.dcache_hit_cycles),
                    Some(false) => bus.ram_latency(),
                    None => t, // device access: the bus priced it
                };
                self.processes[idx].set_reg(dst, data);
                Ok(())
            }
            Err(f) => {
                self.kill(idx, f);
                Err(())
            }
        }
    }

    fn do_store(
        &mut self,
        idx: usize,
        addr: Operand,
        src: Operand,
        bus: &mut Bus,
    ) -> Result<(), ()> {
        let va = self.resolve(idx, addr);
        let data = self.resolve(idx, src);
        let pa = match self.translate(idx, va, Access::Write) {
            Ok(pa) => pa,
            Err(f) => {
                self.kill(idx, f);
                return Err(());
            }
        };
        self.now += self.cost.mem_instr();
        let tag = self.processes[idx].pid().as_u32();
        let retired = self.wb.push(PendingStore { paddr: pa, data, tag });
        for p in retired {
            if let Err(f) = self.retire(p, bus) {
                self.kill(idx, f);
                return Err(());
            }
        }
        Ok(())
    }

    fn retire(&mut self, p: PendingStore, bus: &mut Bus) -> Result<(), MemFault> {
        if !bus.layout().is_device(p.paddr) {
            if let Some((domain, agent)) = self.coherence.clone() {
                // Coherent store retirement: the data lands in the
                // agent's cache (Modified), not in memory; base cost is
                // the same DRAM latency the flat bus charges, plus
                // whatever ownership cost the snoop incurred. Counted on
                // the bus like a flat retirement.
                bus.note_ram_access(BusOp::Write);
                if !p.paddr.is_aligned_to(8) {
                    return Err(MemFault::Misaligned { addr: p.paddr.as_u64(), size: 8 });
                }
                let (_, extra) =
                    domain.borrow_mut().agent_write(agent, p.paddr, &p.data.to_le_bytes())?;
                self.now += bus.ram_latency() + extra;
                return Ok(());
            }
        }
        let (_, t) = bus.access(p.into_txn(), self.now)?;
        self.now += t;
        Ok(())
    }

    fn retire_all(&mut self, bus: &mut Bus) {
        for p in self.wb.drain() {
            // A store that faults at retirement belongs to the process
            // that issued it; kill that process if it is still around.
            if let Err(f) = self.retire(p, bus) {
                let idx = p.tag as usize;
                if idx < self.processes.len() {
                    self.kill(idx, f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullTrapHandler;
    use crate::{ProcState, ProgramBuilder, RunToCompletion};
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_bus::BusTiming;
    use udma_mem::{FrameAllocator, Perms, PhysLayout, PhysMemory, VirtAddr, VirtPage};

    fn world() -> (Bus, PageTable) {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(layout.ram_size)));
        let bus = Bus::new(layout, mem, BusTiming::turbochannel());
        let mut pt = PageTable::new();
        let mut alloc = FrameAllocator::new(1 << 20);
        for p in 0..4u64 {
            pt.map(VirtPage::new(p), alloc.alloc().unwrap(), Perms::READ_WRITE).unwrap();
        }
        (bus, pt)
    }

    fn exec() -> Executor {
        Executor::new(CostModel::alpha_3000_300(), WriteBufferPolicy::default())
    }

    #[test]
    fn store_load_round_trip_through_memory() {
        let (mut bus, pt) = world();
        let mut ex = exec();
        let prog = ProgramBuilder::new()
            .store(0x100u64, 0xABu64)
            .mb()
            .load(Reg::R1, 0x100u64)
            .halt()
            .build();
        let pid = ex.spawn(prog, pt);
        let out = ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        assert!(out.finished);
        assert_eq!(ex.process(pid).reg(Reg::R1), 0xAB);
        assert_eq!(ex.process(pid).state(), ProcState::Halted);
    }

    #[test]
    fn load_forwarded_from_write_buffer_skips_bus() {
        let (mut bus, pt) = world();
        let mut ex = exec();
        // No barrier between store and load to the same address.
        let prog =
            ProgramBuilder::new().store(0x100u64, 7u64).load(Reg::R1, 0x100u64).halt().build();
        let pid = ex.spawn(prog, pt);
        ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        assert_eq!(ex.process(pid).reg(Reg::R1), 7);
        assert_eq!(ex.write_buffer().serviced_count(), 1);
        // The load never became a bus transaction.
        assert_eq!(bus.stats().ram_reads, 0);
    }

    #[test]
    fn unmapped_store_kills_process() {
        let (mut bus, pt) = world();
        let mut ex = exec();
        let prog = ProgramBuilder::new().store(0x9999_0000u64, 1u64).halt().build();
        let pid = ex.spawn(prog, pt);
        let out = ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        assert!(out.finished);
        assert!(matches!(ex.process(pid).state(), ProcState::Faulted(MemFault::Unmapped { .. })));
        assert_eq!(ex.stats().faults, 1);
    }

    #[test]
    fn protection_fault_on_readonly_page() {
        let (mut bus, mut pt) = world();
        pt.protect(VirtPage::new(0), Perms::READ).unwrap();
        let mut ex = exec();
        let prog = ProgramBuilder::new().store(0x10u64, 1u64).halt().build();
        let pid = ex.spawn(prog, pt);
        ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        assert!(matches!(ex.process(pid).state(), ProcState::Faulted(MemFault::Protection { .. })));
    }

    #[test]
    fn registers_and_branches() {
        let (mut bus, pt) = world();
        let mut ex = exec();
        // r1 = 3; loop: r1 -= 1; bne r1, 0, loop; r2 = 99
        let prog = ProgramBuilder::new()
            .imm(Reg::R1, 3)
            .label("loop")
            .add_imm(Reg::R1, Reg::R1, -1)
            .bne(Reg::R1, 0, "loop")
            .imm(Reg::R2, 99)
            .halt()
            .build();
        let pid = ex.spawn(prog, pt);
        let out = ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        assert!(out.finished);
        assert_eq!(ex.process(pid).reg(Reg::R1), 0);
        assert_eq!(ex.process(pid).reg(Reg::R2), 99);
        // 1 imm + 3*(addi+bne) + imm + halt = 9 instructions.
        assert_eq!(ex.process(pid).instret, 9);
    }

    #[test]
    fn running_past_program_end_halts() {
        let (mut bus, pt) = world();
        let mut ex = exec();
        let pid = ex.spawn(ProgramBuilder::new().imm(Reg::R0, 1).build(), pt);
        let out = ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        assert!(out.finished);
        assert_eq!(ex.process(pid).state(), ProcState::Halted);
    }

    #[test]
    fn syscall_reaches_handler_and_returns() {
        struct Adder;
        impl TrapHandler for Adder {
            fn syscall(
                &mut self,
                no: u16,
                p: &mut Process,
                _b: &mut Bus,
                _t: SimTime,
            ) -> crate::TrapOutcome {
                crate::TrapOutcome {
                    retval: p.reg(Reg::R1) + p.reg(Reg::R2) + no as u64,
                    time: SimTime::from_us(1),
                }
            }
            fn on_context_switch(
                &mut self,
                _f: Option<Pid>,
                _t: Pid,
                _r: SwitchReason,
                _b: &mut Bus,
                _n: SimTime,
            ) -> SimTime {
                SimTime::ZERO
            }
        }
        let (mut bus, pt) = world();
        let mut ex = exec();
        let prog =
            ProgramBuilder::new().imm(Reg::R1, 10).imm(Reg::R2, 20).syscall(7).halt().build();
        let pid = ex.spawn(prog, pt);
        let before = ex.now();
        ex.run(&mut RunToCompletion, &mut Adder, &mut bus, 100);
        assert_eq!(ex.process(pid).reg(Reg::R0), 37);
        assert_eq!(ex.stats().syscalls, 1);
        // Charged: syscall round trip (~14.7us) + handler (1us) + instrs.
        assert!((ex.now() - before).as_us() > 15.0);
    }

    #[test]
    fn pal_call_executes_uninterrupted_program() {
        let (mut bus, pt) = world();
        let mut ex = exec();
        // PAL 3: r0 = mem[r1]
        let pal = ProgramBuilder::new().load(Reg::R0, Reg::R1).build();
        ex.install_pal(3, pal);
        let prog = ProgramBuilder::new()
            .store(0x80u64, 55u64)
            .mb()
            .imm(Reg::R1, 0x80)
            .call_pal(3)
            .halt()
            .build();
        let pid = ex.spawn(prog, pt);
        ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        assert_eq!(ex.process(pid).reg(Reg::R0), 55);
        assert_eq!(ex.stats().pal_calls, 1);
    }

    #[test]
    fn uninstalled_pal_faults() {
        let (mut bus, pt) = world();
        let mut ex = exec();
        let pid = ex.spawn(ProgramBuilder::new().call_pal(9).halt().build(), pt);
        ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        assert!(matches!(ex.process(pid).state(), ProcState::Faulted(_)));
    }

    #[test]
    fn halt_inside_pal_is_illegal() {
        let (mut bus, pt) = world();
        let mut ex = exec();
        ex.install_pal(1, ProgramBuilder::new().halt().build());
        let pid = ex.spawn(ProgramBuilder::new().call_pal(1).halt().build(), pt);
        ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        assert!(matches!(ex.process(pid).state(), ProcState::Faulted(_)));
    }

    #[test]
    fn fixed_schedule_interleaves_two_processes() {
        let (mut bus, _) = world();
        let mut ex = exec();
        let mk_pt = || {
            let mut pt = PageTable::new();
            let mut alloc = FrameAllocator::with_range(10, 10);
            pt.map(VirtPage::new(0), alloc.alloc().unwrap(), Perms::READ_WRITE).unwrap();
            pt
        };
        // Both processes write their pid to the same shared frame — the
        // last writer per the schedule wins.
        let mut alloc = FrameAllocator::with_range(50, 1);
        let shared = alloc.alloc().unwrap();
        let mut pt_a = mk_pt();
        pt_a.map(VirtPage::new(1), shared, Perms::READ_WRITE).unwrap();
        let mut pt_b = mk_pt();
        pt_b.map(VirtPage::new(1), shared, Perms::READ_WRITE).unwrap();

        let page1 = VirtAddr::new(udma_mem::PAGE_SIZE).as_u64();
        let prog = |v: u64| ProgramBuilder::new().store(page1, v).mb().halt().build();
        let a = ex.spawn(prog(1), pt_a);
        let b = ex.spawn(prog(2), pt_b);
        // Schedule: a runs fully first, then b → b's store lands last.
        let mut sched = crate::FixedSchedule::new(vec![a, a, a, b, b, b]);
        let out = ex.run(&mut sched, &mut NullTrapHandler, &mut bus, 100);
        assert!(out.finished);
        assert!(ex.stats().context_switches >= 1);
        let mem = bus.memory();
        let val = mem.borrow().read_u64(shared.base()).unwrap();
        assert_eq!(val, 2);
    }

    #[test]
    fn context_switch_drains_write_buffer() {
        let (mut bus, pt) = world();
        let (_, pt2) = world();
        let mut ex = exec();
        let a =
            ex.spawn(ProgramBuilder::new().store(0x100u64, 1u64).compute(10).halt().build(), pt);
        let b = ex.spawn(ProgramBuilder::new().load(Reg::R1, 0x100u64).halt().build(), pt2);
        // a stores (buffered), switch to b, b loads: because the switch
        // drains, b sees a's store in RAM (same frame via identical
        // world() mapping order — both map page 0 to frame 0 here? No:
        // separate allocators produce the same frames, so the mapping is
        // genuinely shared.)
        let mut sched = crate::FixedSchedule::new(vec![a, b, b, a, a]);
        ex.run(&mut sched, &mut NullTrapHandler, &mut bus, 100);
        assert_eq!(ex.process(b).reg(Reg::R1), 1);
    }

    #[test]
    fn time_advances_monotonically_and_with_bus_cost() {
        let (mut bus, pt) = world();
        let mut ex = exec();
        let nic_window_miss = ex.now();
        assert_eq!(nic_window_miss, SimTime::ZERO);
        ex.spawn(ProgramBuilder::new().store(0x100u64, 1u64).mb().halt().build(), pt);
        ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        // mb retirement charged the RAM latency at least.
        assert!(ex.now() > SimTime::from_ns(180));
    }

    #[test]
    fn advance_adds_external_time() {
        let mut ex = exec();
        ex.advance(SimTime::from_us(5));
        assert_eq!(ex.now(), SimTime::from_us(5));
    }

    #[test]
    fn pal_program_may_loop_and_branch() {
        let (mut bus, pt) = world();
        let mut ex = exec();
        // PAL 4: r0 = r1 + r1 + r1 via a counted loop.
        let pal = ProgramBuilder::new()
            .imm(Reg::R0, 0)
            .imm(Reg::R2, 3)
            .label("top")
            .add(Reg::R0, Reg::R0, Reg::R1)
            .add_imm(Reg::R2, Reg::R2, -1)
            .bne(Reg::R2, 0, "top")
            .build();
        ex.install_pal(4, pal);
        let pid = ex.spawn(ProgramBuilder::new().imm(Reg::R1, 14).call_pal(4).halt().build(), pt);
        ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        assert_eq!(ex.process(pid).reg(Reg::R0), 42);
    }

    #[test]
    fn runaway_pal_loop_is_fuel_limited() {
        let (mut bus, pt) = world();
        let mut ex = exec();
        ex.install_pal(5, ProgramBuilder::new().label("x").jmp("x").build());
        let pid = ex.spawn(ProgramBuilder::new().call_pal(5).halt().build(), pt);
        let out = ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 10);
        assert!(out.finished, "PAL fuel must bound the loop");
        // The process was stopped rather than spinning forever.
        assert!(!ex.process(pid).state().is_ready());
    }

    #[test]
    fn coherent_executor_keeps_stores_in_cache_until_flush() {
        use udma_bus::{CoherenceDomain, CoherenceTiming, MesiState};
        let (mut bus, pt) = world();
        let domain = CoherenceDomain::new(bus.memory(), CoherenceTiming::default());
        let shared = domain.shared();
        let agent = shared.borrow_mut().add_agent(CacheConfig::alpha_21064());
        let mut ex = exec();
        ex.attach_coherence(shared.clone(), agent);
        let prog = ProgramBuilder::new()
            .store(0x100u64, 0xABu64)
            .mb()
            .load(Reg::R1, 0x100u64)
            .halt()
            .build();
        let pid = ex.spawn(prog, pt);
        ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        // The load saw the store, but through the cache: memory itself
        // was never written (the line is Modified) — exactly the stale
        // window a non-coherent DMA engine would read through.
        assert_eq!(ex.process(pid).reg(Reg::R1), 0xAB);
        let frame0 =
            ex.process(pid).page_table().translate(VirtAddr::new(0x100), Access::Read).unwrap();
        assert_eq!(shared.borrow().cache(agent).state_of(frame0), MesiState::Modified);
        assert_eq!(bus.memory().borrow().read_u64(frame0).unwrap(), 0);
        assert_eq!(ex.dcache_stats().hits, 1, "agent counters visible via dcache_stats");
        shared.borrow().check_invariants().unwrap();
        // A context switch (here: flushing by hand) publishes it.
        shared.borrow_mut().flush_all(agent);
        assert_eq!(bus.memory().borrow().read_u64(frame0).unwrap(), 0xAB);
    }

    #[test]
    fn coherent_executor_preserves_fault_semantics() {
        use udma_bus::{CoherenceDomain, CoherenceTiming};
        let (mut bus, pt) = world();
        let domain = CoherenceDomain::new(bus.memory(), CoherenceTiming::default());
        let shared = domain.shared();
        let agent = shared.borrow_mut().add_agent(CacheConfig::alpha_21064());
        let mut ex = exec();
        ex.attach_coherence(shared, agent);
        // Misaligned load kills the process, as on the flat path.
        let prog = ProgramBuilder::new().load(Reg::R1, 0x101u64).halt().build();
        let pid = ex.spawn(prog, pt);
        ex.run(&mut RunToCompletion, &mut NullTrapHandler, &mut bus, 100);
        assert!(matches!(ex.process(pid).state(), ProcState::Faulted(MemFault::Misaligned { .. })));
    }

    #[test]
    fn pal_is_never_preempted_mid_sequence() {
        // Two processes; a FixedSchedule that *tries* to interleave at
        // every instruction. The PAL call is one scheduling unit, so the
        // other process can never observe r5 between the PAL's store and
        // load (the §2.7 atomicity claim at executor level).
        let (mut bus, pt) = world();
        let (_, pt2) = world();
        let mut ex = exec();
        // PAL 6: store 1 to 0x100; load r0 from 0x100.
        ex.install_pal(
            6,
            ProgramBuilder::new().store(0x100u64, 1u64).mb().load(Reg::R0, 0x100u64).build(),
        );
        let a = ex.spawn(ProgramBuilder::new().call_pal(6).halt().build(), pt);
        // b overwrites the same word (same frames via identical mapping).
        let b = ex.spawn(ProgramBuilder::new().store(0x100u64, 99u64).mb().halt().build(), pt2);
        // Alternate every step: a, b, a, b, …
        let mut sched = crate::FixedSchedule::new(vec![a, b, a, b, a, b]);
        ex.run(&mut sched, &mut NullTrapHandler, &mut bus, 100);
        // a's PAL observed its own store (1), never b's 99, because the
        // whole PAL body ran within one scheduling step.
        assert_eq!(ex.process(a).reg(Reg::R0), 1);
    }
}
