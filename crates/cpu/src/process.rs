//! Processes: register state, page table, status.

use crate::{Program, Reg};
use std::fmt;
use udma_bus::SimTime;
use udma_mem::{MemFault, PageTable};

/// A process identifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(u32);

impl Pid {
    /// Creates a pid from a raw number.
    pub const fn new(raw: u32) -> Self {
        Pid(raw)
    }

    /// The raw pid number.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Lifecycle state of a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable.
    Ready,
    /// Finished by executing `Halt` (or running past the program's end).
    Halted,
    /// Killed by a memory fault (the model's SIGSEGV).
    Faulted(MemFault),
}

impl ProcState {
    /// Whether the process can still execute instructions.
    pub fn is_ready(self) -> bool {
        matches!(self, ProcState::Ready)
    }
}

/// A user process: one program, sixteen registers, one page table.
#[derive(Clone, Debug)]
pub struct Process {
    pid: Pid,
    program: Program,
    /// Program counter (instruction index).
    pub pc: usize,
    regs: [u64; Reg::COUNT],
    state: ProcState,
    page_table: PageTable,
    /// Instructions retired by this process.
    pub instret: u64,
    /// Simulated time spent executing this process's user-mode
    /// instructions (incl. its bus transactions).
    pub user_time: SimTime,
    /// Simulated time spent in the kernel on this process's behalf
    /// (syscall entry/exit + handler).
    pub kernel_time: SimTime,
}

impl Process {
    /// Creates a ready process.
    pub fn new(pid: Pid, program: Program, page_table: PageTable) -> Self {
        Process {
            pid,
            program,
            pc: 0,
            regs: [0; Reg::COUNT],
            state: ProcState::Ready,
            page_table,
            instret: 0,
            user_time: SimTime::ZERO,
            kernel_time: SimTime::ZERO,
        }
    }

    /// Total CPU time attributed to this process.
    pub fn cpu_time(&self) -> SimTime {
        self.user_time + self.kernel_time
    }

    /// The process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Current state.
    pub fn state(&self) -> ProcState {
        self.state
    }

    /// Marks the process halted.
    pub fn halt(&mut self) {
        self.state = ProcState::Halted;
    }

    /// Kills the process with a fault.
    pub fn fault(&mut self, f: MemFault) {
        self.state = ProcState::Faulted(f);
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// The process's page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable page table (used by the kernel on `map`-style syscalls).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn proc() -> Process {
        Process::new(Pid::new(3), ProgramBuilder::new().halt().build(), PageTable::new())
    }

    #[test]
    fn starts_ready_at_zero() {
        let p = proc();
        assert_eq!(p.pid().as_u32(), 3);
        assert_eq!(p.pc, 0);
        assert!(p.state().is_ready());
        assert_eq!(p.reg(Reg::R5), 0);
        assert_eq!(p.instret, 0);
    }

    #[test]
    fn registers_read_write() {
        let mut p = proc();
        p.set_reg(Reg::R2, 99);
        assert_eq!(p.reg(Reg::R2), 99);
        assert_eq!(p.reg(Reg::R1), 0);
    }

    #[test]
    fn state_transitions() {
        let mut p = proc();
        p.halt();
        assert_eq!(p.state(), ProcState::Halted);
        assert!(!p.state().is_ready());

        let mut p = proc();
        let f = MemFault::Unmapped { va: udma_mem::VirtAddr::new(0x10) };
        p.fault(f);
        assert_eq!(p.state(), ProcState::Faulted(f));
    }

    #[test]
    fn pid_display() {
        assert_eq!(Pid::new(7).to_string(), "p7");
    }
}
