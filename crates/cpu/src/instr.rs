//! The instruction set of the model processor.

use std::fmt;

/// A general-purpose register. The machine has 16 ([`Reg::COUNT`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// Register 0 — syscall/PAL argument and return value.
    pub const R0: Reg = Reg(0);
    /// Register 1 — second argument.
    pub const R1: Reg = Reg(1);
    /// Register 2 — third argument.
    pub const R2: Reg = Reg(2);
    /// Register 3 — fourth argument.
    pub const R3: Reg = Reg(3);
    /// Scratch register.
    pub const R4: Reg = Reg(4);
    /// Scratch register.
    pub const R5: Reg = Reg(5);
    /// Scratch register.
    pub const R6: Reg = Reg(6);
    /// Scratch register.
    pub const R7: Reg = Reg(7);

    /// Creates a register by index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::COUNT`.
    pub fn new(index: u8) -> Self {
        assert!((index as usize) < Self::COUNT, "register index out of range");
        Reg(index)
    }

    /// The register's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A register or immediate operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// The value held in a register.
    Reg(Reg),
    /// A 64-bit immediate.
    Imm(u64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v:#x}"),
        }
    }
}

/// One machine instruction.
///
/// Memory operands are *virtual addresses*; every load and store goes
/// through the current process's page table (via the TLB), which is how
/// shadow addressing gets its protection guarantee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `dst ← value`.
    Imm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: u64,
    },
    /// `dst ← src + imm` (wrapping).
    AddImm {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Signed immediate addend.
        imm: i64,
    },
    /// `dst ← a + b` (wrapping).
    Add {
        /// Destination register.
        dst: Reg,
        /// First addend.
        a: Reg,
        /// Second addend.
        b: Reg,
    },
    /// `dst ← mem64[addr]` — an uncached load when `addr` maps to the
    /// NIC's windows.
    Load {
        /// Destination register.
        dst: Reg,
        /// Virtual address operand.
        addr: Operand,
    },
    /// `mem64[addr] ← src`.
    Store {
        /// Virtual address operand.
        addr: Operand,
        /// Value operand.
        src: Operand,
    },
    /// Memory barrier: drains the write buffer to the bus in order.
    Mb,
    /// Burn `cycles` CPU cycles of local work.
    Compute {
        /// Number of CPU cycles of work.
        cycles: u32,
    },
    /// Branch to `target` if `reg == value`.
    Beq {
        /// Register compared.
        reg: Reg,
        /// Comparison value.
        value: u64,
        /// Destination instruction index.
        target: usize,
    },
    /// Branch to `target` if `reg != value`.
    Bne {
        /// Register compared.
        reg: Reg,
        /// Comparison value.
        value: u64,
        /// Destination instruction index.
        target: usize,
    },
    /// Unconditional jump.
    Jmp {
        /// Destination instruction index.
        target: usize,
    },
    /// Trap into the kernel; arguments in `r0..r3`, result in `r0`.
    Syscall {
        /// Syscall number (interpreted by the [`crate::TrapHandler`]).
        no: u16,
    },
    /// Invoke an installed PAL function uninterruptibly (§2.7);
    /// arguments in `r0..r3`, result in `r0`.
    CallPal {
        /// PAL function index.
        index: u16,
    },
    /// Stop the process.
    Halt,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Imm { dst, value } => write!(f, "imm   {dst}, {value:#x}"),
            Instr::AddImm { dst, src, imm } => write!(f, "addi  {dst}, {src}, {imm}"),
            Instr::Add { dst, a, b } => write!(f, "add   {dst}, {a}, {b}"),
            Instr::Load { dst, addr } => write!(f, "ld    {dst}, [{addr}]"),
            Instr::Store { addr, src } => write!(f, "st    [{addr}], {src}"),
            Instr::Mb => write!(f, "mb"),
            Instr::Compute { cycles } => write!(f, "work  {cycles}"),
            Instr::Beq { reg, value, target } => write!(f, "beq   {reg}, {value:#x}, @{target}"),
            Instr::Bne { reg, value, target } => write!(f, "bne   {reg}, {value:#x}, @{target}"),
            Instr::Jmp { target } => write!(f, "jmp   @{target}"),
            Instr::Syscall { no } => write!(f, "sys   {no}"),
            Instr::CallPal { index } => write!(f, "pal   {index}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_index() {
        assert_eq!(Reg::R3.to_string(), "r3");
        assert_eq!(Reg::new(7).index(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_reg_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn operand_from_impls() {
        assert_eq!(Operand::from(Reg::R1), Operand::Reg(Reg::R1));
        assert_eq!(Operand::from(5u64), Operand::Imm(5));
    }

    #[test]
    fn instr_display() {
        assert_eq!(
            Instr::Load { dst: Reg::R0, addr: Operand::Imm(0x40) }.to_string(),
            "ld    r0, [0x40]"
        );
        assert_eq!(Instr::Mb.to_string(), "mb");
        assert_eq!(
            Instr::Beq { reg: Reg::R0, value: 0, target: 3 }.to_string(),
            "beq   r0, 0x0, @3"
        );
    }
}
