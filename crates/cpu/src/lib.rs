//! CPU substrate: a small deterministic multi-process processor model.
//!
//! The paper's protocols are sequences of a handful of loads, stores and
//! memory barriers whose *atomicity under preemption* is the entire
//! question. This crate therefore models exactly what matters:
//!
//! * a tiny register machine ([`Instr`], [`Program`]) rich enough to
//!   express every initiation sequence in the paper, including the
//!   retry loops of Figure 7 and arbitrary adversary code;
//! * [`Process`]es with their own page tables and registers;
//! * an [`Executor`] that runs processes one instruction at a time through
//!   a TLB and a write buffer onto the bus, charging a calibrated
//!   [`CostModel`] ([`CostModel::alpha_3000_300`] reproduces the paper's
//!   DEC Alpha 3000/300 host);
//! * pluggable [`Scheduler`]s — crucially [`FixedSchedule`], which lets
//!   the interleaving explorer ([`interleavings`]) enumerate *every*
//!   possible preemption pattern of an attack scenario instead of hoping
//!   a timer hits the window;
//! * Alpha-style **PAL mode**: [`Executor::install_pal`] registers an
//!   uninterruptible instruction sequence that any process may invoke
//!   with [`Instr::CallPal`] (§2.7 of the paper);
//! * a [`TrapHandler`] trait through which the model OS (the `udma-os`
//!   crate) receives syscalls and context-switch notifications.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod executor;
mod instr;
mod interleave;
mod process;
mod program;
mod sched;
mod trap;

pub use cost::CostModel;
pub use executor::{ExecStats, Executor, RunOutcome};
pub use instr::{Instr, Operand, Reg};
pub use interleave::{interleaving_count, interleavings};
pub use process::{Pid, ProcState, Process};
pub use program::{Program, ProgramBuilder};
pub use sched::{FixedSchedule, RandomPreempt, RoundRobin, RunToCompletion, Scheduler};
pub use trap::{NullTrapHandler, SwitchReason, TrapHandler, TrapOutcome};
