//! Exhaustive interleaving enumeration.
//!
//! The paper argues the 5-instruction Repeated-Passing protocol correct by
//! considering "in the worst case, that all five instructions are issued
//! by different processes" (§3.3.1, Figure 8). Where the paper reasons by
//! hand, we can *enumerate*: every merge order of the victim's and the
//! adversaries' instruction streams is a [`crate::FixedSchedule`], and the
//! explorer in the core crate runs the machine under each one and checks
//! the safety predicate.

/// Returns every interleaving of `lens.len()` sequences with the given
/// lengths, as vectors of sequence indices.
///
/// For `lens = [2, 1]` the result is `[0,0,1]`, `[0,1,0]`, `[1,0,0]`:
///
/// ```
/// let all = udma_cpu::interleavings(&[2, 1]);
/// assert_eq!(all.len(), 3);
/// assert_eq!(udma_cpu::interleaving_count(&[5, 5]), 252);
/// ```
///
/// The number of interleavings is the multinomial coefficient
/// ([`interleaving_count`]); callers should check it first and fall back
/// to randomized sampling when it is too large.
///
/// # Panics
///
/// Panics if the total count exceeds 20 000 000 (use sampling instead).
pub fn interleavings(lens: &[usize]) -> Vec<Vec<usize>> {
    let count = interleaving_count(lens);
    assert!(count <= 20_000_000, "{count} interleavings is too many to enumerate; sample instead");
    udma_testkit::sched::interleavings(lens).collect()
}

/// The multinomial coefficient `(Σlens)! / Π(lens[i]!)`: how many
/// interleavings exist.
pub fn interleaving_count(lens: &[usize]) -> u128 {
    udma_testkit::sched::interleaving_count(lens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn two_sequences_small() {
        let all = interleavings(&[2, 1]);
        assert_eq!(all.len(), 3);
        let set: HashSet<_> = all.into_iter().collect();
        assert!(set.contains(&vec![0, 0, 1]));
        assert!(set.contains(&vec![0, 1, 0]));
        assert!(set.contains(&vec![1, 0, 0]));
    }

    #[test]
    fn counts_match_enumeration() {
        for lens in [vec![2, 2], vec![3, 1], vec![2, 2, 1], vec![5, 5]] {
            let n = interleavings(&lens).len() as u128;
            assert_eq!(n, interleaving_count(&lens), "lens = {lens:?}");
        }
    }

    #[test]
    fn five_choose_five_is_252() {
        // The paper's scenario: victim (5 instructions) vs adversary (5).
        assert_eq!(interleaving_count(&[5, 5]), 252);
    }

    #[test]
    fn each_interleaving_preserves_per_sequence_order_lengths() {
        for inter in interleavings(&[3, 2]) {
            assert_eq!(inter.iter().filter(|&&i| i == 0).count(), 3);
            assert_eq!(inter.iter().filter(|&&i| i == 1).count(), 2);
        }
    }

    #[test]
    fn all_interleavings_distinct() {
        let all = interleavings(&[3, 3]);
        let set: HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(interleaving_count(&[]), 1);
        assert_eq!(interleavings(&[0, 0]), vec![Vec::<usize>::new()]);
        assert_eq!(interleavings(&[3]), vec![vec![0, 0, 0]]);
    }

    #[test]
    fn five_processes_one_instruction_each() {
        // Figure 8(a): five single-instruction processes → 5! orders.
        assert_eq!(interleaving_count(&[1, 1, 1, 1, 1]), 120);
        assert_eq!(interleavings(&[1, 1, 1, 1, 1]).len(), 120);
    }
}
