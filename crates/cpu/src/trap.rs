//! The boundary between the CPU and the model operating system.

use crate::{Pid, Process};
use udma_bus::{Bus, SimTime};

/// Why the executor invoked the context-switch hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchReason {
    /// First dispatch of the run (no process was running before).
    InitialDispatch,
    /// The scheduler preempted the running process.
    Preemption,
    /// The previous process halted or faulted.
    PreviousExited,
}

/// Result of handling a syscall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrapOutcome {
    /// Value placed in `r0` on return to user mode.
    pub retval: u64,
    /// Time the kernel spent *inside* the handler (entry/exit overhead is
    /// charged separately by the executor's cost model).
    pub time: SimTime,
}

impl TrapOutcome {
    /// An outcome with a return value and no in-kernel time.
    pub fn ret(retval: u64) -> Self {
        TrapOutcome { retval, time: SimTime::ZERO }
    }
}

/// Implemented by the model kernel (`udma-os`); the executor calls into it
/// for syscalls and on every context switch.
///
/// The **whole point of the paper** is what `on_context_switch` does:
///
/// * an *unmodified* kernel does nothing there (the paper's requirement);
/// * the SHRIMP kernel patch "invalidates any partially initiated
///   user-level DMA transfer on every context switch";
/// * the FLASH kernel patch "informs the DMA engine about the identity of
///   the running process".
pub trait TrapHandler {
    /// Handles syscall `no` issued by `process` (arguments in `r0..r3`).
    fn syscall(
        &mut self,
        no: u16,
        process: &mut Process,
        bus: &mut Bus,
        now: SimTime,
    ) -> TrapOutcome;

    /// Called when the CPU switches from `from` to `to`. Returns any
    /// extra time spent (e.g. poking NIC registers); the base switch cost
    /// is charged by the executor.
    fn on_context_switch(
        &mut self,
        from: Option<Pid>,
        to: Pid,
        reason: SwitchReason,
        bus: &mut Bus,
        now: SimTime,
    ) -> SimTime;
}

/// A trap handler that rejects every syscall and ignores switches.
/// Useful for pure-CPU tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTrapHandler;

impl TrapHandler for NullTrapHandler {
    fn syscall(
        &mut self,
        _no: u16,
        _p: &mut Process,
        _bus: &mut Bus,
        _now: SimTime,
    ) -> TrapOutcome {
        TrapOutcome::ret(u64::MAX)
    }

    fn on_context_switch(
        &mut self,
        _from: Option<Pid>,
        _to: Pid,
        _reason: SwitchReason,
        _bus: &mut Bus,
        _now: SimTime,
    ) -> SimTime {
        SimTime::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_outcome_ret() {
        let o = TrapOutcome::ret(5);
        assert_eq!(o.retval, 5);
        assert_eq!(o.time, SimTime::ZERO);
    }
}
