//! Schedulers: who runs the next instruction.
//!
//! The executor consults the scheduler before *every* instruction, so a
//! scheduler can model preemption at any point — which is exactly the
//! granularity at which the paper's race conditions live ("if the user
//! process is interrupted after the STORE operation, but before the LOAD
//! operation…", §2.5).

use crate::Pid;
use udma_testkit::TestRng;

/// Decides which ready process executes the next instruction.
pub trait Scheduler {
    /// Picks the next process to run.
    ///
    /// `step` counts instructions executed so far in this run, `current`
    /// is the process that ran the previous instruction (if still ready),
    /// and `ready` is the non-empty list of runnable pids in spawn order.
    ///
    /// The returned pid must be in `ready`.
    fn pick(&mut self, step: u64, current: Option<Pid>, ready: &[Pid]) -> Pid;
}

/// Runs each process to completion in spawn order: no preemption ever.
/// This is the right scheduler for cost measurements (Table 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunToCompletion;

impl Scheduler for RunToCompletion {
    fn pick(&mut self, _step: u64, current: Option<Pid>, ready: &[Pid]) -> Pid {
        match current {
            Some(c) if ready.contains(&c) => c,
            _ => ready[0],
        }
    }
}

/// Round-robin with a fixed quantum measured in instructions.
#[derive(Clone, Copy, Debug)]
pub struct RoundRobin {
    quantum: u64,
    used: u64,
}

impl RoundRobin {
    /// Creates a round-robin scheduler with the given per-slice
    /// instruction budget.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn new(quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be nonzero");
        RoundRobin { quantum, used: 0 }
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, _step: u64, current: Option<Pid>, ready: &[Pid]) -> Pid {
        if let Some(c) = current {
            if ready.contains(&c) && self.used < self.quantum {
                self.used += 1;
                return c;
            }
            // Rotate to the process after `c` in ready order.
            self.used = 1;
            if let Some(pos) = ready.iter().position(|&p| p == c) {
                return ready[(pos + 1) % ready.len()];
            }
        }
        self.used = 1;
        ready[0]
    }
}

/// Preempts after each instruction with probability `p`, jumping to a
/// uniformly random ready process. Deterministic given the seed — used by
/// randomized attack searches.
#[derive(Clone, Debug)]
pub struct RandomPreempt {
    rng: TestRng,
    p: f64,
}

impl RandomPreempt {
    /// Creates a randomized scheduler.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(seed: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        RandomPreempt { rng: TestRng::seed_from_u64(seed), p }
    }
}

impl Scheduler for RandomPreempt {
    fn pick(&mut self, _step: u64, current: Option<Pid>, ready: &[Pid]) -> Pid {
        if let Some(c) = current {
            if ready.contains(&c) && self.rng.gen_f64() >= self.p {
                return c;
            }
        }
        ready[self.rng.gen_index(ready.len())]
    }
}

/// Replays an explicit per-instruction schedule; the interleaving explorer
/// enumerates these to model-check the protocols.
///
/// Entries naming a process that is no longer ready are skipped. When the
/// schedule is exhausted, remaining processes run to completion in spawn
/// order.
#[derive(Clone, Debug)]
pub struct FixedSchedule {
    seq: Vec<Pid>,
    pos: usize,
}

impl FixedSchedule {
    /// Creates a schedule from an explicit pid sequence.
    pub fn new(seq: Vec<Pid>) -> Self {
        FixedSchedule { seq, pos: 0 }
    }

    /// How many schedule entries have been consumed.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl Scheduler for FixedSchedule {
    fn pick(&mut self, _step: u64, current: Option<Pid>, ready: &[Pid]) -> Pid {
        while self.pos < self.seq.len() {
            let pid = self.seq[self.pos];
            self.pos += 1;
            if ready.contains(&pid) {
                return pid;
            }
        }
        RunToCompletion.pick(0, current, ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ns: &[u32]) -> Vec<Pid> {
        ns.iter().map(|&n| Pid::new(n)).collect()
    }

    #[test]
    fn run_to_completion_sticks_with_current() {
        let mut s = RunToCompletion;
        let ready = pids(&[0, 1]);
        assert_eq!(s.pick(0, None, &ready), Pid::new(0));
        assert_eq!(s.pick(1, Some(Pid::new(1)), &ready), Pid::new(1));
        // Current gone → first ready.
        assert_eq!(s.pick(2, Some(Pid::new(9)), &ready), Pid::new(0));
    }

    #[test]
    fn round_robin_rotates_on_quantum_expiry() {
        let mut s = RoundRobin::new(2);
        let ready = pids(&[0, 1, 2]);
        let mut current = None;
        let mut order = Vec::new();
        for step in 0..9 {
            let p = s.pick(step, current, &ready);
            order.push(p.as_u32());
            current = Some(p);
        }
        assert_eq!(order, vec![0, 0, 1, 1, 2, 2, 0, 0, 1]);
    }

    #[test]
    fn round_robin_skips_departed_process() {
        let mut s = RoundRobin::new(1);
        let p = s.pick(0, Some(Pid::new(5)), &pids(&[0, 1]));
        assert_eq!(p, Pid::new(0));
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn zero_quantum_panics() {
        let _ = RoundRobin::new(0);
    }

    #[test]
    fn fixed_schedule_replays_and_skips_dead() {
        let mut s = FixedSchedule::new(pids(&[1, 0, 7, 1]));
        let ready = pids(&[0, 1]);
        assert_eq!(s.pick(0, None, &ready), Pid::new(1));
        assert_eq!(s.pick(1, Some(Pid::new(1)), &ready), Pid::new(0));
        // 7 is not ready → skipped, yields 1.
        assert_eq!(s.pick(2, Some(Pid::new(0)), &ready), Pid::new(1));
        assert_eq!(s.consumed(), 4);
        // Schedule exhausted → run-to-completion fallback.
        assert_eq!(s.pick(3, Some(Pid::new(1)), &ready), Pid::new(1));
    }

    #[test]
    fn random_preempt_is_deterministic_per_seed() {
        let ready = pids(&[0, 1, 2]);
        let run = |seed| {
            let mut s = RandomPreempt::new(seed, 0.5);
            let mut current = None;
            (0..32)
                .map(|i| {
                    let p = s.pick(i, current, &ready);
                    current = Some(p);
                    p.as_u32()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn random_preempt_zero_probability_never_switches() {
        let ready = pids(&[0, 1]);
        let mut s = RandomPreempt::new(1, 0.0);
        let first = s.pick(0, None, &ready);
        for i in 1..20 {
            assert_eq!(s.pick(i, Some(first), &ready), first);
        }
    }
}
