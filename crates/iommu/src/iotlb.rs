//! The IOTLB: a set-associative, ASID-tagged translation cache on the
//! network interface.
//!
//! ASID tagging is the point: a host context switch does **not** flush
//! the IOTLB (entries of the switched-out process stay valid and keep
//! serving its in-flight transfers), and tearing down one address space
//! invalidates only its own entries ([`Iotlb::invalidate_asid`]) instead
//! of everyone's.

use crate::Asid;
use udma_mem::{Perms, PhysFrame, TlbStats, VirtPage};

/// Replacement policy within a set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IotlbReplacement {
    /// Replace the oldest fill (per-set round-robin pointer).
    #[default]
    Fifo,
    /// Replace the least recently used entry.
    Lru,
    /// Replace a pseudo-random way (deterministic splitmix stream).
    Random,
}

/// IOTLB geometry and policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IotlbConfig {
    /// Total entries (must be a multiple of `ways`).
    pub entries: usize,
    /// Associativity; `entries == ways` makes the IOTLB fully
    /// associative.
    pub ways: usize,
    /// Replacement policy within a set.
    pub replacement: IotlbReplacement,
    /// Seed for the `Random` policy's deterministic stream.
    pub seed: u64,
}

impl Default for IotlbConfig {
    fn default() -> Self {
        // The ARMv8 SMMU the follow-on work targets has small per-TBU
        // micro-TLBs; 32 × 4-way is in that class.
        IotlbConfig { entries: 32, ways: 4, replacement: IotlbReplacement::Fifo, seed: 0 }
    }
}

impl IotlbConfig {
    /// A fully associative IOTLB of `entries` entries.
    pub fn fully_associative(entries: usize) -> Self {
        IotlbConfig { entries, ways: entries, ..IotlbConfig::default() }
    }
}

/// IOTLB counters: the shared [`TlbStats`] shape plus the
/// invalidation traffic that only exists on the device side.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IotlbStats {
    /// Hit/miss/flush/eviction counters (same shape as the CPU TLB).
    pub tlb: TlbStats,
    /// Single-page invalidations (OS unmap/swap-out shootdowns).
    pub shootdowns: u64,
    /// Selective per-ASID invalidations (address-space teardown).
    pub asid_flushes: u64,
    /// Lines filled by the prefetcher ([`Iotlb::insert_prefetched`]),
    /// i.e. page-table walks done ahead of the streaming cursor.
    pub prefetch_fills: u64,
    /// Demand lookups that hit a prefetched line on its first use —
    /// compulsory misses the prefetcher hid.
    pub prefetch_hidden: u64,
    /// Prefetched lines dropped (evicted, shot down, flushed or
    /// overwritten) before any demand access used them: wasted walks.
    pub prefetch_unused: u64,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    asid: Asid,
    page: VirtPage,
    frame: PhysFrame,
    perms: Perms,
    /// LRU timestamp (monotonic fill/touch tick).
    stamp: u64,
    /// Filled ahead of demand and not yet used by a demand access.
    prefetched: bool,
}

/// The translation cache proper.
#[derive(Clone, Debug)]
pub struct Iotlb {
    sets: Vec<Vec<Option<Line>>>,
    ways: usize,
    replacement: IotlbReplacement,
    fifo_ptr: Vec<usize>,
    tick: u64,
    rng_state: u64,
    stats: IotlbStats,
    /// Valid-line count, maintained on every fill/invalidate so
    /// [`Iotlb::len`] is O(1) instead of a full scan.
    live: usize,
}

impl Iotlb {
    /// Builds an IOTLB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero, `ways` is zero, or `entries` is not
    /// a multiple of `ways`.
    pub fn new(config: IotlbConfig) -> Self {
        assert!(config.entries > 0, "IOTLB must have entries");
        assert!(config.ways > 0, "IOTLB associativity must be nonzero");
        assert!(
            config.entries.is_multiple_of(config.ways),
            "IOTLB entries must be a multiple of the associativity"
        );
        let num_sets = config.entries / config.ways;
        Iotlb {
            sets: vec![vec![None; config.ways]; num_sets],
            ways: config.ways,
            replacement: config.replacement,
            fifo_ptr: vec![0; num_sets],
            tick: 0,
            rng_state: config.seed,
            stats: IotlbStats::default(),
            live: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Valid entries currently cached (O(1): a live counter maintained
    /// on fill and invalidation, not a scan over every set).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the IOTLB caches nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current statistics.
    pub fn stats(&self) -> IotlbStats {
        self.stats
    }

    fn set_index(&self, asid: Asid, page: VirtPage) -> usize {
        // Hash the ASID into the index so two processes touching the
        // same page numbers (the common buffer layout) don't contend
        // for the same sets.
        ((page.number() ^ (asid as u64).wrapping_mul(0x9E37_79B9)) % self.sets.len() as u64)
            as usize
    }

    fn next_random(&mut self) -> u64 {
        // splitmix64 step: deterministic per seed.
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Looks up `(asid, page)`; counts a hit only when the cached entry
    /// also allows `needed`. A permission-insufficient entry counts as
    /// a miss so the caller re-walks the I/O page table (the same
    /// rewalk-on-permission-miss rule as the CPU TLB).
    pub fn lookup(
        &mut self,
        asid: Asid,
        page: VirtPage,
        needed: Perms,
    ) -> Option<(PhysFrame, Perms)> {
        let idx = self.set_index(asid, page);
        self.tick += 1;
        let tick = self.tick;
        let hit = self.sets[idx]
            .iter_mut()
            .flatten()
            .find(|l| l.asid == asid && l.page == page && l.perms.allows(needed));
        match hit {
            Some(line) => {
                line.stamp = tick;
                if line.prefetched {
                    line.prefetched = false;
                    self.stats.prefetch_hidden += 1;
                }
                self.stats.tlb.hits += 1;
                Some((line.frame, line.perms))
            }
            None => {
                self.stats.tlb.misses += 1;
                None
            }
        }
    }

    /// Like [`Iotlb::lookup`] but a miss counts **nothing**: the
    /// coalescing lookahead uses this to peek at the next page without
    /// distorting the miss-delta walk-cost accounting in the engine. A
    /// hit is a real use (the translation feeds a merged chunk), so it
    /// still counts a hit, touches the LRU stamp and retires the
    /// prefetched flag.
    pub fn probe(
        &mut self,
        asid: Asid,
        page: VirtPage,
        needed: Perms,
    ) -> Option<(PhysFrame, Perms)> {
        let idx = self.set_index(asid, page);
        let hit = self.sets[idx]
            .iter_mut()
            .flatten()
            .find(|l| l.asid == asid && l.page == page && l.perms.allows(needed))?;
        self.tick += 1;
        hit.stamp = self.tick;
        if hit.prefetched {
            hit.prefetched = false;
            self.stats.prefetch_hidden += 1;
        }
        self.stats.tlb.hits += 1;
        Some((hit.frame, hit.perms))
    }

    /// Pure residency check: no counters, no LRU touch, no flag
    /// retirement. The prefetcher uses this to skip pages that are
    /// already cached with sufficient permissions.
    pub fn contains(&self, asid: Asid, page: VirtPage, needed: Perms) -> bool {
        let idx = self.set_index(asid, page);
        self.sets[idx]
            .iter()
            .flatten()
            .any(|l| l.asid == asid && l.page == page && l.perms.allows(needed))
    }

    /// Fills a translation, evicting within the set per the replacement
    /// policy. An existing line for the same `(asid, page)` is updated
    /// in place (permission upgrade after a `protect`).
    pub fn insert(&mut self, asid: Asid, page: VirtPage, frame: PhysFrame, perms: Perms) {
        self.fill(asid, page, frame, perms, false);
    }

    /// Fills a translation the prefetcher walked ahead of demand. The
    /// line is tagged so its first demand use counts a hidden miss
    /// ([`IotlbStats::prefetch_hidden`]) and a drop before any use
    /// counts a wasted walk ([`IotlbStats::prefetch_unused`]).
    pub fn insert_prefetched(
        &mut self,
        asid: Asid,
        page: VirtPage,
        frame: PhysFrame,
        perms: Perms,
    ) {
        self.stats.prefetch_fills += 1;
        self.fill(asid, page, frame, perms, true);
    }

    fn fill(
        &mut self,
        asid: Asid,
        page: VirtPage,
        frame: PhysFrame,
        perms: Perms,
        prefetched: bool,
    ) {
        let idx = self.set_index(asid, page);
        self.tick += 1;
        let tick = self.tick;
        if let Some(line) =
            self.sets[idx].iter_mut().flatten().find(|l| l.asid == asid && l.page == page)
        {
            if line.prefetched && !prefetched {
                // A demand walk overwrote the line before it served a
                // demand access (e.g. a permission upgrade): the
                // prefetched walk bought nothing.
                self.stats.prefetch_unused += 1;
            }
            *line = Line { asid, page, frame, perms, stamp: tick, prefetched };
            return;
        }
        let way = match self.sets[idx].iter().position(|l| l.is_none()) {
            Some(free) => free,
            None => {
                self.stats.tlb.evictions += 1;
                match self.replacement {
                    IotlbReplacement::Fifo => {
                        let w = self.fifo_ptr[idx];
                        self.fifo_ptr[idx] = (w + 1) % self.ways;
                        w
                    }
                    // Oldest *valid* line only: a vacant way must never
                    // shadow a real victim with its default stamp (the
                    // eviction branch implies a full set today, but the
                    // invariant should not depend on that).
                    IotlbReplacement::Lru => self.sets[idx]
                        .iter()
                        .enumerate()
                        .filter_map(|(w, l)| l.map(|l| (w, l.stamp)))
                        .min_by_key(|&(_, stamp)| stamp)
                        .map(|(w, _)| w)
                        .expect("eviction requires a full set"),
                    IotlbReplacement::Random => (self.next_random() % self.ways as u64) as usize,
                }
            }
        };
        match self.sets[idx][way] {
            Some(victim) => {
                if victim.prefetched {
                    self.stats.prefetch_unused += 1;
                }
            }
            None => self.live += 1,
        }
        self.sets[idx][way] = Some(Line { asid, page, frame, perms, stamp: tick, prefetched });
    }

    /// Shoots down one page of one address space (OS unmap/swap-out).
    pub fn invalidate_page(&mut self, asid: Asid, page: VirtPage) {
        self.stats.shootdowns += 1;
        let idx = self.set_index(asid, page);
        let mut dropped = 0;
        let mut unused = 0;
        for line in self.sets[idx].iter_mut() {
            if let Some(l) = line {
                if l.asid == asid && l.page == page {
                    dropped += 1;
                    unused += u64::from(l.prefetched);
                    *line = None;
                }
            }
        }
        self.live -= dropped;
        self.stats.prefetch_unused += unused;
    }

    /// Invalidates every entry of one ASID — what a context teardown
    /// costs *instead of* a full flush, thanks to the tags.
    pub fn invalidate_asid(&mut self, asid: Asid) {
        self.stats.asid_flushes += 1;
        let mut dropped = 0;
        let mut unused = 0;
        for set in self.sets.iter_mut() {
            for line in set.iter_mut() {
                if let Some(l) = line {
                    if l.asid == asid {
                        dropped += 1;
                        unused += u64::from(l.prefetched);
                        *line = None;
                    }
                }
            }
        }
        self.live -= dropped;
        self.stats.prefetch_unused += unused;
    }

    /// Invalidates everything (device reset).
    pub fn flush_all(&mut self) {
        self.stats.tlb.flushes += 1;
        for set in self.sets.iter_mut() {
            for line in set.iter_mut() {
                if let Some(l) = line {
                    self.stats.prefetch_unused += u64::from(l.prefetched);
                    *line = None;
                }
            }
        }
        self.live = 0;
        self.fifo_ptr.iter_mut().for_each(|p| *p = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: usize, ways: usize, replacement: IotlbReplacement) -> Iotlb {
        Iotlb::new(IotlbConfig { entries, ways, replacement, seed: 7 })
    }

    #[test]
    fn miss_fill_hit() {
        let mut t = tlb(8, 2, IotlbReplacement::Fifo);
        assert!(t.lookup(1, VirtPage::new(5), Perms::READ).is_none());
        t.insert(1, VirtPage::new(5), PhysFrame::new(9), Perms::READ_WRITE);
        let (frame, perms) = t.lookup(1, VirtPage::new(5), Perms::READ).unwrap();
        assert_eq!(frame, PhysFrame::new(9));
        assert!(perms.allows(Perms::WRITE));
        assert_eq!(t.stats().tlb.hits, 1);
        assert_eq!(t.stats().tlb.misses, 1);
    }

    #[test]
    fn asid_tags_separate_address_spaces() {
        let mut t = tlb(8, 2, IotlbReplacement::Fifo);
        t.insert(1, VirtPage::new(5), PhysFrame::new(9), Perms::READ_WRITE);
        // Same page number, different ASID: miss — never another
        // context's frame.
        assert!(t.lookup(2, VirtPage::new(5), Perms::READ).is_none());
        t.insert(2, VirtPage::new(5), PhysFrame::new(22), Perms::READ);
        assert_eq!(t.lookup(1, VirtPage::new(5), Perms::READ).unwrap().0, PhysFrame::new(9));
        assert_eq!(t.lookup(2, VirtPage::new(5), Perms::READ).unwrap().0, PhysFrame::new(22));
    }

    #[test]
    fn permission_insufficient_line_counts_as_miss() {
        let mut t = tlb(4, 4, IotlbReplacement::Fifo);
        t.insert(1, VirtPage::new(0), PhysFrame::new(1), Perms::READ);
        assert!(t.lookup(1, VirtPage::new(0), Perms::WRITE).is_none());
        assert_eq!(t.stats().tlb.misses, 1);
        // Upgrade in place after the caller re-walks.
        t.insert(1, VirtPage::new(0), PhysFrame::new(1), Perms::READ_WRITE);
        assert_eq!(t.len(), 1);
        assert!(t.lookup(1, VirtPage::new(0), Perms::WRITE).is_some());
    }

    #[test]
    fn eviction_within_a_full_set() {
        // 2 sets × 2 ways; same set gets 3 pages → one eviction.
        let mut t = tlb(4, 2, IotlbReplacement::Fifo);
        let idx = t.set_index(1, VirtPage::new(0));
        let same_set: Vec<u64> =
            (0..64).filter(|&p| t.set_index(1, VirtPage::new(p)) == idx).take(3).collect();
        for &p in &same_set {
            t.insert(1, VirtPage::new(p), PhysFrame::new(p), Perms::READ);
        }
        assert_eq!(t.stats().tlb.evictions, 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lru_keeps_the_recently_touched_line() {
        let mut t = tlb(2, 2, IotlbReplacement::Lru);
        t.insert(1, VirtPage::new(0), PhysFrame::new(0), Perms::READ);
        t.insert(1, VirtPage::new(1), PhysFrame::new(1), Perms::READ);
        // Touch page 0 so page 1 is the LRU victim.
        t.lookup(1, VirtPage::new(0), Perms::READ).unwrap();
        t.insert(1, VirtPage::new(2), PhysFrame::new(2), Perms::READ);
        assert!(t.lookup(1, VirtPage::new(0), Perms::READ).is_some());
        assert!(t.lookup(1, VirtPage::new(1), Perms::READ).is_none());
    }

    #[test]
    fn random_replacement_is_deterministic_per_seed() {
        let fills = |seed| {
            let mut t = Iotlb::new(IotlbConfig {
                entries: 2,
                ways: 2,
                replacement: IotlbReplacement::Random,
                seed,
            });
            for p in 0..16u64 {
                t.insert(1, VirtPage::new(p), PhysFrame::new(p), Perms::READ);
            }
            (0..16u64)
                .map(|p| t.lookup(1, VirtPage::new(p), Perms::READ).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(fills(1), fills(1));
    }

    #[test]
    fn shootdown_and_asid_flush_are_selective() {
        let mut t = tlb(8, 4, IotlbReplacement::Fifo);
        t.insert(1, VirtPage::new(0), PhysFrame::new(0), Perms::READ);
        t.insert(1, VirtPage::new(1), PhysFrame::new(1), Perms::READ);
        t.insert(2, VirtPage::new(0), PhysFrame::new(2), Perms::READ);
        t.invalidate_page(1, VirtPage::new(0));
        assert!(t.lookup(1, VirtPage::new(0), Perms::READ).is_none());
        assert!(t.lookup(1, VirtPage::new(1), Perms::READ).is_some());
        assert!(t.lookup(2, VirtPage::new(0), Perms::READ).is_some());
        t.invalidate_asid(1);
        assert!(t.lookup(1, VirtPage::new(1), Perms::READ).is_none());
        assert!(t.lookup(2, VirtPage::new(0), Perms::READ).is_some());
        assert_eq!(t.stats().shootdowns, 1);
        assert_eq!(t.stats().asid_flushes, 1);
        t.flush_all();
        assert!(t.is_empty());
        assert_eq!(t.stats().tlb.flushes, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of the associativity")]
    fn bad_geometry_panics() {
        let _ = Iotlb::new(IotlbConfig { entries: 6, ways: 4, ..IotlbConfig::default() });
    }

    #[test]
    fn lru_victim_is_the_oldest_valid_line() {
        // A shootdown leaves a vacancy whose absent stamp must never be
        // mistaken for "oldest". Refill through the vacancy, then force
        // an eviction: the victim must be the stalest *valid* line.
        let mut t = tlb(2, 2, IotlbReplacement::Lru);
        t.insert(1, VirtPage::new(0), PhysFrame::new(0), Perms::READ); // stamp 1
        t.insert(1, VirtPage::new(1), PhysFrame::new(1), Perms::READ); // stamp 2
        t.lookup(1, VirtPage::new(0), Perms::READ).unwrap(); // page 0 → stamp 3
        t.invalidate_page(1, VirtPage::new(1));
        t.insert(1, VirtPage::new(2), PhysFrame::new(2), Perms::READ); // fills vacancy, stamp 4
        assert_eq!(t.len(), 2);
        t.insert(1, VirtPage::new(3), PhysFrame::new(3), Perms::READ); // evicts oldest valid: page 0
        assert!(t.lookup(1, VirtPage::new(0), Perms::READ).is_none());
        assert!(t.lookup(1, VirtPage::new(2), Perms::READ).is_some());
        assert!(t.lookup(1, VirtPage::new(3), Perms::READ).is_some());
        assert_eq!(t.stats().tlb.evictions, 1);
    }

    #[test]
    fn prefetched_lines_count_hidden_and_unused() {
        let mut t = tlb(8, 4, IotlbReplacement::Fifo);
        t.insert_prefetched(1, VirtPage::new(0), PhysFrame::new(0), Perms::READ);
        t.insert_prefetched(1, VirtPage::new(1), PhysFrame::new(1), Perms::READ);
        assert_eq!(t.stats().prefetch_fills, 2);
        // First demand use retires the flag exactly once.
        t.lookup(1, VirtPage::new(0), Perms::READ).unwrap();
        t.lookup(1, VirtPage::new(0), Perms::READ).unwrap();
        assert_eq!(t.stats().prefetch_hidden, 1);
        // The never-used line dropped by a shootdown is a wasted walk.
        t.invalidate_page(1, VirtPage::new(1));
        assert_eq!(t.stats().prefetch_unused, 1);
        // A used line dropped later is not.
        t.invalidate_page(1, VirtPage::new(0));
        assert_eq!(t.stats().prefetch_unused, 1);
    }

    #[test]
    fn probe_counts_no_miss() {
        let mut t = tlb(4, 4, IotlbReplacement::Fifo);
        assert!(t.probe(1, VirtPage::new(0), Perms::READ).is_none());
        assert_eq!(t.stats().tlb.misses, 0);
        t.insert_prefetched(1, VirtPage::new(0), PhysFrame::new(7), Perms::READ);
        let (frame, _) = t.probe(1, VirtPage::new(0), Perms::READ).unwrap();
        assert_eq!(frame, PhysFrame::new(7));
        assert_eq!(t.stats().tlb.hits, 1);
        assert_eq!(t.stats().prefetch_hidden, 1);
        assert!(t.contains(1, VirtPage::new(0), Perms::READ));
        assert!(!t.contains(1, VirtPage::new(0), Perms::WRITE));
        // contains() is pure: counters unchanged.
        assert_eq!(t.stats().tlb.hits, 1);
        assert_eq!(t.stats().tlb.misses, 0);
    }

    #[test]
    fn live_counter_matches_a_full_scan_after_random_ops() {
        // O(1) len() selftest: drive every mutating op from a seeded
        // stream and check the counter against an exhaustive scan.
        for seed in 0..4u64 {
            let mut t = tlb(16, 4, IotlbReplacement::Lru);
            let mut state = 0x9E37_79B9_97F4_A7C1u64 ^ seed;
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for _ in 0..2_000 {
                let page = VirtPage::new(next() % 24);
                let asid = (next() % 3) as Asid;
                match next() % 8 {
                    0..=2 => t.insert(asid, page, PhysFrame::new(next() % 64), Perms::READ_WRITE),
                    3..=4 => {
                        t.insert_prefetched(asid, page, PhysFrame::new(next() % 64), Perms::READ)
                    }
                    5 => t.invalidate_page(asid, page),
                    6 => {
                        let _ = t.lookup(asid, page, Perms::READ);
                    }
                    _ => {
                        if next() % 16 == 0 {
                            t.flush_all();
                        } else {
                            t.invalidate_asid(asid);
                        }
                    }
                }
                let scanned = t.sets.iter().flatten().filter(|l| l.is_some()).count();
                assert_eq!(t.len(), scanned, "live counter diverged from scan (seed {seed})");
            }
        }
    }
}
