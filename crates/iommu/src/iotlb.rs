//! The IOTLB: a set-associative, ASID-tagged translation cache on the
//! network interface.
//!
//! ASID tagging is the point: a host context switch does **not** flush
//! the IOTLB (entries of the switched-out process stay valid and keep
//! serving its in-flight transfers), and tearing down one address space
//! invalidates only its own entries ([`Iotlb::invalidate_asid`]) instead
//! of everyone's.

use crate::Asid;
use udma_mem::{Perms, PhysFrame, TlbStats, VirtPage};

/// Replacement policy within a set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IotlbReplacement {
    /// Replace the oldest fill (per-set round-robin pointer).
    #[default]
    Fifo,
    /// Replace the least recently used entry.
    Lru,
    /// Replace a pseudo-random way (deterministic splitmix stream).
    Random,
}

/// IOTLB geometry and policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IotlbConfig {
    /// Total entries (must be a multiple of `ways`).
    pub entries: usize,
    /// Associativity; `entries == ways` makes the IOTLB fully
    /// associative.
    pub ways: usize,
    /// Replacement policy within a set.
    pub replacement: IotlbReplacement,
    /// Seed for the `Random` policy's deterministic stream.
    pub seed: u64,
}

impl Default for IotlbConfig {
    fn default() -> Self {
        // The ARMv8 SMMU the follow-on work targets has small per-TBU
        // micro-TLBs; 32 × 4-way is in that class.
        IotlbConfig { entries: 32, ways: 4, replacement: IotlbReplacement::Fifo, seed: 0 }
    }
}

impl IotlbConfig {
    /// A fully associative IOTLB of `entries` entries.
    pub fn fully_associative(entries: usize) -> Self {
        IotlbConfig { entries, ways: entries, ..IotlbConfig::default() }
    }
}

/// IOTLB counters: the shared [`TlbStats`] shape plus the
/// invalidation traffic that only exists on the device side.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IotlbStats {
    /// Hit/miss/flush/eviction counters (same shape as the CPU TLB).
    pub tlb: TlbStats,
    /// Single-page invalidations (OS unmap/swap-out shootdowns).
    pub shootdowns: u64,
    /// Selective per-ASID invalidations (address-space teardown).
    pub asid_flushes: u64,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    asid: Asid,
    page: VirtPage,
    frame: PhysFrame,
    perms: Perms,
    /// LRU timestamp (monotonic fill/touch tick).
    stamp: u64,
}

/// The translation cache proper.
#[derive(Clone, Debug)]
pub struct Iotlb {
    sets: Vec<Vec<Option<Line>>>,
    ways: usize,
    replacement: IotlbReplacement,
    fifo_ptr: Vec<usize>,
    tick: u64,
    rng_state: u64,
    stats: IotlbStats,
}

impl Iotlb {
    /// Builds an IOTLB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero, `ways` is zero, or `entries` is not
    /// a multiple of `ways`.
    pub fn new(config: IotlbConfig) -> Self {
        assert!(config.entries > 0, "IOTLB must have entries");
        assert!(config.ways > 0, "IOTLB associativity must be nonzero");
        assert!(
            config.entries.is_multiple_of(config.ways),
            "IOTLB entries must be a multiple of the associativity"
        );
        let num_sets = config.entries / config.ways;
        Iotlb {
            sets: vec![vec![None; config.ways]; num_sets],
            ways: config.ways,
            replacement: config.replacement,
            fifo_ptr: vec![0; num_sets],
            tick: 0,
            rng_state: config.seed,
            stats: IotlbStats::default(),
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Valid entries currently cached.
    pub fn len(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.is_some()).count()
    }

    /// Whether the IOTLB caches nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current statistics.
    pub fn stats(&self) -> IotlbStats {
        self.stats
    }

    fn set_index(&self, asid: Asid, page: VirtPage) -> usize {
        // Hash the ASID into the index so two processes touching the
        // same page numbers (the common buffer layout) don't contend
        // for the same sets.
        ((page.number() ^ (asid as u64).wrapping_mul(0x9E37_79B9)) % self.sets.len() as u64)
            as usize
    }

    fn next_random(&mut self) -> u64 {
        // splitmix64 step: deterministic per seed.
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Looks up `(asid, page)`; counts a hit only when the cached entry
    /// also allows `needed`. A permission-insufficient entry counts as
    /// a miss so the caller re-walks the I/O page table (the same
    /// rewalk-on-permission-miss rule as the CPU TLB).
    pub fn lookup(
        &mut self,
        asid: Asid,
        page: VirtPage,
        needed: Perms,
    ) -> Option<(PhysFrame, Perms)> {
        let idx = self.set_index(asid, page);
        self.tick += 1;
        let tick = self.tick;
        let hit = self.sets[idx]
            .iter_mut()
            .flatten()
            .find(|l| l.asid == asid && l.page == page && l.perms.allows(needed));
        match hit {
            Some(line) => {
                line.stamp = tick;
                self.stats.tlb.hits += 1;
                Some((line.frame, line.perms))
            }
            None => {
                self.stats.tlb.misses += 1;
                None
            }
        }
    }

    /// Fills a translation, evicting within the set per the replacement
    /// policy. An existing line for the same `(asid, page)` is updated
    /// in place (permission upgrade after a `protect`).
    pub fn insert(&mut self, asid: Asid, page: VirtPage, frame: PhysFrame, perms: Perms) {
        let idx = self.set_index(asid, page);
        self.tick += 1;
        let tick = self.tick;
        if let Some(line) =
            self.sets[idx].iter_mut().flatten().find(|l| l.asid == asid && l.page == page)
        {
            *line = Line { asid, page, frame, perms, stamp: tick };
            return;
        }
        let way = match self.sets[idx].iter().position(|l| l.is_none()) {
            Some(free) => free,
            None => {
                self.stats.tlb.evictions += 1;
                match self.replacement {
                    IotlbReplacement::Fifo => {
                        let w = self.fifo_ptr[idx];
                        self.fifo_ptr[idx] = (w + 1) % self.ways;
                        w
                    }
                    IotlbReplacement::Lru => self.sets[idx]
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.map(|l| l.stamp).unwrap_or(0))
                        .map(|(w, _)| w)
                        .expect("ways > 0"),
                    IotlbReplacement::Random => (self.next_random() % self.ways as u64) as usize,
                }
            }
        };
        self.sets[idx][way] = Some(Line { asid, page, frame, perms, stamp: tick });
    }

    /// Shoots down one page of one address space (OS unmap/swap-out).
    pub fn invalidate_page(&mut self, asid: Asid, page: VirtPage) {
        self.stats.shootdowns += 1;
        let idx = self.set_index(asid, page);
        for line in self.sets[idx].iter_mut() {
            if line.is_some_and(|l| l.asid == asid && l.page == page) {
                *line = None;
            }
        }
    }

    /// Invalidates every entry of one ASID — what a context teardown
    /// costs *instead of* a full flush, thanks to the tags.
    pub fn invalidate_asid(&mut self, asid: Asid) {
        self.stats.asid_flushes += 1;
        for set in self.sets.iter_mut() {
            for line in set.iter_mut() {
                if line.is_some_and(|l| l.asid == asid) {
                    *line = None;
                }
            }
        }
    }

    /// Invalidates everything (device reset).
    pub fn flush_all(&mut self) {
        self.stats.tlb.flushes += 1;
        for set in self.sets.iter_mut() {
            set.iter_mut().for_each(|l| *l = None);
        }
        self.fifo_ptr.iter_mut().for_each(|p| *p = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: usize, ways: usize, replacement: IotlbReplacement) -> Iotlb {
        Iotlb::new(IotlbConfig { entries, ways, replacement, seed: 7 })
    }

    #[test]
    fn miss_fill_hit() {
        let mut t = tlb(8, 2, IotlbReplacement::Fifo);
        assert!(t.lookup(1, VirtPage::new(5), Perms::READ).is_none());
        t.insert(1, VirtPage::new(5), PhysFrame::new(9), Perms::READ_WRITE);
        let (frame, perms) = t.lookup(1, VirtPage::new(5), Perms::READ).unwrap();
        assert_eq!(frame, PhysFrame::new(9));
        assert!(perms.allows(Perms::WRITE));
        assert_eq!(t.stats().tlb.hits, 1);
        assert_eq!(t.stats().tlb.misses, 1);
    }

    #[test]
    fn asid_tags_separate_address_spaces() {
        let mut t = tlb(8, 2, IotlbReplacement::Fifo);
        t.insert(1, VirtPage::new(5), PhysFrame::new(9), Perms::READ_WRITE);
        // Same page number, different ASID: miss — never another
        // context's frame.
        assert!(t.lookup(2, VirtPage::new(5), Perms::READ).is_none());
        t.insert(2, VirtPage::new(5), PhysFrame::new(22), Perms::READ);
        assert_eq!(t.lookup(1, VirtPage::new(5), Perms::READ).unwrap().0, PhysFrame::new(9));
        assert_eq!(t.lookup(2, VirtPage::new(5), Perms::READ).unwrap().0, PhysFrame::new(22));
    }

    #[test]
    fn permission_insufficient_line_counts_as_miss() {
        let mut t = tlb(4, 4, IotlbReplacement::Fifo);
        t.insert(1, VirtPage::new(0), PhysFrame::new(1), Perms::READ);
        assert!(t.lookup(1, VirtPage::new(0), Perms::WRITE).is_none());
        assert_eq!(t.stats().tlb.misses, 1);
        // Upgrade in place after the caller re-walks.
        t.insert(1, VirtPage::new(0), PhysFrame::new(1), Perms::READ_WRITE);
        assert_eq!(t.len(), 1);
        assert!(t.lookup(1, VirtPage::new(0), Perms::WRITE).is_some());
    }

    #[test]
    fn eviction_within_a_full_set() {
        // 2 sets × 2 ways; same set gets 3 pages → one eviction.
        let mut t = tlb(4, 2, IotlbReplacement::Fifo);
        let idx = t.set_index(1, VirtPage::new(0));
        let same_set: Vec<u64> =
            (0..64).filter(|&p| t.set_index(1, VirtPage::new(p)) == idx).take(3).collect();
        for &p in &same_set {
            t.insert(1, VirtPage::new(p), PhysFrame::new(p), Perms::READ);
        }
        assert_eq!(t.stats().tlb.evictions, 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lru_keeps_the_recently_touched_line() {
        let mut t = tlb(2, 2, IotlbReplacement::Lru);
        t.insert(1, VirtPage::new(0), PhysFrame::new(0), Perms::READ);
        t.insert(1, VirtPage::new(1), PhysFrame::new(1), Perms::READ);
        // Touch page 0 so page 1 is the LRU victim.
        t.lookup(1, VirtPage::new(0), Perms::READ).unwrap();
        t.insert(1, VirtPage::new(2), PhysFrame::new(2), Perms::READ);
        assert!(t.lookup(1, VirtPage::new(0), Perms::READ).is_some());
        assert!(t.lookup(1, VirtPage::new(1), Perms::READ).is_none());
    }

    #[test]
    fn random_replacement_is_deterministic_per_seed() {
        let fills = |seed| {
            let mut t = Iotlb::new(IotlbConfig {
                entries: 2,
                ways: 2,
                replacement: IotlbReplacement::Random,
                seed,
            });
            for p in 0..16u64 {
                t.insert(1, VirtPage::new(p), PhysFrame::new(p), Perms::READ);
            }
            (0..16u64)
                .map(|p| t.lookup(1, VirtPage::new(p), Perms::READ).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(fills(1), fills(1));
    }

    #[test]
    fn shootdown_and_asid_flush_are_selective() {
        let mut t = tlb(8, 4, IotlbReplacement::Fifo);
        t.insert(1, VirtPage::new(0), PhysFrame::new(0), Perms::READ);
        t.insert(1, VirtPage::new(1), PhysFrame::new(1), Perms::READ);
        t.insert(2, VirtPage::new(0), PhysFrame::new(2), Perms::READ);
        t.invalidate_page(1, VirtPage::new(0));
        assert!(t.lookup(1, VirtPage::new(0), Perms::READ).is_none());
        assert!(t.lookup(1, VirtPage::new(1), Perms::READ).is_some());
        assert!(t.lookup(2, VirtPage::new(0), Perms::READ).is_some());
        t.invalidate_asid(1);
        assert!(t.lookup(1, VirtPage::new(1), Perms::READ).is_none());
        assert!(t.lookup(2, VirtPage::new(0), Perms::READ).is_some());
        assert_eq!(t.stats().shootdowns, 1);
        assert_eq!(t.stats().asid_flushes, 1);
        t.flush_all();
        assert!(t.is_empty());
        assert_eq!(t.stats().tlb.flushes, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of the associativity")]
    fn bad_geometry_panics() {
        let _ = Iotlb::new(IotlbConfig { entries: 6, ways: 4, ..IotlbConfig::default() });
    }
}
