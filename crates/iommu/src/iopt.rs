//! Per-ASID I/O page tables: the authoritative NI-side translation
//! structure the IOTLB caches.

use crate::{IoFaultKind, PinError};
use std::collections::BTreeMap;
use udma_mem::{Access, MemFault, Perms, PhysAddr, PhysFrame, VirtAddr, VirtPage};

/// One I/O page-table entry.
///
/// Unlike a CPU PTE it carries a *pin* bit: the OS must not swap out a
/// page while the NI may still DMA to it, so the fault service pins
/// pages as it maps them and the swapper refuses pinned pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoPte {
    /// Backing physical frame.
    pub frame: PhysFrame,
    /// Permissions granted to device accesses.
    pub perms: Perms,
    /// Whether the frame is pinned (not swappable).
    pub pinned: bool,
}

/// The I/O page table of one address space (one ASID).
#[derive(Clone, Debug, Default)]
pub struct IoPageTable {
    entries: BTreeMap<VirtPage, IoPte>,
}

impl IoPageTable {
    /// An empty table.
    pub fn new() -> Self {
        IoPageTable::default()
    }

    /// Installs a translation.
    ///
    /// # Errors
    ///
    /// [`MemFault::AlreadyMapped`] if the page already has an entry.
    pub fn map(
        &mut self,
        page: VirtPage,
        frame: PhysFrame,
        perms: Perms,
        pinned: bool,
    ) -> Result<(), MemFault> {
        if self.entries.contains_key(&page) {
            return Err(MemFault::AlreadyMapped { va: page.base() });
        }
        self.entries.insert(page, IoPte { frame, perms, pinned });
        Ok(())
    }

    /// Removes a translation, returning the old entry if present.
    pub fn unmap(&mut self, page: VirtPage) -> Option<IoPte> {
        self.entries.remove(&page)
    }

    /// Changes the permissions of an existing entry.
    ///
    /// # Errors
    ///
    /// [`MemFault::Unmapped`] if the page has no entry.
    pub fn protect(&mut self, page: VirtPage, perms: Perms) -> Result<(), MemFault> {
        match self.entries.get_mut(&page) {
            Some(e) => {
                e.perms = perms;
                Ok(())
            }
            None => Err(MemFault::Unmapped { va: page.base() }),
        }
    }

    /// Sets or clears the pin bit of an existing entry.
    ///
    /// # Errors
    ///
    /// [`PinError::Unmapped`] if the page has no entry.
    pub fn set_pinned(&mut self, page: VirtPage, pinned: bool) -> Result<(), PinError> {
        match self.entries.get_mut(&page) {
            Some(e) => {
                e.pinned = pinned;
                Ok(())
            }
            None => Err(PinError::Unmapped),
        }
    }

    /// The entry for a page.
    pub fn entry(&self, page: VirtPage) -> Option<&IoPte> {
        self.entries.get(&page)
    }

    /// Walks the table for `va`, permission-checking against `access`.
    pub fn translate(&self, va: VirtAddr, access: Access) -> Result<PhysAddr, IoFaultKind> {
        let pte = self.entries.get(&va.page()).ok_or(IoFaultKind::Unmapped)?;
        let needed = access.required_perms();
        if !pte.perms.allows(needed) {
            return Err(IoFaultKind::Protection { needed, granted: pte.perms });
        }
        Ok(pte.frame.base() + va.page_offset())
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the installed entries in page order.
    pub fn iter(&self) -> impl Iterator<Item = (&VirtPage, &IoPte)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udma_mem::PAGE_SIZE;

    #[test]
    fn map_translate_round_trip() {
        let mut t = IoPageTable::new();
        t.map(VirtPage::new(2), PhysFrame::new(7), Perms::READ_WRITE, true).unwrap();
        let pa = t.translate(VirtAddr::new(2 * PAGE_SIZE + 0x18), Access::Write).unwrap();
        assert_eq!(pa, PhysFrame::new(7).base() + 0x18);
        assert!(t.entry(VirtPage::new(2)).unwrap().pinned);
    }

    #[test]
    fn unmapped_and_protection_faults() {
        let mut t = IoPageTable::new();
        assert_eq!(t.translate(VirtAddr::new(0), Access::Read), Err(IoFaultKind::Unmapped));
        t.map(VirtPage::new(0), PhysFrame::new(1), Perms::READ, false).unwrap();
        assert!(t.translate(VirtAddr::new(0), Access::Read).is_ok());
        assert_eq!(
            t.translate(VirtAddr::new(8), Access::Write),
            Err(IoFaultKind::Protection { needed: Perms::WRITE, granted: Perms::READ })
        );
    }

    #[test]
    fn double_map_rejected_unmap_clears() {
        let mut t = IoPageTable::new();
        t.map(VirtPage::new(1), PhysFrame::new(1), Perms::READ, false).unwrap();
        assert!(matches!(
            t.map(VirtPage::new(1), PhysFrame::new(2), Perms::READ, false),
            Err(MemFault::AlreadyMapped { .. })
        ));
        let old = t.unmap(VirtPage::new(1)).unwrap();
        assert_eq!(old.frame, PhysFrame::new(1));
        assert!(t.is_empty());
        assert!(t.unmap(VirtPage::new(1)).is_none());
    }

    #[test]
    fn protect_and_pin_update_entries() {
        let mut t = IoPageTable::new();
        t.map(VirtPage::new(3), PhysFrame::new(3), Perms::READ, false).unwrap();
        t.protect(VirtPage::new(3), Perms::READ_WRITE).unwrap();
        assert!(t.translate(VirtPage::new(3).base(), Access::Write).is_ok());
        t.set_pinned(VirtPage::new(3), true).unwrap();
        assert!(t.entry(VirtPage::new(3)).unwrap().pinned);
        assert!(t.protect(VirtPage::new(9), Perms::READ).is_err());
        assert_eq!(t.set_pinned(VirtPage::new(9), true), Err(PinError::Unmapped));
    }
}
