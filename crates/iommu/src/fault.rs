//! I/O page faults: what the NI reports when a translation fails
//! mid-transfer.

use crate::Asid;
use std::collections::VecDeque;
use std::fmt;
use udma_mem::{Access, Perms, VirtAddr};

/// Why an IOMMU translation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFaultKind {
    /// No I/O page-table entry for the page (never registered, or
    /// swapped out and shot down).
    Unmapped,
    /// An entry exists but lacks the needed permission.
    Protection {
        /// Permission the access required.
        needed: Perms,
        /// Permission the entry grants.
        granted: Perms,
    },
    /// The ASID has no I/O page table at all (context never registered
    /// with the IOMMU).
    NoContext,
}

/// One I/O page fault, as queued by the engine for the OS fault service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoFault {
    /// Address-space id of the posting context.
    pub asid: Asid,
    /// Faulting virtual address.
    pub va: VirtAddr,
    /// The access the DMA engine was attempting.
    pub access: Access,
    /// Why the translation failed.
    pub kind: IoFaultKind,
}

impl fmt::Display for IoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            IoFaultKind::Unmapped => "unmapped".to_string(),
            IoFaultKind::Protection { needed, granted } => {
                format!("protection (needed {needed}, granted {granted})")
            }
            IoFaultKind::NoContext => "no context".to_string(),
        };
        write!(f, "io-fault asid={} va={} {:?} {}", self.asid, self.va, self.access, kind)
    }
}

/// A FIFO of pending I/O faults (the engine's fault queue; the OS fault
/// service drains it).
#[derive(Clone, Debug, Default)]
pub struct FaultQueue {
    queue: VecDeque<IoFault>,
    /// Faults ever enqueued (monotonic; `len()` only reports pending).
    raised: u64,
}

impl FaultQueue {
    /// An empty queue.
    pub fn new() -> Self {
        FaultQueue::default()
    }

    /// Enqueues a fault.
    pub fn push(&mut self, fault: IoFault) {
        self.raised += 1;
        self.queue.push_back(fault);
    }

    /// Dequeues the oldest pending fault.
    pub fn pop(&mut self) -> Option<IoFault> {
        self.queue.pop_front()
    }

    /// Oldest pending fault without dequeuing.
    pub fn peek(&self) -> Option<&IoFault> {
        self.queue.front()
    }

    /// Pending faults.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no fault is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Faults ever raised (including serviced ones).
    pub fn raised(&self) -> u64 {
        self.raised
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(va: u64) -> IoFault {
        IoFault {
            asid: 1,
            va: VirtAddr::new(va),
            access: Access::Read,
            kind: IoFaultKind::Unmapped,
        }
    }

    #[test]
    fn queue_is_fifo_and_counts() {
        let mut q = FaultQueue::new();
        assert!(q.is_empty());
        q.push(fault(0x1000));
        q.push(fault(0x2000));
        assert_eq!(q.len(), 2);
        assert_eq!(q.raised(), 2);
        assert_eq!(q.peek().unwrap().va, VirtAddr::new(0x1000));
        assert_eq!(q.pop().unwrap().va, VirtAddr::new(0x1000));
        assert_eq!(q.pop().unwrap().va, VirtAddr::new(0x2000));
        assert!(q.pop().is_none());
        // Draining does not reset the raised counter.
        assert_eq!(q.raised(), 2);
    }

    #[test]
    fn display_is_informative() {
        let s = fault(0x3000).to_string();
        assert!(s.contains("asid=1"));
        assert!(s.contains("unmapped"));
        let p = IoFault {
            kind: IoFaultKind::Protection { needed: Perms::WRITE, granted: Perms::READ },
            ..fault(0)
        };
        assert!(p.to_string().contains("protection"));
    }
}
