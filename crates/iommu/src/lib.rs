//! NI-side address translation for virtual-address DMA.
//!
//! The paper's shadow-addressing protocols make the *user* prove a
//! physical address, so every transfer in the base reproduction names a
//! pre-translated, resident frame. The Telegraphos follow-on work
//! (Psistakis et al., *IOMMU Support for Virtual-Address Remote DMA*
//! and *Handling of Memory Page Faults during Virtual-Address RDMA*)
//! moves the translation into the network interface instead: user code
//! posts **virtual** addresses, the NI walks an I/O page table, caches
//! translations in an ASID-tagged **IOTLB**, and raises an I/O page
//! fault when a page is unmapped or swapped out.
//!
//! This crate is that translation unit, deliberately free of any engine
//! or OS dependency so both sides can share it:
//!
//! * [`IoPageTable`] — per-ASID authoritative translations, with a pin
//!   bit the swapper honours;
//! * [`Iotlb`] — set-associative, ASID-tagged translation cache with
//!   configurable replacement and full hit/miss/eviction/shootdown
//!   statistics ([`IotlbStats`] embeds the CPU-side
//!   [`udma_mem::TlbStats`] shape);
//! * [`IoFault`]/[`FaultQueue`] — what the engine reports to the OS
//!   fault service when a translation fails mid-transfer;
//! * [`Iommu`] — the unit itself: context lifecycle, map/unmap with
//!   IOTLB shootdown, and [`Iommu::translate`], the one call the DMA
//!   engine makes per page of a virtual-address transfer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod iopt;
mod iotlb;

pub use fault::{FaultQueue, IoFault, IoFaultKind};
pub use iopt::{IoPageTable, IoPte};
pub use iotlb::{Iotlb, IotlbConfig, IotlbReplacement, IotlbStats};

use std::collections::BTreeMap;
use udma_mem::{Access, MemFault, Perms, PhysAddr, PhysFrame, VirtAddr, VirtPage, PAGE_SIZE};

/// Address-space identifier. The machine uses the granted register
/// context id: the OS hands each process at most one context, so the
/// context id already names the posting address space uniquely.
pub type Asid = u32;

/// Why a pin/unpin request failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinError {
    /// The page has no I/O page-table entry.
    Unmapped,
    /// The ASID has no I/O page table.
    NoContext,
}

/// The IOMMU: per-ASID I/O page tables behind one shared IOTLB.
#[derive(Clone, Debug)]
pub struct Iommu {
    tables: BTreeMap<Asid, IoPageTable>,
    tlb: Iotlb,
}

impl Iommu {
    /// Creates an IOMMU with the given IOTLB geometry.
    pub fn new(config: IotlbConfig) -> Self {
        Iommu { tables: BTreeMap::new(), tlb: Iotlb::new(config) }
    }

    /// Registers an address space (idempotent).
    pub fn create_context(&mut self, asid: Asid) {
        self.tables.entry(asid).or_default();
    }

    /// Tears down an address space: drops its I/O page table and
    /// invalidates only its IOTLB entries (ASID tags make the flush
    /// selective).
    pub fn remove_context(&mut self, asid: Asid) {
        if self.tables.remove(&asid).is_some() {
            self.tlb.invalidate_asid(asid);
        }
    }

    /// Whether `asid` is registered.
    pub fn has_context(&self, asid: Asid) -> bool {
        self.tables.contains_key(&asid)
    }

    /// The I/O page table of one address space.
    pub fn table(&self, asid: Asid) -> Option<&IoPageTable> {
        self.tables.get(&asid)
    }

    /// Installs a translation for `asid`.
    ///
    /// # Errors
    ///
    /// [`MemFault::AlreadyMapped`] if the page already has an entry;
    /// [`MemFault::Unmapped`] if the ASID is not registered.
    pub fn map(
        &mut self,
        asid: Asid,
        page: VirtPage,
        frame: PhysFrame,
        perms: Perms,
        pinned: bool,
    ) -> Result<(), MemFault> {
        self.tables
            .get_mut(&asid)
            .ok_or(MemFault::Unmapped { va: page.base() })?
            .map(page, frame, perms, pinned)
    }

    /// Removes a translation and shoots the page down from the IOTLB.
    /// Returns the removed entry, if any.
    pub fn unmap(&mut self, asid: Asid, page: VirtPage) -> Option<IoPte> {
        let old = self.tables.get_mut(&asid)?.unmap(page)?;
        self.tlb.invalidate_page(asid, page);
        Some(old)
    }

    /// Changes the permissions of an installed translation and shoots
    /// the stale IOTLB line down.
    ///
    /// # Errors
    ///
    /// [`MemFault::Unmapped`] if the ASID or page is not installed.
    pub fn protect(&mut self, asid: Asid, page: VirtPage, perms: Perms) -> Result<(), MemFault> {
        self.tables
            .get_mut(&asid)
            .ok_or(MemFault::Unmapped { va: page.base() })?
            .protect(page, perms)?;
        self.tlb.invalidate_page(asid, page);
        Ok(())
    }

    /// Sets or clears the pin bit of an installed translation.
    ///
    /// # Errors
    ///
    /// [`PinError`] naming what was missing.
    pub fn set_pinned(&mut self, asid: Asid, page: VirtPage, pinned: bool) -> Result<(), PinError> {
        self.tables.get_mut(&asid).ok_or(PinError::NoContext)?.set_pinned(page, pinned)
    }

    /// Translates a device access: IOTLB first, I/O page-table walk on a
    /// miss (filling the IOTLB), fault if the walk fails. This is the
    /// per-page step of every virtual-address DMA.
    ///
    /// # Errors
    ///
    /// The [`IoFault`] the engine should queue for the OS.
    pub fn translate(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        access: Access,
    ) -> Result<PhysAddr, IoFault> {
        let fault = |kind| IoFault { asid, va, access, kind };
        let needed = access.required_perms();
        let page = va.page();
        if let Some((frame, _)) = self.tlb.lookup(asid, page, needed) {
            return Ok(frame.base() + va.page_offset());
        }
        let table = self.tables.get(&asid).ok_or(fault(IoFaultKind::NoContext))?;
        let pa = table.translate(va, access).map_err(fault)?;
        let pte = table.entry(page).expect("walk succeeded");
        self.tlb.insert(asid, page, pte.frame, pte.perms);
        Ok(pa)
    }

    /// Peeks at the IOTLB for the frame backing `page`, without ever
    /// counting a miss: the engine's chunk coalescer uses this to ask
    /// "is the next page's translation already resident and does it
    /// continue the current chunk physically?" A hit is a real use
    /// (the frame feeds a merged chunk) so it counts as one; a miss
    /// counts nothing and the demand path translates — or faults — at
    /// that boundary as if the probe never happened.
    pub fn probe(&mut self, asid: Asid, page: VirtPage, access: Access) -> Option<PhysFrame> {
        self.tlb.probe(asid, page, access.required_perms()).map(|(frame, _)| frame)
    }

    /// Walks the I/O page table ahead of the streaming cursor and
    /// prefills the IOTLB for every page of `[va, va + len)` not
    /// already cached with permissions sufficient for `access`.
    ///
    /// Prefetch is best-effort and **never raises a fault**: the walk
    /// stops at the first page the table cannot resolve (unmapped,
    /// swapped out, or permission-insufficient) and leaves the demand
    /// path to fault at exactly that boundary. Already-resident pages
    /// are skipped without touching any hit/miss counter.
    ///
    /// Returns the number of table walks performed, so the caller can
    /// charge them at an amortized batch latency (the walks pipeline
    /// behind one another instead of each blocking the chunk stream).
    pub fn prewalk_range(&mut self, asid: Asid, va: VirtAddr, len: u64, access: Access) -> u64 {
        if len == 0 {
            return 0;
        }
        let needed = access.required_perms();
        let Some(table) = self.tables.get(&asid) else { return 0 };
        let first = va.page().number();
        let pages = (va.page_offset() + len).div_ceil(PAGE_SIZE);
        let mut walks = 0;
        for n in first..first + pages {
            let page = VirtPage::new(n);
            if self.tlb.contains(asid, page, needed) {
                continue;
            }
            match table.entry(page) {
                Some(pte) if pte.perms.allows(needed) => {
                    self.tlb.insert_prefetched(asid, page, pte.frame, pte.perms);
                    walks += 1;
                }
                _ => break,
            }
        }
        walks
    }

    /// Combined IOTLB statistics.
    pub fn stats(&self) -> IotlbStats {
        self.tlb.stats()
    }

    /// The IOTLB (geometry inspection, explicit flushes in tests).
    pub fn tlb_mut(&mut self) -> &mut Iotlb {
        &mut self.tlb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udma_mem::PAGE_SIZE;

    fn iommu() -> Iommu {
        let mut i = Iommu::new(IotlbConfig::default());
        i.create_context(1);
        i
    }

    #[test]
    fn translate_walks_then_hits() {
        let mut i = iommu();
        i.map(1, VirtPage::new(4), PhysFrame::new(11), Perms::READ_WRITE, true).unwrap();
        let va = VirtAddr::new(4 * PAGE_SIZE + 8);
        let pa = i.translate(1, va, Access::Write).unwrap();
        assert_eq!(pa, PhysFrame::new(11).base() + 8);
        assert_eq!(i.stats().tlb.misses, 1);
        let pa2 = i.translate(1, va, Access::Read).unwrap();
        assert_eq!(pa, pa2);
        assert_eq!(i.stats().tlb.hits, 1);
    }

    #[test]
    fn faults_carry_asid_and_kind() {
        let mut i = iommu();
        let f = i.translate(1, VirtAddr::new(0), Access::Read).unwrap_err();
        assert_eq!(f.kind, IoFaultKind::Unmapped);
        assert_eq!(f.asid, 1);
        let f = i.translate(9, VirtAddr::new(0), Access::Read).unwrap_err();
        assert_eq!(f.kind, IoFaultKind::NoContext);
    }

    #[test]
    fn unmap_shoots_down_the_iotlb() {
        let mut i = iommu();
        i.map(1, VirtPage::new(4), PhysFrame::new(11), Perms::READ, false).unwrap();
        i.translate(1, VirtPage::new(4).base(), Access::Read).unwrap();
        i.unmap(1, VirtPage::new(4)).unwrap();
        // A stale IOTLB line must not survive the unmap.
        assert!(i.translate(1, VirtPage::new(4).base(), Access::Read).is_err());
        assert_eq!(i.stats().shootdowns, 1);
    }

    #[test]
    fn protect_invalidates_stale_permissions() {
        let mut i = iommu();
        i.map(1, VirtPage::new(2), PhysFrame::new(5), Perms::READ_WRITE, false).unwrap();
        i.translate(1, VirtPage::new(2).base(), Access::Write).unwrap();
        i.protect(1, VirtPage::new(2), Perms::READ).unwrap();
        let f = i.translate(1, VirtPage::new(2).base(), Access::Write).unwrap_err();
        assert!(matches!(f.kind, IoFaultKind::Protection { .. }));
        assert!(i.translate(1, VirtPage::new(2).base(), Access::Read).is_ok());
    }

    #[test]
    fn remove_context_is_selective() {
        let mut i = iommu();
        i.create_context(2);
        i.map(1, VirtPage::new(0), PhysFrame::new(1), Perms::READ, false).unwrap();
        i.map(2, VirtPage::new(0), PhysFrame::new(2), Perms::READ, false).unwrap();
        i.translate(1, VirtAddr::new(0), Access::Read).unwrap();
        i.translate(2, VirtAddr::new(0), Access::Read).unwrap();
        i.remove_context(1);
        assert!(!i.has_context(1));
        assert_eq!(
            i.translate(1, VirtAddr::new(0), Access::Read).unwrap_err().kind,
            IoFaultKind::NoContext
        );
        // ASID 2 is untouched — and still hits its cached line.
        assert!(i.translate(2, VirtAddr::new(0), Access::Read).is_ok());
        assert_eq!(i.stats().asid_flushes, 1);
    }

    #[test]
    fn prewalk_stops_at_the_first_hole_and_raises_no_fault() {
        let mut i = iommu();
        for p in 0..3u64 {
            i.map(1, VirtPage::new(p), PhysFrame::new(10 + p), Perms::READ_WRITE, true).unwrap();
        }
        // Page 3 is a hole; pages 4.. are mapped but unreachable by a
        // straight-line prefetch.
        i.map(1, VirtPage::new(4), PhysFrame::new(20), Perms::READ_WRITE, true).unwrap();
        let walks = i.prewalk_range(1, VirtAddr::new(0), 6 * PAGE_SIZE, Access::Write);
        assert_eq!(walks, 3);
        assert_eq!(i.stats().prefetch_fills, 3);
        assert_eq!(i.stats().tlb.misses, 0, "prefetch walks are not demand misses");
        // Demand hits on the prefilled pages take no walk and are
        // counted as hidden misses.
        for p in 0..3u64 {
            i.translate(1, VirtPage::new(p).base(), Access::Write).unwrap();
        }
        assert_eq!(i.stats().tlb.hits, 3);
        assert_eq!(i.stats().prefetch_hidden, 3);
        // A second prewalk of the same range skips resident pages.
        assert_eq!(i.prewalk_range(1, VirtAddr::new(0), 3 * PAGE_SIZE, Access::Write), 0);
    }

    #[test]
    fn prewalk_respects_shootdown() {
        let mut i = iommu();
        i.map(1, VirtPage::new(0), PhysFrame::new(3), Perms::READ_WRITE, false).unwrap();
        assert_eq!(i.prewalk_range(1, VirtAddr::new(0), PAGE_SIZE, Access::Write), 1);
        // Swap-out between prewalk and use: the prefetched line must not
        // serve a stale frame.
        i.unmap(1, VirtPage::new(0));
        let f = i.translate(1, VirtAddr::new(0), Access::Write).unwrap_err();
        assert_eq!(f.kind, IoFaultKind::Unmapped);
        assert_eq!(i.stats().prefetch_unused, 1);
    }

    #[test]
    fn map_requires_a_context() {
        let mut i = Iommu::new(IotlbConfig::default());
        assert!(i.map(3, VirtPage::new(0), PhysFrame::new(1), Perms::READ, false).is_err());
        assert_eq!(i.set_pinned(3, VirtPage::new(0), true), Err(PinError::NoContext));
    }
}
