//! Property tests: the IOMMU against the CPU page table as oracle.
//!
//! The OS populates the I/O page table *from* the process's page table,
//! so for any populated page the two must agree exactly — same frame,
//! same permission verdicts — no matter the IOTLB geometry, replacement
//! policy, or access history in between.

use udma_iommu::{IoFaultKind, Iommu, IotlbConfig, IotlbReplacement};
use udma_mem::{Access, PageTable, Perms, PhysFrame, VirtAddr, VirtPage, PAGE_SIZE};
use udma_testkit::prop::{any, vec};
use udma_testkit::{prop_assert, prop_assert_eq, props};

fn perms_of(bits: u8) -> Perms {
    let mut p = Perms::NONE;
    if bits & 1 != 0 {
        p |= Perms::READ;
    }
    if bits & 2 != 0 {
        p |= Perms::WRITE;
    }
    p
}

props! {
    /// Translation correctness: for every access to every mapped page,
    /// the IOMMU's answer equals the CPU page table's answer — same
    /// physical address on success, matching fault class on failure —
    /// regardless of IOTLB geometry/policy and with repeated lookups
    /// exercising hit, miss and eviction paths.
    fn iommu_agrees_with_cpu_page_table(
        page_specs in vec((0u64..48, 0u8..4), 1..24),
        entries_log in 0u32..4,
        ways_choice in 0usize..3,
        policy_choice in 0usize..3,
        probes in vec((0u64..48, 0u64..PAGE_SIZE, any::<bool>()), 1..64),
    ) {
        let entries = 1usize << (entries_log + 1); // 2..16
        let ways = [1, 2, entries][ways_choice].min(entries);
        let entries = entries - entries % ways;
        let replacement = [
            IotlbReplacement::Fifo,
            IotlbReplacement::Lru,
            IotlbReplacement::Random,
        ][policy_choice];
        let mut iommu = Iommu::new(IotlbConfig { entries, ways, replacement, seed: 42 });
        iommu.create_context(1);

        // Build both tables from the same spec (first spec per page wins,
        // as `map` rejects duplicates in both).
        let mut pt = PageTable::new();
        for (i, &(page, perm_bits)) in page_specs.iter().enumerate() {
            let frame = PhysFrame::new(100 + i as u64);
            let perms = perms_of(perm_bits);
            if pt.map(VirtPage::new(page), frame, perms).is_ok() {
                iommu.map(1, VirtPage::new(page), frame, perms, true).unwrap();
            }
        }

        for &(page, offset, write) in &probes {
            let va = VirtAddr::new(page * PAGE_SIZE + offset);
            let access = if write { Access::Write } else { Access::Read };
            match (pt.translate(va, access), iommu.translate(1, va, access)) {
                (Ok(cpu_pa), Ok(io_pa)) => prop_assert_eq!(cpu_pa, io_pa),
                (Err(udma_mem::MemFault::Unmapped { .. }), Err(f)) => {
                    prop_assert_eq!(f.kind, IoFaultKind::Unmapped);
                }
                (Err(udma_mem::MemFault::Protection { .. }), Err(f)) => {
                    prop_assert!(matches!(f.kind, IoFaultKind::Protection { .. }));
                }
                (cpu, io) => prop_assert!(
                    false,
                    "oracle disagreement at {:?}: cpu {:?}, iommu {:?}",
                    va, cpu, io
                ),
            }
        }
    }

    /// The IOTLB never invents rights: after an arbitrary interleaving
    /// of maps, unmaps, protects and translations, a successful
    /// translation always has a live, permission-sufficient entry in the
    /// authoritative I/O page table.
    fn iotlb_never_outlives_the_table(
        ops in vec((0u8..4, 0u64..12, 0u8..4), 1..64),
    ) {
        let mut iommu = Iommu::new(IotlbConfig { entries: 4, ways: 2, ..IotlbConfig::default() });
        iommu.create_context(7);
        for &(op, page, perm_bits) in &ops {
            let vp = VirtPage::new(page);
            match op {
                0 => {
                    let _ = iommu.map(7, vp, PhysFrame::new(50 + page), perms_of(perm_bits), false);
                }
                1 => {
                    let _ = iommu.unmap(7, vp);
                }
                2 => {
                    let _ = iommu.protect(7, vp, perms_of(perm_bits));
                }
                _ => {
                    let access = if perm_bits & 2 != 0 { Access::Write } else { Access::Read };
                    let result = iommu.translate(7, vp.base(), access);
                    let authoritative = iommu
                        .table(7)
                        .unwrap()
                        .entry(vp)
                        .filter(|e| e.perms.allows(access.required_perms()))
                        .copied();
                    match (result, authoritative) {
                        (Ok(pa), Some(e)) => prop_assert_eq!(pa, e.frame.base()),
                        (Err(_), None) => {}
                        (got, want) => prop_assert!(
                            false,
                            "IOTLB and table disagree on page {}: {:?} vs {:?}",
                            page, got, want
                        ),
                    }
                }
            }
        }
    }
}
