//! A tiny wall-clock benchmark timer.
//!
//! Replaces the criterion harness for this repository's bench targets:
//! run a closure `warmup` times untimed, then `iters` timed iterations,
//! and report min/p10/median/p90/max/mean in nanoseconds. Reports
//! serialize to a stable single-line JSON shape so runs can be diffed
//! or collected by scripts:
//!
//! ```json
//! {"name":"E7_bus_sweep","iters":15,"median_ns":1234.0,...}
//! ```
//!
//! [`emit`] prints a `BENCH {json}` line per report; [`write_json`]
//! drops the whole run into `target/bench-json/BENCH_<target>.json`.

use std::path::PathBuf;
use std::time::Instant;

/// How long to run a benchmark.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Untimed iterations before measurement.
    pub warmup: u32,
    /// Timed iterations.
    pub iters: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { warmup: 3, iters: 15 }
    }
}

impl BenchConfig {
    /// A config with `iters` timed iterations and a proportional warmup.
    pub fn iters(iters: u32) -> Self {
        BenchConfig { warmup: (iters / 5).max(1), iters }
    }
}

/// Summary statistics for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Benchmark identifier.
    pub name: String,
    /// Timed iterations.
    pub iters: u32,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// 10th percentile, nanoseconds.
    pub p10_ns: f64,
    /// Median, nanoseconds.
    pub median_ns: f64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: f64,
    /// Slowest iteration, nanoseconds.
    pub max_ns: f64,
    /// Arithmetic mean, nanoseconds.
    pub mean_ns: f64,
}

impl BenchReport {
    /// Stable single-line JSON (keys in declaration order).
    pub fn json(&self) -> String {
        format!(
            "{{\"name\":{:?},\"iters\":{},\"min_ns\":{:.1},\"p10_ns\":{:.1},\
             \"median_ns\":{:.1},\"p90_ns\":{:.1},\"max_ns\":{:.1},\"mean_ns\":{:.1}}}",
            self.name,
            self.iters,
            self.min_ns,
            self.p10_ns,
            self.median_ns,
            self.p90_ns,
            self.max_ns,
            self.mean_ns
        )
    }
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted_ns: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted_ns.is_empty());
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx]
}

/// Times `f`: `cfg.warmup` untimed runs, then `cfg.iters` timed runs.
/// Use [`std::hint::black_box`] inside `f` to keep results alive.
pub fn bench<R>(name: &str, cfg: BenchConfig, mut f: impl FnMut() -> R) -> BenchReport {
    assert!(cfg.iters > 0, "at least one timed iteration");
    for _ in 0..cfg.warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<f64> = (0..cfg.iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    BenchReport {
        name: name.to_string(),
        iters: cfg.iters,
        min_ns: samples[0],
        p10_ns: percentile(&samples, 0.10),
        median_ns: percentile(&samples, 0.50),
        p90_ns: percentile(&samples, 0.90),
        max_ns: samples[samples.len() - 1],
        mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
    }
}

/// Prints the `BENCH {json}` line for a report (stdout, one line).
pub fn emit(report: &BenchReport) {
    println!("BENCH {}", report.json());
}

/// The workspace root (nearest ancestor with a `Cargo.lock`), so bench
/// JSON lands in the shared `target/` no matter the binary's cwd —
/// `cargo bench` runs bench binaries from the *package* directory.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    cwd.ancestors().find(|d| d.join("Cargo.lock").is_file()).map(PathBuf::from).unwrap_or(cwd)
}

/// Writes all reports of a bench target to
/// `<workspace>/target/bench-json/BENCH_<target>.json` and returns the
/// path.
pub fn write_json(target: &str, reports: &[BenchReport]) -> std::io::Result<PathBuf> {
    let dir = workspace_root().join("target").join("bench-json");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{target}.json"));
    let body: Vec<String> = reports.iter().map(|r| format!("  {}", r.json())).collect();
    std::fs::write(&path, format!("[\n{}\n]\n", body.join(",\n")))?;
    Ok(path)
}

/// One named benchmark closure, as [`run_target`] consumes them.
pub type NamedBench<'a> = (&'a str, Box<dyn FnMut()>);

/// Standard prologue for a harness-free bench binary: times each
/// `(name, closure)` pair, emits `BENCH` lines, writes the JSON file.
/// Ignores argv (cargo passes `--bench` and filter args).
pub fn run_target(target: &str, cfg: BenchConfig, benches: Vec<NamedBench<'_>>) {
    let mut reports = Vec::new();
    for (name, mut f) in benches {
        let report = bench(name, cfg, &mut f);
        emit(&report);
        reports.push(report);
    }
    match write_json(target, &reports) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench JSON for {target}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_orders_statistics() {
        let r = bench("spin", BenchConfig { warmup: 1, iters: 25 }, || {
            std::hint::black_box((0..500u64).sum::<u64>())
        });
        assert_eq!(r.iters, 25);
        assert!(r.min_ns <= r.p10_ns);
        assert!(r.p10_ns <= r.median_ns);
        assert!(r.median_ns <= r.p90_ns);
        assert!(r.p90_ns <= r.max_ns);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
        assert!(r.min_ns >= 0.0);
    }

    #[test]
    fn json_shape_is_stable() {
        let r = BenchReport {
            name: "x".into(),
            iters: 3,
            min_ns: 1.0,
            p10_ns: 1.0,
            median_ns: 2.0,
            p90_ns: 3.0,
            max_ns: 3.0,
            mean_ns: 2.0,
        };
        assert_eq!(
            r.json(),
            "{\"name\":\"x\",\"iters\":3,\"min_ns\":1.0,\"p10_ns\":1.0,\
             \"median_ns\":2.0,\"p90_ns\":3.0,\"max_ns\":3.0,\"mean_ns\":2.0}"
        );
    }

    #[test]
    fn write_json_creates_the_file() {
        let r = bench("t", BenchConfig { warmup: 0, iters: 2 }, || 1 + 1);
        let path = write_json("selftest", &[r]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(text.contains("\"name\":\"t\""));
    }
}
