//! A minimal property-testing harness.
//!
//! Just enough of the proptest idea for this repository's suites:
//! composable [`Strategy`] values generate random inputs from a
//! [`TestRng`], the [`check_with`] runner drives a fixed number of
//! cases, and on failure a greedy shrinker minimizes the input before
//! panicking with the seed that replays the run.
//!
//! Replay: every failure message prints `UDMA_PROP_SEED=<n>`; setting
//! that variable reruns the exact same case sequence. `UDMA_PROP_CASES`
//! overrides the case count globally (useful for quick smoke runs or
//! overnight soaks).
//!
//! Shrinking is value-based and greedy: integers walk toward the low
//! end of their range, vectors drop chunks and then shrink elements in
//! place. Mapped strategies ([`Strategy::prop_map`]) do not shrink
//! through the map — the vector/tuple layers above them still do, which
//! in practice is what makes counterexamples readable.

use crate::rng::TestRng;
use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

/// Default number of cases per property (proptest's historical default).
pub const DEFAULT_CASES: u32 = 256;

/// Why a single case failed.
#[derive(Clone, Debug)]
pub struct CaseFailure {
    /// Human-readable assertion message.
    pub message: String,
}

impl CaseFailure {
    /// Creates a failure with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        CaseFailure { message: message.into() }
    }
}

/// The result of running one case of a property.
pub type CaseResult = Result<(), CaseFailure>;

/// A generator of random values with an optional shrinker.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. Candidates
    /// need not be regenerable by the strategy; they must only be valid
    /// inputs to the property.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f` (no shrinking through the map).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Clone + Debug,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies with the
    /// same value type can be combined (see [`OneOf`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }
}

/// Object-safe mirror of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
    fn shrink_dyn(&self, value: &V) -> Vec<V>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// A type-erased strategy ([`Strategy::boxed`]).
pub struct BoxedStrategy<V> {
    inner: Rc<dyn DynStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Rc::clone(&self.inner) }
    }
}

impl<V: Clone + Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        self.inner.shrink_dyn(value)
    }
}

/// Always yields a clone of the given value; never shrinks.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Integer ranges are strategies: `0u64..8` generates uniformly and
/// shrinks toward the range start.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, v) = (self.start, *value);
                if v <= lo {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = lo + (v - lo) / 2;
                if mid != lo {
                    out.push(mid);
                }
                if v - 1 != mid {
                    out.push(v - 1);
                }
                out
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Full-range strategy behind [`any`]: uniform bits, shrinking toward
/// zero by halving.
#[derive(Clone, Debug, Default)]
pub struct AnyInt<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2];
                out.push(v - 1);
                out.dedup();
                out
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64);

/// `any::<bool>()`: fair coin, `true` shrinks to `false`.
#[derive(Clone, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        self::bool_from_bit(rng)
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

fn bool_from_bit(rng: &mut TestRng) -> bool {
    rng.next_u64() & 1 == 1
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyInt::default()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64);

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> Self::Strategy {
        AnyBool
    }
}

/// The full domain of `T`: `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// [`Strategy::prop_map`]'s output.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies with the same value type
/// (build with the [`one_of!`](crate::one_of) macro). Shrink candidates
/// are the union of every branch's candidates.
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Creates a choice among the given (non-empty) options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "one_of! needs at least one option");
        OneOf { options }
    }
}

impl<V> Clone for OneOf<V> {
    fn clone(&self) -> Self {
        OneOf { options: self.options.clone() }
    }
}

impl<V: Clone + Debug + 'static> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_index(self.options.len());
        self.options[idx].generate(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        self.options.iter().flat_map(|o| o.shrink(value)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Vectors of `elem`-generated values with length drawn from `len`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec length range is empty");
    VecStrategy { elem, len }
}

/// [`vec`]'s output: generates `Vec<S::Value>`, shrinks by dropping
/// chunks/elements (never below the minimum length) and then by
/// shrinking elements in place.
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let min = self.len.start;
        let n = value.len();
        // 1. Structural: drop the front half, the back half, then each
        //    element individually — biggest cuts first, so the greedy
        //    loop converges in O(log n) rounds on size.
        if n > min {
            let half = (n / 2).max(min);
            if half < n {
                out.push(value[n - half..].to_vec());
                out.push(value[..half].to_vec());
            }
            if n > min {
                for i in 0..n {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
        }
        // 2. Element-wise: one shrunk element at a time.
        for (i, item) in value.iter().enumerate() {
            for cand in self.elem.shrink(item) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Cases to run before declaring the property passed.
    pub cases: u32,
    /// Cap on candidate evaluations during shrinking.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: DEFAULT_CASES, max_shrink_steps: 4096 }
    }
}

/// FNV-1a over the property name: a stable per-property default seed,
/// so runs are reproducible without any environment setup.
fn default_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => panic!("{key}={raw:?} is not a u64"),
    }
}

/// Runs `test` against [`Config::default`] (see [`check_with`]).
pub fn check<S: Strategy>(name: &str, strategy: S, test: impl Fn(&S::Value) -> CaseResult) {
    check_with(Config::default(), name, strategy, test);
}

/// Runs `test` over `cfg.cases` generated inputs; on failure, shrinks
/// greedily and panics with the minimal input and the replay seed.
///
/// Environment overrides: `UDMA_PROP_SEED` pins the seed (replay),
/// `UDMA_PROP_CASES` overrides the case count.
pub fn check_with<S: Strategy>(
    cfg: Config,
    name: &str,
    strategy: S,
    test: impl Fn(&S::Value) -> CaseResult,
) {
    let seed = env_u64("UDMA_PROP_SEED").unwrap_or_else(|| default_seed(name));
    let cases = env_u64("UDMA_PROP_CASES").map_or(cfg.cases, |c| c as u32);
    let mut rng = TestRng::seed_from_u64(seed);
    for case in 0..cases {
        let value = strategy.generate(&mut rng);
        if let Err(failure) = test(&value) {
            let (min_value, min_failure, steps) =
                shrink_failure(&strategy, value, failure, &test, cfg.max_shrink_steps);
            panic!(
                "property `{name}` failed at case {case}/{cases} (seed {seed})\n\
                 replay with: UDMA_PROP_SEED={seed}\n\
                 minimal input (after {steps} shrink steps): {min_value:#?}\n\
                 failure: {}",
                min_failure.message
            );
        }
    }
}

/// Greedy shrink: repeatedly adopt the first candidate that still
/// fails, until no candidate fails or the step budget runs out.
fn shrink_failure<S: Strategy>(
    strategy: &S,
    mut current: S::Value,
    mut failure: CaseFailure,
    test: &impl Fn(&S::Value) -> CaseResult,
    max_steps: u32,
) -> (S::Value, CaseFailure, u32) {
    let mut steps = 0;
    'outer: loop {
        for cand in strategy.shrink(&current) {
            if steps >= max_steps {
                break 'outer;
            }
            steps += 1;
            if let Err(f) = test(&cand) {
                current = cand;
                failure = f;
                continue 'outer;
            }
        }
        break;
    }
    (current, failure, steps)
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::CaseFailure::new(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::CaseFailure::new(format!(
                "{} ({}:{})",
                format_args!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    l,
                    r,
                    format_args!($($fmt)+)
                );
            }
        }
    };
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    l,
                    r,
                    format_args!($($fmt)+)
                );
            }
        }
    };
}

/// Uniform choice among strategies that share a value type:
/// `one_of![Just(A), (0u64..4).prop_map(f)]`.
#[macro_export]
macro_rules! one_of {
    ($($strat:expr),+ $(,)?) => {
        $crate::prop::OneOf::new(vec![$($crate::prop::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs; use
/// `prop_assert!`-family macros inside the body. An optional leading
/// `config(cases = N);` sets the case count for every property in the
/// block.
///
/// ```
/// udma_testkit::props! {
///     config(cases = 64);
///
///     /// Addition commutes.
///     fn add_commutes(a in 0u64..1000, b in 0u64..1000) {
///         udma_testkit::prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! props {
    (config(cases = $cases:expr); $($rest:tt)*) => {
        $crate::__props_impl! { $cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__props_impl! { $crate::prop::DEFAULT_CASES; $($rest)* }
    };
}

/// Implementation detail of [`props!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __props_impl {
    ($cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let __strategy = ($($strat,)+);
            $crate::prop::check_with(
                $crate::prop::Config { cases: $cases, ..::std::default::Default::default() },
                concat!(module_path!(), "::", stringify!($name)),
                __strategy,
                |__case| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(__case);
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategy_generates_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = 5u64..10;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn range_shrink_moves_toward_start() {
        let s = 5u64..100;
        for cand in s.shrink(&40) {
            assert!((5..40).contains(&cand), "candidate {cand} not smaller");
        }
        assert!(s.shrink(&5).is_empty());
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let s = vec(0u64..10, 2..8);
        let value = s.generate(&mut TestRng::seed_from_u64(2));
        for cand in s.shrink(&value) {
            assert!(cand.len() >= 2, "shrunk below min length: {cand:?}");
        }
    }

    #[test]
    fn one_of_only_yields_options() {
        let s = crate::one_of![Just(1u64), Just(5u64), Just(9u64)];
        let mut rng = TestRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen, [1u64, 5, 9].into_iter().collect());
    }

    #[test]
    fn tuple_shrink_changes_one_component() {
        let s = (0u64..10, 0u64..10);
        let cands = s.shrink(&(4, 6));
        assert!(!cands.is_empty());
        for (a, b) in cands {
            assert!((a == 4) ^ (b == 6) || (a < 4 && b == 6) || (a == 4 && b < 6));
        }
    }

    #[test]
    fn check_passes_a_tautology() {
        check("tautology", 0u64..100, |&v| {
            prop_assert!(v < 100);
            Ok(())
        });
    }

    #[test]
    fn failing_property_panics_with_seed_and_minimal_input() {
        let result = std::panic::catch_unwind(|| {
            check("find_big", crate::prop::vec(0u64..1000, 1..64), |v| {
                prop_assert!(!v.iter().any(|&x| x >= 10), "contains a big element");
                Ok(())
            });
        });
        let msg = *result.expect_err("property must fail").downcast::<String>().unwrap();
        assert!(msg.contains("UDMA_PROP_SEED="), "no replay seed in: {msg}");
        // Greedy shrinking must reach the canonical minimal
        // counterexample: a single element equal to 10.
        assert!(msg.contains("[\n    10,\n]") || msg.contains("[10]"), "not minimal: {msg}");
    }
}
