//! Bounded interleaving exploration.
//!
//! A schedule over `k` processes with static instruction counts
//! `lens = [n_0, …, n_{k-1}]` is a merge order: a sequence containing
//! each process index `i` exactly `n_i` times. The number of such
//! sequences is the multinomial coefficient `(Σn)! / Π(n_i!)`.
//!
//! [`explore`] runs a caller-supplied closure on every schedule while
//! the space fits the budget (exhaustive model checking), and falls
//! back to a seeded-random tail when it does not — so race searches
//! stay useful as process counts grow, and results are reproducible
//! from the printed seed either way.

use crate::rng::TestRng;

/// `(Σlens)! / Π(lens[i]!)`: how many merge orders exist. Saturates at
/// `u128::MAX` instead of overflowing.
pub fn interleaving_count(lens: &[usize]) -> u128 {
    let mut count: u128 = 1;
    let mut placed: u128 = 0;
    for &n in lens {
        for i in 1..=n as u128 {
            placed += 1;
            count = match count.checked_mul(placed) {
                Some(c) => c / i,
                None => return u128::MAX,
            };
        }
    }
    count
}

/// Lazily yields every merge order of sequences with the given lengths,
/// in lexicographic order. `lens = [2, 1]` yields `[0,0,1]`, `[0,1,0]`,
/// `[1,0,0]`.
pub fn interleavings(lens: &[usize]) -> Interleavings {
    let mut current: Vec<usize> = Vec::with_capacity(lens.iter().sum());
    for (i, &n) in lens.iter().enumerate() {
        current.extend(std::iter::repeat_n(i, n));
    }
    Interleavings { current: Some(current) }
}

/// Iterator returned by [`interleavings`].
#[derive(Clone, Debug)]
pub struct Interleavings {
    current: Option<Vec<usize>>,
}

impl Iterator for Interleavings {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let out = self.current.clone()?;
        // Next multiset permutation in lexicographic order; duplicates
        // are handled naturally, so each merge order appears once.
        let seq = self.current.as_mut().unwrap();
        let pivot = (0..seq.len().saturating_sub(1)).rev().find(|&i| seq[i] < seq[i + 1]);
        match pivot {
            Some(i) => {
                let j = (i + 1..seq.len()).rev().find(|&j| seq[j] > seq[i]).unwrap();
                seq.swap(i, j);
                seq[i + 1..].reverse();
            }
            None => self.current = None,
        }
        Some(out)
    }
}

/// Uniformly samples one merge order: repeatedly pick a process with
/// instructions remaining, weighted by how many it has left.
pub fn sample_interleaving(lens: &[usize], rng: &mut TestRng) -> Vec<usize> {
    let mut remaining = lens.to_vec();
    let mut left: usize = remaining.iter().sum();
    let mut schedule = Vec::with_capacity(left);
    while left > 0 {
        let mut pick = rng.gen_index(left);
        let chosen = remaining
            .iter()
            .position(|&r| {
                if pick < r {
                    true
                } else {
                    pick -= r;
                    false
                }
            })
            .expect("weights sum to `left`");
        remaining[chosen] -= 1;
        left -= 1;
        schedule.push(chosen);
    }
    schedule
}

/// How much work [`explore`] may do.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Run every schedule if the space has at most this many; otherwise
    /// switch to random sampling.
    pub exhaustive: u64,
    /// Schedules to sample when the space exceeds `exhaustive`.
    pub sampled: u64,
    /// Seed for the sampled tail (and for reproducing it).
    pub seed: u64,
}

impl Budget {
    /// An exhaustive-up-to-`n` budget with a sampled tail of the same
    /// size, seeded with `seed`.
    pub fn new(n: u64, seed: u64) -> Self {
        Budget { exhaustive: n, sampled: n, seed }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget { exhaustive: 20_000, sampled: 20_000, seed: 0 }
    }
}

/// What [`explore`] found.
#[derive(Clone, Debug)]
pub struct Exploration<R> {
    /// Schedules executed.
    pub schedules: u64,
    /// Whether every schedule in the space was executed.
    pub exhaustive: bool,
    /// `(schedule, detail)` for every schedule on which `run` returned
    /// `Some`.
    pub findings: Vec<(Vec<usize>, R)>,
}

impl<R> Exploration<R> {
    /// Whether no schedule produced a finding.
    pub fn safe(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs `run` on every schedule when the space fits
/// `budget.exhaustive`, else on `budget.sampled` seeded-random
/// schedules. `run` returns `Some(detail)` to report a finding.
pub fn explore<R>(
    lens: &[usize],
    budget: Budget,
    mut run: impl FnMut(&[usize]) -> Option<R>,
) -> Exploration<R> {
    let space = interleaving_count(lens);
    let mut out = Exploration { schedules: 0, exhaustive: false, findings: Vec::new() };
    if space <= budget.exhaustive as u128 {
        out.exhaustive = true;
        for schedule in interleavings(lens) {
            out.schedules += 1;
            if let Some(detail) = run(&schedule) {
                out.findings.push((schedule, detail));
            }
        }
    } else {
        let mut rng = TestRng::seed_from_u64(budget.seed);
        for _ in 0..budget.sampled {
            let schedule = sample_interleaving(lens, &mut rng);
            out.schedules += 1;
            if let Some(detail) = run(&schedule) {
                out.findings.push((schedule, detail));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_multinomials() {
        assert_eq!(interleaving_count(&[]), 1);
        assert_eq!(interleaving_count(&[4]), 1);
        assert_eq!(interleaving_count(&[2, 1]), 3);
        assert_eq!(interleaving_count(&[3, 3]), 20);
        assert_eq!(interleaving_count(&[5, 5]), 252);
        assert_eq!(interleaving_count(&[2, 2, 2]), 90);
    }

    #[test]
    fn enumeration_is_complete_and_duplicate_free() {
        let all: Vec<_> = interleavings(&[3, 3]).collect();
        assert_eq!(all.len(), 20);
        let unique: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(unique.len(), 20);
        for s in &all {
            assert_eq!(s.iter().filter(|&&p| p == 0).count(), 3);
            assert_eq!(s.iter().filter(|&&p| p == 1).count(), 3);
        }
    }

    #[test]
    fn enumeration_handles_empty_and_single() {
        assert_eq!(interleavings(&[]).collect::<Vec<_>>(), vec![Vec::<usize>::new()]);
        assert_eq!(interleavings(&[0, 2]).collect::<Vec<_>>(), vec![vec![1, 1]]);
    }

    #[test]
    fn samples_are_valid_merge_orders() {
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..100 {
            let s = sample_interleaving(&[2, 3, 1], &mut rng);
            assert_eq!(s.len(), 6);
            assert_eq!(s.iter().filter(|&&p| p == 0).count(), 2);
            assert_eq!(s.iter().filter(|&&p| p == 1).count(), 3);
            assert_eq!(s.iter().filter(|&&p| p == 2).count(), 1);
        }
    }

    #[test]
    fn explore_is_exhaustive_within_budget() {
        let report = explore(&[3, 3], Budget::new(100, 0), |s| {
            (s[0] == 1).then_some(()) // process 1 goes first
        });
        assert!(report.exhaustive);
        assert_eq!(report.schedules, 20);
        // Exactly C(5,3) = 10 schedules start with process 1.
        assert_eq!(report.findings.len(), 10);
    }

    #[test]
    fn explore_samples_when_space_exceeds_budget() {
        let a = explore(&[6, 6, 6], Budget::new(50, 9), |s| Some(s[0]));
        let b = explore(&[6, 6, 6], Budget::new(50, 9), |s| Some(s[0]));
        assert!(!a.exhaustive);
        assert_eq!(a.schedules, 50);
        assert_eq!(a.findings, b.findings, "sampled tail must be seed-deterministic");
    }
}
