//! `udma-testkit` — the in-tree deterministic test and bench kit.
//!
//! The workspace builds with **zero crates.io dependencies** so that
//! `cargo build --offline && cargo test --offline` works on an
//! air-gapped machine. Everything the suites used to pull from `rand`,
//! `proptest` and `criterion` lives here instead, stripped down to the
//! exact surface this repository needs:
//!
//! - [`rng`]: a seedable xoshiro256** PRNG (SplitMix64-expanded seed)
//!   with `gen_range`/`gen_bool`/`gen_f64`, for the randomized
//!   schedulers and attack searches.
//! - [`prop`]: a minimal property-testing harness — strategies for
//!   integers, ranges, one-of, tuples and vectors, a fixed case count,
//!   greedy integer/vector shrinking, and a printed seed that replays a
//!   failure via `UDMA_PROP_SEED`.
//! - [`sched`]: a bounded interleaving explorer — exhaustive merge-order
//!   enumeration up to a schedule budget, then a seeded-random tail —
//!   backing the E3–E6 race and attack explorations.
//! - [`bench`]: a warmup+iterations wall-clock timer with
//!   median/p10/p90 JSON output, so the bench targets are plain
//!   harness-free binaries that emit `BENCH_*.json`-shaped records.
//!
//! Determinism is the design rule throughout: every random decision
//! flows from an explicit `u64` seed, and every failure report prints
//! the seed that reproduces it.

#![forbid(unsafe_code)]

pub mod bench;
pub mod prop;
pub mod rng;
pub mod sched;

pub use rng::TestRng;
