//! Seedable, portable PRNG: xoshiro256** with a SplitMix64 seed
//! expander — the standard pairing recommended by the xoshiro authors.
//!
//! Not cryptographic. The point is *determinism*: the same seed yields
//! the same stream on every platform and every run, so a failing
//! randomized test is always replayable from its printed seed.

use std::ops::Range;

/// Advances a SplitMix64 state and returns the next output. Used to
/// expand a 64-bit seed into the 256-bit xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro's state must not be all zero; splitmix64 cannot
        // produce four zero outputs in a row, so this is unreachable,
        // but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        TestRng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_f64() < p
    }

    /// Uniform over a non-empty half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform index into a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.gen_range(0..len)
    }

    /// Uniform in `[0, span)` without modulo bias (rejection sampling).
    fn uniform_below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Accept v in [0, zone]; zone + 1 is the largest multiple of
        // `span` that fits in 2^64, so `v % span` is exactly uniform.
        let rem = (u64::MAX % span).wrapping_add(1) % span;
        let zone = u64::MAX - rem;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    /// Derives an independent child generator (splits the stream).
    pub fn fork(&mut self) -> TestRng {
        TestRng::seed_from_u64(self.next_u64())
    }
}

/// Types [`TestRng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from a non-empty half-open range.
    fn sample(rng: &mut TestRng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut TestRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + rng.uniform_below(span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut TestRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                range.start.wrapping_add(rng.uniform_below(span) as $t)
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(17u64..29);
            assert!((17..29).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
            let i = rng.gen_index(3);
            assert!(i < 3);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = TestRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "8-value range not covered in 1000 draws");
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = TestRng::seed_from_u64(6);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = TestRng::seed_from_u64(8);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(a, b);
    }
}
