//! Self-tests exercising the testkit's *public* surface the way the
//! workspace's suites consume it: the `props!` macro, seed replay via
//! `UDMA_PROP_SEED`, and the interleaving explorer on the canonical
//! two-thread/three-step toy space.

use udma_testkit::prop::{any, check_with, vec, Config, Just};
use udma_testkit::sched::{explore, interleaving_count, interleavings, Budget};
use udma_testkit::{one_of, prop_assert, prop_assert_eq, props, TestRng};

props! {
    config(cases = 64);

    /// The macro wires strategies, shrinking and assertions together.
    fn macro_roundtrip(
        x in 0u64..100,
        flag in any::<bool>(),
        tag in one_of![Just("a"), Just("b")],
        xs in vec(0u32..10, 0..8),
    ) {
        prop_assert!(x < 100);
        prop_assert!(tag == "a" || tag == "b");
        prop_assert!(xs.len() < 8);
        prop_assert_eq!(u8::from(flag), flag as u8);
    }
}

#[test]
fn same_seed_same_verdict_and_prng_stream() {
    let mut a = TestRng::seed_from_u64(99);
    let mut b = TestRng::seed_from_u64(99);
    for _ in 0..1000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    // Different seeds diverge immediately (with overwhelming probability
    // for a full-period generator; pinned here, so deterministic).
    let mut c = TestRng::seed_from_u64(100);
    assert_ne!(a.next_u64(), c.next_u64());
}

#[test]
fn failing_property_reports_a_replayable_seed() {
    let err = std::panic::catch_unwind(|| {
        check_with(Config { cases: 64, ..Config::default() }, "selftest_fail", 0u64..1000, |v| {
            if *v >= 17 {
                Err(udma_testkit::prop::CaseFailure::new("too big"))
            } else {
                Ok(())
            }
        })
    })
    .expect_err("property must fail");
    let msg = err.downcast_ref::<String>().expect("panic carries a message");
    assert!(msg.contains("UDMA_PROP_SEED="), "no replay seed in: {msg}");
    // Greedy shrinking must land on the boundary value.
    assert!(msg.contains("17"), "not shrunk to minimal input: {msg}");
}

/// The explorer covers the classic toy space — two threads of three
/// steps each — exhaustively: C(6,3) = 20 schedules, every one a valid
/// merge, no duplicates, and a property evaluated on each.
#[test]
fn two_thread_three_step_toy_space_is_fully_explored() {
    let lens = [3usize, 3];
    assert_eq!(interleaving_count(&lens), 20);

    let all: Vec<Vec<usize>> = interleavings(&lens).collect();
    assert_eq!(all.len(), 20);
    let unique: std::collections::HashSet<_> = all.iter().cloned().collect();
    assert_eq!(unique.len(), 20, "duplicate schedules");
    for sched in &all {
        assert_eq!(sched.iter().filter(|&&t| t == 0).count(), 3);
        assert_eq!(sched.iter().filter(|&&t| t == 1).count(), 3);
    }

    // explore() visits the whole space within budget and reports every
    // schedule in which thread 1 finishes before thread 0 starts.
    let report =
        explore(
            &lens,
            Budget::new(100, 0),
            |sched| {
                if sched[..3] == [1, 1, 1] {
                    Some(())
                } else {
                    None
                }
            },
        );
    assert!(report.exhaustive);
    assert_eq!(report.schedules, 20);
    // Thread 1 running first fixes its 3 slots; the rest is thread 0's
    // single arrangement.
    assert_eq!(report.findings.len(), 1);
    assert!(!report.safe());
}

#[test]
fn explorer_sampling_beyond_budget_is_seed_deterministic() {
    let lens = [4usize, 4, 4];
    let run = |seed| {
        let budget = Budget { exhaustive: 10, sampled: 50, seed };
        let mut seen = Vec::new();
        let report = explore(&lens, budget, |sched| {
            seen.push(sched.to_vec());
            None::<()>
        });
        assert!(!report.exhaustive);
        seen
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

/// The exhaustive→sampled decision flips exactly at the budget
/// boundary: a space of 20 schedules is enumerated when
/// `exhaustive == 20` and sampled when `exhaustive == 19`.
#[test]
fn explorer_switches_to_sampling_exactly_at_the_budget_boundary() {
    let lens = [3usize, 3];
    assert_eq!(interleaving_count(&lens), 20);

    let at = explore(&lens, Budget { exhaustive: 20, sampled: 5, seed: 0 }, |_| None::<()>);
    assert!(at.exhaustive, "space == budget must still be exhaustive");
    assert_eq!(at.schedules, 20);

    let below = explore(&lens, Budget { exhaustive: 19, sampled: 5, seed: 0 }, |_| None::<()>);
    assert!(!below.exhaustive, "space one over budget must sample");
    assert_eq!(below.schedules, 5);
}
