//! Context and key grants (§3.1).

use std::collections::HashMap;
use udma_cpu::Pid;

/// What a process receives when the kernel grants it user-level DMA
/// rights: a register context and the 61-bit key that authorises writes
/// into it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtxGrant {
    /// The register-context index.
    pub ctx: u32,
    /// The key ("given to the user process by the operating system.
    /// Possession of the key implies that the user process is allowed to
    /// write to this register context").
    pub key: u64,
}

/// Allocates register contexts to processes and mints their keys.
///
/// Key generation is a deterministic splitmix64 stream seeded at kernel
/// construction — deterministic so experiments replay exactly, yet with
/// the full key width so the guessing analysis (E10) is meaningful.
#[derive(Clone, Debug)]
pub struct KeyRegistry {
    free: Vec<u32>,
    grants: HashMap<Pid, CtxGrant>,
    state: u64,
    key_bits: u32,
}

impl KeyRegistry {
    /// Creates a registry over `num_contexts` contexts with keys of
    /// `key_bits` significant bits (61 in the paper's 64-bit layout;
    /// tests shrink it to make guessing attacks tractable).
    ///
    /// # Panics
    ///
    /// Panics if `key_bits` is 0 or exceeds 61, or if `num_contexts`
    /// exceeds the NI's [`udma_nic::regs::MAX_CONTEXTS`] — the register
    /// map is the one source of truth for the context count, so the
    /// OS-side allocator cannot assume contexts the hardware lacks.
    pub fn new(num_contexts: u32, seed: u64, key_bits: u32) -> Self {
        assert!((1..=61).contains(&key_bits), "key width out of range");
        assert!(
            num_contexts <= udma_nic::regs::MAX_CONTEXTS,
            "context count out of range (NI supports at most {})",
            udma_nic::regs::MAX_CONTEXTS
        );
        KeyRegistry {
            free: (0..num_contexts).rev().collect(),
            grants: HashMap::new(),
            state: seed,
            key_bits,
        }
    }

    fn next_key(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let key = z & ((1u64 << self.key_bits) - 1);
        // Key 0 is reserved (unprogrammed context slots read 0).
        if key == 0 {
            1
        } else {
            key
        }
    }

    /// Grants a context to `pid`, or returns `None` when all contexts
    /// are taken — "if more processes would like to start DMA
    /// operations, the rest will have to go through the kernel" (§3.2).
    pub fn grant(&mut self, pid: Pid) -> Option<CtxGrant> {
        if let Some(&g) = self.grants.get(&pid) {
            return Some(g);
        }
        let ctx = self.free.pop()?;
        let grant = CtxGrant { ctx, key: self.next_key() };
        self.grants.insert(pid, grant);
        Some(grant)
    }

    /// The grant held by `pid`, if any.
    pub fn grant_of(&self, pid: Pid) -> Option<CtxGrant> {
        self.grants.get(&pid).copied()
    }

    /// Releases `pid`'s context back to the pool (process exit).
    pub fn revoke(&mut self, pid: Pid) {
        if let Some(g) = self.grants.remove(&pid) {
            self.free.push(g.ctx);
        }
    }

    /// Contexts still available.
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_distinct_contexts_and_keys() {
        let mut r = KeyRegistry::new(4, 42, 61);
        let a = r.grant(Pid::new(0)).unwrap();
        let b = r.grant(Pid::new(1)).unwrap();
        assert_ne!(a.ctx, b.ctx);
        assert_ne!(a.key, b.key);
        assert_eq!(r.available(), 2);
    }

    #[test]
    fn regrant_is_idempotent() {
        let mut r = KeyRegistry::new(4, 42, 61);
        let a = r.grant(Pid::new(0)).unwrap();
        let again = r.grant(Pid::new(0)).unwrap();
        assert_eq!(a, again);
        assert_eq!(r.available(), 3);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut r = KeyRegistry::new(2, 42, 61);
        assert!(r.grant(Pid::new(0)).is_some());
        assert!(r.grant(Pid::new(1)).is_some());
        assert!(r.grant(Pid::new(2)).is_none());
    }

    #[test]
    fn revoke_recycles() {
        let mut r = KeyRegistry::new(1, 42, 61);
        let a = r.grant(Pid::new(0)).unwrap();
        r.revoke(Pid::new(0));
        assert_eq!(r.grant_of(Pid::new(0)), None);
        let b = r.grant(Pid::new(1)).unwrap();
        assert_eq!(a.ctx, b.ctx);
        assert_ne!(a.key, b.key, "recycled context gets a fresh key");
    }

    #[test]
    fn keys_are_deterministic_per_seed_and_never_zero() {
        let keys = |seed| {
            let mut r = KeyRegistry::new(8, seed, 8);
            (0..8).map(|i| r.grant(Pid::new(i)).unwrap().key).collect::<Vec<_>>()
        };
        assert_eq!(keys(7), keys(7));
        assert_ne!(keys(7), keys(8));
        for k in keys(7) {
            assert_ne!(k, 0);
            assert!(k < 256);
        }
    }

    #[test]
    #[should_panic(expected = "key width")]
    fn bad_key_width_panics() {
        let _ = KeyRegistry::new(1, 0, 62);
    }
}
