//! The *remote* node's half of the cross-link fault protocol.
//!
//! When a virtual-address transfer targets another workstation, the
//! receiving NI translates the destination VA on its own IOMMU; a miss is
//! NACKed back to the sender and queued on the node. This module is the
//! remote node's kernel: it owns the node's authoritative per-ASID CPU
//! page tables and swap ledger, and drains the NACK queue by delegating
//! to the same [`FaultService`] the local path uses — map-and-pin a
//! resident page, swap a paged-out one back in first, or declare the
//! fault unresolvable so the sender fails the transfer with `-1`.
//!
//! This mirrors the receive-side design of the Telegraphos follow-on
//! work (Psistakis 2017, 2019 — see PAPERS.md): the I/O page table lives
//! at the *destination*, so the sender never needs to know the remote
//! physical layout, and a remote page fault costs a link round trip plus
//! an ordinary fault service on the far side.

use crate::{
    FaultCosts, FaultResolution, FaultService, FaultServiceStats, MappedBuffer, VmManager,
};
use std::collections::BTreeMap;
use udma_bus::SimTime;
use udma_iommu::{Asid, IoFault, Iommu};
use udma_mem::{MemFault, PageTable, Perms, PhysLayout, VirtAddr, VirtPage};

/// Why a remote swap-out was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteSwapRefused {
    /// The page is pinned in the node's IOMMU (a transfer relies on it).
    Pinned,
    /// The address space does not map the page.
    NotMapped,
}

/// One remote node's OS: authoritative page tables, VM, and the fault
/// service that answers NACKed I/O faults.
#[derive(Clone, Debug)]
pub struct RemoteFaultService {
    tables: BTreeMap<Asid, PageTable>,
    vm: VmManager,
    service: FaultService,
}

impl RemoteFaultService {
    /// Creates the node OS over `node_bytes` of node-local RAM.
    pub fn new(node_bytes: u64, costs: FaultCosts) -> Self {
        let layout = PhysLayout { ram_size: node_bytes, ..PhysLayout::default() };
        RemoteFaultService {
            tables: BTreeMap::new(),
            vm: VmManager::new(layout),
            service: FaultService::new(costs),
        }
    }

    /// Exposes a buffer of `pages` fresh node frames at `va` in address
    /// space `asid` — the remote process offering memory for incoming
    /// RDMA. Creates the address space on first use. No I/O translation
    /// is installed here; that happens on fault (demand) or via
    /// [`pin_into`](Self::pin_into) (registration).
    ///
    /// # Errors
    ///
    /// [`MemFault::AlreadyMapped`] if a page is taken,
    /// [`MemFault::BusError`] if the node is out of frames.
    pub fn expose(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        pages: u64,
        perms: Perms,
    ) -> Result<MappedBuffer, MemFault> {
        let pt = self.tables.entry(asid).or_default();
        self.vm.map_buffer(pt, va, pages, perms, crate::ShadowMode::None)
    }

    /// Pin-on-post registration of `[va, va + len)` into the node's
    /// IOMMU (the receive-side analogue of RDMA memory registration).
    ///
    /// # Errors
    ///
    /// [`MemFault::Unmapped`] at the first hole in the ASID's table.
    pub fn pin_into(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        len: u64,
        iommu: &mut Iommu,
    ) -> Result<u64, MemFault> {
        let pt = self.tables.get(&asid).ok_or(MemFault::Unmapped { va })?;
        crate::pin_range(asid, va, len, pt, iommu)
    }

    /// [`expose`](Self::expose) followed by
    /// [`pin_into`](Self::pin_into): offers the buffer *and* registers
    /// it with the node's IOMMU in one call — the receive side of a
    /// pin-on-post cluster, where no incoming chunk may ever NACK.
    /// Returns the mapping and the number of pages pinned.
    ///
    /// # Errors
    ///
    /// As for [`expose`](Self::expose); the pin step cannot fail on a
    /// buffer exposed in the same call.
    pub fn expose_pinned(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        pages: u64,
        perms: Perms,
        iommu: &mut Iommu,
    ) -> Result<(MappedBuffer, u64), MemFault> {
        let buf = self.expose(asid, va, pages, perms)?;
        let pinned = self.pin_into(asid, va, pages * udma_mem::PAGE_SIZE, iommu)?;
        Ok((buf, pinned))
    }

    /// Services one NACKed fault against the node's own tables,
    /// installing translations into the node's IOMMU. Returns the
    /// resolution and the service time (charged on top of the NACK round
    /// trip the sender already paid). An ASID the node never created is
    /// unresolvable.
    ///
    /// **Idempotent under retransmission.** A lossy link may deliver the
    /// same fault notification twice (the sender retransmits control
    /// traffic it cannot confirm). Servicing an already-serviced fault
    /// re-resolves to the same translation — it never remaps the page to
    /// a fresh frame, never double-charges a swap-in, and never flips a
    /// resolvable fault to unresolvable.
    pub fn service(&mut self, fault: &IoFault, iommu: &mut Iommu) -> (FaultResolution, SimTime) {
        match self.tables.get_mut(&fault.asid) {
            Some(pt) => self.service.service(fault, pt, &mut self.vm, iommu),
            None => (FaultResolution::Unresolvable, SimTime::ZERO),
        }
    }

    /// Services a NACKed fault **and** pre-installs the rest of the
    /// transfer's announced destination range in the same kernel entry
    /// (see [`FaultService::service_range`]) — the receive-side half of
    /// the translation pipeline. A multi-page transfer over a cold
    /// remote buffer then costs exactly one NACK round trip instead of
    /// one per page: the first fault hands the node's OS the whole
    /// range, and subsequent pages hit the node IOMMU's prewalked
    /// translations. Same idempotence guarantee as
    /// [`service`](Self::service).
    pub fn service_announced(
        &mut self,
        fault: &IoFault,
        va: VirtAddr,
        len: u64,
        iommu: &mut Iommu,
    ) -> (FaultResolution, SimTime) {
        match self.tables.get_mut(&fault.asid) {
            Some(pt) => self.service.service_range(fault, va, len, pt, &mut self.vm, iommu),
            None => (FaultResolution::Unresolvable, SimTime::ZERO),
        }
    }

    /// Swaps `page` of `asid` out of the node (and shoots the I/O
    /// translation down), unless a transfer has it pinned.
    ///
    /// # Errors
    ///
    /// [`RemoteSwapRefused::Pinned`] while the IOMMU holds a pin,
    /// [`RemoteSwapRefused::NotMapped`] if the ASID does not map it.
    pub fn swap_out(
        &mut self,
        asid: Asid,
        page: VirtPage,
        iommu: &mut Iommu,
    ) -> Result<(), RemoteSwapRefused> {
        if iommu.table(asid).and_then(|t| t.entry(page)).is_some_and(|e| e.pinned) {
            return Err(RemoteSwapRefused::Pinned);
        }
        let pt = self.tables.get_mut(&asid).ok_or(RemoteSwapRefused::NotMapped)?;
        self.vm.swap_out(asid, pt, page).map_err(|_| RemoteSwapRefused::NotMapped)?;
        let _ = iommu.unmap(asid, page);
        Ok(())
    }

    /// Whether `page` of `asid` is in the node's swap ledger.
    pub fn swapped_out(&self, asid: Asid, page: VirtPage) -> bool {
        self.vm.swapped_out(asid, page)
    }

    /// The node's authoritative page table for `asid`, if created.
    pub fn page_table(&self, asid: Asid) -> Option<&PageTable> {
        self.tables.get(&asid)
    }

    /// Fault-service counters of this node.
    pub fn stats(&self) -> FaultServiceStats {
        self.service.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udma_iommu::{IoFaultKind, IotlbConfig};
    use udma_mem::{Access, PAGE_SIZE};

    fn fault(asid: u32, va: u64) -> IoFault {
        IoFault { asid, va: VirtAddr::new(va), access: Access::Write, kind: IoFaultKind::Unmapped }
    }

    #[test]
    fn exposed_buffer_is_serviced_on_demand() {
        let mut os = RemoteFaultService::new(1 << 20, FaultCosts::default());
        let mut iommu = Iommu::new(IotlbConfig::default());
        iommu.create_context(7);
        os.expose(7, VirtAddr::new(0x4000), 2, Perms::READ_WRITE).unwrap();
        let (res, cost) = os.service(&fault(7, 0x4000), &mut iommu);
        assert_eq!(res, FaultResolution::Mapped);
        assert!(cost > SimTime::ZERO);
        assert!(iommu.translate(7, VirtAddr::new(0x4000), Access::Write).is_ok());
        // Installed pinned: the swapper must refuse while the pin holds.
        assert_eq!(
            os.swap_out(7, VirtAddr::new(0x4000).page(), &mut iommu),
            Err(RemoteSwapRefused::Pinned)
        );
        assert_eq!(os.stats().mapped, 1);
    }

    #[test]
    fn unknown_asid_and_foreign_va_are_unresolvable() {
        let mut os = RemoteFaultService::new(1 << 20, FaultCosts::default());
        let mut iommu = Iommu::new(IotlbConfig::default());
        iommu.create_context(7);
        // ASID never exposed anything: no table at all.
        assert_eq!(os.service(&fault(9, 0x4000), &mut iommu).0, FaultResolution::Unresolvable);
        // Known ASID, but a VA it does not map.
        os.expose(7, VirtAddr::new(0x4000), 1, Perms::READ_WRITE).unwrap();
        assert_eq!(os.service(&fault(7, 0x9000_0000), &mut iommu).0, FaultResolution::Unresolvable);
    }

    #[test]
    fn swap_out_and_fault_driven_swap_in() {
        let mut os = RemoteFaultService::new(1 << 20, FaultCosts::default());
        let mut iommu = Iommu::new(IotlbConfig::default());
        iommu.create_context(7);
        os.expose(7, VirtAddr::new(0x4000), 1, Perms::READ_WRITE).unwrap();
        let page = VirtAddr::new(0x4000).page();
        os.swap_out(7, page, &mut iommu).unwrap();
        assert!(os.swapped_out(7, page));
        // The next fault pages it back in (at swap-in cost) and pins it.
        let (res, cost) = os.service(&fault(7, 0x4000), &mut iommu);
        assert_eq!(res, FaultResolution::SwappedIn);
        assert!(cost >= FaultCosts::default().swap_in);
        assert!(!os.swapped_out(7, page));
        assert_eq!(os.swap_out(7, page, &mut iommu), Err(RemoteSwapRefused::Pinned));
        // Unpin, and the swapper may take it again.
        iommu.set_pinned(7, page, false).unwrap();
        assert_eq!(os.swap_out(7, page, &mut iommu), Ok(()));
    }

    #[test]
    fn retransmitted_fault_notification_is_serviced_idempotently() {
        let mut os = RemoteFaultService::new(1 << 20, FaultCosts::default());
        let mut iommu = Iommu::new(IotlbConfig::default());
        iommu.create_context(7);
        os.expose(7, VirtAddr::new(0x4000), 1, Perms::READ_WRITE).unwrap();
        // First delivery of the notification: maps and pins the page.
        let (first, _) = os.service(&fault(7, 0x4000), &mut iommu);
        assert_eq!(first, FaultResolution::Mapped);
        let frame = iommu.translate(7, VirtAddr::new(0x4000), Access::Write).unwrap();
        // The link duplicated the notification: the second service must
        // resolve identically, to the *same* frame, without a second
        // swap-in or a remap.
        let (second, _) = os.service(&fault(7, 0x4000), &mut iommu);
        assert!(matches!(second, FaultResolution::Mapped | FaultResolution::SwappedIn));
        assert_eq!(iommu.translate(7, VirtAddr::new(0x4000), Access::Write).unwrap(), frame);
        assert_eq!(os.stats().serviced, 2, "both deliveries are accounted");
        assert_eq!(os.stats().swapped_in, 0, "no phantom swap-in on the duplicate");
        assert!(!os.swapped_out(7, VirtAddr::new(0x4000).page()));
    }

    #[test]
    fn pin_into_registers_the_whole_buffer() {
        let mut os = RemoteFaultService::new(1 << 20, FaultCosts::default());
        let mut iommu = Iommu::new(IotlbConfig::default());
        iommu.create_context(7);
        os.expose(7, VirtAddr::new(0x4000), 2, Perms::READ_WRITE).unwrap();
        assert_eq!(os.pin_into(7, VirtAddr::new(0x4000), 2 * PAGE_SIZE, &mut iommu), Ok(2));
        assert!(iommu.translate(7, VirtAddr::new(0x4000 + PAGE_SIZE), Access::Write).is_ok());
        // Unknown ASID refuses.
        assert!(os.pin_into(9, VirtAddr::new(0x4000), 8, &mut iommu).is_err());
    }
}
