//! Fair arbitration of NI register contexts.
//!
//! The context cache ([`crate::CtxCache`]) multiplexes thousands of
//! processes onto "say 4 to 8" hardware contexts (§3.1). Without
//! admission control, one hostile or bursty tenant can acquire-steal in
//! a tight loop and evict every other process between each of their
//! posts — the NI equivalent of a TLB-thrashing attack. The arbiter
//! prevents that with two independent mechanisms:
//!
//! * **Per-process token buckets** — every *steal* (an acquisition that
//!   must evict another live process) spends one token; buckets refill
//!   at a fixed simulated-time rate. A well-paced process never notices;
//!   a tight steal loop drains its bucket and is throttled to the §3.2
//!   kernel fallback, which is slower *for the attacker only*.
//! * **Two QoS tiers** — [`QosClass::BestEffort`] processes may only
//!   steal contexts from other best-effort processes;
//!   [`QosClass::Guaranteed`] processes may steal from anyone (the
//!   victim policy still prefers best-effort victims). A hostile
//!   best-effort tenant therefore cannot evict a guaranteed tenant's
//!   context at all: the guaranteed tier's residency is only contended
//!   by its own tier.

use udma_bus::SimTime;

/// The service tier a logical process was admitted at.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Paying/system tier: may steal from either tier (preferring
    /// best-effort victims) and can never be evicted by best-effort.
    Guaranteed,
    /// Default tier: may only steal from other best-effort processes.
    #[default]
    BestEffort,
}

/// Arbiter tunables.
#[derive(Clone, Copy, Debug)]
pub struct ArbiterConfig {
    /// Master switch. Disabled, every steal is admitted and QoS tiers
    /// are ignored — the unprotected baseline E17's hostile-tenant
    /// scenario measures against.
    pub enabled: bool,
    /// Token-bucket capacity (burst allowance): steals a process may
    /// perform back-to-back before pacing kicks in.
    pub burst: u32,
    /// Simulated time to mint one token. A process that steals at most
    /// once per `refill` is never throttled.
    pub refill: SimTime,
    /// Contexts provisioned for the guaranteed tier: best-effort
    /// processes may never occupy more than `num_contexts − reserved`
    /// slots. Without this, a best-effort swarm that grabs every
    /// context *first* and keeps transfers in flight pins them all —
    /// busy contexts cannot be stolen — and starves the guaranteed tier
    /// before eviction protection ever applies. 0 (the default)
    /// reserves nothing; operators admitting guaranteed tenants size it
    /// to that tier. Ignored when the arbiter is disabled.
    pub reserved: u32,
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        // A context switch on the Alpha costs ~25 µs; allowing one
        // steal per 20 µs with a burst of 8 paces tenants to roughly
        // the machine's natural multiprogramming rate.
        ArbiterConfig { enabled: true, burst: 8, refill: SimTime::from_us(20), reserved: 0 }
    }
}

impl ArbiterConfig {
    /// The unprotected baseline: all steals admitted, tiers ignored.
    pub fn disabled() -> Self {
        ArbiterConfig { enabled: false, ..ArbiterConfig::default() }
    }
}

/// Arbiter counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Steals admitted (token spent).
    pub admitted: u64,
    /// Steals refused for an empty bucket (caller went to the kernel
    /// fallback).
    pub throttled: u64,
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: u32,
    last_refill: SimTime,
}

/// Token-bucket + QoS-tier admission control for context steals.
#[derive(Clone, Debug)]
pub struct FairArbiter {
    config: ArbiterConfig,
    buckets: Vec<Bucket>,
    classes: Vec<QosClass>,
    stats: ArbiterStats,
}

impl FairArbiter {
    /// Creates the arbiter; processes are added with [`register`](Self::register).
    pub fn new(config: ArbiterConfig) -> Self {
        FairArbiter {
            config,
            buckets: Vec::new(),
            classes: Vec::new(),
            stats: ArbiterStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> ArbiterConfig {
        self.config
    }

    /// Arbiter counters.
    pub fn stats(&self) -> ArbiterStats {
        self.stats
    }

    /// Registers the next logical process (index order = LPid order)
    /// with a full bucket.
    pub fn register(&mut self, class: QosClass, now: SimTime) {
        self.buckets.push(Bucket { tokens: self.config.burst, last_refill: now });
        self.classes.push(class);
    }

    /// The tier `p` was admitted at.
    pub fn class_of(&self, p: usize) -> QosClass {
        self.classes[p]
    }

    /// Whether a requester of tier `requester` may evict a context owned
    /// by tier `victim`. With the arbiter disabled anyone may evict
    /// anyone.
    pub fn may_evict(&self, requester: QosClass, victim: QosClass) -> bool {
        if !self.config.enabled {
            return true;
        }
        match (requester, victim) {
            (QosClass::Guaranteed, _) => true,
            (QosClass::BestEffort, QosClass::BestEffort) => true,
            (QosClass::BestEffort, QosClass::Guaranteed) => false,
        }
    }

    /// Charges one token for a steal by `p` at `now`. Returns `false`
    /// (and counts a throttle) when the bucket is empty — the caller
    /// must take the kernel fallback instead of evicting anyone.
    pub fn admit_steal(&mut self, p: usize, now: SimTime) -> bool {
        if !self.config.enabled {
            self.stats.admitted += 1;
            return true;
        }
        let b = &mut self.buckets[p];
        // Lazy refill: mint every token earned since the last refill,
        // advancing the refill clock by whole intervals so no fraction
        // of an interval is ever lost or double-counted.
        let interval = self.config.refill.as_ps().max(1);
        let earned = now.saturating_sub(b.last_refill).as_ps() / interval;
        if earned > 0 {
            b.tokens = (b.tokens as u64 + earned).min(self.config.burst as u64) as u32;
            b.last_refill = SimTime::from_ps(b.last_refill.as_ps() + earned * interval);
        }
        if b.tokens == 0 {
            self.stats.throttled += 1;
            return false;
        }
        b.tokens -= 1;
        self.stats.admitted += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle_then_refill() {
        let cfg =
            ArbiterConfig { enabled: true, burst: 2, refill: SimTime::from_us(10), reserved: 0 };
        let mut a = FairArbiter::new(cfg);
        a.register(QosClass::BestEffort, SimTime::ZERO);
        assert!(a.admit_steal(0, SimTime::ZERO));
        assert!(a.admit_steal(0, SimTime::ZERO));
        assert!(!a.admit_steal(0, SimTime::ZERO), "burst exhausted");
        assert_eq!(a.stats().throttled, 1);
        // One refill interval later a single token is back.
        let later = SimTime::from_us(10);
        assert!(a.admit_steal(0, later));
        assert!(!a.admit_steal(0, later));
    }

    #[test]
    fn refill_caps_at_burst() {
        let cfg =
            ArbiterConfig { enabled: true, burst: 3, refill: SimTime::from_us(1), reserved: 0 };
        let mut a = FairArbiter::new(cfg);
        a.register(QosClass::BestEffort, SimTime::ZERO);
        // A very long idle period mints at most `burst` tokens.
        let t = SimTime::from_us(1_000_000);
        for _ in 0..3 {
            assert!(a.admit_steal(0, t));
        }
        assert!(!a.admit_steal(0, t));
    }

    #[test]
    fn qos_eviction_matrix() {
        let mut a = FairArbiter::new(ArbiterConfig::default());
        a.register(QosClass::Guaranteed, SimTime::ZERO);
        assert!(a.may_evict(QosClass::Guaranteed, QosClass::BestEffort));
        assert!(a.may_evict(QosClass::Guaranteed, QosClass::Guaranteed));
        assert!(a.may_evict(QosClass::BestEffort, QosClass::BestEffort));
        assert!(!a.may_evict(QosClass::BestEffort, QosClass::Guaranteed));

        let off = FairArbiter::new(ArbiterConfig::disabled());
        assert!(off.may_evict(QosClass::BestEffort, QosClass::Guaranteed));
    }

    #[test]
    fn disabled_always_admits() {
        let mut a = FairArbiter::new(ArbiterConfig::disabled());
        a.register(QosClass::BestEffort, SimTime::ZERO);
        for _ in 0..100 {
            assert!(a.admit_steal(0, SimTime::ZERO));
        }
        assert_eq!(a.stats().throttled, 0);
    }
}
