//! The model operating system kernel.
//!
//! The paper's whole point is a property of this layer: its schemes work
//! with an **unmodified kernel**, where SHRIMP and FLASH require
//! context-switch-handler patches. The kernel here is therefore built
//! with a pluggable [`SwitchPolicy`]:
//!
//! * [`SwitchPolicy::Vanilla`] — the unmodified kernel every scheme in
//!   §3 must survive;
//! * [`SwitchPolicy::ShrimpAbort`] — "the operating system must
//!   invalidate any partially initiated user-level DMA transfer on every
//!   context switch" (§2.5);
//! * [`SwitchPolicy::FlashNotify`] — "the context switch handler informs
//!   the DMA engine about which process is currently running" (§2.6).
//!
//! Beyond that the kernel provides what Figure 1 needs: syscall entry
//! ([`Kernel`] implements [`udma_cpu::TrapHandler`]), software
//! translation with protection checks, the kernel-level DMA driver, the
//! kernel-path atomic driver, and the privileged setup services
//! ([`VmManager`] shadow mappings, [`KeyRegistry`] context/key grants).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod ctx_cache;
mod fault_service;
mod kernel;
mod keys;
mod remote_fault;
mod syscalls;
mod vm;

pub use arbiter::{ArbiterConfig, ArbiterStats, FairArbiter, QosClass};
pub use ctx_cache::{
    Acquired, CtxCache, CtxCacheConfig, CtxCacheStats, CtxVictimPolicy, LPid, SpillCosts,
};
pub use fault_service::{pin_range, FaultCosts, FaultResolution, FaultService, FaultServiceStats};
pub use kernel::{Kernel, KernelStats};
pub use keys::{CtxGrant, KeyRegistry};
pub use remote_fault::{RemoteFaultService, RemoteSwapRefused};
pub use syscalls::{Sys, SYS_ATOMIC, SYS_DMA, SYS_NOOP};
pub use vm::{MappedBuffer, ShadowMode, VmManager, CTX_PAGE_VA_BASE};

use std::fmt;

/// What the kernel's context-switch handler does (the axis the paper's
/// contribution lives on).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SwitchPolicy {
    /// Unmodified kernel: the handler touches no NIC state.
    Vanilla,
    /// SHRIMP kernel patch: write the engine's abort register on every
    /// switch.
    ShrimpAbort,
    /// FLASH kernel patch: write the incoming pid to the engine's
    /// current-pid register on every switch.
    FlashNotify,
}

impl fmt::Display for SwitchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchPolicy::Vanilla => write!(f, "vanilla (unmodified kernel)"),
            SwitchPolicy::ShrimpAbort => write!(f, "shrimp-abort patch"),
            SwitchPolicy::FlashNotify => write!(f, "flash-notify patch"),
        }
    }
}
