//! The kernel proper: trap handling, the DMA driver, the switch handler.

use crate::{CtxGrant, KeyRegistry, MappedBuffer, SwitchPolicy, Sys, VmManager};
use udma_bus::{Bus, BusTxn, SimTime};
use udma_cpu::{CostModel, Pid, Process, Reg, SwitchReason, TrapHandler, TrapOutcome};
use udma_mem::{Access, PhysLayout, VirtAddr};
use udma_nic::{regs, DMA_FAILURE};

/// Kernel activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Empty syscalls served.
    pub noop_syscalls: u64,
    /// Kernel-level DMA syscalls served.
    pub dma_syscalls: u64,
    /// Kernel-path atomic syscalls served.
    pub atomic_syscalls: u64,
    /// Syscalls that failed a protection or argument check.
    pub failed_syscalls: u64,
    /// Context-switch hooks that touched the NIC (non-vanilla policies).
    pub switch_hooks: u64,
}

/// The model kernel: implements [`TrapHandler`] and owns the privileged
/// services ([`VmManager`], [`KeyRegistry`]).
#[derive(Clone, Debug)]
pub struct Kernel {
    cost: CostModel,
    policy: SwitchPolicy,
    vm: VmManager,
    keys: KeyRegistry,
    stats: KernelStats,
    nic_base: udma_mem::PhysAddr,
}

impl Kernel {
    /// Creates a kernel over `layout` with the given switch policy.
    pub fn new(
        layout: PhysLayout,
        cost: CostModel,
        policy: SwitchPolicy,
        num_contexts: u32,
        key_seed: u64,
        key_bits: u32,
    ) -> Self {
        Kernel {
            cost,
            policy,
            vm: VmManager::new(layout),
            keys: KeyRegistry::new(num_contexts, key_seed, key_bits),
            stats: KernelStats::default(),
            nic_base: layout.nic_base,
        }
    }

    /// The switch policy in force.
    pub fn policy(&self) -> SwitchPolicy {
        self.policy
    }

    /// Kernel counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The VM manager (privileged setup service).
    pub fn vm_mut(&mut self) -> &mut VmManager {
        &mut self.vm
    }

    /// The key registry.
    pub fn keys(&self) -> &KeyRegistry {
        &self.keys
    }

    /// Grants `pid` a register context and programs the context's key
    /// into the engine's (privileged) key table. Returns `None` when all
    /// contexts are taken — those processes "will have to go through the
    /// kernel" (§3.2).
    pub fn grant_context(&mut self, pid: Pid, bus: &mut Bus, now: SimTime) -> Option<CtxGrant> {
        let grant = self.keys.grant(pid)?;
        let reg = self.nic_base + regs::KEY_TABLE_BASE + 8 * grant.ctx as u64;
        bus.access(BusTxn::write(reg, grant.key, pid.as_u32()), now)
            .expect("key table is always decodable");
        Some(grant)
    }

    /// Registers a descriptor ring for `grant`'s context over the first
    /// `capacity` slots of `buf` — the §3.2 pattern again: the *kernel*
    /// validates the window (it must fit inside the process's own
    /// writable mapped buffer) and programs the privileged
    /// `RING_BASE_TABLE`/`RING_CTL_TABLE` slots; user code only ever
    /// touches its ring memory and its context-page doorbell.
    ///
    /// Returns `false` (and programs nothing) when the window does not
    /// fit the buffer or the buffer is not writable.
    pub fn register_ring(
        &mut self,
        grant: &CtxGrant,
        buf: &MappedBuffer,
        capacity: u64,
        bus: &mut Bus,
        now: SimTime,
    ) -> bool {
        let fits = capacity > 0
            && capacity.checked_mul(udma_nic::DESC_BYTES).is_some_and(|b| b <= buf.len());
        if !fits || !buf.perms.allows(udma_mem::Perms::READ_WRITE) {
            self.stats.failed_syscalls += 1;
            return false;
        }
        let tag = 0;
        let base_reg = self.nic_base + regs::RING_BASE_TABLE + 8 * grant.ctx as u64;
        let ctl_reg = self.nic_base + regs::RING_CTL_TABLE + 8 * grant.ctx as u64;
        bus.access(BusTxn::write(base_reg, buf.first_frame.base().as_u64(), tag), now)
            .expect("ring base table is always decodable");
        bus.access(BusTxn::write(ctl_reg, capacity, tag), now)
            .expect("ring control table is always decodable");
        true
    }

    /// Deregisters `grant`'s ring (a single privileged control write of
    /// zero); stale doorbells then find nothing to dequeue.
    pub fn deregister_ring(&mut self, grant: &CtxGrant, bus: &mut Bus, now: SimTime) {
        let ctl_reg = self.nic_base + regs::RING_CTL_TABLE + 8 * grant.ctx as u64;
        bus.access(BusTxn::write(ctl_reg, 0, 0), now)
            .expect("ring control table is always decodable");
    }

    /// Pages a byte range touches (for translation-cost accounting).
    fn pages_touched(va: VirtAddr, size: u64) -> u64 {
        if size == 0 {
            return 1;
        }
        let first = va.page().number();
        let last = (va.as_u64() + size - 1) >> udma_mem::PAGE_SHIFT;
        last - first + 1
    }

    /// Figure 1: the kernel-level DMA driver.
    fn sys_dma(&mut self, p: &mut Process, bus: &mut Bus, now: SimTime) -> TrapOutcome {
        self.stats.dma_syscalls += 1;
        let vsrc = VirtAddr::new(p.reg(Reg::R0));
        let vdst = VirtAddr::new(p.reg(Reg::R1));
        let size = p.reg(Reg::R2);
        let mut time = SimTime::ZERO;

        // virtual_to_physical + check_size: walk and permission-check
        // every page of both ranges, charging the software walk.
        time += self.cost.cycles(
            self.cost.translation_cycles
                * (Self::pages_touched(vsrc, size) + Self::pages_touched(vdst, size)),
        );
        let psrc = match p.page_table().translate_range(vsrc, size, Access::Read) {
            Ok(pa) => pa,
            Err(_) => {
                self.stats.failed_syscalls += 1;
                return TrapOutcome { retval: DMA_FAILURE, time };
            }
        };
        let pdst = match p.page_table().translate_range(vdst, size, Access::Write) {
            Ok(pa) => pa,
            Err(_) => {
                self.stats.failed_syscalls += 1;
                return TrapOutcome { retval: DMA_FAILURE, time };
            }
        };
        if size == 0 {
            self.stats.failed_syscalls += 1;
            return TrapOutcome { retval: DMA_FAILURE, time };
        }

        // STORE psource/pdestination/size TO the engine, LOAD status.
        let tag = p.pid().as_u32();
        let mut io = |txn: BusTxn, t: &mut SimTime| -> Result<u64, ()> {
            match bus.access(txn, now) {
                Ok((data, dt)) => {
                    *t += dt;
                    Ok(data)
                }
                Err(_) => Err(()),
            }
        };
        let base = self.nic_base;
        let result = (|| {
            io(BusTxn::write(base + regs::DMA_SOURCE, psrc.as_u64(), tag), &mut time)?;
            io(BusTxn::write(base + regs::DMA_DEST, pdst.as_u64(), tag), &mut time)?;
            io(BusTxn::write(base + regs::DMA_SIZE, size, tag), &mut time)?;
            io(BusTxn::read(base + regs::DMA_STATUS, tag), &mut time)
        })();
        match result {
            Ok(status) => TrapOutcome { retval: status, time },
            Err(()) => {
                self.stats.failed_syscalls += 1;
                TrapOutcome { retval: DMA_FAILURE, time }
            }
        }
    }

    /// §3.5 kernel path: atomic operation with protection and atomicity
    /// provided by the kernel.
    fn sys_atomic(&mut self, p: &mut Process, bus: &mut Bus, now: SimTime) -> TrapOutcome {
        self.stats.atomic_syscalls += 1;
        let va = VirtAddr::new(p.reg(Reg::R0));
        let code = p.reg(Reg::R1);
        let op1 = p.reg(Reg::R2);
        let op2 = p.reg(Reg::R3);
        let mut time = self.cost.translation();
        // Read-modify-write: both permissions required.
        let pa = match p
            .page_table()
            .translate(va, Access::Write)
            .and_then(|_| p.page_table().translate(va, Access::Read))
        {
            Ok(pa) => pa,
            Err(_) => {
                self.stats.failed_syscalls += 1;
                return TrapOutcome { retval: DMA_FAILURE, time };
            }
        };
        let tag = p.pid().as_u32();
        let base = self.nic_base;
        let result = (|| -> Result<u64, ()> {
            let mut io = |txn: BusTxn| -> Result<u64, ()> {
                match bus.access(txn, now) {
                    Ok((data, dt)) => {
                        time += dt;
                        Ok(data)
                    }
                    Err(_) => Err(()),
                }
            };
            io(BusTxn::write(base + regs::ATOMIC_ADDR, pa.as_u64(), tag))?;
            io(BusTxn::write(base + regs::ATOMIC_OPERAND1, op1, tag))?;
            io(BusTxn::write(base + regs::ATOMIC_OPERAND2, op2, tag))?;
            io(BusTxn::write(base + regs::ATOMIC_CMD, code, tag))?;
            io(BusTxn::read(base + regs::ATOMIC_CMD, tag))
        })();
        match result {
            Ok(old) => TrapOutcome { retval: old, time },
            Err(()) => {
                self.stats.failed_syscalls += 1;
                TrapOutcome { retval: DMA_FAILURE, time }
            }
        }
    }
}

impl TrapHandler for Kernel {
    fn syscall(&mut self, no: u16, p: &mut Process, bus: &mut Bus, now: SimTime) -> TrapOutcome {
        match Sys::from(no) {
            Sys::Noop => {
                self.stats.noop_syscalls += 1;
                TrapOutcome { retval: 0, time: self.cost.cycles(20) }
            }
            Sys::Dma => self.sys_dma(p, bus, now),
            Sys::Atomic => self.sys_atomic(p, bus, now),
            Sys::Unknown(_) => {
                self.stats.failed_syscalls += 1;
                TrapOutcome::ret(DMA_FAILURE)
            }
        }
    }

    fn on_context_switch(
        &mut self,
        _from: Option<Pid>,
        to: Pid,
        _reason: SwitchReason,
        bus: &mut Bus,
        now: SimTime,
    ) -> SimTime {
        match self.policy {
            SwitchPolicy::Vanilla => SimTime::ZERO,
            SwitchPolicy::ShrimpAbort => {
                self.stats.switch_hooks += 1;
                match bus.access(BusTxn::write(self.nic_base + regs::ABORT, 1, 0), now) {
                    Ok((_, dt)) => dt,
                    Err(_) => SimTime::ZERO,
                }
            }
            SwitchPolicy::FlashNotify => {
                self.stats.switch_hooks += 1;
                let pid = to.as_u32() as u64;
                match bus.access(BusTxn::write(self.nic_base + regs::CURRENT_PID, pid, 0), now) {
                    Ok((_, dt)) => dt,
                    Err(_) => SimTime::ZERO,
                }
            }
        }
    }
}

/// A page-count helper is exercised here; full kernel behaviour is tested
/// through the machine in the `udma` core crate and in `tests/`.
#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_bus::{BusTiming, WriteBufferPolicy};
    use udma_cpu::{Executor, ProgramBuilder, RunToCompletion};
    use udma_mem::{PageTable, Perms, PhysMemory, PAGE_SIZE};
    use udma_nic::{DmaEngine, EngineConfig, ProtocolKind};

    fn machine(policy: SwitchPolicy) -> (Kernel, Bus, DmaEngine) {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(layout.ram_size)));
        let mut bus = Bus::new(layout, Rc::clone(&mem), BusTiming::turbochannel());
        let engine = DmaEngine::new(layout, mem, EngineConfig::default(), ProtocolKind::KernelOnly);
        bus.attach_nic(Box::new(engine.clone()));
        let kernel = Kernel::new(layout, CostModel::alpha_3000_300(), policy, 4, 42, 61);
        (kernel, bus, engine)
    }

    #[test]
    fn pages_touched_counts() {
        let va = VirtAddr::new(PAGE_SIZE - 8);
        assert_eq!(Kernel::pages_touched(va, 8), 1);
        assert_eq!(Kernel::pages_touched(va, 9), 2);
        assert_eq!(Kernel::pages_touched(VirtAddr::new(0), 0), 1);
        assert_eq!(Kernel::pages_touched(VirtAddr::new(0), 3 * PAGE_SIZE), 3);
    }

    #[test]
    fn kernel_dma_syscall_end_to_end() {
        let (mut kernel, mut bus, engine) = machine(SwitchPolicy::Vanilla);
        let mut pt = PageTable::new();
        let buf = kernel
            .vm_mut()
            .map_buffer(
                &mut pt,
                VirtAddr::new(0x4000),
                2,
                Perms::READ_WRITE,
                crate::ShadowMode::None,
            )
            .unwrap();
        // Seed source data directly in RAM.
        let mem = bus.memory();
        mem.borrow_mut().write_u64(buf.first_frame.base(), 0x5EED).unwrap();

        let mut ex = Executor::new(CostModel::alpha_3000_300(), WriteBufferPolicy::default());
        let src = buf.va.as_u64();
        let dst = buf.va.as_u64() + PAGE_SIZE;
        let prog = ProgramBuilder::new()
            .imm(Reg::R0, src)
            .imm(Reg::R1, dst)
            .imm(Reg::R2, 64)
            .syscall(crate::SYS_DMA)
            .halt()
            .build();
        let pid = ex.spawn(prog, pt);
        ex.run(&mut RunToCompletion, &mut kernel, &mut bus, 100);

        assert_ne!(ex.process(pid).reg(Reg::R0), DMA_FAILURE);
        assert_eq!(kernel.stats().dma_syscalls, 1);
        assert_eq!(engine.core().stats().started, 1);
        // Data arrived at the destination frame.
        let got = mem.borrow().read_u64(buf.first_frame.offset(1).base()).unwrap();
        assert_eq!(got, 0x5EED);
        // ~19 µs: syscall entry/exit + translations + four bus accesses.
        let us = ex.now().as_us();
        assert!((15.0..25.0).contains(&us), "kernel DMA took {us} µs");
    }

    #[test]
    fn kernel_dma_rejects_unmapped_and_readonly() {
        let (mut kernel, mut bus, engine) = machine(SwitchPolicy::Vanilla);
        let mut pt = PageTable::new();
        let buf = kernel
            .vm_mut()
            .map_buffer(&mut pt, VirtAddr::new(0x4000), 1, Perms::READ, crate::ShadowMode::None)
            .unwrap();
        let mut ex = Executor::new(CostModel::alpha_3000_300(), WriteBufferPolicy::default());
        // dst is the same read-only buffer → write check fails.
        let prog = ProgramBuilder::new()
            .imm(Reg::R0, buf.va.as_u64())
            .imm(Reg::R1, buf.va.as_u64())
            .imm(Reg::R2, 8)
            .syscall(crate::SYS_DMA)
            .halt()
            .build();
        let pid = ex.spawn(prog, pt);
        ex.run(&mut RunToCompletion, &mut kernel, &mut bus, 100);
        assert_eq!(ex.process(pid).reg(Reg::R0), DMA_FAILURE);
        assert_eq!(kernel.stats().failed_syscalls, 1);
        assert_eq!(engine.core().stats().started, 0);
    }

    #[test]
    fn atomic_syscall_end_to_end() {
        let (mut kernel, mut bus, _engine) = machine(SwitchPolicy::Vanilla);
        let mut pt = PageTable::new();
        let buf = kernel
            .vm_mut()
            .map_buffer(
                &mut pt,
                VirtAddr::new(0x4000),
                1,
                Perms::READ_WRITE,
                crate::ShadowMode::None,
            )
            .unwrap();
        let mem = bus.memory();
        mem.borrow_mut().write_u64(buf.first_frame.base(), 100).unwrap();

        let mut ex = Executor::new(CostModel::alpha_3000_300(), WriteBufferPolicy::default());
        let prog = ProgramBuilder::new()
            .imm(Reg::R0, buf.va.as_u64())
            .imm(Reg::R1, udma_nic::AtomicOp::Add.code())
            .imm(Reg::R2, 5)
            .syscall(crate::SYS_ATOMIC)
            .halt()
            .build();
        let pid = ex.spawn(prog, pt);
        ex.run(&mut RunToCompletion, &mut kernel, &mut bus, 100);
        assert_eq!(ex.process(pid).reg(Reg::R0), 100); // old value
        assert_eq!(mem.borrow().read_u64(buf.first_frame.base()).unwrap(), 105);
    }

    #[test]
    fn unknown_syscall_fails() {
        let (mut kernel, mut bus, _engine) = machine(SwitchPolicy::Vanilla);
        let mut ex = Executor::new(CostModel::alpha_3000_300(), WriteBufferPolicy::default());
        let pid = ex.spawn(ProgramBuilder::new().syscall(999).halt().build(), PageTable::new());
        ex.run(&mut RunToCompletion, &mut kernel, &mut bus, 100);
        assert_eq!(ex.process(pid).reg(Reg::R0), DMA_FAILURE);
        assert_eq!(kernel.stats().failed_syscalls, 1);
    }

    #[test]
    fn switch_policies_touch_the_engine() {
        for (policy, expect_hooks) in [
            (SwitchPolicy::Vanilla, 0),
            (SwitchPolicy::ShrimpAbort, 1),
            (SwitchPolicy::FlashNotify, 1),
        ] {
            let (mut kernel, mut bus, _engine) = machine(policy);
            let dt = kernel.on_context_switch(
                None,
                Pid::new(3),
                SwitchReason::InitialDispatch,
                &mut bus,
                SimTime::ZERO,
            );
            assert_eq!(kernel.stats().switch_hooks, expect_hooks, "{policy}");
            assert_eq!(dt > SimTime::ZERO, expect_hooks > 0);
        }
    }

    #[test]
    fn register_ring_validates_window_and_programs_tables() {
        let (mut kernel, mut bus, engine) = machine(SwitchPolicy::Vanilla);
        engine
            .core_mut()
            .enable_iommu(udma_iommu::IotlbConfig::default(), udma_nic::VirtDmaConfig::default());
        engine.core_mut().enable_rings(udma_nic::RingConfig::default());
        let g = kernel.grant_context(Pid::new(1), &mut bus, SimTime::ZERO).unwrap();
        let mut pt = PageTable::new();
        let buf = kernel
            .vm_mut()
            .map_buffer(
                &mut pt,
                VirtAddr::new(0x4000),
                1,
                Perms::READ_WRITE,
                crate::ShadowMode::None,
            )
            .unwrap();
        // One page holds PAGE_SIZE/DESC_BYTES slots; more must bounce.
        let max = PAGE_SIZE / udma_nic::DESC_BYTES;
        assert!(!kernel.register_ring(&g, &buf, max + 1, &mut bus, SimTime::ZERO));
        assert!(!kernel.register_ring(&g, &buf, 0, &mut bus, SimTime::ZERO));
        assert!(!engine.core().ring(g.ctx).registered());
        // A read-only buffer can't back a ring the process must write.
        let ro = kernel
            .vm_mut()
            .map_buffer(&mut pt, VirtAddr::new(0x8000), 1, Perms::READ, crate::ShadowMode::None)
            .unwrap();
        assert!(!kernel.register_ring(&g, &ro, 4, &mut bus, SimTime::ZERO));

        assert!(kernel.register_ring(&g, &buf, max, &mut bus, SimTime::ZERO));
        let core = engine.core();
        let ring = core.ring(g.ctx);
        assert!(ring.registered());
        assert_eq!(ring.base(), buf.first_frame.base());
        assert_eq!(ring.capacity() as u64, max);
        drop(core);
        kernel.deregister_ring(&g, &mut bus, SimTime::ZERO);
        assert!(!engine.core().ring(g.ctx).registered());
    }

    #[test]
    fn grant_context_programs_key_table() {
        let (mut kernel, mut bus, engine) = machine(SwitchPolicy::Vanilla);
        let g = kernel.grant_context(Pid::new(1), &mut bus, SimTime::ZERO).unwrap();
        assert_eq!(engine.core().key(g.ctx), g.key);
        // Same pid again: same grant, not reprogrammed differently.
        let g2 = kernel.grant_context(Pid::new(1), &mut bus, SimTime::ZERO).unwrap();
        assert_eq!(g, g2);
    }
}
