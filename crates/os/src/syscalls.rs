//! The syscall ABI.

/// The empty syscall, for lmbench-style measurement of kernel entry/exit
/// (the paper: "the overhead of an empty system call of commercial
/// UNIX-like operating systems ranges between 1,000 and 5,000 processor
/// cycles").
pub const SYS_NOOP: u16 = 0;

/// Kernel-level DMA (Figure 1): `r0` = source VA, `r1` = destination VA,
/// `r2` = size in bytes. Returns the DMA status in `r0` (`-1` failure).
pub const SYS_DMA: u16 = 1;

/// Kernel-path atomic operation (§3.5): `r0` = VA, `r1` =
/// [`udma_nic::AtomicOp`] code, `r2`/`r3` = operands. Returns the old
/// value in `r0` (`-1` on fault).
pub const SYS_ATOMIC: u16 = 2;

/// Typed view of a syscall number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sys {
    /// [`SYS_NOOP`].
    Noop,
    /// [`SYS_DMA`].
    Dma,
    /// [`SYS_ATOMIC`].
    Atomic,
    /// Anything else: returns `-1` like a bad syscall number on OSF/1.
    Unknown(u16),
}

impl From<u16> for Sys {
    fn from(no: u16) -> Self {
        match no {
            SYS_NOOP => Sys::Noop,
            SYS_DMA => Sys::Dma,
            SYS_ATOMIC => Sys::Atomic,
            other => Sys::Unknown(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_decode() {
        assert_eq!(Sys::from(SYS_NOOP), Sys::Noop);
        assert_eq!(Sys::from(SYS_DMA), Sys::Dma);
        assert_eq!(Sys::from(SYS_ATOMIC), Sys::Atomic);
        assert_eq!(Sys::from(99), Sys::Unknown(99));
    }
}
