//! The context cache: thousands of processes on 4–8 register contexts.
//!
//! The paper sizes key-based DMA at "say 4 to 8" register contexts
//! (§3.1) and sends everyone else through the kernel (§3.2). This
//! module builds the OS layer that makes that scale: the hardware
//! contexts become a **cache of active processes**, managed exactly like
//! the IOTLB manages translations —
//!
//! * a pluggable victim policy ([`CtxVictimPolicy`]: LRU, clock,
//!   random — mirroring [`udma_iommu::IotlbReplacement`]);
//! * spill/fill of the full context state
//!   ([`udma_nic::CtxImage`]: key, staged addresses, `CTX_VIRT_*`
//!   window, transfer bookkeeping) through the §3.2 kernel path, every
//!   operation charged in simulated cycles ([`SpillCosts`]);
//! * the steal-vs-in-flight-transfer race guarded by the engine itself:
//!   [`udma_nic::EngineCore::save_context`] refuses busy contexts, and
//!   the victim scan skips them (counted as `busy_skips`);
//! * a fair arbiter ([`crate::FairArbiter`]) so a hostile tenant
//!   stealing in a tight loop only throttles *itself* onto the kernel
//!   fallback and can never evict the guaranteed tier.
//!
//! The cache never sits on the data path: a process whose context is
//! resident posts DMA at full user-level speed with zero OS involvement
//! (a [`Acquired::Hit`] costs nothing). The OS is only entered on a
//! miss — the MProtect-style discipline of multiplexing protection
//! state without interposing on transfers.

use crate::arbiter::{ArbiterConfig, ArbiterStats, FairArbiter, QosClass};
use udma_bus::SimTime;
use udma_cpu::CostModel;
use udma_nic::regs::MAX_CONTEXTS;
use udma_nic::{CtxImage, EngineCore};

/// A logical-process id: an index into the context cache's process
/// table. Distinct from [`udma_cpu::Pid`] — logical processes are
/// registered by the thousands and carry no executor state.
pub type LPid = u32;

/// Victim-selection policy — the same palette as the IOTLB's
/// [`udma_iommu::IotlbReplacement`], so A3/E11-style ablations read
/// across subsystems.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CtxVictimPolicy {
    /// Evict the least-recently-acquired admissible context.
    #[default]
    Lru,
    /// Second-chance clock over the context slots.
    Clock,
    /// Seeded uniform pick among admissible victims.
    Random,
}

impl std::fmt::Display for CtxVictimPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtxVictimPolicy::Lru => write!(f, "lru"),
            CtxVictimPolicy::Clock => write!(f, "clock"),
            CtxVictimPolicy::Random => write!(f, "random"),
        }
    }
}

/// Cycle charges for the §3.2 kernel spill/fill path, per operation.
#[derive(Clone, Copy, Debug)]
pub struct SpillCosts {
    /// Trap into the kernel and back — paid once per miss (the §3.2
    /// "go through the kernel" entry fee).
    pub kernel_entry: SimTime,
    /// One privileged register save or restore (an uncached device
    /// access).
    pub per_op: SimTime,
    /// Register operations in one [`CtxImage`]: the key-table slot, the
    /// 7-word register file (dest/src/size/last-transfer/atomic result/
    /// 2 operands) and the 3-word `CTX_VIRT_*` window.
    pub ops_per_image: u32,
}

impl SpillCosts {
    /// Derives the charges from a machine cost model.
    pub fn from_model(m: &CostModel) -> Self {
        SpillCosts {
            kernel_entry: m.syscall_round_trip(),
            per_op: m.mem_instr(),
            ops_per_image: 11,
        }
    }

    /// Cost of one full spill (or fill) sweep.
    pub fn image_sweep(&self) -> SimTime {
        SimTime::from_ps(self.per_op.as_ps() * self.ops_per_image as u64)
    }
}

impl Default for SpillCosts {
    fn default() -> Self {
        SpillCosts::from_model(&CostModel::alpha_3000_300())
    }
}

/// Context-cache tunables.
#[derive(Clone, Copy, Debug)]
pub struct CtxCacheConfig {
    /// Victim-selection policy.
    pub victim: CtxVictimPolicy,
    /// Seed for key minting and the random victim policy.
    pub seed: u64,
    /// Key width in bits (61 in the paper's layout; tests shrink it).
    pub key_bits: u32,
    /// Kernel spill/fill cycle charges.
    pub costs: SpillCosts,
    /// Steal admission control.
    pub arbiter: ArbiterConfig,
}

impl Default for CtxCacheConfig {
    fn default() -> Self {
        CtxCacheConfig {
            victim: CtxVictimPolicy::default(),
            seed: 0x5EED_C7C5,
            key_bits: 61,
            costs: SpillCosts::default(),
            arbiter: ArbiterConfig::default(),
        }
    }
}

/// Context-cache counters (OS view; the NI keeps its own
/// [`udma_nic::CtxStats`] mirror of the hardware-visible events).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtxCacheStats {
    /// Acquisitions satisfied by residency — zero OS involvement.
    pub hits: u64,
    /// Acquisitions that entered the kernel.
    pub misses: u64,
    /// Contexts spilled (steals plus voluntary releases).
    pub spills: u64,
    /// Contexts filled.
    pub fills: u64,
    /// Misses that evicted another live process.
    pub steals: u64,
    /// Victim candidates skipped because their context was busy (the
    /// steal-vs-in-flight guard).
    pub busy_skips: u64,
    /// Misses refused a steal by the token bucket (kernel fallback).
    pub throttled: u64,
    /// Misses with no admissible victim at all (kernel fallback).
    pub starved: u64,
}

/// Outcome of [`CtxCache::acquire`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acquired {
    /// The process was already resident: post at user level, free.
    Hit {
        /// The resident context.
        ctx: u32,
    },
    /// The kernel filled a context (stealing one if `stole` names a
    /// victim) and charged `cost`.
    Filled {
        /// The now-resident context.
        ctx: u32,
        /// The process that was evicted to make room, if any.
        stole: Option<LPid>,
        /// Kernel entry + spill sweep (when stealing) + fill sweep.
        cost: SimTime,
    },
    /// The token bucket refused the steal; the post must take the §3.2
    /// kernel DMA path. `cost` is the fruitless kernel entry.
    Throttled {
        /// The fruitless kernel entry charge.
        cost: SimTime,
    },
    /// Every potential victim was busy or QoS-protected; kernel DMA
    /// path. `cost` is the fruitless kernel entry (victim scan
    /// included).
    Starved {
        /// The fruitless kernel entry charge.
        cost: SimTime,
    },
}

impl Acquired {
    /// The acquired context, when the post may go user-level.
    pub fn ctx(&self) -> Option<u32> {
        match self {
            Acquired::Hit { ctx } | Acquired::Filled { ctx, .. } => Some(*ctx),
            _ => None,
        }
    }

    /// Simulated time the acquisition charged (zero on a hit).
    pub fn cost(&self) -> SimTime {
        match self {
            Acquired::Hit { .. } => SimTime::ZERO,
            Acquired::Filled { cost, .. }
            | Acquired::Throttled { cost }
            | Acquired::Starved { cost } => *cost,
        }
    }

    /// Whether the post must fall back to the kernel DMA path.
    pub fn fallback(&self) -> bool {
        matches!(self, Acquired::Throttled { .. } | Acquired::Starved { .. })
    }
}

#[derive(Clone, Debug)]
struct Proc {
    key: u64,
    class: QosClass,
    /// Spilled state, present iff not resident (a never-yet-filled
    /// process holds its pristine image: key + empty registers).
    image: Option<CtxImage>,
    resident: Option<u32>,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    owner: Option<LPid>,
    /// Monotone acquisition sequence number (LRU order; a counter, not
    /// sim time, so same-instant acquisitions stay strictly ordered).
    last_use: u64,
    /// Second-chance bit for the clock policy.
    referenced: bool,
}

/// The OS context cache: owns the process table, the residency map and
/// the victim policy; drives the engine's spill/fill hooks.
#[derive(Clone, Debug)]
pub struct CtxCache {
    procs: Vec<Proc>,
    slots: Vec<Slot>,
    policy: CtxVictimPolicy,
    costs: SpillCosts,
    arbiter: FairArbiter,
    key_state: u64,
    key_bits: u32,
    rng_state: u64,
    clock_hand: usize,
    use_seq: u64,
    stats: CtxCacheStats,
}

impl CtxCache {
    /// Creates a cache over `num_contexts` hardware contexts.
    ///
    /// # Panics
    ///
    /// Panics if `num_contexts` is 0 or exceeds the NI's
    /// [`MAX_CONTEXTS`] — the one shared definition of the context
    /// count, so the OS-side assumption cannot drift from the register
    /// map.
    pub fn new(num_contexts: u32, config: CtxCacheConfig) -> Self {
        assert!(
            (1..=MAX_CONTEXTS).contains(&num_contexts),
            "context count out of range (NI supports 1..={MAX_CONTEXTS})"
        );
        assert!((1..=61).contains(&config.key_bits), "key width out of range");
        CtxCache {
            procs: Vec::new(),
            slots: vec![
                Slot { owner: None, last_use: 0, referenced: false };
                num_contexts as usize
            ],
            policy: config.victim,
            costs: config.costs,
            arbiter: FairArbiter::new(config.arbiter),
            key_state: config.seed,
            key_bits: config.key_bits,
            rng_state: config.seed ^ 0x9E37_79B9_7F4A_7C15,
            clock_hand: 0,
            use_seq: 0,
            stats: CtxCacheStats::default(),
        }
    }

    /// Hardware contexts under management.
    pub fn num_contexts(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Logical processes registered.
    pub fn processes(&self) -> u32 {
        self.procs.len() as u32
    }

    /// OS-side counters.
    pub fn stats(&self) -> CtxCacheStats {
        self.stats
    }

    /// Arbiter counters.
    pub fn arbiter_stats(&self) -> ArbiterStats {
        self.arbiter.stats()
    }

    /// Registers a logical process at tier `class`, minting its key.
    /// Cheap — no hardware context is touched until the first
    /// [`acquire`](Self::acquire), so registering 100k processes is
    /// O(100k) table slots.
    pub fn register(&mut self, class: QosClass, now: SimTime) -> LPid {
        let key = self.mint_key();
        self.procs.push(Proc {
            key,
            class,
            image: Some(CtxImage { key, ..CtxImage::default() }),
            resident: None,
        });
        self.arbiter.register(class, now);
        (self.procs.len() - 1) as LPid
    }

    /// The key minted for `p` (what the kernel hands the process at
    /// registration — possession authorises its keyed stores).
    pub fn key_of(&self, p: LPid) -> u64 {
        self.procs[p as usize].key
    }

    /// The tier `p` was admitted at.
    pub fn class_of(&self, p: LPid) -> QosClass {
        self.procs[p as usize].class
    }

    /// The context `p` currently holds, if resident.
    pub fn resident(&self, p: LPid) -> Option<u32> {
        self.procs[p as usize].resident
    }

    /// Ensures `p` holds a hardware context, spilling a victim through
    /// the engine's kernel hooks if necessary. The outcome says which
    /// path the post must take and what the acquisition cost.
    pub fn acquire(&mut self, p: LPid, core: &mut EngineCore, now: SimTime) -> Acquired {
        let pi = p as usize;
        if let Some(ctx) = self.procs[pi].resident {
            self.touch(ctx as usize);
            self.stats.hits += 1;
            return Acquired::Hit { ctx };
        }
        self.stats.misses += 1;

        // A free slot needs no victim and no admission: fill it —
        // unless the requester is best-effort and its tier is already
        // at the provisioned cap (`num_contexts − reserved`). A capped
        // best-effort tenant must steal from its *own* tier instead
        // (keeping the tier's occupancy constant), so the reserved
        // slots stay reachable for guaranteed tenants even when the
        // best-effort swarm arrives first and pins its contexts with
        // in-flight transfers.
        let requester = self.procs[pi].class;
        let cfg = self.arbiter.config();
        let be_capped = cfg.enabled
            && requester == QosClass::BestEffort
            && self.best_effort_resident()
                >= self.slots.len() as u32 - cfg.reserved.min(self.slots.len() as u32);
        if !be_capped {
            if let Some(free) = self.slots.iter().position(|s| s.owner.is_none()) {
                let cost = SimTime::from_ps(
                    self.costs.kernel_entry.as_ps() + self.costs.image_sweep().as_ps(),
                );
                self.fill(p, free as u32, core);
                return Acquired::Filled { ctx: free as u32, stole: None, cost };
            }
        }

        // Full cache: stealing needs a token.
        if !self.arbiter.admit_steal(pi, now) {
            self.stats.throttled += 1;
            return Acquired::Throttled { cost: self.costs.kernel_entry };
        }

        match self.select_victim(requester, core, now) {
            Some(slot) => {
                let victim = self.slots[slot].owner.expect("victim slot is owned");
                // The scan only offered non-busy slots, and nothing ran
                // between scan and save (single-threaded kernel), so
                // the engine accepts the spill.
                let image = core
                    .save_context(slot as u32, now)
                    .expect("victim scan only offers non-busy contexts");
                let vi = victim as usize;
                self.procs[vi].image = Some(image);
                self.procs[vi].resident = None;
                core.note_ctx_steal();
                self.stats.steals += 1;
                self.stats.spills += 1;
                let cost = SimTime::from_ps(
                    self.costs.kernel_entry.as_ps() + 2 * self.costs.image_sweep().as_ps(),
                );
                self.fill(p, slot as u32, core);
                Acquired::Filled { ctx: slot as u32, stole: Some(victim), cost }
            }
            None => {
                self.stats.starved += 1;
                core.note_ctx_starvation();
                Acquired::Starved { cost: self.costs.kernel_entry }
            }
        }
    }

    /// Voluntarily yields `p`'s context (process exit or quiesce): the
    /// state is spilled and the slot freed. Returns `false` (context
    /// kept) when the context is still busy with an in-flight transfer.
    pub fn release(&mut self, p: LPid, core: &mut EngineCore, now: SimTime) -> bool {
        let pi = p as usize;
        let Some(ctx) = self.procs[pi].resident else {
            return true;
        };
        match core.save_context(ctx, now) {
            Ok(image) => {
                self.procs[pi].image = Some(image);
                self.procs[pi].resident = None;
                self.slots[ctx as usize].owner = None;
                self.stats.spills += 1;
                true
            }
            Err(_) => {
                self.stats.busy_skips += 1;
                false
            }
        }
    }

    fn fill(&mut self, p: LPid, ctx: u32, core: &mut EngineCore) {
        let pi = p as usize;
        let image = self.procs[pi].image.take().expect("non-resident process holds its image");
        core.restore_context(ctx, &image);
        self.procs[pi].resident = Some(ctx);
        self.slots[ctx as usize].owner = Some(p);
        self.touch(ctx as usize);
        self.stats.fills += 1;
    }

    /// Slots currently occupied by best-effort processes.
    fn best_effort_resident(&self) -> u32 {
        self.slots
            .iter()
            .filter(|s| {
                s.owner.is_some_and(|o| self.procs[o as usize].class == QosClass::BestEffort)
            })
            .count() as u32
    }

    fn touch(&mut self, slot: usize) {
        self.use_seq += 1;
        self.slots[slot].last_use = self.use_seq;
        self.slots[slot].referenced = true;
    }

    /// Picks a victim slot for `requester`, honouring QoS admissibility
    /// and skipping busy contexts. Guaranteed requesters scan the
    /// best-effort tier first so guaranteed residents are only evicted
    /// when no best-effort victim exists.
    fn select_victim(
        &mut self,
        requester: QosClass,
        core: &EngineCore,
        now: SimTime,
    ) -> Option<usize> {
        // Best-effort victims are scanned first (so guaranteed
        // residents are a last resort); `may_evict` hides the
        // guaranteed tier from best-effort requesters entirely.
        for tier in [QosClass::BestEffort, QosClass::Guaranteed] {
            let mut candidates = Vec::new();
            for (i, s) in self.slots.iter().enumerate() {
                let Some(owner) = s.owner else { continue };
                let class = self.procs[owner as usize].class;
                if class != tier || !self.arbiter.may_evict(requester, class) {
                    continue;
                }
                if core.context_busy(i as u32, now) {
                    self.stats.busy_skips += 1;
                    continue;
                }
                candidates.push(i);
            }
            if candidates.is_empty() {
                continue;
            }
            return Some(match self.policy {
                CtxVictimPolicy::Lru => {
                    *candidates.iter().min_by_key(|&&i| self.slots[i].last_use).expect("non-empty")
                }
                CtxVictimPolicy::Clock => self.clock_pick(&candidates),
                CtxVictimPolicy::Random => {
                    candidates[(self.next_rand() % candidates.len() as u64) as usize]
                }
            });
        }
        None
    }

    /// Second-chance sweep from the hand over the candidate set: a set
    /// referenced bit buys one more round (and is cleared); the first
    /// unreferenced candidate at or past the hand is evicted. Two full
    /// sweeps bound the scan — after the first cleared everything, the
    /// second must pick.
    fn clock_pick(&mut self, candidates: &[usize]) -> usize {
        let n = self.slots.len();
        for _ in 0..2 * n {
            let i = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % n;
            if !candidates.contains(&i) {
                continue;
            }
            if self.slots[i].referenced {
                self.slots[i].referenced = false;
            } else {
                return i;
            }
        }
        candidates[0]
    }

    fn mint_key(&mut self) -> u64 {
        let key = splitmix(&mut self.key_state) & ((1u64 << self.key_bits) - 1);
        // Key 0 is reserved (unprogrammed slots read 0).
        if key == 0 {
            1
        } else {
            key
        }
    }

    fn next_rand(&mut self) -> u64 {
        splitmix(&mut self.rng_state)
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::{PhysAddr, PhysLayout, PhysMemory};
    use udma_nic::{EngineConfig, Initiator};

    fn engine(contexts: u32) -> EngineCore {
        let layout = PhysLayout::default();
        let mem = Rc::new(RefCell::new(PhysMemory::new(1 << 22)));
        EngineCore::new(
            layout,
            mem,
            EngineConfig { num_contexts: contexts, ..EngineConfig::default() },
        )
    }

    fn cache(contexts: u32) -> CtxCache {
        CtxCache::new(contexts, CtxCacheConfig::default())
    }

    #[test]
    fn hits_are_free_and_fills_charge() {
        let mut core = engine(2);
        let mut c = cache(2);
        let p = c.register(QosClass::BestEffort, SimTime::ZERO);
        let a = c.acquire(p, &mut core, SimTime::ZERO);
        assert!(matches!(a, Acquired::Filled { stole: None, .. }));
        assert!(a.cost() > SimTime::ZERO);
        // The key landed in the NI key table.
        assert_eq!(core.key(a.ctx().unwrap()), c.key_of(p));
        let b = c.acquire(p, &mut core, SimTime::ZERO);
        assert_eq!(b, Acquired::Hit { ctx: a.ctx().unwrap() });
        assert_eq!(b.cost(), SimTime::ZERO);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn lru_steals_the_coldest() {
        let mut core = engine(2);
        let mut c = cache(2);
        let p0 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let p1 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let p2 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let c0 = c.acquire(p0, &mut core, SimTime::ZERO).ctx().unwrap();
        let _c1 = c.acquire(p1, &mut core, SimTime::ZERO).ctx().unwrap();
        // Touch p0 again: p1 is now the LRU victim.
        c.acquire(p0, &mut core, SimTime::ZERO);
        let a = c.acquire(p2, &mut core, SimTime::ZERO);
        assert!(matches!(a, Acquired::Filled { stole: Some(v), .. } if v == p1));
        assert_ne!(a.ctx().unwrap(), c0);
        assert_eq!(c.resident(p1), None);
        assert_eq!(core.ctx_stats().steals, 1);
    }

    #[test]
    fn spilled_process_refills_with_same_key() {
        let mut core = engine(1);
        let mut c = cache(1);
        let p0 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let p1 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let k0 = c.key_of(p0);
        c.acquire(p0, &mut core, SimTime::ZERO);
        // Stage an argument, get stolen, come back: the argument and
        // key survive the round trip.
        core.context_mut(0).push_addr(PhysAddr::new(0x4000));
        c.acquire(p1, &mut core, SimTime::from_us(100));
        assert_eq!(c.resident(p0), None);
        let a = c.acquire(p0, &mut core, SimTime::from_us(200));
        assert!(matches!(a, Acquired::Filled { stole: Some(v), .. } if v == p1));
        assert_eq!(core.key(0), k0);
        assert_eq!(core.context(0).dest(), Some(PhysAddr::new(0x4000)));
    }

    #[test]
    fn busy_victims_are_skipped() {
        let mut core = engine(2);
        let mut c = cache(2);
        let p0 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let p1 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let p2 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let c0 = c.acquire(p0, &mut core, SimTime::ZERO).ctx().unwrap();
        let c1 = c.acquire(p1, &mut core, SimTime::ZERO).ctx().unwrap();
        // p0's context (the LRU victim) is mid-transfer: the steal must
        // take p1's instead.
        let idx = core
            .start_user_dma(
                PhysAddr::new(0x2000),
                PhysAddr::new(0x6000),
                4096,
                Initiator::Context(c0),
                SimTime::ZERO,
            )
            .unwrap();
        core.context_mut(c0).set_last_transfer(idx);
        let a = c.acquire(p2, &mut core, SimTime::ZERO);
        assert_eq!(a.ctx(), Some(c1));
        assert!(matches!(a, Acquired::Filled { stole: Some(v), .. } if v == p1));
        assert!(c.stats().busy_skips >= 1);
    }

    #[test]
    fn all_victims_busy_means_starved() {
        let mut core = engine(1);
        let mut c = cache(1);
        let p0 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let p1 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let c0 = c.acquire(p0, &mut core, SimTime::ZERO).ctx().unwrap();
        let idx = core
            .start_user_dma(
                PhysAddr::new(0x2000),
                PhysAddr::new(0x6000),
                4096,
                Initiator::Context(c0),
                SimTime::ZERO,
            )
            .unwrap();
        core.context_mut(c0).set_last_transfer(idx);
        let a = c.acquire(p1, &mut core, SimTime::ZERO);
        assert!(matches!(a, Acquired::Starved { .. }));
        assert!(a.fallback());
        assert_eq!(core.ctx_stats().starvations, 1);
    }

    #[test]
    fn best_effort_cannot_evict_guaranteed() {
        let mut core = engine(1);
        let mut c = cache(1);
        let g = c.register(QosClass::Guaranteed, SimTime::ZERO);
        let b = c.register(QosClass::BestEffort, SimTime::ZERO);
        c.acquire(g, &mut core, SimTime::ZERO);
        let a = c.acquire(b, &mut core, SimTime::ZERO);
        assert!(matches!(a, Acquired::Starved { .. }), "got {a:?}");
        assert_eq!(c.resident(g), Some(0), "guaranteed tenant keeps its context");
        // The guaranteed tenant can evict best-effort, though.
        let mut core2 = engine(1);
        let mut c2 = cache(1);
        let b2 = c2.register(QosClass::BestEffort, SimTime::ZERO);
        let g2 = c2.register(QosClass::Guaranteed, SimTime::ZERO);
        c2.acquire(b2, &mut core2, SimTime::ZERO);
        let a2 = c2.acquire(g2, &mut core2, SimTime::ZERO);
        assert!(matches!(a2, Acquired::Filled { stole: Some(v), .. } if v == b2));
    }

    #[test]
    fn reservation_keeps_slots_for_guaranteed() {
        // 2 contexts, 1 reserved. The best-effort swarm arrives first
        // and pins its context with an in-flight transfer; the
        // guaranteed tenant must still find a slot.
        let mut core = engine(2);
        let mut c = CtxCache::new(
            2,
            CtxCacheConfig {
                arbiter: ArbiterConfig { reserved: 1, ..ArbiterConfig::default() },
                ..CtxCacheConfig::default()
            },
        );
        let b0 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let b1 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let g = c.register(QosClass::Guaranteed, SimTime::ZERO);
        let cb = c.acquire(b0, &mut core, SimTime::ZERO).ctx().unwrap();
        let idx = core
            .start_user_dma(
                PhysAddr::new(0x2000),
                PhysAddr::new(0x6000),
                4096,
                Initiator::Context(cb),
                SimTime::ZERO,
            )
            .unwrap();
        core.context_mut(cb).set_last_transfer(idx);
        // The second best-effort tenant is capped: the free slot is
        // reserved, its only same-tier victim is busy → starved.
        let a1 = c.acquire(b1, &mut core, SimTime::ZERO);
        assert!(matches!(a1, Acquired::Starved { .. }), "got {a1:?}");
        // The guaranteed tenant takes the reserved free slot.
        let ag = c.acquire(g, &mut core, SimTime::ZERO);
        assert!(matches!(ag, Acquired::Filled { stole: None, .. }), "got {ag:?}");
    }

    #[test]
    fn tight_steal_loop_throttles() {
        let mut core = engine(1);
        let mut c = cache(1);
        let p0 = c.register(QosClass::BestEffort, SimTime::ZERO);
        let p1 = c.register(QosClass::BestEffort, SimTime::ZERO);
        // Ping-pong at the same instant: after the two buckets drain
        // (2 × burst steals), further steals are throttled.
        let mut throttled = 0;
        for i in 0..64 {
            let p = if i % 2 == 0 { p0 } else { p1 };
            if matches!(c.acquire(p, &mut core, SimTime::ZERO), Acquired::Throttled { .. }) {
                throttled += 1;
            }
        }
        assert!(throttled > 0, "tight loop must hit the token bucket");
        assert_eq!(c.stats().throttled, throttled);
        // Paced steals (one per refill) are admitted again.
        let cfg = ArbiterConfig::default();
        let later = SimTime::from_ps(cfg.refill.as_ps() * 1000);
        assert!(!c.acquire(p0, &mut core, later).fallback());
    }

    #[test]
    fn release_frees_the_slot() {
        let mut core = engine(2);
        let mut c = cache(2);
        let p = c.register(QosClass::BestEffort, SimTime::ZERO);
        c.acquire(p, &mut core, SimTime::ZERO);
        assert!(c.release(p, &mut core, SimTime::ZERO));
        assert_eq!(c.resident(p), None);
        assert_eq!(core.key(0), 0, "released slot is scrubbed");
        // Re-acquire refills into a free slot without stealing.
        let a = c.acquire(p, &mut core, SimTime::ZERO);
        assert!(matches!(a, Acquired::Filled { stole: None, .. }));
    }

    #[test]
    fn policies_are_deterministic_per_seed() {
        for policy in [CtxVictimPolicy::Lru, CtxVictimPolicy::Clock, CtxVictimPolicy::Random] {
            let run = || {
                let mut core = engine(4);
                let mut c = CtxCache::new(
                    4,
                    CtxCacheConfig { victim: policy, seed: 99, ..CtxCacheConfig::default() },
                );
                let ps: Vec<LPid> =
                    (0..16).map(|_| c.register(QosClass::BestEffort, SimTime::ZERO)).collect();
                let mut trace = Vec::new();
                for round in 0..64u64 {
                    let p = ps[(round * 7 % 16) as usize];
                    let a = c.acquire(p, &mut core, SimTime::from_us(round));
                    trace.push(a.ctx());
                }
                trace
            };
            assert_eq!(run(), run(), "{policy} must be deterministic");
        }
    }

    #[test]
    #[should_panic(expected = "context count out of range")]
    fn too_many_contexts_panics() {
        let _ = CtxCache::new(MAX_CONTEXTS + 1, CtxCacheConfig::default());
    }
}
