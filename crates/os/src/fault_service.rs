//! OS-side service of I/O page faults raised during virtual-address DMA.
//!
//! When the engine's IOMMU cannot translate a page mid-transfer it pauses
//! the transfer and queues an [`IoFault`]. This module is the kernel
//! handler that drains the queue: it consults the faulting process's
//! **CPU page table** — the ground truth of what the process may touch —
//! and either installs the missing I/O translation (pinning the page so
//! the swapper keeps its hands off until the transfer drains), swaps the
//! page back in first, or declares the fault unresolvable, after which
//! the OS fails the transfer. Costs are charged in simulated time so the
//! fault path's expense relative to an IOTLB hit is measurable (the E12
//! experiment).
//!
//! The alternative discipline, pin-on-post ([`pin_range`]), registers a
//! whole buffer up front — RDMA-style memory registration: transfers
//! then never fault, at the cost of eager pinning.

use crate::VmManager;
use udma_bus::SimTime;
use udma_iommu::{IoFault, IoFaultKind, Iommu};
use udma_mem::{MemFault, PageTable, VirtAddr, PAGE_SIZE};

/// Simulated costs of the fault-service path.
#[derive(Clone, Copy, Debug)]
pub struct FaultCosts {
    /// Fixed entry cost: interrupt delivery, queue pop, table lookup.
    pub service_base: SimTime,
    /// Installing one I/O page-table entry (plus shootdown bookkeeping).
    pub map_page: SimTime,
    /// Bringing a swapped-out page back from backing store. Dominates
    /// everything else, as a real page-in does.
    pub swap_in: SimTime,
}

impl Default for FaultCosts {
    fn default() -> Self {
        FaultCosts {
            service_base: SimTime::from_us(5),
            map_page: SimTime::from_us(1),
            swap_in: SimTime::from_us(50),
        }
    }
}

/// How a fault was resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultResolution {
    /// The page was resident and accessible; its I/O translation was
    /// installed (pinned).
    Mapped,
    /// The page was swapped out; it was brought back and its I/O
    /// translation installed (pinned).
    SwappedIn,
    /// The posting address space has no right to the page (or no such
    /// page at all). The transfer must be failed.
    Unresolvable,
}

/// Counters of the fault service.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultServiceStats {
    /// Faults serviced (all outcomes).
    pub serviced: u64,
    /// Resolved by installing a translation for a resident page.
    pub mapped: u64,
    /// Resolved by swapping the page back in first.
    pub swapped_in: u64,
    /// Declared unresolvable.
    pub unresolvable: u64,
    /// Extra pages pre-installed by range service beyond the faulting
    /// page itself (the one-NACK-per-range discipline).
    pub range_prefilled: u64,
    /// Total simulated time spent servicing.
    pub busy: SimTime,
}

/// The kernel's I/O fault handler.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultService {
    costs: FaultCosts,
    stats: FaultServiceStats,
}

impl FaultService {
    /// Creates a service with the given cost model.
    pub fn new(costs: FaultCosts) -> Self {
        FaultService { costs, stats: FaultServiceStats::default() }
    }

    /// The cost model.
    pub fn costs(&self) -> FaultCosts {
        self.costs
    }

    /// Service counters.
    pub fn stats(&self) -> FaultServiceStats {
        self.stats
    }

    /// Services one fault against the faulting process's CPU page table.
    /// Returns the resolution and the simulated time the service took;
    /// the caller resumes (or fails) the paused transfer accordingly.
    pub fn service(
        &mut self,
        fault: &IoFault,
        pt: &mut PageTable,
        vm: &mut VmManager,
        iommu: &mut Iommu,
    ) -> (FaultResolution, SimTime) {
        let mut cost = self.costs.service_base;
        let page = fault.va.page();
        let resolution = if fault.kind == IoFaultKind::NoContext || !iommu.has_context(fault.asid) {
            FaultResolution::Unresolvable
        } else if vm.swapped_out(fault.asid, page) {
            let pte = vm.swap_in(fault.asid, pt, page).expect("ledger said swapped out");
            cost += self.costs.swap_in;
            if pte.perms.allows(fault.access.required_perms()) {
                cost += self.costs.map_page;
                install(iommu, fault, pt);
                FaultResolution::SwappedIn
            } else {
                FaultResolution::Unresolvable
            }
        } else {
            match pt.entry(page) {
                Some(pte) if pte.perms.allows(fault.access.required_perms()) => {
                    cost += self.costs.map_page;
                    install(iommu, fault, pt);
                    FaultResolution::Mapped
                }
                _ => FaultResolution::Unresolvable,
            }
        };
        self.stats.serviced += 1;
        self.stats.busy += cost;
        match resolution {
            FaultResolution::Mapped => self.stats.mapped += 1,
            FaultResolution::SwappedIn => self.stats.swapped_in += 1,
            FaultResolution::Unresolvable => self.stats.unresolvable += 1,
        }
        (resolution, cost)
    }

    /// Services `fault` and then, in the same kernel entry, pre-installs
    /// pinned I/O translations for every further page of
    /// `[va, va + len)` — the announced remainder of an incoming
    /// transfer, so the device takes **one** fault for the whole range
    /// instead of one per page. The entry cost (`service_base`) is
    /// charged once by the inner [`service`](Self::service) call; each
    /// extra page adds `map_page` (plus `swap_in` if it was paged out).
    /// Pages already translated are skipped, which keeps the call
    /// idempotent under retransmitted fault notifications; the walk
    /// stops at the first page the table does not map or whose
    /// permissions refuse the access (the transfer faults there on its
    /// own if it ever reaches it). The returned resolution is that of
    /// the faulting page alone.
    pub fn service_range(
        &mut self,
        fault: &IoFault,
        va: VirtAddr,
        len: u64,
        pt: &mut PageTable,
        vm: &mut VmManager,
        iommu: &mut Iommu,
    ) -> (FaultResolution, SimTime) {
        let (resolution, mut cost) = self.service(fault, pt, vm, iommu);
        if resolution == FaultResolution::Unresolvable || len == 0 {
            return (resolution, cost);
        }
        let needed = fault.access.required_perms();
        let first = va.page().number();
        let pages = (va.page_offset() + len).div_ceil(PAGE_SIZE);
        let mut extra = SimTime::ZERO;
        for n in first..first + pages {
            let page = udma_mem::VirtPage::new(n);
            if page == fault.va.page()
                || iommu.table(fault.asid).is_some_and(|t| t.entry(page).is_some())
            {
                continue;
            }
            if vm.swapped_out(fault.asid, page) {
                let pte = vm.swap_in(fault.asid, pt, page).expect("ledger said swapped out");
                extra += self.costs.swap_in;
                self.stats.swapped_in += 1;
                if !pte.perms.allows(needed) {
                    break;
                }
            }
            match pt.entry(page) {
                Some(pte) if pte.perms.allows(needed) => {
                    let (frame, perms) = (pte.frame, pte.perms);
                    extra += self.costs.map_page;
                    iommu.map(fault.asid, page, frame, perms, true).expect("entry absent");
                    self.stats.range_prefilled += 1;
                }
                _ => break,
            }
        }
        cost += extra;
        self.stats.busy += extra;
        (resolution, cost)
    }
}

/// Copies the CPU PTE of the faulting page into the I/O page table,
/// pinned. Handles the protection-fault case where an I/O entry already
/// exists but with stale (narrower) permissions.
fn install(iommu: &mut Iommu, fault: &IoFault, pt: &PageTable) {
    let page = fault.va.page();
    let pte = *pt.entry(page).expect("caller checked residency");
    let present = iommu.table(fault.asid).is_some_and(|t| t.entry(page).is_some());
    if present {
        iommu.protect(fault.asid, page, pte.perms).expect("entry present");
    } else {
        iommu.map(fault.asid, page, pte.frame, pte.perms, true).expect("context present");
    }
    iommu.set_pinned(fault.asid, page, true).expect("just installed");
}

/// Pin-on-post registration: installs pinned I/O translations for every
/// page of `[va, va + len)` from the process's CPU page table, so
/// transfers over the range never fault (the RDMA memory-registration
/// discipline). Returns the number of pages registered; pages already
/// registered are left pinned.
///
/// # Errors
///
/// [`MemFault::Unmapped`] at the first page the CPU table does not map;
/// nothing past it is registered.
pub fn pin_range(
    asid: u32,
    va: VirtAddr,
    len: u64,
    pt: &PageTable,
    iommu: &mut Iommu,
) -> Result<u64, MemFault> {
    let first = va.page().number();
    let last = (va.as_u64() + len.max(1) - 1) / PAGE_SIZE;
    let mut registered = 0;
    for n in first..=last {
        let page = udma_mem::VirtPage::new(n);
        let pte = *pt.entry(page).ok_or(MemFault::Unmapped { va: page.base() })?;
        match iommu.map(asid, page, pte.frame, pte.perms, true) {
            Ok(()) => registered += 1,
            Err(MemFault::AlreadyMapped { .. }) => {
                iommu.set_pinned(asid, page, true).expect("entry present");
            }
            Err(e) => return Err(e),
        }
    }
    Ok(registered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShadowMode;
    use udma_mem::{Access, Perms, PhysLayout};

    fn setup() -> (FaultService, VmManager, PageTable, Iommu) {
        let mut vm = VmManager::new(PhysLayout::default());
        let mut pt = PageTable::new();
        vm.map_buffer(&mut pt, VirtAddr::new(0x4000), 2, Perms::READ_WRITE, ShadowMode::None)
            .unwrap();
        let mut iommu = Iommu::new(udma_iommu::IotlbConfig::default());
        iommu.create_context(1);
        (FaultService::default(), vm, pt, iommu)
    }

    fn fault(asid: u32, va: u64, kind: IoFaultKind) -> IoFault {
        IoFault { asid, va: VirtAddr::new(va), access: Access::Read, kind }
    }

    #[test]
    fn resident_page_gets_mapped_and_pinned() {
        let (mut svc, mut vm, mut pt, mut iommu) = setup();
        let f = fault(1, 0x4000, IoFaultKind::Unmapped);
        let (res, cost) = svc.service(&f, &mut pt, &mut vm, &mut iommu);
        assert_eq!(res, FaultResolution::Mapped);
        assert_eq!(cost, SimTime::from_us(6)); // base + map
        assert!(iommu.translate(1, VirtAddr::new(0x4000), Access::Read).is_ok());
        let page = VirtAddr::new(0x4000).page();
        assert!(iommu.table(1).unwrap().entry(page).unwrap().pinned);
        assert_eq!(svc.stats().mapped, 1);
    }

    #[test]
    fn swapped_out_page_costs_a_page_in() {
        let (mut svc, mut vm, mut pt, mut iommu) = setup();
        vm.swap_out(1, &mut pt, VirtAddr::new(0x4000).page()).unwrap();
        let f = fault(1, 0x4000, IoFaultKind::Unmapped);
        let (res, cost) = svc.service(&f, &mut pt, &mut vm, &mut iommu);
        assert_eq!(res, FaultResolution::SwappedIn);
        assert_eq!(cost, SimTime::from_us(56)); // base + swap_in + map
        assert!(pt.translate(VirtAddr::new(0x4000), Access::Read).is_ok());
        assert_eq!(svc.stats().swapped_in, 1);
        assert_eq!(svc.stats().busy, cost);
    }

    #[test]
    fn foreign_or_absent_pages_are_unresolvable() {
        let (mut svc, mut vm, mut pt, mut iommu) = setup();
        // A VA the process simply does not map.
        let f = fault(1, 0x9000_0000, IoFaultKind::Unmapped);
        assert_eq!(svc.service(&f, &mut pt, &mut vm, &mut iommu).0, FaultResolution::Unresolvable);
        // A context the IOMMU does not know.
        let f = fault(9, 0x4000, IoFaultKind::NoContext);
        assert_eq!(svc.service(&f, &mut pt, &mut vm, &mut iommu).0, FaultResolution::Unresolvable);
        assert_eq!(svc.stats().unresolvable, 2);
    }

    #[test]
    fn protection_fault_refreshes_stale_io_perms() {
        let (mut svc, mut vm, mut pt, mut iommu) = setup();
        // I/O table has a stale read-only entry; the CPU table says RW.
        let page = VirtAddr::new(0x4000).page();
        let pte = *pt.entry(page).unwrap();
        iommu.map(1, page, pte.frame, Perms::READ, false).unwrap();
        let f = IoFault {
            asid: 1,
            va: VirtAddr::new(0x4000),
            access: Access::Write,
            kind: IoFaultKind::Protection { needed: Perms::WRITE, granted: Perms::READ },
        };
        let (res, _) = svc.service(&f, &mut pt, &mut vm, &mut iommu);
        assert_eq!(res, FaultResolution::Mapped);
        assert!(iommu.translate(1, VirtAddr::new(0x4000), Access::Write).is_ok());
    }

    #[test]
    fn service_range_installs_the_whole_range_for_one_base_cost() {
        let (mut svc, mut vm, mut pt, mut iommu) = setup();
        // Two pages mapped at 0x4000; page the second one out so the
        // range walk exercises the swap-in path too.
        vm.swap_out(1, &mut pt, VirtAddr::new(0x4000 + PAGE_SIZE).page()).unwrap();
        let f = fault(1, 0x4000, IoFaultKind::Unmapped);
        let range = VirtAddr::new(0x4000);
        let (res, cost) = svc.service_range(&f, range, 3 * PAGE_SIZE, &mut pt, &mut vm, &mut iommu);
        assert_eq!(res, FaultResolution::Mapped);
        // One base + map for the faulting page, then swap_in + map for
        // the second; the third page is a hole and stops the walk
        // without affecting the fault's resolution.
        assert_eq!(cost, SimTime::from_us(5 + 1 + 50 + 1));
        let second = VirtAddr::new(0x4000 + PAGE_SIZE);
        assert!(iommu.translate(1, second, Access::Read).is_ok());
        assert!(iommu.table(1).unwrap().entry(second.page()).unwrap().pinned);
        assert_eq!(svc.stats().range_prefilled, 1);
        // Idempotent under a duplicated NACK: everything is installed,
        // so the retry costs one ordinary single-page service.
        let (res2, cost2) =
            svc.service_range(&f, range, 3 * PAGE_SIZE, &mut pt, &mut vm, &mut iommu);
        assert_eq!(res2, FaultResolution::Mapped);
        assert_eq!(cost2, SimTime::from_us(6));
        assert_eq!(svc.stats().range_prefilled, 1, "no double prefill");
        assert_eq!(svc.stats().swapped_in, 1, "no phantom swap-in on the duplicate");
    }

    #[test]
    fn pin_range_registers_every_page_or_nothing_past_a_hole() {
        let (_, _, pt, mut iommu) = setup();
        // Two mapped pages: both register.
        assert_eq!(pin_range(1, VirtAddr::new(0x4000), 2 * PAGE_SIZE, &pt, &mut iommu), Ok(2));
        // Idempotent: re-registration pins, doesn't duplicate.
        assert_eq!(pin_range(1, VirtAddr::new(0x4100), 64, &pt, &mut iommu), Ok(0));
        // A range running past the buffer stops at the hole.
        assert!(pin_range(1, VirtAddr::new(0x4000), 3 * PAGE_SIZE, &pt, &mut iommu).is_err());
        assert!(iommu.translate(1, VirtAddr::new(0x4000 + PAGE_SIZE + 8), Access::Write).is_ok());
    }
}
