//! Virtual-memory management: user buffers and their shadow mappings.

use std::collections::BTreeMap;
use udma_mem::{
    FrameAllocator, MemFault, PageTable, Perms, PhysFrame, PhysLayout, PteEntry, VirtAddr,
    VirtPage, PAGE_SIZE,
};
use udma_nic::regs;

/// Conventional virtual address at which a process's register-context
/// page is mapped (well above any data buffer).
pub const CTX_PAGE_VA_BASE: u64 = 1 << 30;

/// How the kernel shadow-maps a buffer at allocation time (§2.3 footnote:
/// "the operating system is responsible for creating both mappings at
/// memory allocation (initialization) time").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShadowMode {
    /// No shadow twin: the buffer cannot be named in user-level DMA.
    None,
    /// Plain shadow mapping (context id 0 in the shadow physical
    /// address) — what §2.3–§3.1 and §3.3 use.
    Plain,
    /// Extended shadow mapping carrying this context id (§3.2).
    WithCtx(u32),
}

/// A user buffer the kernel has mapped (and possibly shadow-mapped).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MappedBuffer {
    /// Base virtual address of the data mapping.
    pub va: VirtAddr,
    /// Base virtual address of the shadow mapping (valid only if a shadow
    /// mode other than `None` was requested).
    pub shadow_va: VirtAddr,
    /// Number of pages.
    pub pages: u64,
    /// First backing frame (frames are contiguous for a multi-page
    /// buffer).
    pub first_frame: PhysFrame,
    /// Permissions of the data (and shadow) mapping.
    pub perms: Perms,
}

impl MappedBuffer {
    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.pages * PAGE_SIZE
    }

    /// Whether the buffer has no pages.
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }
}

/// Allocates frames and installs data + shadow mappings.
#[derive(Clone, Debug)]
pub struct VmManager {
    layout: PhysLayout,
    frames: FrameAllocator,
    /// Swap ledger: PTEs the swapper has taken out of address spaces,
    /// keyed by (address-space id, page). The model keeps the frame
    /// contents in place — only the *mapping* disappears, which is what
    /// a device-side translation observes — so swap-in restores the
    /// original entry.
    swapped: BTreeMap<(u32, VirtPage), PteEntry>,
}

impl VmManager {
    /// Creates a VM manager over the machine's RAM.
    pub fn new(layout: PhysLayout) -> Self {
        // Frame 0 is reserved (null-page hygiene).
        let total = layout.ram_size >> udma_mem::PAGE_SHIFT;
        VmManager {
            layout,
            frames: FrameAllocator::with_range(1, total - 1),
            swapped: BTreeMap::new(),
        }
    }

    /// Swaps a page out of address space `asid`: removes the CPU PTE and
    /// remembers it in the swap ledger. The caller is responsible for the
    /// matching IOMMU unmap/shootdown (and for honouring I/O pin bits —
    /// the swapper must not steal a page a device transfer relies on).
    ///
    /// # Errors
    ///
    /// [`MemFault::Unmapped`] if the page is not mapped.
    pub fn swap_out(
        &mut self,
        asid: u32,
        pt: &mut PageTable,
        page: VirtPage,
    ) -> Result<(), MemFault> {
        let pte = pt.unmap(page).ok_or(MemFault::Unmapped { va: page.base() })?;
        self.swapped.insert((asid, page), pte);
        Ok(())
    }

    /// Swaps a page back in: reinstalls the remembered PTE (same frame,
    /// same permissions). Returns the restored entry.
    ///
    /// # Errors
    ///
    /// [`MemFault::Unmapped`] if the page is not in the swap ledger.
    pub fn swap_in(
        &mut self,
        asid: u32,
        pt: &mut PageTable,
        page: VirtPage,
    ) -> Result<PteEntry, MemFault> {
        let pte =
            self.swapped.remove(&(asid, page)).ok_or(MemFault::Unmapped { va: page.base() })?;
        pt.map(page, pte.frame, pte.perms)?;
        Ok(pte)
    }

    /// Whether `page` of address space `asid` is swapped out.
    pub fn swapped_out(&self, asid: u32, page: VirtPage) -> bool {
        self.swapped.contains_key(&(asid, page))
    }

    /// The machine layout.
    pub fn layout(&self) -> &PhysLayout {
        &self.layout
    }

    /// Frames still available.
    pub fn frames_available(&self) -> u64 {
        self.frames.available()
    }

    /// Maps `pages` fresh frames at `va` with `perms`, plus a shadow twin
    /// per `mode`. The shadow PTE points into the NIC's shadow window and
    /// carries the same permissions, which is exactly what makes shadow
    /// addressing safe: a process can only name physical pages it could
    /// access anyway.
    ///
    /// # Errors
    ///
    /// [`MemFault::AlreadyMapped`] if any target page is taken;
    /// [`MemFault::BusError`] if physical memory is exhausted.
    pub fn map_buffer(
        &mut self,
        pt: &mut PageTable,
        va: VirtAddr,
        pages: u64,
        perms: Perms,
        mode: ShadowMode,
    ) -> Result<MappedBuffer, MemFault> {
        assert!(va.is_page_aligned(), "buffer base must be page aligned");
        assert!(pages > 0, "buffer must have at least one page");
        let mut first = None;
        for i in 0..pages {
            let frame = self.alloc_contiguous(&mut first, i)?;
            let page = va.page().offset(i);
            pt.map(page, frame, perms)?;
            self.install_shadow(pt, page, frame, perms, mode)?;
        }
        Ok(MappedBuffer {
            va,
            shadow_va: self.layout.shadow.shadow_vaddr(va),
            pages,
            first_frame: first.expect("pages > 0"),
            perms,
        })
    }

    fn alloc_contiguous(
        &mut self,
        first: &mut Option<PhysFrame>,
        index: u64,
    ) -> Result<PhysFrame, MemFault> {
        let frame = match *first {
            // Contiguity is guaranteed by the bump allocator as long as
            // nothing frees in between; assert it.
            Some(f) => {
                let next = self.frames.alloc().ok_or(MemFault::BusError {
                    pa: udma_mem::PhysAddr::new(self.layout.ram_size),
                })?;
                debug_assert_eq!(next.number(), f.number() + index, "frames not contiguous");
                next
            }
            None => {
                let f = self.frames.alloc().ok_or(MemFault::BusError {
                    pa: udma_mem::PhysAddr::new(self.layout.ram_size),
                })?;
                *first = Some(f);
                f
            }
        };
        Ok(frame)
    }

    /// Maps an *existing* frame range into another process (shared
    /// memory), with shadow twins per `mode`.
    ///
    /// # Errors
    ///
    /// [`MemFault::AlreadyMapped`] if any target page is taken.
    pub fn map_shared(
        &mut self,
        pt: &mut PageTable,
        va: VirtAddr,
        first_frame: PhysFrame,
        pages: u64,
        perms: Perms,
        mode: ShadowMode,
    ) -> Result<MappedBuffer, MemFault> {
        assert!(va.is_page_aligned(), "buffer base must be page aligned");
        for i in 0..pages {
            let frame = first_frame.offset(i);
            let page = va.page().offset(i);
            pt.map(page, frame, perms)?;
            self.install_shadow(pt, page, frame, perms, mode)?;
        }
        Ok(MappedBuffer {
            va,
            shadow_va: self.layout.shadow.shadow_vaddr(va),
            pages,
            first_frame,
            perms,
        })
    }

    fn install_shadow(
        &self,
        pt: &mut PageTable,
        page: VirtPage,
        frame: PhysFrame,
        perms: Perms,
        mode: ShadowMode,
    ) -> Result<(), MemFault> {
        let ctx = match mode {
            ShadowMode::None => return Ok(()),
            ShadowMode::Plain => 0,
            ShadowMode::WithCtx(c) => c,
        };
        let shadow_pa = self
            .layout
            .shadow
            .shadow_paddr_ctx(frame.base(), ctx)
            .expect("RAM is shadow-addressable (layout validated)");
        let shadow_page = self.layout.shadow.shadow_vaddr(page.base()).page();
        pt.map(shadow_page, shadow_pa.page(), perms)
    }

    /// Maps register-context page `ctx` into the process at the
    /// conventional VA, read-write (§3.1: "each context is mapped into
    /// memory address space so that the processor can access it").
    ///
    /// Returns the VA of the context page.
    ///
    /// # Errors
    ///
    /// [`MemFault::AlreadyMapped`] if the process already has a context
    /// page mapped there.
    pub fn map_ctx_page(&self, pt: &mut PageTable, ctx: u32) -> Result<VirtAddr, MemFault> {
        let va = VirtAddr::new(CTX_PAGE_VA_BASE);
        let pa = self.layout.nic_base + regs::ctx_page_offset(ctx);
        pt.map(va.page(), pa.page(), Perms::READ_WRITE)?;
        Ok(va)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udma_mem::{Access, PhysAddr};

    fn vm() -> (VmManager, PageTable) {
        (VmManager::new(PhysLayout::default()), PageTable::new())
    }

    #[test]
    fn map_buffer_installs_data_and_shadow() {
        let (mut vm, mut pt) = vm();
        let buf = vm
            .map_buffer(&mut pt, VirtAddr::new(0x4000), 2, Perms::READ_WRITE, ShadowMode::Plain)
            .unwrap();
        assert_eq!(buf.len(), 2 * PAGE_SIZE);
        assert!(!buf.is_empty());
        // Data mapping translates to RAM.
        let pa = pt.translate(buf.va, Access::Write).unwrap();
        assert_eq!(pa, buf.first_frame.base());
        // Shadow mapping translates into the shadow window and decodes
        // back to the same frame.
        let spa = pt.translate(buf.shadow_va, Access::Write).unwrap();
        let layout = PhysLayout::default();
        assert!(layout.shadow.is_shadow(spa));
        let (plain, ctx) = layout.shadow.decode(spa).unwrap();
        assert_eq!(plain, pa);
        assert_eq!(ctx, 0);
        // Second page also shadow-mapped.
        let spa2 = pt.translate(buf.shadow_va + PAGE_SIZE, Access::Read).unwrap();
        assert_eq!(layout.shadow.decode(spa2).unwrap().0, pa + PAGE_SIZE);
    }

    #[test]
    fn shadow_mode_none_has_no_twin() {
        let (mut vm, mut pt) = vm();
        let buf = vm
            .map_buffer(&mut pt, VirtAddr::new(0x4000), 1, Perms::READ_WRITE, ShadowMode::None)
            .unwrap();
        assert!(pt.translate(buf.shadow_va, Access::Read).is_err());
    }

    #[test]
    fn ext_shadow_mapping_carries_ctx() {
        let (mut vm, mut pt) = vm();
        let buf = vm
            .map_buffer(
                &mut pt,
                VirtAddr::new(0x4000),
                1,
                Perms::READ_WRITE,
                ShadowMode::WithCtx(2),
            )
            .unwrap();
        let spa = pt.translate(buf.shadow_va, Access::Write).unwrap();
        let (_, ctx) = PhysLayout::default().shadow.decode(spa).unwrap();
        assert_eq!(ctx, 2);
    }

    #[test]
    fn shadow_mapping_inherits_perms() {
        let (mut vm, mut pt) = vm();
        let buf = vm
            .map_buffer(&mut pt, VirtAddr::new(0x4000), 1, Perms::READ, ShadowMode::Plain)
            .unwrap();
        assert!(pt.translate(buf.shadow_va, Access::Read).is_ok());
        // Can't *store* to the shadow of a read-only page: protection
        // extends to the DMA path.
        assert!(matches!(
            pt.translate(buf.shadow_va, Access::Write),
            Err(MemFault::Protection { .. })
        ));
    }

    #[test]
    fn map_shared_aliases_frames() {
        let (mut vm, mut pt_a) = vm();
        let mut pt_b = PageTable::new();
        let buf = vm
            .map_buffer(&mut pt_a, VirtAddr::new(0x4000), 1, Perms::READ_WRITE, ShadowMode::Plain)
            .unwrap();
        let shared = vm
            .map_shared(
                &mut pt_b,
                VirtAddr::new(0x8000),
                buf.first_frame,
                1,
                Perms::READ,
                ShadowMode::Plain,
            )
            .unwrap();
        let pa_a = pt_a.translate(buf.va, Access::Read).unwrap();
        let pa_b = pt_b.translate(shared.va, Access::Read).unwrap();
        assert_eq!(pa_a, pa_b);
    }

    #[test]
    fn ctx_page_mapping_points_into_nic_window() {
        let (vm, mut pt) = {
            let (v, p) = vm();
            (v, p)
        };
        let mut pt2 = pt.clone();
        let va = vm.map_ctx_page(&mut pt, 1).unwrap();
        assert_eq!(va, VirtAddr::new(CTX_PAGE_VA_BASE));
        let pa = pt.translate(va, Access::Write).unwrap();
        let layout = PhysLayout::default();
        assert_eq!(pa, layout.nic_base + regs::ctx_page_offset(1));
        // Distinct contexts map to distinct pages.
        let va2 = vm.map_ctx_page(&mut pt2, 2).unwrap();
        let pa2 = pt2.translate(va2, Access::Write).unwrap();
        assert_ne!(pa, pa2);
        assert_eq!(PhysAddr::new(pa2.as_u64() - pa.as_u64()), PhysAddr::new(PAGE_SIZE));
    }

    #[test]
    fn frames_run_out_eventually() {
        let layout = PhysLayout { ram_size: 4 * PAGE_SIZE, ..PhysLayout::default() };
        let mut vm = VmManager::new(layout);
        let mut pt = PageTable::new();
        // 3 usable frames (frame 0 reserved).
        assert_eq!(vm.frames_available(), 3);
        assert!(vm
            .map_buffer(&mut pt, VirtAddr::new(0x4000), 3, Perms::READ_WRITE, ShadowMode::None)
            .is_ok());
        assert!(vm
            .map_buffer(&mut pt, VirtAddr::new(0x40000), 1, Perms::READ_WRITE, ShadowMode::None)
            .is_err());
    }

    #[test]
    fn swap_ledger_round_trip() {
        let (mut vm, mut pt) = vm();
        let buf = vm
            .map_buffer(&mut pt, VirtAddr::new(0x4000), 1, Perms::READ_WRITE, ShadowMode::None)
            .unwrap();
        let page = buf.va.page();
        assert!(!vm.swapped_out(1, page));
        vm.swap_out(1, &mut pt, page).unwrap();
        assert!(vm.swapped_out(1, page));
        assert!(pt.translate(buf.va, Access::Read).is_err());
        // Swapping an unmapped page fails; swapping in for the wrong
        // address space fails.
        assert!(vm.swap_out(1, &mut pt, page).is_err());
        assert!(vm.swap_in(2, &mut pt, page).is_err());
        let pte = vm.swap_in(1, &mut pt, page).unwrap();
        assert_eq!(pte.frame, buf.first_frame);
        assert_eq!(pt.translate(buf.va, Access::Write).unwrap(), buf.first_frame.base());
        assert!(!vm.swapped_out(1, page));
    }

    #[test]
    fn double_map_rejected() {
        let (mut vm, mut pt) = vm();
        vm.map_buffer(&mut pt, VirtAddr::new(0x4000), 1, Perms::READ, ShadowMode::None).unwrap();
        assert!(matches!(
            vm.map_buffer(&mut pt, VirtAddr::new(0x4000), 1, Perms::READ, ShadowMode::None),
            Err(MemFault::AlreadyMapped { .. })
        ));
    }
}
