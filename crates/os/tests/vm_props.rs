//! Property tests for the VM manager's shadow-mapping invariants.

use udma_testkit::prop::{vec, Just, OneOf};
use udma_testkit::{one_of, prop_assert, prop_assert_eq, props};

use udma_mem::{Access, PageTable, Perms, PhysLayout, VirtAddr, PAGE_SIZE};
use udma_os::{ShadowMode, VmManager};

fn perms_strategy() -> OneOf<Perms> {
    one_of![Just(Perms::READ), Just(Perms::WRITE), Just(Perms::READ_WRITE),]
}

props! {
    /// Every data page of a mapped buffer translates, its shadow twin
    /// translates to the shadow of the SAME frame with the SAME context
    /// id, and permissions are identical on both mappings.
    fn shadow_twins_mirror_data_mappings(
        pages in 1u64..16,
        base_page in 2u64..64,
        perms in perms_strategy(),
        ctx in 0u32..4,
    ) {
        let layout = PhysLayout::default();
        let mut vm = VmManager::new(layout);
        let mut pt = PageTable::new();
        let va = VirtAddr::new(base_page * PAGE_SIZE);
        let buf = vm
            .map_buffer(&mut pt, va, pages, perms, ShadowMode::WithCtx(ctx))
            .unwrap();

        let access = if perms.can_read() { Access::Read } else { Access::Write };
        for p in 0..pages {
            let off = p * PAGE_SIZE;
            let pa = pt.translate(buf.va + off, access).unwrap();
            prop_assert_eq!(pa, buf.first_frame.offset(p).base());

            let spa = pt.translate(buf.shadow_va + off, access).unwrap();
            let (plain, got_ctx) = layout.shadow.decode(spa).unwrap();
            prop_assert_eq!(plain, pa);
            prop_assert_eq!(got_ctx, ctx);

            // Permission parity: an access the data page refuses, the
            // shadow page refuses too.
            for a in [Access::Read, Access::Write] {
                prop_assert_eq!(
                    pt.translate(buf.va + off, a).is_ok(),
                    pt.translate(buf.shadow_va + off, a).is_ok(),
                    "perm divergence at page {}", p
                );
            }
        }
    }

    /// ShadowMode::None really creates no twin; the shadow VA faults.
    fn no_shadow_mode_means_no_twin(pages in 1u64..8, base_page in 2u64..64) {
        let layout = PhysLayout::default();
        let mut vm = VmManager::new(layout);
        let mut pt = PageTable::new();
        let va = VirtAddr::new(base_page * PAGE_SIZE);
        let buf = vm
            .map_buffer(&mut pt, va, pages, Perms::READ_WRITE, ShadowMode::None)
            .unwrap();
        for p in 0..pages {
            prop_assert!(pt
                .translate(buf.shadow_va + p * PAGE_SIZE, Access::Read)
                .is_err());
        }
    }

    /// Buffers mapped one after another never alias each other's frames.
    fn successive_buffers_have_disjoint_frames(
        sizes in vec(1u64..8, 1..6),
    ) {
        let layout = PhysLayout::default();
        let mut vm = VmManager::new(layout);
        let mut pt = PageTable::new();
        let mut seen = std::collections::HashSet::new();
        for (i, &pages) in sizes.iter().enumerate() {
            let va = VirtAddr::new((2 + 64 * i as u64) * PAGE_SIZE);
            let buf = vm
                .map_buffer(&mut pt, va, pages, Perms::READ_WRITE, ShadowMode::Plain)
                .unwrap();
            for p in 0..pages {
                prop_assert!(
                    seen.insert(buf.first_frame.offset(p)),
                    "frame reused across buffers"
                );
            }
        }
    }
}
