//! The sharded cluster simulation: every node a full sender.
//!
//! The single-machine [`Machine`](crate::Machine) world advances one
//! sequential clock and models remote nodes as passive memories behind
//! the sender's DMA engine. This module is the cluster-scale
//! re-architecture on top of the deterministic sim kernel in
//! [`udma_bus::sim`]: a [`ClusterSim`] partitions its nodes over
//! shards, each node owns its *complete* local state — physical
//! memory, receive-side IOMMU, node OS ([`RemoteFaultService`]), and a
//! seeded chaos link — and all cross-node traffic (data chunks,
//! ACK/NACK, destination announcements) travels as
//! [`Envelope`]s over explicit latency-stamped channels, even between
//! nodes that happen to share a shard.
//!
//! # Why the result is independent of the shard count
//!
//! A node's state evolves only through the events addressed to it,
//! processed in `(arrival, src_node, seq)` order, where `seq` is the
//! *emitting node's* monotonic counter — a key that never mentions
//! shards. Whatever the layout, all of a node's events live in the one
//! queue of the shard that owns it and pop in key order, and the
//! runner's conservative-lookahead rounds give every layout the same
//! horizon sequence. So 1, 2, 4 and 8 shards — sequential or parallel —
//! replay byte-identical histories, which `tests/sharded_determinism.rs`
//! verifies against the sequential oracle, seed by seed.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::time::{Duration, Instant};
use udma_bus::sim::{
    ChannelBuilder, RunReport, RunnerKind, SimComponent, SimReceiver, SimRunner, SimSender, Stamped,
};
use udma_bus::SimTime;
use udma_iommu::{Asid, Iommu, IotlbConfig, IotlbStats};
use udma_mem::{Access, MemFault, Perms, PhysAddr, PhysMemory, VirtAddr, VirtPage, PAGE_SIZE};
use udma_nic::{
    crc32, DstAnnouncement, Envelope, FaultPlan, FaultyLink, LinkModel, NackVerdict, NetMsg,
    NodeLinkStats, ReliabilityConfig, SendXfer, XferCounters, XferId, XferState,
};
use udma_os::{
    FaultCosts, FaultResolution, FaultServiceStats, RemoteFaultService, RemoteSwapRefused,
};
use udma_testkit::rng::TestRng;

/// Configuration of a [`ClusterSim`]: topology, backend runner, link
/// and fault models. All existing single-machine knobs keep their
/// defaults; the two new ones are `shards` and `runner`.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Cluster size.
    pub nodes: u32,
    /// Shards the nodes are partitioned over (node `n` lives on shard
    /// `n % shards`). Clamped to `nodes` at build time.
    pub shards: usize,
    /// Sequential oracle or one-thread-per-shard parallel runner.
    pub runner: RunnerKind,
    /// Node-local RAM.
    pub node_bytes: u64,
    /// The wire between any two nodes; its propagation latency is the
    /// runner's conservative lookahead.
    pub link: LinkModel,
    /// Go-back-N parameters; `reliability.retry` doubles as the NACK
    /// retry budget, as in the single-machine world.
    pub reliability: ReliabilityConfig,
    /// Chaos plan applied to every node's *sending* link. Each node
    /// derives its own decorrelated PRNG seed from `plan.seed`.
    pub chaos: Option<FaultPlan>,
    /// Receive-side IOTLB geometry of every node.
    pub iotlb: IotlbConfig,
    /// Fault-service costs of every node OS.
    pub costs: FaultCosts,
    /// Whether [`ClusterSim::grant`] registers (pins) buffers up front —
    /// the no-NACK discipline of E14 — instead of demand-faulting.
    pub pin_on_post: bool,
    /// Whether transfers announce their destination range ahead of the
    /// first chunk, buying the one-NACK-per-range service of E15.
    pub announce: bool,
    /// Record a per-event log for differential divergence reporting
    /// (costs allocations; leave off in benches).
    pub record_log: bool,
}

impl ClusterConfig {
    /// A sequential single-shard cluster of `nodes` nodes — the oracle
    /// configuration.
    pub fn new(nodes: u32) -> Self {
        ClusterConfig {
            nodes,
            shards: 1,
            runner: RunnerKind::Sequential,
            node_bytes: 1 << 20,
            link: LinkModel::atm155(),
            reliability: ReliabilityConfig::default(),
            chaos: None,
            iotlb: IotlbConfig::default(),
            costs: FaultCosts::default(),
            pin_on_post: false,
            announce: false,
            record_log: false,
        }
    }

    /// The same cluster on `shards` shards under the parallel runner.
    pub fn sharded(nodes: u32, shards: usize) -> Self {
        ClusterConfig { shards, runner: RunnerKind::Parallel, ..ClusterConfig::new(nodes) }
    }
}

/// One line of the differential event log: the processing node, the
/// event's layout-invariant ordering key, and a rendered description.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LogLine {
    /// Simulated event time.
    pub at: SimTime,
    /// The emitting node (ties on `at` break here, then on `seq`).
    pub src_node: u32,
    /// The emitting node's emission counter.
    pub seq: u64,
    /// The node whose state the event touched.
    pub node: u32,
    /// Human-readable event description.
    pub what: String,
}

impl std::fmt::Display for LogLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} src=n{} seq={}] node {}: {}",
            self.at, self.src_node, self.seq, self.node, self.what
        )
    }
}

/// Everything observable about one node after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeDigest {
    /// The node.
    pub node: u32,
    /// CRC-32 over the node's entire physical memory.
    pub mem_crc: u32,
    /// Receive-side IOTLB counters.
    pub iotlb: IotlbStats,
    /// Node-OS fault-service counters.
    pub faults: FaultServiceStats,
    /// Receive-side link counters.
    pub link: NodeLinkStats,
    /// NACKs this node raised.
    pub nacks_raised: u64,
}

/// Everything observable about one transfer after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XferDigest {
    /// The transfer.
    pub id: XferId,
    /// Terminal (or stuck) state.
    pub state: XferState,
    /// Wire/accounting counters.
    pub counters: XferCounters,
    /// Posting time.
    pub posted_at: SimTime,
    /// Completion/failure time.
    pub finished: Option<SimTime>,
}

/// The full observable outcome of a run: compare two of these to prove
/// two backends replayed the same history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterDigest {
    /// Per-node state and counters, in node order.
    pub nodes: Vec<NodeDigest>,
    /// Per-transfer outcomes, in `(node, index)` order.
    pub xfers: Vec<XferDigest>,
    /// Events processed.
    pub events: u64,
    /// Barrier rounds executed.
    pub rounds: u64,
    /// The merged event log in key order (empty unless
    /// [`ClusterConfig::record_log`]).
    pub log: Vec<LogLine>,
}

impl ClusterDigest {
    /// The first observable difference between two runs, rendered for a
    /// failure message — the event log divergence if logs were
    /// recorded, otherwise the first differing node/transfer summary.
    /// `None` when the digests are identical.
    pub fn diff(&self, other: &ClusterDigest) -> Option<String> {
        if self == other {
            return None;
        }
        for (i, (a, b)) in self.log.iter().zip(other.log.iter()).enumerate() {
            if a != b {
                return Some(format!("first diverging event #{i}:\n  a: {a}\n  b: {b}"));
            }
        }
        if self.log.len() != other.log.len() {
            let (longer, tag) =
                if self.log.len() > other.log.len() { (self, "a") } else { (other, "b") };
            let extra = &longer.log[self.log.len().min(other.log.len())];
            return Some(format!("{tag} has extra event: {extra}"));
        }
        for (a, b) in self.nodes.iter().zip(other.nodes.iter()) {
            if a != b {
                return Some(format!("node {} digests differ:\n  a: {a:?}\n  b: {b:?}", a.node));
            }
        }
        for (a, b) in self.xfers.iter().zip(other.xfers.iter()) {
            if a != b {
                return Some(format!("transfer {} digests differ:\n  a: {a:?}\n  b: {b:?}", a.id));
            }
        }
        Some(format!(
            "digests differ in counters: events {} vs {}, rounds {} vs {}",
            self.events, other.events, self.rounds, other.rounds
        ))
    }
}

/// What a shard's queue holds.
#[derive(Clone, Debug)]
enum Work {
    /// A cross-node message that arrived over a channel.
    Net(Envelope),
    /// Launch (or relaunch) the next chunk of a local transfer.
    Launch {
        /// The posting node.
        node: u32,
        /// Index of the transfer on that node.
        index: u32,
    },
}

/// A queued event with the layout-invariant ordering key.
#[derive(Clone, Debug)]
struct Ordered {
    at: SimTime,
    src_node: u32,
    seq: u64,
    work: Work,
}

impl Ordered {
    fn key(&self) -> (SimTime, u32, u64) {
        (self.at, self.src_node, self.seq)
    }
}

impl PartialEq for Ordered {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Ordered {}

impl PartialOrd for Ordered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// One cluster node's complete local state.
#[derive(Clone, Debug)]
struct NodeWorld {
    mem: PhysMemory,
    iommu: Iommu,
    os: RemoteFaultService,
    /// The node's *sending* chaos link (None on an ideal wire).
    chaos: Option<FaultyLink>,
    /// Transfers this node posted, by posting index.
    xfers: Vec<SendXfer>,
    /// Destination ranges announced *to* this node, by sender transfer.
    announced: BTreeMap<XferId, DstAnnouncement>,
    /// Receive-side link counters.
    link_stats: NodeLinkStats,
    /// NACKs raised by this node's receive path.
    nacks_raised: u64,
    /// Monotonic emission counter — the `seq` of every event and
    /// message this node originates.
    seq: u64,
}

impl NodeWorld {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

/// One shard: the nodes it owns, its event queue, and its channel
/// endpoints (one channel per ordered shard pair, self included).
struct Shard {
    num_shards: usize,
    nodes: BTreeMap<u32, NodeWorld>,
    rx: Vec<SimReceiver<Envelope>>,
    tx: Vec<SimSender<Envelope>>,
    queue: BinaryHeap<Reverse<Ordered>>,
    scratch: Vec<Stamped<Envelope>>,
    link: LinkModel,
    rel: ReliabilityConfig,
    announce: bool,
    log: Option<Vec<LogLine>>,
}

impl Shard {
    fn shard_of(&self, node: u32) -> usize {
        node as usize % self.num_shards
    }

    fn log_event(&mut self, at: SimTime, src_node: u32, seq: u64, node: u32, what: String) {
        if let Some(log) = &mut self.log {
            log.push(LogLine { at, src_node, seq, node, what });
        }
    }

    /// Processes one event. All sends happen here, stamped from the
    /// event's own time, so the lookahead contract holds by
    /// construction.
    fn dispatch(&mut self, ev: Ordered) {
        let Ordered { at, src_node, seq, work } = ev;
        match work {
            Work::Launch { node, index } => {
                let n = self.nodes.get_mut(&node).expect("launch on foreign node");
                let x = &mut n.xfers[index as usize];
                if x.state().terminal() {
                    // A retry raced a link failure; nothing to send.
                    self.log_event(at, src_node, seq, node, format!("launch {} skipped", index));
                    return;
                }
                let dst_shard = x.dst_node as usize % self.num_shards;
                let dst_node = x.dst_node;
                // The first launch of an announcing transfer carries the
                // destination range ahead of its data (same emitter, so
                // the announce's smaller seq orders it first even on an
                // arrival tie).
                if self.announce && x.counters.launches == 0 {
                    let ann = x.announcement();
                    let env = Envelope {
                        src_node: node,
                        dst_node,
                        seq: n.seq,
                        msg: NetMsg::Announce { xfer: x.id, ann },
                    };
                    n.seq += 1;
                    self.tx[dst_shard].send(at, env);
                }
                let (msg, arrival) = n.xfers[index as usize].launch_chunk(
                    at,
                    &self.link,
                    &self.rel,
                    n.chaos.as_mut(),
                );
                let x = &n.xfers[index as usize];
                let what = format!(
                    "launch {} -> n{} arriving {} ({})",
                    x.id,
                    dst_node,
                    arrival,
                    if x.state() == XferState::LinkFailed { "link-failed" } else { "ok" }
                );
                let env = Envelope { src_node: node, dst_node, seq: n.seq, msg };
                n.seq += 1;
                self.tx[dst_shard].send_arriving(at, arrival, env);
                self.log_event(at, src_node, seq, node, what);
            }
            Work::Net(env) => self.dispatch_net(at, seq, env),
        }
    }

    fn dispatch_net(&mut self, at: SimTime, seq: u64, env: Envelope) {
        let Envelope { src_node, dst_node, msg, .. } = env;
        match msg {
            NetMsg::Announce { xfer, ann } => {
                let n = self.nodes.get_mut(&dst_node).expect("announce to foreign node");
                n.announced.insert(xfer, ann);
                self.log_event(
                    at,
                    src_node,
                    seq,
                    dst_node,
                    format!("announce {} [{}, +{}B]", xfer, ann.va, ann.len),
                );
            }
            NetMsg::Data { xfer, chunk, asid, va, bytes, outcome } => {
                let n = self.nodes.get_mut(&dst_node).expect("data to foreign node");
                // The receive PHY saw the frames whether or not anything
                // useful arrived.
                n.link_stats.deliveries += 1;
                n.link_stats.bytes_accepted += outcome.delivered;
                n.link_stats.retransmits += u64::from(outcome.retransmits);
                n.link_stats.crc_dropped += u64::from(outcome.crc_dropped);
                n.link_stats.dup_ignored += u64::from(outcome.dup_ignored);
                n.link_stats.ooo_discarded += u64::from(outcome.ooo_discarded);
                if bytes.is_empty() {
                    self.log_event(
                        at,
                        src_node,
                        seq,
                        dst_node,
                        format!("data {} chunk {} empty", xfer, chunk),
                    );
                    return;
                }
                match n.iommu.translate(asid, va, Access::Write) {
                    Ok(pa) => {
                        n.mem.write_bytes(pa, &bytes).expect("translated deposit in range");
                        let accepted = bytes.len() as u64;
                        let env = Envelope {
                            src_node: dst_node,
                            dst_node: src_node,
                            seq: n.seq,
                            msg: NetMsg::Ack { xfer, chunk, accepted },
                        };
                        n.seq += 1;
                        let back = self.shard_of(src_node);
                        self.tx[back].send(at, env);
                        self.log_event(
                            at,
                            src_node,
                            seq,
                            dst_node,
                            format!("data {} chunk {} +{}B @ {}", xfer, chunk, accepted, va),
                        );
                    }
                    Err(fault) => {
                        n.nacks_raised += 1;
                        // The node OS services the fault before the NACK
                        // departs; the service time rides on the NACK's
                        // arrival stamp, exactly the "link round trip
                        // plus a fault service" of the follow-on papers.
                        let (res, cost) = match n.announced.get(&xfer).copied() {
                            Some(ann) => {
                                n.os.service_announced(&fault, ann.va, ann.len, &mut n.iommu)
                            }
                            None => n.os.service(&fault, &mut n.iommu),
                        };
                        let resolvable = res != FaultResolution::Unresolvable;
                        let env = Envelope {
                            src_node: dst_node,
                            dst_node: src_node,
                            seq: n.seq,
                            msg: NetMsg::Nack { xfer, chunk, fault, resolvable },
                        };
                        n.seq += 1;
                        let back = self.shard_of(src_node);
                        self.tx[back].send_arriving(at, at + cost + self.link.latency(), env);
                        self.log_event(
                            at,
                            src_node,
                            seq,
                            dst_node,
                            format!(
                                "data {} chunk {} nack {:?} ({})",
                                xfer,
                                chunk,
                                res,
                                if resolvable { "resolvable" } else { "fatal" }
                            ),
                        );
                    }
                }
            }
            NetMsg::Ack { xfer, chunk, accepted } => {
                let n = self.nodes.get_mut(&dst_node).expect("ack to foreign node");
                let x = &mut n.xfers[xfer.index as usize];
                let done = x.on_ack(chunk, accepted, at);
                let more = !x.state().terminal();
                let what = format!(
                    "ack {} chunk {} ({})",
                    xfer,
                    chunk,
                    if done {
                        "complete"
                    } else if more {
                        "next chunk"
                    } else {
                        "stale"
                    }
                );
                if more {
                    let launch_seq = n.next_seq();
                    self.queue.push(Reverse(Ordered {
                        at,
                        src_node: dst_node,
                        seq: launch_seq,
                        work: Work::Launch { node: dst_node, index: xfer.index },
                    }));
                }
                self.log_event(at, src_node, seq, dst_node, what);
            }
            NetMsg::Nack { xfer, chunk, resolvable, .. } => {
                let n = self.nodes.get_mut(&dst_node).expect("nack to foreign node");
                let x = &mut n.xfers[xfer.index as usize];
                let verdict = x.on_nack(chunk, resolvable, at, &self.rel.retry);
                let what = format!("nack {} chunk {} -> {:?}", xfer, chunk, verdict);
                if let NackVerdict::Retry(when) = verdict {
                    let launch_seq = n.next_seq();
                    self.queue.push(Reverse(Ordered {
                        at: when,
                        src_node: dst_node,
                        seq: launch_seq,
                        work: Work::Launch { node: dst_node, index: xfer.index },
                    }));
                }
                self.log_event(at, src_node, seq, dst_node, what);
            }
        }
    }
}

impl SimComponent for Shard {
    fn drain(&mut self) {
        for r in &mut self.rx {
            r.drain_into(&mut self.scratch);
        }
        for m in self.scratch.drain(..) {
            self.queue.push(Reverse(Ordered {
                at: m.at,
                src_node: m.payload.src_node,
                seq: m.payload.seq,
                work: Work::Net(m.payload),
            }));
        }
    }

    fn next_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(ev)| ev.at)
    }

    fn advance(&mut self, horizon: SimTime) -> u64 {
        let mut done = 0;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at >= horizon {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.dispatch(ev);
            done += 1;
        }
        done
    }
}

/// A cluster of user-level-DMA nodes on the sharded deterministic
/// simulation core. Build, [`grant`](Self::grant) destination buffers,
/// [`post`](Self::post) transfers, [`run`](Self::run), then compare
/// [`digest`](Self::digest)s or read memories.
pub struct ClusterSim {
    cfg: ClusterConfig,
    shards: Vec<Shard>,
    runner: SimRunner,
    report: RunReport,
    wall: Duration,
    posted: u32,
}

impl ClusterSim {
    /// Builds the cluster: every node gets its memory, IOMMU, node OS
    /// and (under chaos) its own decorrelated chaos-link PRNG; every
    /// ordered shard pair gets a channel.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(mut cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes > 0, "a cluster needs at least one node");
        cfg.shards = cfg.shards.clamp(1, cfg.nodes as usize);
        let num_shards = cfg.shards;
        let builder = ChannelBuilder::new(cfg.link.latency());
        // Channel matrix: tx[src][dst] pairs with rx[dst][src].
        let mut rx_grid: Vec<Vec<Option<SimReceiver<Envelope>>>> =
            (0..num_shards).map(|_| (0..num_shards).map(|_| None).collect()).collect();
        let mut tx_grid: Vec<Vec<SimSender<Envelope>>> = Vec::with_capacity(num_shards);
        for src in 0..num_shards {
            let mut row = Vec::with_capacity(num_shards);
            for rx_row in rx_grid.iter_mut() {
                let (tx, rx) = builder.channel(src);
                row.push(tx);
                rx_row[src] = Some(rx);
            }
            tx_grid.push(row);
        }
        let mut shards: Vec<Shard> = tx_grid
            .into_iter()
            .zip(rx_grid)
            .map(|(tx, rx_row)| Shard {
                num_shards,
                nodes: BTreeMap::new(),
                rx: rx_row.into_iter().map(|r| r.expect("full matrix")).collect(),
                tx,
                queue: BinaryHeap::new(),
                scratch: Vec::new(),
                link: cfg.link,
                rel: cfg.reliability,
                announce: cfg.announce,
                log: cfg.record_log.then(Vec::new),
            })
            .collect();
        for node in 0..cfg.nodes {
            let chaos = cfg.chaos.map(|plan| {
                // Decorrelate the per-node packet stories while keeping
                // the whole cluster reproducible from one seed.
                let salt = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(node) + 1);
                FaultyLink::new(FaultPlan { seed: plan.seed ^ salt, ..plan })
            });
            // Nodes are symmetric: every node can receive into any ASID
            // a grant later creates; contexts are created on grant.
            let world = NodeWorld {
                mem: PhysMemory::new(cfg.node_bytes),
                iommu: Iommu::new(cfg.iotlb),
                os: RemoteFaultService::new(cfg.node_bytes, cfg.costs),
                chaos,
                xfers: Vec::new(),
                announced: BTreeMap::new(),
                link_stats: NodeLinkStats::default(),
                nacks_raised: 0,
                seq: 0,
            };
            shards[node as usize % num_shards].nodes.insert(node, world);
        }
        let runner = SimRunner::new(cfg.runner, cfg.link.latency());
        ClusterSim {
            cfg,
            shards,
            runner,
            report: RunReport::default(),
            wall: Duration::ZERO,
            posted: 0,
        }
    }

    /// The (clamped) configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    fn node_mut(&mut self, node: u32) -> &mut NodeWorld {
        let shard = node as usize % self.cfg.shards;
        self.shards[shard].nodes.get_mut(&node).expect("node exists")
    }

    fn node_ref(&self, node: u32) -> &NodeWorld {
        let shard = node as usize % self.cfg.shards;
        self.shards[shard].nodes.get(&node).expect("node exists")
    }

    /// Exposes `pages` fresh frames at `va` in `asid` on `node` — the
    /// remote process offering memory for incoming RDMA. Creates the
    /// IOMMU context on first use; under
    /// [`pin_on_post`](ClusterConfig::pin_on_post) also registers the
    /// whole buffer so no chunk ever NACKs.
    ///
    /// # Errors
    ///
    /// [`MemFault::AlreadyMapped`] if a page is taken,
    /// [`MemFault::BusError`] if the node is out of frames.
    pub fn grant(
        &mut self,
        node: u32,
        asid: Asid,
        va: VirtAddr,
        pages: u64,
        perms: Perms,
    ) -> Result<(), MemFault> {
        let pin = self.cfg.pin_on_post;
        let n = self.node_mut(node);
        if !n.iommu.has_context(asid) {
            n.iommu.create_context(asid);
        }
        if pin {
            n.os.expose_pinned(asid, va, pages, perms, &mut n.iommu)?;
        } else {
            n.os.expose(asid, va, pages, perms)?;
        }
        Ok(())
    }

    /// Registers (pins) `[va, va + len)` of `asid` into `node`'s IOMMU —
    /// the warm fraction of an E13-style partially prefaulted buffer.
    ///
    /// # Errors
    ///
    /// [`MemFault::Unmapped`] at the first hole.
    pub fn pin(&mut self, node: u32, asid: Asid, va: VirtAddr, len: u64) -> Result<u64, MemFault> {
        let n = self.node_mut(node);
        n.os.pin_into(asid, va, len, &mut n.iommu)
    }

    /// Swaps `page` of `asid` out of `node` (cold-page setup for the
    /// swap-in fault path).
    ///
    /// # Errors
    ///
    /// As for [`RemoteFaultService::swap_out`].
    pub fn swap_out(
        &mut self,
        node: u32,
        asid: Asid,
        page: VirtPage,
    ) -> Result<(), RemoteSwapRefused> {
        let n = self.node_mut(node);
        n.os.swap_out(asid, page, &mut n.iommu)
    }

    /// Posts a transfer of `len` deterministic pattern bytes from
    /// `src_node` into `(asid, va)` on `dst_node`, launching at `at`.
    /// Returns the transfer's cluster-wide id.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `len` is zero.
    pub fn post(
        &mut self,
        src_node: u32,
        dst_node: u32,
        asid: Asid,
        va: VirtAddr,
        len: u64,
        at: SimTime,
    ) -> XferId {
        assert!(src_node < self.cfg.nodes && dst_node < self.cfg.nodes, "node out of range");
        assert!(len > 0, "zero-byte transfer");
        let shard = src_node as usize % self.cfg.shards;
        let n = self.shards[shard].nodes.get_mut(&src_node).expect("node exists");
        let id = XferId { node: src_node, index: n.xfers.len() as u32 };
        let data = pattern_bytes(id, len);
        n.xfers.push(SendXfer::new(id, dst_node, asid, va, data, at));
        let seq = n.next_seq();
        self.shards[shard].queue.push(Reverse(Ordered {
            at,
            src_node,
            seq,
            work: Work::Launch { node: src_node, index: id.index },
        }));
        self.posted += 1;
        id
    }

    /// The deterministic payload a [`post`](Self::post) generated —
    /// tests compare destination memory against this.
    pub fn expected_payload(id: XferId, len: u64) -> Vec<u8> {
        pattern_bytes(id, len)
    }

    /// Runs to global quiescence and returns the runner's report.
    pub fn run(&mut self) -> RunReport {
        let start = Instant::now();
        let report = self.runner.run(&mut self.shards);
        self.wall += start.elapsed();
        self.report.events += report.events;
        self.report.rounds += report.rounds;
        report
    }

    /// Cumulative runner report across all [`run`](Self::run) calls.
    pub fn report(&self) -> RunReport {
        self.report
    }

    /// Host wall-clock time spent inside [`run`](Self::run).
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// Simulation events per host second — the self-benchmark metric.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.report.events as f64 / self.wall.as_secs_f64()
    }

    /// Transfers posted so far.
    pub fn posted(&self) -> u32 {
        self.posted
    }

    /// Reads `node`'s physical memory (test inspection).
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] outside the node's RAM.
    pub fn read_mem(&self, node: u32, pa: PhysAddr, buf: &mut [u8]) -> Result<(), MemFault> {
        self.node_ref(node).mem.read_bytes(pa, buf)
    }

    /// Translates `(asid, va)` on `node`'s IOMMU without counting stats
    /// (test inspection of where a deposit landed).
    pub fn probe(&mut self, node: u32, asid: Asid, va: VirtAddr) -> Option<PhysAddr> {
        let n = self.node_mut(node);
        n.iommu.probe(asid, va.page(), Access::Read).map(|frame| frame.base() + va.page_offset())
    }

    /// The digest of one transfer.
    pub fn xfer(&self, id: XferId) -> XferDigest {
        let x = &self.node_ref(id.node).xfers[id.index as usize];
        XferDigest {
            id: x.id,
            state: x.state(),
            counters: x.counters,
            posted_at: x.posted_at,
            finished: x.finished,
        }
    }

    /// The full observable outcome: per-node memory CRCs and counters,
    /// per-transfer outcomes, event totals, and (if recorded) the
    /// merged event log in key order.
    pub fn digest(&self) -> ClusterDigest {
        let mut nodes = Vec::with_capacity(self.cfg.nodes as usize);
        let mut xfers = Vec::new();
        for node in 0..self.cfg.nodes {
            let n = self.node_ref(node);
            nodes.push(NodeDigest {
                node,
                mem_crc: mem_crc(&n.mem),
                iotlb: n.iommu.stats(),
                faults: n.os.stats(),
                link: n.link_stats,
                nacks_raised: n.nacks_raised,
            });
            for x in &n.xfers {
                xfers.push(XferDigest {
                    id: x.id,
                    state: x.state(),
                    counters: x.counters,
                    posted_at: x.posted_at,
                    finished: x.finished,
                });
            }
        }
        let mut log: Vec<LogLine> =
            self.shards.iter().filter_map(|s| s.log.as_ref()).flatten().cloned().collect();
        log.sort();
        ClusterDigest { nodes, xfers, events: self.report.events, rounds: self.report.rounds, log }
    }
}

/// Deterministic per-transfer payload pattern (seeded xoshiro stream).
fn pattern_bytes(id: XferId, len: u64) -> Vec<u8> {
    let seed = 0xDA7A_5EED_0000_0000 ^ (u64::from(id.node) << 20) ^ u64::from(id.index);
    let mut rng = TestRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len as usize);
    while (out.len() as u64) < len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(len as usize);
    out
}

/// CRC-32 over a node's entire memory, read in page-sized strides.
fn mem_crc(mem: &PhysMemory) -> u32 {
    let mut buf = vec![0u8; PAGE_SIZE as usize];
    let mut all = Vec::with_capacity(mem.size() as usize);
    let mut pa = 0u64;
    while pa < mem.size() {
        let take = (mem.size() - pa).min(PAGE_SIZE) as usize;
        mem.read_bytes(PhysAddr::new(pa), &mut buf[..take]).expect("in range");
        all.extend_from_slice(&buf[..take]);
        pa += take as u64;
    }
    crc32(&all)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ASID: Asid = 7;
    const DST_VA: u64 = 16 * PAGE_SIZE;

    fn granted(cfg: ClusterConfig, pages: u64) -> ClusterSim {
        let mut sim = ClusterSim::new(cfg);
        for node in 0..cfg.nodes {
            sim.grant(node, ASID, VirtAddr::new(DST_VA), pages, Perms::READ_WRITE).unwrap();
        }
        sim
    }

    #[test]
    fn clean_transfer_completes_and_deposits_the_pattern() {
        let mut cfg = ClusterConfig::new(2);
        cfg.pin_on_post = true;
        let mut sim = granted(cfg, 2);
        let id = sim.post(0, 1, ASID, VirtAddr::new(DST_VA), 2 * PAGE_SIZE, SimTime::ZERO);
        sim.run();
        let x = sim.xfer(id);
        assert_eq!(x.state, XferState::Complete);
        assert_eq!(x.counters.moved, 2 * PAGE_SIZE);
        assert_eq!(x.counters.nacks, 0, "pin-on-post never NACKs");
        let pa = sim.probe(1, ASID, VirtAddr::new(DST_VA)).expect("pinned translation");
        let mut got = vec![0u8; 2 * PAGE_SIZE as usize];
        // Pages are contiguous frames for a fresh expose.
        sim.read_mem(1, pa, &mut got).unwrap();
        assert_eq!(got, ClusterSim::expected_payload(id, 2 * PAGE_SIZE));
    }

    #[test]
    fn cold_buffer_nacks_once_per_page_without_announce() {
        let cfg = ClusterConfig::new(2); // demand paging, no announce
        let mut sim = granted(cfg, 3);
        let id = sim.post(0, 1, ASID, VirtAddr::new(DST_VA), 3 * PAGE_SIZE, SimTime::ZERO);
        sim.run();
        let x = sim.xfer(id);
        assert_eq!(x.state, XferState::Complete);
        assert_eq!(x.counters.nacks, 3, "every cold page costs one NACK round trip");
        let d = sim.digest();
        assert_eq!(d.nodes[1].nacks_raised, 3);
        assert_eq!(d.nodes[1].faults.mapped, 3);
    }

    #[test]
    fn announce_buys_one_nack_per_range() {
        let mut cfg = ClusterConfig::new(2);
        cfg.announce = true;
        let mut sim = granted(cfg, 4);
        let id = sim.post(0, 1, ASID, VirtAddr::new(DST_VA), 4 * PAGE_SIZE, SimTime::ZERO);
        sim.run();
        let x = sim.xfer(id);
        assert_eq!(x.state, XferState::Complete);
        assert_eq!(x.counters.nacks, 1, "the announced range services in one kernel entry");
        assert!(sim.digest().nodes[1].faults.range_prefilled >= 3);
    }

    #[test]
    fn unknown_asid_fails_the_transfer() {
        let cfg = ClusterConfig::new(2);
        let mut sim = granted(cfg, 1);
        let id = sim.post(0, 1, 99, VirtAddr::new(DST_VA), PAGE_SIZE, SimTime::ZERO);
        sim.run();
        assert_eq!(sim.xfer(id).state, XferState::Failed);
    }

    #[test]
    fn sequential_and_parallel_digests_match_on_a_small_mesh() {
        let run = |shards: usize, runner: RunnerKind| {
            let mut cfg = ClusterConfig::new(4);
            cfg.shards = shards;
            cfg.runner = runner;
            cfg.record_log = true;
            cfg.chaos = Some(FaultPlan::lossless(0xC1A5).with_drop(0.2));
            let mut sim = granted(cfg, 2);
            for src in 0..4u32 {
                let dst = (src + 1) % 4;
                sim.post(src, dst, ASID, VirtAddr::new(DST_VA), 2 * PAGE_SIZE, SimTime::ZERO);
            }
            sim.run();
            sim.digest()
        };
        let oracle = run(1, RunnerKind::Sequential);
        for shards in [1usize, 2, 4] {
            let par = run(shards, RunnerKind::Parallel);
            if let Some(diff) = oracle.diff(&par) {
                panic!("{shards}-shard parallel run diverged:\n{diff}");
            }
        }
    }
}
