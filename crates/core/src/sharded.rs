//! The sharded cluster simulation: every node a full sender.
//!
//! The single-machine [`Machine`](crate::Machine) world advances one
//! sequential clock and models remote nodes as passive memories behind
//! the sender's DMA engine. This module is the cluster-scale
//! re-architecture on top of the deterministic sim kernel in
//! [`udma_bus::sim`]: a [`ClusterSim`] partitions its nodes over
//! shards, each node owns its *complete* local state — physical
//! memory, receive-side IOMMU, node OS ([`RemoteFaultService`]), and a
//! seeded chaos link — and all cross-node traffic (data chunks,
//! ACK/NACK, destination announcements) travels as
//! [`Envelope`]s over explicit latency-stamped channels, even between
//! nodes that happen to share a shard.
//!
//! # Why the result is independent of the shard count
//!
//! A node's state evolves only through the events addressed to it,
//! processed in `(arrival, src_node, seq)` order, where `seq` is the
//! *emitting node's* monotonic counter — a key that never mentions
//! shards. Whatever the layout, all of a node's events live in the one
//! queue of the shard that owns it and pop in key order, and the
//! runner's conservative-lookahead rounds give every layout the same
//! horizon sequence. So 1, 2, 4 and 8 shards — sequential or parallel —
//! replay byte-identical histories, which `tests/sharded_determinism.rs`
//! verifies against the sequential oracle, seed by seed.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::time::{Duration, Instant};
use udma_bus::sim::{
    ChannelBuilder, RunReport, RunnerKind, SimComponent, SimReceiver, SimRunner, SimSender, Stamped,
};
use udma_bus::SimTime;
use udma_iommu::{Asid, Iommu, IotlbConfig, IotlbStats};
use udma_mem::{Access, MemFault, Perms, PhysAddr, PhysMemory, VirtAddr, VirtPage, PAGE_SIZE};
use udma_nic::{
    crc32, CrashKind, CrashPlan, CrashStats, DstAnnouncement, Envelope, FaultPlan, FaultyLink,
    HealthConfig, HealthState, HealthStats, LinkModel, NackVerdict, NetMsg, NodeLinkStats,
    PeerHealth, ReliabilityConfig, SendXfer, XferCounters, XferId, XferState,
};
use udma_os::{
    FaultCosts, FaultResolution, FaultServiceStats, RemoteFaultService, RemoteSwapRefused,
};
use udma_testkit::rng::TestRng;

/// Configuration of a [`ClusterSim`]: topology, backend runner, link
/// and fault models. All existing single-machine knobs keep their
/// defaults; the two new ones are `shards` and `runner`.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Cluster size.
    pub nodes: u32,
    /// Shards the nodes are partitioned over (node `n` lives on shard
    /// `n % shards`). Clamped to `nodes` at build time.
    pub shards: usize,
    /// Sequential oracle or one-thread-per-shard parallel runner.
    pub runner: RunnerKind,
    /// Node-local RAM.
    pub node_bytes: u64,
    /// The wire between any two nodes; its propagation latency is the
    /// runner's conservative lookahead.
    pub link: LinkModel,
    /// Go-back-N parameters; `reliability.retry` doubles as the NACK
    /// retry budget, as in the single-machine world.
    pub reliability: ReliabilityConfig,
    /// Chaos plan applied to every node's *sending* link. Each node
    /// derives its own decorrelated PRNG seed from `plan.seed`.
    pub chaos: Option<FaultPlan>,
    /// Receive-side IOTLB geometry of every node.
    pub iotlb: IotlbConfig,
    /// Fault-service costs of every node OS.
    pub costs: FaultCosts,
    /// Whether [`ClusterSim::grant`] registers (pins) buffers up front —
    /// the no-NACK discipline of E14 — instead of demand-faulting.
    pub pin_on_post: bool,
    /// Whether transfers announce their destination range ahead of the
    /// first chunk, buying the one-NACK-per-range service of E15.
    pub announce: bool,
    /// Failure-detector tunables (ACK lease, `Down` threshold, probe
    /// policy). Consulted only once a [`CrashPlan`] is injected — a
    /// cluster with no crash plans schedules no lease or probe events
    /// and replays byte-identical histories with or without this field.
    pub health: HealthConfig,
    /// Record a per-event log for differential divergence reporting
    /// (costs allocations; leave off in benches).
    pub record_log: bool,
}

impl ClusterConfig {
    /// A sequential single-shard cluster of `nodes` nodes — the oracle
    /// configuration.
    pub fn new(nodes: u32) -> Self {
        ClusterConfig {
            nodes,
            shards: 1,
            runner: RunnerKind::Sequential,
            node_bytes: 1 << 20,
            link: LinkModel::atm155(),
            reliability: ReliabilityConfig::default(),
            chaos: None,
            iotlb: IotlbConfig::default(),
            costs: FaultCosts::default(),
            pin_on_post: false,
            announce: false,
            health: HealthConfig::default(),
            record_log: false,
        }
    }

    /// The same cluster on `shards` shards under the parallel runner.
    pub fn sharded(nodes: u32, shards: usize) -> Self {
        ClusterConfig { shards, runner: RunnerKind::Parallel, ..ClusterConfig::new(nodes) }
    }
}

/// One line of the differential event log: the processing node, the
/// event's layout-invariant ordering key, and a rendered description.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LogLine {
    /// Simulated event time.
    pub at: SimTime,
    /// The emitting node (ties on `at` break here, then on `seq`).
    pub src_node: u32,
    /// The emitting node's emission counter.
    pub seq: u64,
    /// The node whose state the event touched.
    pub node: u32,
    /// Human-readable event description.
    pub what: String,
}

impl std::fmt::Display for LogLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} src=n{} seq={}] node {}: {}",
            self.at, self.src_node, self.seq, self.node, self.what
        )
    }
}

/// Everything observable about one node after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeDigest {
    /// The node.
    pub node: u32,
    /// CRC-32 over the node's entire physical memory.
    pub mem_crc: u32,
    /// Receive-side IOTLB counters.
    pub iotlb: IotlbStats,
    /// Node-OS fault-service counters.
    pub faults: FaultServiceStats,
    /// Receive-side link counters.
    pub link: NodeLinkStats,
    /// NACKs this node raised.
    pub nacks_raised: u64,
    /// Incarnation epoch (bumped by every reboot).
    pub inc: u64,
    /// Node-failure accounting (crashes, reboots, fenced frames,
    /// replayed grants).
    pub crash: CrashStats,
    /// This node's failure-detector counters, summed over every peer it
    /// watched.
    pub health: HealthStats,
}

/// Everything observable about one transfer after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XferDigest {
    /// The transfer.
    pub id: XferId,
    /// Terminal (or stuck) state.
    pub state: XferState,
    /// Wire/accounting counters.
    pub counters: XferCounters,
    /// Posting time.
    pub posted_at: SimTime,
    /// Completion/failure time.
    pub finished: Option<SimTime>,
}

/// The full observable outcome of a run: compare two of these to prove
/// two backends replayed the same history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterDigest {
    /// Per-node state and counters, in node order.
    pub nodes: Vec<NodeDigest>,
    /// Per-transfer outcomes, in `(node, index)` order.
    pub xfers: Vec<XferDigest>,
    /// Events processed.
    pub events: u64,
    /// Barrier rounds executed.
    pub rounds: u64,
    /// The merged event log in key order (empty unless
    /// [`ClusterConfig::record_log`]).
    pub log: Vec<LogLine>,
}

impl ClusterDigest {
    /// The first observable difference between two runs, rendered for a
    /// failure message — the event log divergence if logs were
    /// recorded, otherwise the first differing node/transfer summary.
    /// `None` when the digests are identical.
    pub fn diff(&self, other: &ClusterDigest) -> Option<String> {
        if self == other {
            return None;
        }
        for (i, (a, b)) in self.log.iter().zip(other.log.iter()).enumerate() {
            if a != b {
                return Some(format!("first diverging event #{i}:\n  a: {a}\n  b: {b}"));
            }
        }
        if self.log.len() != other.log.len() {
            let (longer, tag) =
                if self.log.len() > other.log.len() { (self, "a") } else { (other, "b") };
            let extra = &longer.log[self.log.len().min(other.log.len())];
            return Some(format!("{tag} has extra event: {extra}"));
        }
        for (a, b) in self.nodes.iter().zip(other.nodes.iter()) {
            if a != b {
                return Some(format!("node {} digests differ:\n  a: {a:?}\n  b: {b:?}", a.node));
            }
        }
        for (a, b) in self.xfers.iter().zip(other.xfers.iter()) {
            if a != b {
                return Some(format!("transfer {} digests differ:\n  a: {a:?}\n  b: {b:?}", a.id));
            }
        }
        Some(format!(
            "digests differ in counters: events {} vs {}, rounds {} vs {}",
            self.events, other.events, self.rounds, other.rounds
        ))
    }
}

/// What a shard's queue holds.
#[derive(Clone, Debug)]
enum Work {
    /// A cross-node message that arrived over a channel.
    Net(Envelope),
    /// Launch (or relaunch) the next chunk of a local transfer.
    Launch {
        /// The posting node.
        node: u32,
        /// Index of the transfer on that node.
        index: u32,
    },
    /// A scripted node failure strikes (crash / NI hang / fault-service
    /// stall). `until` carries the recovery instant for stalls, whose
    /// end needs no event of its own.
    Crash { node: u32, kind: CrashKind, until: Option<SimTime> },
    /// A scripted recovery: reboot after a crash (new incarnation,
    /// grant-ledger replay, Hello broadcast) or the end of an NI hang
    /// (same incarnation, Hello broadcast).
    Recover { node: u32, kind: CrashKind },
    /// ACK-lease expiry check for one chunk launch: if the transfer's
    /// launch counter still equals `snapshot`, no ACK or NACK moved it
    /// since the launch — a detector miss.
    Lease { node: u32, index: u32, snapshot: u64 },
    /// Probe timer for a `Down` peer: send a Ping, reschedule under the
    /// shared retry policy's backoff.
    Probe { node: u32, peer: u32 },
}

/// A queued event with the layout-invariant ordering key.
#[derive(Clone, Debug)]
struct Ordered {
    at: SimTime,
    src_node: u32,
    seq: u64,
    work: Work,
}

impl Ordered {
    fn key(&self) -> (SimTime, u32, u64) {
        (self.at, self.src_node, self.seq)
    }
}

impl PartialEq for Ordered {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Ordered {}

impl PartialOrd for Ordered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// One persistent grant record on a node: replayed at reboot.
#[derive(Clone, Copy, Debug)]
struct GrantRecord {
    asid: Asid,
    va: VirtAddr,
    pages: u64,
    perms: Perms,
    pinned: bool,
}

/// One persistent pin record ([`ClusterSim::pin`]): replayed at reboot.
#[derive(Clone, Copy, Debug)]
struct PinRecord {
    asid: Asid,
    va: VirtAddr,
    len: u64,
}

/// One cluster node's complete local state.
#[derive(Clone, Debug)]
struct NodeWorld {
    mem: PhysMemory,
    iommu: Iommu,
    os: RemoteFaultService,
    /// The node's *sending* chaos link (None on an ideal wire).
    chaos: Option<FaultyLink>,
    /// Transfers this node posted, by posting index.
    xfers: Vec<SendXfer>,
    /// Destination ranges announced *to* this node, by sender transfer.
    announced: BTreeMap<XferId, DstAnnouncement>,
    /// Receive-side link counters.
    link_stats: NodeLinkStats,
    /// NACKs raised by this node's receive path.
    nacks_raised: u64,
    /// Monotonic emission counter — the `seq` of every event and
    /// message this node originates. Survives a crash: it is the
    /// link-level serial that keeps the ordering key sound across
    /// incarnations.
    seq: u64,
    /// Powered and running (false between a crash and its reboot).
    up: bool,
    /// NI engine hung: frames to and from the node vanish, state stays.
    hung: bool,
    /// Incarnation epoch, bumped by every reboot.
    inc: u64,
    /// Fault-service stall: NACK servicing is deferred until here.
    stall_until: SimTime,
    /// This node's failure detector, one per destination peer
    /// (`BTreeMap` for deterministic aggregation).
    peers: BTreeMap<u32, PeerHealth>,
    /// Persistent grant ledger — the only node state a reboot replays.
    grants: Vec<GrantRecord>,
    /// Persistent pin ledger (partial pins via [`ClusterSim::pin`]).
    pins: Vec<PinRecord>,
    /// Node-failure accounting.
    crash: CrashStats,
    /// Outage durations this node's detector measured end-to-end (peer
    /// went `Down` → first byte of progress after recovery).
    recovery_samples: Vec<SimTime>,
}

impl NodeWorld {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// The incarnation this node believes `peer` is at (what it stamps
    /// as `dst_inc` on envelopes to `peer`).
    fn believed_inc(&self, peer: u32) -> u64 {
        self.peers.get(&peer).map_or(0, |p| p.incarnation())
    }
}

/// One shard: the nodes it owns, its event queue, and its channel
/// endpoints (one channel per ordered shard pair, self included).
struct Shard {
    num_shards: usize,
    num_nodes: u32,
    nodes: BTreeMap<u32, NodeWorld>,
    rx: Vec<SimReceiver<Envelope>>,
    tx: Vec<SimSender<Envelope>>,
    queue: BinaryHeap<Reverse<Ordered>>,
    scratch: Vec<Stamped<Envelope>>,
    link: LinkModel,
    rel: ReliabilityConfig,
    announce: bool,
    health: HealthConfig,
    /// Node fault domain armed: at least one [`CrashPlan`] was
    /// injected. While false, no lease, probe, crash or fencing code
    /// runs at all — the zero-delta guarantee for crash-free configs.
    fault_active: bool,
    /// Rebuild parameters for a rebooting node's volatile state.
    node_bytes: u64,
    iotlb: IotlbConfig,
    costs: FaultCosts,
    log: Option<Vec<LogLine>>,
}

impl Shard {
    fn shard_of(&self, node: u32) -> usize {
        node as usize % self.num_shards
    }

    fn log_event(&mut self, at: SimTime, src_node: u32, seq: u64, node: u32, what: String) {
        if let Some(log) = &mut self.log {
            log.push(LogLine { at, src_node, seq, node, what });
        }
    }

    /// Processes one event. All sends happen here, stamped from the
    /// event's own time, so the lookahead contract holds by
    /// construction.
    fn dispatch(&mut self, ev: Ordered) {
        let Ordered { at, src_node, seq, work } = ev;
        match work {
            Work::Launch { node, index } => self.dispatch_launch(at, src_node, seq, node, index),
            Work::Net(env) => self.dispatch_net(at, seq, env),
            Work::Crash { node, kind, until } => self.dispatch_crash(at, seq, node, kind, until),
            Work::Recover { node, kind } => self.dispatch_recover(at, seq, node, kind),
            Work::Lease { node, index, snapshot } => {
                self.dispatch_lease(at, seq, node, index, snapshot)
            }
            Work::Probe { node, peer } => self.dispatch_probe(at, seq, node, peer),
        }
    }

    fn dispatch_launch(&mut self, at: SimTime, src_node: u32, seq: u64, node: u32, index: u32) {
        let fault_active = self.fault_active;
        let n = self.nodes.get_mut(&node).expect("launch on foreign node");
        let x = &mut n.xfers[index as usize];
        if x.state().terminal() {
            // A retry raced a link failure; nothing to send.
            self.log_event(at, src_node, seq, node, format!("launch {} skipped", index));
            return;
        }
        let dst_shard = x.dst_node as usize % self.num_shards;
        let dst_node = x.dst_node;
        if fault_active {
            // A crashed node posts nothing: a launch scheduled into its
            // downtime dies on the floor of a machine that is off.
            if !n.up {
                let x = &mut n.xfers[index as usize];
                x.abort_node_down(at);
                self.log_event(at, src_node, seq, node, format!("launch {} on dead node", index));
                return;
            }
            // Fail fast while this sender's detector holds the
            // destination `Down`: the in-order prefix stands, status
            // reads node-down, no frame is wasted on a dead peer.
            if !n.peers.entry(dst_node).or_default().admit() {
                let x = &mut n.xfers[index as usize];
                x.abort_node_down(at);
                self.log_event(
                    at,
                    src_node,
                    seq,
                    node,
                    format!("launch {} fail-fast: n{} down", index, dst_node),
                );
                return;
            }
        }
        let src_inc = n.inc;
        let dst_inc = n.believed_inc(dst_node);
        // The first launch of an announcing transfer carries the
        // destination range ahead of its data (same emitter, so the
        // announce's smaller seq orders it first even on an arrival
        // tie). A transfer restarted into a rebooted destination
        // re-announces into the fresh receive state.
        let hung = n.hung;
        if self.announce && n.xfers[index as usize].take_announce() {
            let x = &n.xfers[index as usize];
            let env = Envelope {
                src_node: node,
                dst_node,
                seq: n.seq,
                src_inc,
                dst_inc,
                msg: NetMsg::Announce { xfer: x.id, ann: x.announcement() },
            };
            n.seq += 1;
            if hung {
                n.crash.dropped_down += 1;
            } else {
                self.tx[dst_shard].send(at, env);
            }
        }
        let (msg, arrival) =
            n.xfers[index as usize].launch_chunk(at, &self.link, &self.rel, n.chaos.as_mut());
        let x = &n.xfers[index as usize];
        let what = format!(
            "launch {} -> n{} arriving {} ({})",
            x.id,
            dst_node,
            arrival,
            if x.state() == XferState::LinkFailed {
                "link-failed"
            } else if hung {
                "hung-ni"
            } else {
                "ok"
            }
        );
        let launches = x.counters.launches;
        let env = Envelope { src_node: node, dst_node, seq: n.seq, src_inc, dst_inc, msg };
        n.seq += 1;
        if hung {
            // The NI is hung: the go-back-N engine ran (and billed) the
            // launch, but no frame left the board.
            n.crash.dropped_down += 1;
        } else {
            self.tx[dst_shard].send_arriving(at, arrival, env);
        }
        // Arm the ACK lease for this launch: if neither an ACK nor a
        // NACK has moved the launch counter when it fires, that is a
        // detector miss. Crash-free clusters schedule no lease at all.
        if fault_active && !n.xfers[index as usize].state().terminal() {
            let lease_at = at + self.health.lease;
            let lease_seq = n.next_seq();
            self.queue.push(Reverse(Ordered {
                at: lease_at,
                src_node: node,
                seq: lease_seq,
                work: Work::Lease { node, index, snapshot: launches },
            }));
        }
        self.log_event(at, src_node, seq, node, what);
    }

    /// A scripted failure strikes `node`.
    fn dispatch_crash(
        &mut self,
        at: SimTime,
        seq: u64,
        node: u32,
        kind: CrashKind,
        until: Option<SimTime>,
    ) {
        let n = self.nodes.get_mut(&node).expect("crash on foreign node");
        let what = match kind {
            CrashKind::Crash => {
                n.up = false;
                n.hung = false;
                n.crash.crashes += 1;
                // Volatile receive state dies now: announced windows are
                // fenced; memory/IOMMU/OS are rebuilt at reboot.
                n.crash.fenced_faults += n.announced.len() as u64;
                n.announced.clear();
                // The node was mid-sentence as a sender too: every
                // transfer it had in flight dies with it. Posts whose
                // launch time lies beyond the crash stay pending — if
                // the node is back up by then, they run.
                let mut killed = 0;
                for x in &mut n.xfers {
                    if x.state() == XferState::Streaming && x.abort_node_down(at) {
                        killed += 1;
                    }
                }
                format!("crash ({} own transfers died)", killed)
            }
            CrashKind::NiHang => {
                n.hung = true;
                n.crash.hangs += 1;
                "ni-hang".to_string()
            }
            CrashKind::FaultStall => {
                n.crash.stalls += 1;
                n.stall_until = until.unwrap_or(at);
                format!("fault-service stall until {}", n.stall_until)
            }
        };
        self.log_event(at, node, seq, node, what);
    }

    /// A scripted recovery: reboot (new incarnation, ledger replay,
    /// Hello broadcast) or hang end (same incarnation, Hello broadcast).
    fn dispatch_recover(&mut self, at: SimTime, seq: u64, node: u32, kind: CrashKind) {
        let n = self.nodes.get_mut(&node).expect("recover on foreign node");
        let what = match kind {
            CrashKind::Crash => {
                if n.up {
                    // Overlapping crash windows merged: an earlier reboot
                    // already brought the node back.
                    return;
                }
                n.up = true;
                n.inc += 1;
                n.crash.reboots += 1;
                // Fresh volatile state: zeroed memory, an empty IOMMU,
                // a new OS. Then the recovery handshake replays the
                // persistent grant and pin ledgers into it.
                n.mem = PhysMemory::new(self.node_bytes);
                n.iommu = Iommu::new(self.iotlb);
                n.os = RemoteFaultService::new(self.node_bytes, self.costs);
                n.announced.clear();
                n.stall_until = SimTime::ZERO;
                for g in n.grants.clone() {
                    if !n.iommu.has_context(g.asid) {
                        n.iommu.create_context(g.asid);
                    }
                    if g.pinned {
                        n.os.expose_pinned(g.asid, g.va, g.pages, g.perms, &mut n.iommu)
                            .expect("replaying a grant that fit before the crash");
                        n.crash.repins += 1;
                    } else {
                        n.os.expose(g.asid, g.va, g.pages, g.perms)
                            .expect("replaying a grant that fit before the crash");
                    }
                    n.crash.regrants += 1;
                }
                for p in n.pins.clone() {
                    n.os.pin_into(p.asid, p.va, p.len, &mut n.iommu)
                        .expect("re-pinning a replayed range into a fresh IOMMU");
                    n.crash.repins += 1;
                }
                format!("reboot -> inc {}", n.inc)
            }
            CrashKind::NiHang => {
                if !n.up {
                    // The node crashed under the hang; the reboot, not
                    // the unhang, will announce it.
                    return;
                }
                n.hung = false;
                "unhang".to_string()
            }
            // Stall ends are data (`stall_until`), not events.
            CrashKind::FaultStall => return,
        };
        // Back in service either way: announce it. The Hello broadcast
        // moves peers `Down → Recovering` (rescuing probers whose
        // budget ran dry) and, after a reboot, carries the advanced
        // incarnation that fences every pre-crash frame.
        let inc = n.inc;
        for peer in 0..self.num_nodes {
            if peer == node {
                continue;
            }
            let n = self.nodes.get_mut(&node).expect("recover on foreign node");
            let env = Envelope {
                src_node: node,
                dst_node: peer,
                seq: n.next_seq(),
                src_inc: inc,
                dst_inc: n.believed_inc(peer),
                msg: NetMsg::Hello { inc },
            };
            self.tx[peer as usize % self.num_shards].send(at, env);
        }
        self.log_event(at, node, seq, node, what);
    }

    /// An ACK lease fired: decide whether it was a miss, and what the
    /// miss means.
    fn dispatch_lease(&mut self, at: SimTime, seq: u64, node: u32, index: u32, snapshot: u64) {
        let n = self.nodes.get_mut(&node).expect("lease on foreign node");
        let x = &n.xfers[index as usize];
        if x.state().terminal() || x.counters.launches != snapshot {
            // An ACK, NACK or relaunch moved the transfer since this
            // lease was armed — not a miss.
            self.log_event(at, node, seq, node, format!("lease {} superseded", index));
            return;
        }
        let dst = x.dst_node;
        let state = n.peers.entry(dst).or_default().on_miss(&self.health, at);
        if state == HealthState::Down {
            // The detector tripped: abort everything in flight toward
            // the dead peer — each keeps exactly its acked prefix — and
            // start probing under the shared retry policy.
            let mut killed = 0;
            for x in n.xfers.iter_mut().filter(|x| x.dst_node == dst) {
                if x.abort_node_down(at) {
                    killed += 1;
                }
            }
            let probe = n.peers.get_mut(&dst).expect("entry above").next_probe(&self.health);
            if let Some(backoff) = probe {
                let probe_seq = n.next_seq();
                self.queue.push(Reverse(Ordered {
                    at: at + backoff,
                    src_node: node,
                    seq: probe_seq,
                    work: Work::Probe { node, peer: dst },
                }));
            }
            self.log_event(
                at,
                node,
                seq,
                node,
                format!("lease {} miss: n{} down, {} transfers aborted", index, dst, killed),
            );
        } else {
            // Suspect (or still counting): go-back-N resends the unacked
            // chunk; the relaunch arms the next lease.
            let launch_seq = n.next_seq();
            self.queue.push(Reverse(Ordered {
                at,
                src_node: node,
                seq: launch_seq,
                work: Work::Launch { node, index },
            }));
            self.log_event(
                at,
                node,
                seq,
                node,
                format!("lease {} miss ({:?}): relaunch", index, state),
            );
        }
    }

    /// A probe timer fired for a `Down` peer.
    fn dispatch_probe(&mut self, at: SimTime, seq: u64, node: u32, peer: u32) {
        let n = self.nodes.get_mut(&node).expect("probe on foreign node");
        if !n.up {
            // The prober itself died in the meantime.
            return;
        }
        let state = n.peers.get(&peer).map_or(HealthState::Up, |p| p.state());
        if state != HealthState::Down {
            self.log_event(at, node, seq, node, format!("probe n{} cancelled", peer));
            return;
        }
        let env = Envelope {
            src_node: node,
            dst_node: peer,
            seq: n.next_seq(),
            src_inc: n.inc,
            dst_inc: n.believed_inc(peer),
            msg: NetMsg::Ping,
        };
        if n.hung {
            n.crash.dropped_down += 1;
        } else {
            self.tx[peer as usize % self.num_shards].send(at, env);
        }
        // Next attempt, until the budget runs dry — after that only the
        // peer's own Hello can rescue it.
        let next = n.peers.get_mut(&peer).expect("state above").next_probe(&self.health);
        if let Some(backoff) = next {
            let probe_seq = n.next_seq();
            self.queue.push(Reverse(Ordered {
                at: at + backoff,
                src_node: node,
                seq: probe_seq,
                work: Work::Probe { node, peer },
            }));
        }
        self.log_event(at, node, seq, node, format!("probe n{} ({:?})", peer, state));
    }

    fn dispatch_net(&mut self, at: SimTime, seq: u64, env: Envelope) {
        let Envelope { src_node, dst_node, seq: _, src_inc, dst_inc, msg } = env;
        if self.fault_active {
            let n = self.nodes.get_mut(&dst_node).expect("net to foreign node");
            // A dead or hung node hears nothing; the frame evaporates.
            if !n.up || n.hung {
                n.crash.dropped_down += 1;
                self.log_event(at, src_node, seq, dst_node, "frame dropped: node dead".into());
                return;
            }
            if msg.stateful() {
                // Incarnation fence, both directions: a frame aimed at a
                // previous life of this node, or sent by a previous life
                // of the peer, is a ghost — drop it before it touches
                // receive or transfer state. Hello/Ping/Pong are exempt:
                // they are how epochs propagate.
                if dst_inc != n.inc {
                    n.crash.fenced += 1;
                    let inc = n.inc;
                    self.log_event(
                        at,
                        src_node,
                        seq,
                        dst_node,
                        format!("fenced: for inc {} but node is inc {}", dst_inc, inc),
                    );
                    return;
                }
                if n.peers.entry(src_node).or_default().note_epoch(src_inc) {
                    n.crash.fenced += 1;
                    self.log_event(
                        at,
                        src_node,
                        seq,
                        dst_node,
                        format!("fenced: stale inc {} from n{}", src_inc, src_node),
                    );
                    return;
                }
            }
        }
        match msg {
            NetMsg::Announce { xfer, ann } => {
                let n = self.nodes.get_mut(&dst_node).expect("announce to foreign node");
                n.announced.insert(xfer, ann);
                self.log_event(
                    at,
                    src_node,
                    seq,
                    dst_node,
                    format!("announce {} [{}, +{}B]", xfer, ann.va, ann.len),
                );
            }
            NetMsg::Data { xfer, chunk, asid, va, bytes, outcome } => {
                let n = self.nodes.get_mut(&dst_node).expect("data to foreign node");
                // The receive PHY saw the frames whether or not anything
                // useful arrived.
                n.link_stats.deliveries += 1;
                n.link_stats.bytes_accepted += outcome.delivered;
                n.link_stats.retransmits += u64::from(outcome.retransmits);
                n.link_stats.crc_dropped += u64::from(outcome.crc_dropped);
                n.link_stats.dup_ignored += u64::from(outcome.dup_ignored);
                n.link_stats.ooo_discarded += u64::from(outcome.ooo_discarded);
                if bytes.is_empty() {
                    self.log_event(
                        at,
                        src_node,
                        seq,
                        dst_node,
                        format!("data {} chunk {} empty", xfer, chunk),
                    );
                    return;
                }
                match n.iommu.translate(asid, va, Access::Write) {
                    Ok(pa) => {
                        n.mem.write_bytes(pa, &bytes).expect("translated deposit in range");
                        let accepted = bytes.len() as u64;
                        let env = Envelope {
                            src_node: dst_node,
                            dst_node: src_node,
                            seq: n.seq,
                            src_inc: n.inc,
                            // The reply is for the life of the peer that
                            // sent the data, echoed off the frame itself.
                            dst_inc: src_inc,
                            msg: NetMsg::Ack { xfer, chunk, accepted },
                        };
                        n.seq += 1;
                        let back = self.shard_of(src_node);
                        self.tx[back].send(at, env);
                        self.log_event(
                            at,
                            src_node,
                            seq,
                            dst_node,
                            format!("data {} chunk {} +{}B @ {}", xfer, chunk, accepted, va),
                        );
                    }
                    Err(fault) => {
                        n.nacks_raised += 1;
                        // The node OS services the fault before the NACK
                        // departs; the service time rides on the NACK's
                        // arrival stamp, exactly the "link round trip
                        // plus a fault service" of the follow-on papers.
                        let (res, cost) = match n.announced.get(&xfer).copied() {
                            Some(ann) => {
                                n.os.service_announced(&fault, ann.va, ann.len, &mut n.iommu)
                            }
                            None => n.os.service(&fault, &mut n.iommu),
                        };
                        let resolvable = res != FaultResolution::Unresolvable;
                        let env = Envelope {
                            src_node: dst_node,
                            dst_node: src_node,
                            seq: n.seq,
                            src_inc: n.inc,
                            dst_inc: src_inc,
                            msg: NetMsg::Nack { xfer, chunk, fault, resolvable },
                        };
                        n.seq += 1;
                        // A stalled fault service queues the miss behind
                        // whatever it is stuck on; the NACK departs only
                        // once the stall clears.
                        let service_at = if self.fault_active { at.max(n.stall_until) } else { at };
                        let back = self.shard_of(src_node);
                        self.tx[back].send_arriving(
                            at,
                            service_at + cost + self.link.latency(),
                            env,
                        );
                        self.log_event(
                            at,
                            src_node,
                            seq,
                            dst_node,
                            format!(
                                "data {} chunk {} nack {:?} ({})",
                                xfer,
                                chunk,
                                res,
                                if resolvable { "resolvable" } else { "fatal" }
                            ),
                        );
                    }
                }
            }
            NetMsg::Ack { xfer, chunk, accepted } => {
                let n = self.nodes.get_mut(&dst_node).expect("ack to foreign node");
                if self.fault_active && accepted > 0 {
                    // Fresh progress from the peer: clear the miss streak
                    // and, if it had been down, close the outage sample.
                    if let Some(outage) = n.peers.entry(src_node).or_default().on_progress(at) {
                        n.recovery_samples.push(outage);
                    }
                }
                let x = &mut n.xfers[xfer.index as usize];
                let done = x.on_ack(chunk, accepted, at);
                let more = !x.state().terminal();
                let what = format!(
                    "ack {} chunk {} ({})",
                    xfer,
                    chunk,
                    if done {
                        "complete"
                    } else if more {
                        "next chunk"
                    } else {
                        "stale"
                    }
                );
                if more {
                    let launch_seq = n.next_seq();
                    self.queue.push(Reverse(Ordered {
                        at,
                        src_node: dst_node,
                        seq: launch_seq,
                        work: Work::Launch { node: dst_node, index: xfer.index },
                    }));
                }
                self.log_event(at, src_node, seq, dst_node, what);
            }
            NetMsg::Nack { xfer, chunk, resolvable, .. } => {
                let n = self.nodes.get_mut(&dst_node).expect("nack to foreign node");
                if self.fault_active {
                    // Even a NACK proves the peer is alive at `src_inc`.
                    n.peers.entry(src_node).or_default().on_alive(src_inc);
                }
                let x = &mut n.xfers[xfer.index as usize];
                let verdict = x.on_nack(chunk, resolvable, at, &self.rel.retry);
                let what = format!("nack {} chunk {} -> {:?}", xfer, chunk, verdict);
                if let NackVerdict::Retry(when) = verdict {
                    let launch_seq = n.next_seq();
                    self.queue.push(Reverse(Ordered {
                        at: when,
                        src_node: dst_node,
                        seq: launch_seq,
                        work: Work::Launch { node: dst_node, index: xfer.index },
                    }));
                }
                self.log_event(at, src_node, seq, dst_node, what);
            }
            NetMsg::Hello { inc } | NetMsg::Pong { inc } => {
                self.on_peer_alive(at, seq, src_node, dst_node, inc);
            }
            NetMsg::Ping => {
                let n = self.nodes.get_mut(&dst_node).expect("ping to foreign node");
                n.peers.entry(src_node).or_default().on_alive(src_inc);
                let env = Envelope {
                    src_node: dst_node,
                    dst_node: src_node,
                    seq: n.next_seq(),
                    src_inc: n.inc,
                    dst_inc: src_inc,
                    msg: NetMsg::Pong { inc: n.inc },
                };
                let back = self.shard_of(src_node);
                self.tx[back].send(at, env);
                self.log_event(at, src_node, seq, dst_node, format!("ping from n{}", src_node));
            }
        }
    }

    /// A `Hello` or `Pong` announced that `src_node` is in service at
    /// incarnation `inc`. Moves it out of `Down`, and resumes (or, if
    /// its reboot tore their prefix, fails) in-flight transfers to it.
    fn on_peer_alive(&mut self, at: SimTime, seq: u64, src_node: u32, dst_node: u32, inc: u64) {
        let n = self.nodes.get_mut(&dst_node).expect("hello to foreign node");
        let advanced = n.peers.entry(src_node).or_default().on_alive(inc);
        let mut relaunch = Vec::new();
        for (i, x) in n.xfers.iter_mut().enumerate() {
            if x.dst_node != src_node || x.state().terminal() || x.state() == XferState::Pending {
                continue;
            }
            if advanced && x.cursor() > 0 {
                // The destination rebooted under this transfer's feet:
                // its acked prefix landed in memory that no longer
                // exists. Resuming mid-stream would hand the app a torn
                // buffer — fail it, keeping the honest prefix count.
                x.abort_node_down(at);
            } else {
                if advanced {
                    // Nothing acked yet: restart from byte zero into the
                    // new incarnation, announcing the window afresh.
                    x.restart_for_new_epoch();
                }
                relaunch.push(i as u32);
            }
        }
        for index in relaunch {
            let launch_seq = n.next_seq();
            self.queue.push(Reverse(Ordered {
                at,
                src_node: dst_node,
                seq: launch_seq,
                work: Work::Launch { node: dst_node, index },
            }));
        }
        self.log_event(
            at,
            src_node,
            seq,
            dst_node,
            format!("n{} alive at inc {}{}", src_node, inc, if advanced { " (new)" } else { "" }),
        );
    }
}

impl SimComponent for Shard {
    fn drain(&mut self) {
        for r in &mut self.rx {
            r.drain_into(&mut self.scratch);
        }
        for m in self.scratch.drain(..) {
            self.queue.push(Reverse(Ordered {
                at: m.at,
                src_node: m.payload.src_node,
                seq: m.payload.seq,
                work: Work::Net(m.payload),
            }));
        }
    }

    fn next_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(ev)| ev.at)
    }

    fn advance(&mut self, horizon: SimTime) -> u64 {
        let mut done = 0;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at >= horizon {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.dispatch(ev);
            done += 1;
        }
        done
    }
}

/// A cluster of user-level-DMA nodes on the sharded deterministic
/// simulation core. Build, [`grant`](Self::grant) destination buffers,
/// [`post`](Self::post) transfers, [`run`](Self::run), then compare
/// [`digest`](Self::digest)s or read memories.
pub struct ClusterSim {
    cfg: ClusterConfig,
    shards: Vec<Shard>,
    runner: SimRunner,
    report: RunReport,
    wall: Duration,
    posted: u32,
}

impl ClusterSim {
    /// Builds the cluster: every node gets its memory, IOMMU, node OS
    /// and (under chaos) its own decorrelated chaos-link PRNG; every
    /// ordered shard pair gets a channel.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(mut cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes > 0, "a cluster needs at least one node");
        cfg.shards = cfg.shards.clamp(1, cfg.nodes as usize);
        let num_shards = cfg.shards;
        let builder = ChannelBuilder::new(cfg.link.latency());
        // Channel matrix: tx[src][dst] pairs with rx[dst][src].
        let mut rx_grid: Vec<Vec<Option<SimReceiver<Envelope>>>> =
            (0..num_shards).map(|_| (0..num_shards).map(|_| None).collect()).collect();
        let mut tx_grid: Vec<Vec<SimSender<Envelope>>> = Vec::with_capacity(num_shards);
        for src in 0..num_shards {
            let mut row = Vec::with_capacity(num_shards);
            for rx_row in rx_grid.iter_mut() {
                let (tx, rx) = builder.channel(src);
                row.push(tx);
                rx_row[src] = Some(rx);
            }
            tx_grid.push(row);
        }
        let mut shards: Vec<Shard> = tx_grid
            .into_iter()
            .zip(rx_grid)
            .map(|(tx, rx_row)| Shard {
                num_shards,
                num_nodes: cfg.nodes,
                nodes: BTreeMap::new(),
                rx: rx_row.into_iter().map(|r| r.expect("full matrix")).collect(),
                tx,
                queue: BinaryHeap::new(),
                scratch: Vec::new(),
                link: cfg.link,
                rel: cfg.reliability,
                announce: cfg.announce,
                health: cfg.health,
                fault_active: false,
                node_bytes: cfg.node_bytes,
                iotlb: cfg.iotlb,
                costs: cfg.costs,
                log: cfg.record_log.then(Vec::new),
            })
            .collect();
        for node in 0..cfg.nodes {
            let chaos = cfg.chaos.map(|plan| {
                // Decorrelate the per-node packet stories while keeping
                // the whole cluster reproducible from one seed.
                let salt = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(node) + 1);
                FaultyLink::new(FaultPlan { seed: plan.seed ^ salt, ..plan })
            });
            // Nodes are symmetric: every node can receive into any ASID
            // a grant later creates; contexts are created on grant.
            let world = NodeWorld {
                mem: PhysMemory::new(cfg.node_bytes),
                iommu: Iommu::new(cfg.iotlb),
                os: RemoteFaultService::new(cfg.node_bytes, cfg.costs),
                chaos,
                xfers: Vec::new(),
                announced: BTreeMap::new(),
                link_stats: NodeLinkStats::default(),
                nacks_raised: 0,
                seq: 0,
                up: true,
                hung: false,
                inc: 0,
                stall_until: SimTime::ZERO,
                peers: BTreeMap::new(),
                grants: Vec::new(),
                pins: Vec::new(),
                crash: CrashStats::default(),
                recovery_samples: Vec::new(),
            };
            shards[node as usize % num_shards].nodes.insert(node, world);
        }
        let runner = SimRunner::new(cfg.runner, cfg.link.latency());
        ClusterSim {
            cfg,
            shards,
            runner,
            report: RunReport::default(),
            wall: Duration::ZERO,
            posted: 0,
        }
    }

    /// The (clamped) configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    fn node_mut(&mut self, node: u32) -> &mut NodeWorld {
        let shard = node as usize % self.cfg.shards;
        self.shards[shard].nodes.get_mut(&node).expect("node exists")
    }

    fn node_ref(&self, node: u32) -> &NodeWorld {
        let shard = node as usize % self.cfg.shards;
        self.shards[shard].nodes.get(&node).expect("node exists")
    }

    /// Exposes `pages` fresh frames at `va` in `asid` on `node` — the
    /// remote process offering memory for incoming RDMA. Creates the
    /// IOMMU context on first use; under
    /// [`pin_on_post`](ClusterConfig::pin_on_post) also registers the
    /// whole buffer so no chunk ever NACKs.
    ///
    /// # Errors
    ///
    /// [`MemFault::AlreadyMapped`] if a page is taken,
    /// [`MemFault::BusError`] if the node is out of frames.
    pub fn grant(
        &mut self,
        node: u32,
        asid: Asid,
        va: VirtAddr,
        pages: u64,
        perms: Perms,
    ) -> Result<(), MemFault> {
        let pin = self.cfg.pin_on_post;
        let n = self.node_mut(node);
        if !n.iommu.has_context(asid) {
            n.iommu.create_context(asid);
        }
        if pin {
            n.os.expose_pinned(asid, va, pages, perms, &mut n.iommu)?;
        } else {
            n.os.expose(asid, va, pages, perms)?;
        }
        // Grants are durable control-plane state: a reboot replays this
        // ledger into the fresh OS and IOMMU before saying Hello.
        n.grants.push(GrantRecord { asid, va, pages, perms, pinned: pin });
        Ok(())
    }

    /// Registers (pins) `[va, va + len)` of `asid` into `node`'s IOMMU —
    /// the warm fraction of an E13-style partially prefaulted buffer.
    ///
    /// # Errors
    ///
    /// [`MemFault::Unmapped`] at the first hole.
    pub fn pin(&mut self, node: u32, asid: Asid, va: VirtAddr, len: u64) -> Result<u64, MemFault> {
        let n = self.node_mut(node);
        let pinned = n.os.pin_into(asid, va, len, &mut n.iommu)?;
        n.pins.push(PinRecord { asid, va, len });
        Ok(pinned)
    }

    /// Swaps `page` of `asid` out of `node` (cold-page setup for the
    /// swap-in fault path).
    ///
    /// # Errors
    ///
    /// As for [`RemoteFaultService::swap_out`].
    pub fn swap_out(
        &mut self,
        node: u32,
        asid: Asid,
        page: VirtPage,
    ) -> Result<(), RemoteSwapRefused> {
        let n = self.node_mut(node);
        n.os.swap_out(asid, page, &mut n.iommu)
    }

    /// Schedules a scripted node failure (and, if the plan recovers, the
    /// matching recovery) on the victim's own shard, ordered by the
    /// victim's emission counter like any other event.
    ///
    /// The first injection arms the fault domain on every shard: ACK
    /// leases, incarnation fences and health tracking come alive. A run
    /// with no injected plan schedules none of it and is bit-for-bit the
    /// digest of a build without the fault domain at all.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a node out of range.
    pub fn inject_crash(&mut self, plan: CrashPlan) {
        assert!(plan.node < self.cfg.nodes, "crash on node out of range");
        for s in &mut self.shards {
            s.fault_active = true;
        }
        let shard = plan.node as usize % self.cfg.shards;
        let until = plan.recovery_at();
        let n = self.shards[shard].nodes.get_mut(&plan.node).expect("node exists");
        let seq = n.next_seq();
        self.shards[shard].queue.push(Reverse(Ordered {
            at: plan.at,
            src_node: plan.node,
            seq,
            work: Work::Crash { node: plan.node, kind: plan.kind, until },
        }));
        if plan.kind != CrashKind::FaultStall {
            if let Some(when) = until {
                let n = self.shards[shard].nodes.get_mut(&plan.node).expect("node exists");
                let seq = n.next_seq();
                self.shards[shard].queue.push(Reverse(Ordered {
                    at: when,
                    src_node: plan.node,
                    seq,
                    work: Work::Recover { node: plan.node, kind: plan.kind },
                }));
            }
        }
    }

    /// True while `node` has not crashed (or has rebooted).
    pub fn node_up(&self, node: u32) -> bool {
        self.node_ref(node).up
    }

    /// `node`'s current incarnation epoch (0 until its first reboot).
    pub fn node_incarnation(&self, node: u32) -> u64 {
        self.node_ref(node).inc
    }

    /// `node`'s crash/fence/replay counters.
    pub fn crash_stats(&self, node: u32) -> CrashStats {
        self.node_ref(node).crash
    }

    /// What `node`'s failure detector currently believes about `peer`.
    pub fn node_health(&self, node: u32, peer: u32) -> HealthState {
        self.node_ref(node).peers.get(&peer).map_or(HealthState::Up, |p| p.state())
    }

    /// Closed outage samples — detector-trip to first fresh progress —
    /// concatenated in node order (the E19 recovery-latency input).
    pub fn recovery_samples(&self) -> Vec<SimTime> {
        (0..self.cfg.nodes)
            .flat_map(|n| self.node_ref(n).recovery_samples.iter().copied())
            .collect()
    }

    /// Posts a transfer of `len` deterministic pattern bytes from
    /// `src_node` into `(asid, va)` on `dst_node`, launching at `at`.
    /// Returns the transfer's cluster-wide id.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `len` is zero.
    pub fn post(
        &mut self,
        src_node: u32,
        dst_node: u32,
        asid: Asid,
        va: VirtAddr,
        len: u64,
        at: SimTime,
    ) -> XferId {
        assert!(src_node < self.cfg.nodes && dst_node < self.cfg.nodes, "node out of range");
        assert!(len > 0, "zero-byte transfer");
        let shard = src_node as usize % self.cfg.shards;
        let n = self.shards[shard].nodes.get_mut(&src_node).expect("node exists");
        let id = XferId { node: src_node, index: n.xfers.len() as u32 };
        let data = pattern_bytes(id, len);
        n.xfers.push(SendXfer::new(id, dst_node, asid, va, data, at));
        let seq = n.next_seq();
        self.shards[shard].queue.push(Reverse(Ordered {
            at,
            src_node,
            seq,
            work: Work::Launch { node: src_node, index: id.index },
        }));
        self.posted += 1;
        id
    }

    /// The deterministic payload a [`post`](Self::post) generated —
    /// tests compare destination memory against this.
    pub fn expected_payload(id: XferId, len: u64) -> Vec<u8> {
        pattern_bytes(id, len)
    }

    /// Runs to global quiescence and returns the runner's report.
    pub fn run(&mut self) -> RunReport {
        let start = Instant::now();
        let report = self.runner.run(&mut self.shards);
        self.wall += start.elapsed();
        self.report.events += report.events;
        self.report.rounds += report.rounds;
        report
    }

    /// Cumulative runner report across all [`run`](Self::run) calls.
    pub fn report(&self) -> RunReport {
        self.report
    }

    /// Host wall-clock time spent inside [`run`](Self::run).
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// Simulation events per host second — the self-benchmark metric.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.report.events as f64 / self.wall.as_secs_f64()
    }

    /// Transfers posted so far.
    pub fn posted(&self) -> u32 {
        self.posted
    }

    /// Reads `node`'s physical memory (test inspection).
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] outside the node's RAM.
    pub fn read_mem(&self, node: u32, pa: PhysAddr, buf: &mut [u8]) -> Result<(), MemFault> {
        self.node_ref(node).mem.read_bytes(pa, buf)
    }

    /// Translates `(asid, va)` on `node`'s IOMMU without counting stats
    /// (test inspection of where a deposit landed).
    pub fn probe(&mut self, node: u32, asid: Asid, va: VirtAddr) -> Option<PhysAddr> {
        let n = self.node_mut(node);
        n.iommu.probe(asid, va.page(), Access::Read).map(|frame| frame.base() + va.page_offset())
    }

    /// The digest of one transfer.
    pub fn xfer(&self, id: XferId) -> XferDigest {
        let x = &self.node_ref(id.node).xfers[id.index as usize];
        XferDigest {
            id: x.id,
            state: x.state(),
            counters: x.counters,
            posted_at: x.posted_at,
            finished: x.finished,
        }
    }

    /// The full observable outcome: per-node memory CRCs and counters,
    /// per-transfer outcomes, event totals, and (if recorded) the
    /// merged event log in key order.
    pub fn digest(&self) -> ClusterDigest {
        let mut nodes = Vec::with_capacity(self.cfg.nodes as usize);
        let mut xfers = Vec::new();
        for node in 0..self.cfg.nodes {
            let n = self.node_ref(node);
            let mut health = HealthStats::default();
            for p in n.peers.values() {
                health.absorb(&p.stats);
            }
            nodes.push(NodeDigest {
                node,
                mem_crc: mem_crc(&n.mem),
                iotlb: n.iommu.stats(),
                faults: n.os.stats(),
                link: n.link_stats,
                nacks_raised: n.nacks_raised,
                inc: n.inc,
                crash: n.crash,
                health,
            });
            for x in &n.xfers {
                xfers.push(XferDigest {
                    id: x.id,
                    state: x.state(),
                    counters: x.counters,
                    posted_at: x.posted_at,
                    finished: x.finished,
                });
            }
        }
        let mut log: Vec<LogLine> =
            self.shards.iter().filter_map(|s| s.log.as_ref()).flatten().cloned().collect();
        log.sort();
        ClusterDigest { nodes, xfers, events: self.report.events, rounds: self.report.rounds, log }
    }
}

/// Deterministic per-transfer payload pattern (seeded xoshiro stream).
fn pattern_bytes(id: XferId, len: u64) -> Vec<u8> {
    let seed = 0xDA7A_5EED_0000_0000 ^ (u64::from(id.node) << 20) ^ u64::from(id.index);
    let mut rng = TestRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len as usize);
    while (out.len() as u64) < len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(len as usize);
    out
}

/// CRC-32 over a node's entire memory, read in page-sized strides.
fn mem_crc(mem: &PhysMemory) -> u32 {
    let mut buf = vec![0u8; PAGE_SIZE as usize];
    let mut all = Vec::with_capacity(mem.size() as usize);
    let mut pa = 0u64;
    while pa < mem.size() {
        let take = (mem.size() - pa).min(PAGE_SIZE) as usize;
        mem.read_bytes(PhysAddr::new(pa), &mut buf[..take]).expect("in range");
        all.extend_from_slice(&buf[..take]);
        pa += take as u64;
    }
    crc32(&all)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ASID: Asid = 7;
    const DST_VA: u64 = 16 * PAGE_SIZE;

    fn granted(cfg: ClusterConfig, pages: u64) -> ClusterSim {
        let mut sim = ClusterSim::new(cfg);
        for node in 0..cfg.nodes {
            sim.grant(node, ASID, VirtAddr::new(DST_VA), pages, Perms::READ_WRITE).unwrap();
        }
        sim
    }

    #[test]
    fn clean_transfer_completes_and_deposits_the_pattern() {
        let mut cfg = ClusterConfig::new(2);
        cfg.pin_on_post = true;
        let mut sim = granted(cfg, 2);
        let id = sim.post(0, 1, ASID, VirtAddr::new(DST_VA), 2 * PAGE_SIZE, SimTime::ZERO);
        sim.run();
        let x = sim.xfer(id);
        assert_eq!(x.state, XferState::Complete);
        assert_eq!(x.counters.moved, 2 * PAGE_SIZE);
        assert_eq!(x.counters.nacks, 0, "pin-on-post never NACKs");
        let pa = sim.probe(1, ASID, VirtAddr::new(DST_VA)).expect("pinned translation");
        let mut got = vec![0u8; 2 * PAGE_SIZE as usize];
        // Pages are contiguous frames for a fresh expose.
        sim.read_mem(1, pa, &mut got).unwrap();
        assert_eq!(got, ClusterSim::expected_payload(id, 2 * PAGE_SIZE));
    }

    #[test]
    fn cold_buffer_nacks_once_per_page_without_announce() {
        let cfg = ClusterConfig::new(2); // demand paging, no announce
        let mut sim = granted(cfg, 3);
        let id = sim.post(0, 1, ASID, VirtAddr::new(DST_VA), 3 * PAGE_SIZE, SimTime::ZERO);
        sim.run();
        let x = sim.xfer(id);
        assert_eq!(x.state, XferState::Complete);
        assert_eq!(x.counters.nacks, 3, "every cold page costs one NACK round trip");
        let d = sim.digest();
        assert_eq!(d.nodes[1].nacks_raised, 3);
        assert_eq!(d.nodes[1].faults.mapped, 3);
    }

    #[test]
    fn announce_buys_one_nack_per_range() {
        let mut cfg = ClusterConfig::new(2);
        cfg.announce = true;
        let mut sim = granted(cfg, 4);
        let id = sim.post(0, 1, ASID, VirtAddr::new(DST_VA), 4 * PAGE_SIZE, SimTime::ZERO);
        sim.run();
        let x = sim.xfer(id);
        assert_eq!(x.state, XferState::Complete);
        assert_eq!(x.counters.nacks, 1, "the announced range services in one kernel entry");
        assert!(sim.digest().nodes[1].faults.range_prefilled >= 3);
    }

    #[test]
    fn unknown_asid_fails_the_transfer() {
        let cfg = ClusterConfig::new(2);
        let mut sim = granted(cfg, 1);
        let id = sim.post(0, 1, 99, VirtAddr::new(DST_VA), PAGE_SIZE, SimTime::ZERO);
        sim.run();
        assert_eq!(sim.xfer(id).state, XferState::Failed);
    }

    #[test]
    fn sequential_and_parallel_digests_match_on_a_small_mesh() {
        let run = |shards: usize, runner: RunnerKind| {
            let mut cfg = ClusterConfig::new(4);
            cfg.shards = shards;
            cfg.runner = runner;
            cfg.record_log = true;
            cfg.chaos = Some(FaultPlan::lossless(0xC1A5).with_drop(0.2));
            let mut sim = granted(cfg, 2);
            for src in 0..4u32 {
                let dst = (src + 1) % 4;
                sim.post(src, dst, ASID, VirtAddr::new(DST_VA), 2 * PAGE_SIZE, SimTime::ZERO);
            }
            sim.run();
            sim.digest()
        };
        let oracle = run(1, RunnerKind::Sequential);
        for shards in [1usize, 2, 4] {
            let par = run(shards, RunnerKind::Parallel);
            if let Some(diff) = oracle.diff(&par) {
                panic!("{shards}-shard parallel run diverged:\n{diff}");
            }
        }
    }
}
