//! The simulated workstation: substrates wired together.

use crate::coherence::{CoherenceMode, CoherenceSetup};
use crate::ctx_virt::{LogicalPost, PostPath};
use crate::va::{SwapRefused, VaMode, VirtDmaSetup};
use crate::DmaMethod;
use std::cell::RefCell;
use std::rc::Rc;
use udma_bus::{
    AgentId, Bus, BusTiming, CacheConfig, CoherenceDomain, SharedCoherence, SharedMemory, SimTime,
    WriteBufferPolicy,
};
use udma_cpu::{
    CostModel, Executor, Operand, Pid, ProcState, Program, ProgramBuilder, Reg, RunOutcome,
    RunToCompletion, Scheduler,
};
use udma_mem::{PageTable, Perms, PhysAddr, PhysLayout, PhysMemory, VirtAddr, PAGE_SIZE};
use udma_nic::{
    Cluster, CrashStats, Destination, DmaDescriptor, DmaEngine, EngineConfig, FaultPlan,
    FaultyLinkStats, HealthState, HealthStats, Initiator, LinkModel, NodeLinkStats, RejectReason,
    ReliabilityConfig, RemoteVaTarget, RingConfig, RingLaunch, RingStats, SharedCluster,
    TransferRecord, VirtState, VirtTransfer,
};
use udma_os::{
    pin_range, Acquired, CtxCache, CtxCacheConfig, CtxGrant, FaultResolution, FaultService, Kernel,
    LPid, MappedBuffer, QosClass, RemoteFaultService, RemoteSwapRefused, ShadowMode,
};

/// PAL function index of the installed user-level DMA call (§2.7).
pub const PAL_DMA: u16 = 1;

/// Virtual address of the first data buffer; buffers are spaced
/// [`BUF_VA_STRIDE`] apart.
const BUF_VA_BASE: u64 = 16 * PAGE_SIZE;
const BUF_VA_STRIDE: u64 = 64 * PAGE_SIZE;

/// Full machine configuration.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// The initiation method under test (decides NIC protocol, kernel
    /// switch policy, and compiled sequences).
    pub method: DmaMethod,
    /// CPU-side cost model.
    pub cost: CostModel,
    /// I/O bus timing.
    pub bus_timing: BusTiming,
    /// Outgoing link model.
    pub link: LinkModel,
    /// Write-buffer behaviour.
    pub wb_policy: WriteBufferPolicy,
    /// Data-cache geometry (timing only).
    pub cache: CacheConfig,
    /// Physical address map.
    pub layout: PhysLayout,
    /// Register contexts in the engine.
    pub num_contexts: u32,
    /// Seed for key generation (deterministic experiments).
    pub key_seed: u64,
    /// Significant bits in generated keys (61 in the paper's layout;
    /// shrink to make key-guessing experiments tractable).
    pub key_bits: u32,
    /// Remote workstations reachable over the link (0 = standalone).
    pub remote_nodes: u32,
    /// Memory per remote node in bytes.
    pub remote_node_bytes: u64,
    /// Virtual-address DMA subsystem (NI-side IOMMU/IOTLB). `None` —
    /// the default — leaves the machine exactly as the paper built it.
    pub virt_dma: Option<VirtDmaSetup>,
    /// Seeded fault plan for the outgoing link. `None` — the default —
    /// keeps the link lossless and the remote data path byte-for-byte
    /// identical to a machine built before chaos existed.
    pub link_chaos: Option<FaultPlan>,
    /// Link-reliability tunables: go-back-N framing, ACK timeout, retry
    /// budget, watchdog deadline and circuit-breaker threshold.
    pub reliability: ReliabilityConfig,
    /// Cache-coherence model. The default ([`CoherenceMode::Flat`])
    /// keeps the data cache timing-only, exactly as the paper's testbed
    /// measured it; the other modes make it carry data and force DMA to
    /// deal with it (software flushes or hardware snooping).
    pub coherence: CoherenceSetup,
}

impl MachineConfig {
    /// The paper's testbed configuration for `method`: Alpha 3000/300,
    /// 12.5 MHz TurboChannel, ATM-class link, 4 register contexts.
    pub fn new(method: DmaMethod) -> Self {
        MachineConfig {
            method,
            cost: CostModel::alpha_3000_300(),
            bus_timing: BusTiming::turbochannel(),
            link: LinkModel::atm155(),
            wb_policy: WriteBufferPolicy::default(),
            cache: CacheConfig::alpha_21064(),
            layout: PhysLayout::default(),
            num_contexts: 4,
            key_seed: 0x5EED,
            key_bits: 61,
            remote_nodes: 0,
            remote_node_bytes: 1 << 20,
            virt_dma: None,
            link_chaos: None,
            reliability: ReliabilityConfig::default(),
            coherence: CoherenceSetup::default(),
        }
    }
}

/// A buffer requested for a process.
#[derive(Clone, Copy, Debug)]
pub struct BufferSpec {
    /// Pages to allocate (or to alias when shared).
    pub pages: u64,
    /// Permissions of this process's mapping.
    pub perms: Perms,
    /// Alias an existing buffer of another process instead of allocating.
    pub share: Option<ShareRef>,
}

impl BufferSpec {
    /// A fresh read-write buffer.
    pub fn rw(pages: u64) -> Self {
        BufferSpec { pages, perms: Perms::READ_WRITE, share: None }
    }

    /// A view of another process's buffer.
    pub fn shared(of: ShareRef, perms: Perms) -> Self {
        BufferSpec { pages: 0, perms, share: Some(of) }
    }
}

/// Reference to another process's buffer.
#[derive(Clone, Copy, Debug)]
pub struct ShareRef {
    /// Owning process.
    pub pid: Pid,
    /// Buffer index within that process.
    pub buffer: usize,
}

/// What a process needs from the kernel before it starts.
#[derive(Clone, Debug, Default)]
pub struct ProcessSpec {
    /// Buffers to map (index order = [`ProcessEnv::buffer`] order).
    pub buffers: Vec<BufferSpec>,
    /// Request a register context? `None` = whatever the method needs.
    pub want_ctx: Option<bool>,
    /// SHRIMP-1 mapped-out links: `(src_buffer, dst_buffer)` pairs; every
    /// page of the source buffer is mapped out to the corresponding page
    /// of the destination buffer.
    pub mapped_out: Vec<(usize, usize)>,
    /// SHRIMP-1 mapped-out links to *remote* nodes:
    /// `(src_buffer, node, remote_base_addr)` — page `i` of the source
    /// buffer maps out to `remote_base_addr + i·PAGE_SIZE` on `node`.
    pub mapped_out_remote: Vec<(usize, u32, u64)>,
}

impl ProcessSpec {
    /// The common case: a source and a destination buffer, one page each.
    pub fn two_buffers() -> Self {
        ProcessSpec { buffers: vec![BufferSpec::rw(1), BufferSpec::rw(1)], ..Default::default() }
    }

    /// Source/destination buffers with `pages` pages each.
    pub fn two_buffers_of(pages: u64) -> Self {
        ProcessSpec {
            buffers: vec![BufferSpec::rw(pages), BufferSpec::rw(pages)],
            ..Default::default()
        }
    }
}

/// Everything a spawned process knows about its environment; program
/// builders receive this.
#[derive(Clone, Debug)]
pub struct ProcessEnv {
    /// The process id.
    pub pid: Pid,
    /// The machine's initiation method.
    pub method: DmaMethod,
    /// Mapped buffers, in [`ProcessSpec::buffers`] order.
    pub buffers: Vec<MappedBuffer>,
    /// Register-context grant, if the kernel gave one.
    pub ctx: Option<CtxGrant>,
    /// VA of the mapped register-context page, if granted.
    pub ctx_page_va: Option<VirtAddr>,
    shadow_mask: u64,
}

impl ProcessEnv {
    /// Buffer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn buffer(&self, i: usize) -> &MappedBuffer {
        &self.buffers[i]
    }

    /// The shadow twin of a data virtual address (same offset, shadow bit
    /// set — the kernel created both mappings at allocation time).
    pub fn shadow_of(&self, va: VirtAddr) -> VirtAddr {
        VirtAddr::new(va.as_u64() | self.shadow_mask)
    }

    /// An address `offset` bytes into buffer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `offset` exceeds the buffer.
    pub fn addr_in(&self, i: usize, offset: u64) -> VirtAddr {
        let b = self.buffer(i);
        assert!(offset < b.len(), "offset outside buffer");
        b.va + offset
    }

    /// Whether this process can use the machine's user-level method (it
    /// may lack a register context when contexts ran out — §3.2: "the
    /// rest will have to go through the kernel").
    pub fn can_use_user_level(&self) -> bool {
        !self.method.needs_ctx() || self.ctx.is_some()
    }
}

/// One persistent grant record: what a remote node's OS wrote down
/// before exposing a buffer, and therefore what its reboot replays.
#[derive(Clone, Copy, Debug)]
struct RemoteGrant {
    asid: u32,
    va: VirtAddr,
    pages: u64,
    perms: Perms,
}

/// The assembled workstation.
pub struct Machine {
    config: MachineConfig,
    bus: Bus,
    executor: Executor,
    kernel: Kernel,
    engine: DmaEngine,
    cluster: Option<SharedCluster>,
    envs: Vec<ProcessEnv>,
    fault_service: FaultService,
    /// One OS per remote node, answering NACKed receive-side faults
    /// (populated when both `remote_nodes > 0` and `virt_dma` are set).
    remote_os: Vec<RemoteFaultService>,
    /// Persistent (on-"disk") grant records, one ledger per remote
    /// node: everything [`Machine::grant_remote_buffer`] exposed. A
    /// reboot replays this ledger — it is the only node-local state
    /// that survives a [`Machine::crash_remote_node`].
    remote_grants: Vec<Vec<RemoteGrant>>,
    /// Context virtualization: the OS context cache multiplexing
    /// logical processes onto the NI's register contexts (enabled by
    /// [`Machine::enable_ctx_virtualization`]).
    ctx_cache: Option<CtxCache>,
    /// The MESI coherence domain and the CPU's agent id in it
    /// (`None` in [`CoherenceMode::Flat`]).
    coherence: Option<(SharedCoherence, AgentId)>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("method", &self.config.method)
            .field("processes", &self.envs.len())
            .field("now", &self.executor.now())
            .finish()
    }
}

impl Machine {
    /// Builds a machine from a configuration.
    pub fn new(config: MachineConfig) -> Self {
        config.layout.validate();
        let mem: SharedMemory = Rc::new(RefCell::new(PhysMemory::new(config.layout.ram_size)));
        let mut bus = Bus::new(config.layout, Rc::clone(&mem), config.bus_timing);
        let engine = DmaEngine::new(
            config.layout,
            mem,
            EngineConfig {
                num_contexts: config.num_contexts,
                link: config.link,
                reliability: config.reliability,
                ..EngineConfig::default()
            },
            config.method.protocol(),
        );
        if let Some(plan) = config.link_chaos {
            engine.core_mut().attach_link_chaos(plan);
        }
        bus.attach_nic(Box::new(engine.clone()));
        let kernel = Kernel::new(
            config.layout,
            config.cost,
            config.method.switch_policy(),
            config.num_contexts,
            config.key_seed,
            config.key_bits,
        );
        let cluster = (config.remote_nodes > 0).then(|| {
            let c = Cluster::new(config.remote_nodes, config.remote_node_bytes).shared();
            engine.core_mut().attach_cluster(c.clone());
            c
        });
        let mut executor = Executor::with_cache(config.cost, config.wb_policy, config.cache);
        if config.method.needs_pal() {
            // PAL_DMA(r1 = shadow(vdst), r2 = size, r3 = shadow(vsrc)):
            // the SHRIMP-2 sequence, uninterruptible (§2.7).
            let pal = ProgramBuilder::new()
                .store(Operand::Reg(Reg::R1), Operand::Reg(Reg::R2))
                .load(Reg::R0, Operand::Reg(Reg::R3))
                .build();
            executor.install_pal(PAL_DMA, pal);
        }
        // Coherence: both non-flat modes attach the CPU as a data-carrying
        // MESI agent (so stale-data hazards are real, not assumed); only
        // `Coherent` additionally puts the engine's mover on the snoop bus.
        let coherence = match config.coherence.mode {
            CoherenceMode::Flat => None,
            mode => {
                let shared = CoherenceDomain::new(bus.memory(), config.coherence.timing).shared();
                let agent = shared.borrow_mut().add_agent(config.cache);
                executor.attach_coherence(Rc::clone(&shared), agent);
                if mode == CoherenceMode::Coherent {
                    engine.core_mut().attach_coherence(Rc::clone(&shared));
                }
                Some((shared, agent))
            }
        };
        let fault_service = match config.virt_dma {
            Some(setup) => {
                engine.core_mut().enable_iommu(setup.iotlb, setup.virt);
                FaultService::new(setup.fault_costs)
            }
            None => FaultService::default(),
        };
        // Virtual-address RDMA: every remote node gets a receive-side
        // IOMMU and an OS of its own to answer NACKed faults.
        let mut remote_os = Vec::new();
        if let (Some(setup), Some(c)) = (config.virt_dma, &cluster) {
            c.borrow_mut().enable_virt(setup.iotlb);
            remote_os = (0..config.remote_nodes)
                .map(|_| RemoteFaultService::new(config.remote_node_bytes, setup.fault_costs))
                .collect();
        }
        let remote_grants = vec![Vec::new(); remote_os.len()];
        Machine {
            config,
            bus,
            executor,
            kernel,
            engine,
            cluster,
            envs: Vec::new(),
            fault_service,
            remote_os,
            remote_grants,
            ctx_cache: None,
            coherence,
        }
    }

    /// A machine with the default (paper-testbed) configuration.
    pub fn with_method(method: DmaMethod) -> Self {
        Machine::new(MachineConfig::new(method))
    }

    /// The configuration in force.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Creates a process: maps its buffers (with the shadow mode the
    /// method needs), grants a register context if applicable, then asks
    /// `build` for the program.
    ///
    /// # Panics
    ///
    /// Panics if buffer mapping fails (address-space collision or
    /// exhausted RAM) — a configuration error, not a runtime condition.
    pub fn spawn(&mut self, spec: &ProcessSpec, build: impl FnOnce(&ProcessEnv) -> Program) -> Pid {
        let pid = Pid::new(self.executor.processes().len() as u32);
        let mut pt = PageTable::new();
        let now = self.executor.now();

        // Register context first: extended shadow mappings need the ctx
        // id — and virtual-address DMA posts through the context page, so
        // a VA-DMA machine grants one regardless of method.
        let want_ctx = spec.want_ctx.unwrap_or_else(|| self.config.method.needs_ctx())
            || self.config.virt_dma.is_some();
        let ctx = if want_ctx { self.kernel.grant_context(pid, &mut self.bus, now) } else { None };
        let shadow_mode = match (self.config.method, ctx) {
            (DmaMethod::ExtShadow | DmaMethod::ExtShadowPairwise, Some(g)) => {
                ShadowMode::WithCtx(g.ctx)
            }
            (DmaMethod::ExtShadow | DmaMethod::ExtShadowPairwise, None) => ShadowMode::None,
            _ => ShadowMode::Plain,
        };

        let mut buffers = Vec::with_capacity(spec.buffers.len());
        for (i, bspec) in spec.buffers.iter().enumerate() {
            let va = VirtAddr::new(BUF_VA_BASE + i as u64 * BUF_VA_STRIDE);
            let buf = match bspec.share {
                Some(r) => {
                    let src = *self.envs[r.pid.as_u32() as usize].buffer(r.buffer);
                    self.kernel
                        .vm_mut()
                        .map_shared(
                            &mut pt,
                            va,
                            src.first_frame,
                            src.pages,
                            bspec.perms,
                            shadow_mode,
                        )
                        .expect("shared mapping failed")
                }
                None => self
                    .kernel
                    .vm_mut()
                    .map_buffer(&mut pt, va, bspec.pages, bspec.perms, shadow_mode)
                    .expect("buffer mapping failed"),
            };
            buffers.push(buf);
        }

        let ctx_page_va = ctx.map(|g| {
            self.kernel.vm_mut().map_ctx_page(&mut pt, g.ctx).expect("context page mapping failed")
        });

        // Virtual-address DMA: the granted context id doubles as the
        // process's ASID in the NI-side IOMMU.
        if let (Some(setup), Some(g)) = (self.config.virt_dma, ctx) {
            let mut core = self.engine.core_mut();
            let iommu = core.iommu_mut().expect("virt_dma config enables the IOMMU");
            iommu.create_context(g.ctx);
            if setup.mode == VaMode::PinOnPost {
                for buf in &buffers {
                    pin_range(g.ctx, buf.va, buf.len(), &pt, iommu)
                        .expect("pin-on-post registration of a just-mapped buffer");
                }
            }
        }

        // SHRIMP-1 mapped-out table (local twins).
        for &(src_i, dst_i) in &spec.mapped_out {
            let src = &buffers[src_i];
            let dst = &buffers[dst_i];
            assert!(dst.pages >= src.pages, "mapped-out target too small");
            let mut core = self.engine.core_mut();
            for p in 0..src.pages {
                core.set_mapped_out(
                    src.first_frame.offset(p),
                    Destination::Local(dst.first_frame.offset(p).base()),
                );
            }
        }
        // SHRIMP-1 mapped-out table (remote twins on cluster nodes).
        for &(src_i, node, base) in &spec.mapped_out_remote {
            assert!(
                self.cluster.is_some(),
                "mapped_out_remote needs remote_nodes > 0 in the MachineConfig"
            );
            let src = &buffers[src_i];
            let mut core = self.engine.core_mut();
            for p in 0..src.pages {
                core.set_mapped_out(
                    src.first_frame.offset(p),
                    Destination::Remote {
                        node,
                        addr: udma_mem::PhysAddr::new(base + p * PAGE_SIZE),
                    },
                );
            }
        }

        let env = ProcessEnv {
            pid,
            method: self.config.method,
            buffers,
            ctx,
            ctx_page_va,
            shadow_mask: self.config.layout.shadow.shadow_mask(),
        };
        let program = build(&env);
        let spawned = self.executor.spawn(program, pt);
        debug_assert_eq!(spawned, pid);
        self.envs.push(env);
        pid
    }

    /// The environment of a spawned process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not spawned here.
    pub fn env(&self, pid: Pid) -> &ProcessEnv {
        &self.envs[pid.as_u32() as usize]
    }

    /// Runs to completion (no preemption).
    pub fn run(&mut self, max_steps: u64) -> RunOutcome {
        self.run_with(&mut RunToCompletion, max_steps)
    }

    /// Runs under an explicit scheduler.
    pub fn run_with(&mut self, sched: &mut dyn Scheduler, max_steps: u64) -> RunOutcome {
        self.executor.run(sched, &mut self.kernel, &mut self.bus, max_steps)
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.executor.now()
    }

    /// The coherence domain, when one exists.
    pub(crate) fn coherence_domain(&self) -> Option<SharedCoherence> {
        self.coherence.as_ref().map(|(d, _)| Rc::clone(d))
    }

    /// The coherence domain and the CPU's agent id in it.
    pub(crate) fn cpu_coherence(&self) -> Option<(SharedCoherence, AgentId)> {
        self.coherence.as_ref().map(|(d, a)| (Rc::clone(d), *a))
    }

    /// Charges externally-computed time (software coherence loops)
    /// against the machine clock.
    pub(crate) fn advance_time(&mut self, dt: SimTime) {
        self.executor.advance(dt);
    }

    /// A process register (results land in `r0` by convention).
    pub fn reg(&self, pid: Pid, reg: Reg) -> u64 {
        self.executor.process(pid).reg(reg)
    }

    /// A process's lifecycle state.
    pub fn state(&self, pid: Pid) -> ProcState {
        self.executor.process(pid).state()
    }

    /// The DMA engine (stats, transfer records, protocol kind).
    pub fn engine(&self) -> &DmaEngine {
        &self.engine
    }

    /// The kernel (stats, switch policy).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    // ---- context virtualization -------------------------------------

    /// Hands the NI's register contexts to an OS context cache
    /// ([`CtxCache`]), so thousands of [logical
    /// processes](Self::register_logical) can share them. Must be
    /// called before any key-based process receives a *static* grant —
    /// the cache assumes it owns every context.
    ///
    /// # Panics
    ///
    /// Panics if a static context grant is already outstanding.
    pub fn enable_ctx_virtualization(&mut self, config: CtxCacheConfig) {
        assert_eq!(
            self.kernel.keys().available(),
            self.config.num_contexts as usize,
            "enable context virtualization before spawning key-based processes: \
             static grants would collide with cache-managed contexts"
        );
        self.ctx_cache = Some(CtxCache::new(self.config.num_contexts, config));
    }

    /// The OS context cache, when enabled.
    pub fn ctx_cache(&self) -> Option<&CtxCache> {
        self.ctx_cache.as_ref()
    }

    /// Mutable context cache (tests: force releases, inspect keys).
    pub fn ctx_cache_mut(&mut self) -> Option<&mut CtxCache> {
        self.ctx_cache.as_mut()
    }

    /// Registers a logical process at `class`. Logical processes are
    /// *not* executor processes: they carry no program, no page table
    /// and no register file — just a minted key and a spill slot —
    /// which is what makes registering 100k of them tractable. They
    /// post DMA through [`Self::logical_post_at`].
    ///
    /// # Panics
    ///
    /// Panics unless [`Self::enable_ctx_virtualization`] was called.
    pub fn register_logical(&mut self, class: QosClass) -> LPid {
        self.ctx_cache
            .as_mut()
            .expect("call enable_ctx_virtualization first")
            .register(class, SimTime::ZERO)
    }

    /// Posts a physical-address DMA for logical process `p` at
    /// simulated time `now`, acquiring a register context
    /// transparently:
    ///
    /// * resident → the keyed 4-access user-level sequence, no OS;
    /// * not resident → the kernel spills a victim (LRU/clock/random,
    ///   QoS- and busy-filtered) and refills `p`'s context, charging
    ///   the §3.2 per-operation spill/fill cost, then posts user-level;
    /// * throttled or starved → the Figure-1 kernel DMA path.
    ///
    /// The returned [`LogicalPost`] carries the path taken, the full
    /// initiation cost, and the mover record of the started transfer.
    ///
    /// # Panics
    ///
    /// Panics unless [`Self::enable_ctx_virtualization`] was called.
    pub fn logical_post_at(
        &mut self,
        p: LPid,
        src: PhysAddr,
        dst: PhysAddr,
        size: u64,
        now: SimTime,
    ) -> LogicalPost {
        let cache = self.ctx_cache.as_mut().expect("call enable_ctx_virtualization first");
        let cost = &self.config.cost;
        let mut core = self.engine.core_mut();
        let acq = cache.acquire(p, &mut core, now);
        match acq {
            Acquired::Hit { ctx } | Acquired::Filled { ctx, .. } => {
                // The keyed user-level sequence: two keyed address
                // stores, the size store, one status load (§3.1).
                let user = SimTime::from_ps(cost.mem_instr().as_ps() * 4);
                let initiation = acq.cost() + user;
                let record = core
                    .start_user_dma(src, dst, size, Initiator::Context(ctx), now + initiation)
                    .ok();
                if let Some(idx) = record {
                    core.context_mut(ctx).set_last_transfer(idx);
                }
                let stole = match acq {
                    Acquired::Filled { stole, .. } => stole,
                    _ => None,
                };
                LogicalPost { path: PostPath::UserLevel { ctx, stole }, initiation, record }
            }
            Acquired::Throttled { .. } | Acquired::Starved { .. } => {
                // The Figure-1 kernel path: syscall round trip,
                // software translation of both addresses, three
                // register programs and the status read.
                let pages = size.div_ceil(PAGE_SIZE).max(1);
                let kernel_path = cost.syscall_round_trip().as_ps()
                    + 2 * pages * cost.translation().as_ps()
                    + 4 * cost.mem_instr().as_ps();
                let initiation = acq.cost() + SimTime::from_ps(kernel_path);
                let record =
                    core.start_user_dma(src, dst, size, Initiator::Kernel, now + initiation).ok();
                let throttled = matches!(acq, Acquired::Throttled { .. });
                LogicalPost { path: PostPath::KernelFallback { throttled }, initiation, record }
            }
        }
    }

    /// The bus (trace, counters).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Mutable bus access (enable tracing before a run).
    pub fn bus_mut(&mut self) -> &mut Bus {
        &mut self.bus
    }

    /// The executor (instruction counts, TLB stats, process inspection).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Shared physical memory (seed/inspect data in tests).
    pub fn memory(&self) -> SharedMemory {
        self.bus.memory()
    }

    /// The remote cluster, when `remote_nodes > 0` was configured.
    pub fn cluster(&self) -> Option<SharedCluster> {
        self.cluster.clone()
    }

    /// Snapshot of all transfers the engine performed.
    pub fn transfers(&self) -> Vec<TransferRecord> {
        self.engine.core().mover().records().to_vec()
    }

    // ---- virtual-address DMA ----------------------------------------

    /// The OS I/O-fault service (statistics).
    pub fn fault_service(&self) -> &FaultService {
        &self.fault_service
    }

    /// Posts a virtual-address DMA on behalf of `pid` directly (the
    /// programmatic twin of the `CTX_VIRT_*` store sequence). Returns
    /// the engine's transfer id.
    ///
    /// # Panics
    ///
    /// Panics if the machine has no [`VirtDmaSetup`] or the process has
    /// no register context.
    pub fn post_virt(
        &mut self,
        pid: Pid,
        src: VirtAddr,
        dst: VirtAddr,
        size: u64,
    ) -> Result<usize, RejectReason> {
        let asid =
            self.envs[pid.as_u32() as usize].ctx.expect("virtual-address DMA needs a context").ctx;
        let now = self.executor.now();
        self.engine.core_mut().post_virt_dma(asid, src, dst, size, now)
    }

    /// Snapshot of a virtual-address transfer.
    pub fn virt_xfer(&self, id: usize) -> Option<VirtTransfer> {
        self.engine.core().virt_xfer(id).copied()
    }

    // ---- doorbell-batched descriptor rings ---------------------------

    /// Enables the NI's descriptor-ring unit: the per-context doorbell
    /// offset and the privileged ring tables decode from now on.
    /// Machines that never call this are bit-for-bit unchanged.
    ///
    /// # Panics
    ///
    /// Panics unless the machine was built with a [`VirtDmaSetup`] —
    /// descriptors carry virtual addresses the ring engine translates
    /// through the NI-side IOMMU.
    pub fn enable_desc_rings(&mut self, config: RingConfig) {
        assert!(
            self.config.virt_dma.is_some(),
            "descriptor rings need a VirtDmaSetup: the engine translates descriptors through the IOMMU"
        );
        self.engine.core_mut().enable_rings(config);
    }

    /// OS-mediated ring registration (the §3.2 grant path): validates
    /// that `capacity` descriptor slots fit inside `pid`'s own writable
    /// buffer `buffer`, then programs the privileged ring tables over
    /// the bus. Returns `false` when the kernel refuses the window.
    ///
    /// # Panics
    ///
    /// Panics if `pid` has no register context (rings ride on the same
    /// grant as every user-level path).
    pub fn register_ring(&mut self, pid: Pid, buffer: usize, capacity: u64) -> bool {
        let env = &self.envs[pid.as_u32() as usize];
        let grant = env.ctx.expect("ring registration needs a register context");
        let buf = *env.buffer(buffer);
        let now = self.executor.now();
        self.kernel.register_ring(&grant, &buf, capacity, &mut self.bus, now)
    }

    /// Posts one descriptor into `pid`'s ring — the programmatic twin
    /// of the user library's four slot stores. Nothing launches until
    /// [`Machine::ring_doorbell`]. Returns the absolute slot index.
    ///
    /// # Panics
    ///
    /// Panics if `pid` has no register context.
    pub fn post_ring(&mut self, pid: Pid, desc: &DmaDescriptor) -> Result<u64, RejectReason> {
        let ctx = self.envs[pid.as_u32() as usize].ctx.expect("ring post needs a context").ctx;
        let now = self.executor.now();
        self.engine.core_mut().ring_post(ctx, desc, now)
    }

    /// Rings `pid`'s doorbell — the programmatic twin of the single
    /// user-level store to `CTX_RING_DB` — covering everything posted
    /// so far. The engine dequeues and launches the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `pid` has no register context.
    pub fn ring_doorbell(&mut self, pid: Pid) -> Vec<RingLaunch> {
        let ctx = self.envs[pid.as_u32() as usize].ctx.expect("doorbell needs a context").ctx;
        let now = self.executor.now();
        let tail = self.engine.core().ring(ctx).posted();
        self.engine.core_mut().ring_doorbell(ctx, tail, now)
    }

    /// Counters of the NI's descriptor-ring unit.
    pub fn ring_stats(&self) -> RingStats {
        self.engine.core().ring_stats()
    }

    /// Drains the engine's I/O fault queue through the OS fault service:
    /// each fault is checked against the faulting process's CPU page
    /// table, then its transfer is resumed (fault resolved) or failed
    /// (fault unresolvable). Returns the number of faults serviced.
    pub fn service_va_faults(&mut self) -> u64 {
        let mut serviced = 0;
        loop {
            let Some(pending) = self.engine.core_mut().pop_fault() else {
                return serviced;
            };
            serviced += 1;
            let now = self.executor.now();
            let pid = self
                .envs
                .iter()
                .find(|e| e.ctx.map(|g| g.ctx) == Some(pending.fault.asid))
                .map(|e| e.pid);
            let mut core = self.engine.core_mut();
            let (resolution, cost) = match pid {
                Some(pid) => {
                    let pt = self.executor.process_mut(pid).page_table_mut();
                    let iommu = core.iommu_mut().expect("virt faults imply an IOMMU");
                    self.fault_service.service(&pending.fault, pt, self.kernel.vm_mut(), iommu)
                }
                // An ASID no process owns: nothing to consult, fail it.
                None => (FaultResolution::Unresolvable, SimTime::ZERO),
            };
            match resolution {
                FaultResolution::Unresolvable => {
                    core.fail_virt(pending.xfer, now + cost);
                }
                FaultResolution::Mapped | FaultResolution::SwappedIn => {
                    core.resume_virt(pending.xfer, now + cost);
                }
            }
        }
    }

    /// Drives one virtual-address transfer to a terminal state: services
    /// faults as the OS would, resorting to spontaneous engine retries
    /// when no fault is queued. Bounded by `max_rounds`.
    pub fn run_virt(&mut self, id: usize, max_rounds: u32) -> VirtState {
        for _ in 0..max_rounds {
            let Some(t) = self.virt_xfer(id) else {
                break;
            };
            if t.is_terminal() {
                return t.state;
            }
            if self.service_va_faults() == 0 && self.service_remote_faults() == 0 {
                let now = self.executor.now();
                self.engine.core_mut().resume_virt(id, now);
            }
        }
        self.virt_xfer(id).map(|t| t.state).unwrap_or(VirtState::Running)
    }

    /// The model swapper: takes one page of `pid`'s address space out of
    /// memory (CPU PTE into the swap ledger, I/O translation shot down).
    /// Refuses pages the IOMMU holds pinned — a device transfer may be
    /// streaming over them.
    ///
    /// # Errors
    ///
    /// [`SwapRefused`] naming why the page stayed resident.
    pub fn swap_out_va(&mut self, pid: Pid, va: VirtAddr) -> Result<(), SwapRefused> {
        let page = va.page();
        let asid = self.envs[pid.as_u32() as usize].ctx.map(|g| g.ctx);
        let mut core = self.engine.core_mut();
        if let (Some(asid), Some(iommu)) = (asid, core.iommu_mut()) {
            if iommu.table(asid).and_then(|t| t.entry(page)).is_some_and(|e| e.pinned) {
                return Err(SwapRefused::Pinned);
            }
            iommu.unmap(asid, page);
        }
        let pt = self.executor.process_mut(pid).page_table_mut();
        self.kernel
            .vm_mut()
            .swap_out(asid.unwrap_or(pid.as_u32()), pt, page)
            .map_err(|_| SwapRefused::NotMapped)
    }

    // ---- virtual-address *remote* DMA -------------------------------

    /// The OS of remote node `node` (statistics, swap ledger).
    ///
    /// # Panics
    ///
    /// Panics if the machine has no such node or no [`VirtDmaSetup`].
    pub fn remote_fault_service(&self, node: u32) -> &RemoteFaultService {
        &self.remote_os[node as usize]
    }

    /// Exposes `pages` fresh frames of remote `node` at `va` in the
    /// node's address space `asid` — the far-side process offering
    /// memory for incoming RDMA. Creates the node's IOMMU context; under
    /// [`VaMode::PinOnPost`] the whole buffer is registered (pinned)
    /// into the node's IOMMU immediately, so incoming transfers never
    /// NACK.
    ///
    /// # Panics
    ///
    /// Panics without `remote_nodes > 0` + `virt_dma`, or if the node's
    /// memory is exhausted.
    pub fn grant_remote_buffer(
        &mut self,
        node: u32,
        asid: u32,
        va: VirtAddr,
        pages: u64,
        perms: Perms,
    ) -> MappedBuffer {
        let cluster = self.cluster.clone().expect("grant_remote_buffer needs remote_nodes > 0");
        let setup = self.config.virt_dma.expect("grant_remote_buffer needs virt_dma");
        let os = self.remote_os.get_mut(node as usize).expect("no such remote node");
        let buf = os.expose(asid, va, pages, perms).expect("remote buffer mapping failed");
        // The grant is persistent state: a reboot replays it.
        self.remote_grants[node as usize].push(RemoteGrant { asid, va, pages, perms });
        let mut cl = cluster.borrow_mut();
        let iommu = cl.node_iommu_mut(node).expect("virt_dma equips every node");
        iommu.create_context(asid);
        if setup.mode == VaMode::PinOnPost {
            os.pin_into(asid, buf.va, buf.len(), iommu)
                .expect("pin-on-post registration of a just-exposed remote buffer");
        }
        buf
    }

    /// Posts a virtual-address DMA on behalf of `pid` whose destination
    /// is a VA in address space `remote_asid` on cluster node `node`.
    /// The source translates on the local IOMMU, the destination on the
    /// node's receive-side IOMMU; remote faults NACK back over the link.
    ///
    /// # Panics
    ///
    /// Panics if the machine has no [`VirtDmaSetup`] or the process has
    /// no register context.
    pub fn post_virt_remote(
        &mut self,
        pid: Pid,
        src: VirtAddr,
        node: u32,
        remote_asid: u32,
        dst: VirtAddr,
        size: u64,
    ) -> Result<usize, RejectReason> {
        let asid =
            self.envs[pid.as_u32() as usize].ctx.expect("virtual-address DMA needs a context").ctx;
        let now = self.executor.now();
        let to = RemoteVaTarget { node, asid: remote_asid };
        self.engine.core_mut().post_virt_dma_remote(asid, src, to, dst, size, now)
    }

    /// Drains every node's NACK queue through that node's OS: each fault
    /// is serviced against the node's own page tables, then the sender's
    /// paused transfer is resumed (resolved) or failed (unresolvable).
    /// Returns the number of faults serviced.
    pub fn service_remote_faults(&mut self) -> u64 {
        let Some(cluster) = self.cluster.clone() else {
            return 0;
        };
        let mut serviced = 0;
        for node in 0..self.remote_os.len() as u32 {
            loop {
                let Some(pending) = cluster.borrow_mut().pop_fault(node) else {
                    break;
                };
                serviced += 1;
                let now = self.executor.now();
                let (resolution, cost) = {
                    let mut cl = cluster.borrow_mut();
                    let announced = cl.announcement(node, pending.xfer);
                    let iommu = cl.node_iommu_mut(node).expect("remote faults imply node IOMMUs");
                    let os = &mut self.remote_os[node as usize];
                    match announced {
                        // The sender announced the transfer's whole
                        // destination range: service it in one kernel
                        // entry so the device takes one NACK for the
                        // range, not one per page.
                        Some(a) => os.service_announced(&pending.fault, a.va, a.len, iommu),
                        None => os.service(&pending.fault, iommu),
                    }
                };
                let mut core = self.engine.core_mut();
                match resolution {
                    FaultResolution::Unresolvable => {
                        core.fail_virt(pending.xfer, now + cost);
                    }
                    FaultResolution::Mapped | FaultResolution::SwappedIn => {
                        core.resume_virt(pending.xfer, now + cost);
                    }
                }
            }
        }
        serviced
    }

    /// The model swapper on a remote node: takes one page of the node's
    /// address space `asid` out (PTE into the node's swap ledger, node
    /// IOMMU translation shot down). Refuses pages the node's IOMMU
    /// holds pinned.
    ///
    /// # Errors
    ///
    /// [`RemoteSwapRefused`] naming why the page stayed resident.
    ///
    /// # Panics
    ///
    /// Panics without `remote_nodes > 0` + `virt_dma`.
    pub fn swap_out_remote(
        &mut self,
        node: u32,
        asid: u32,
        va: VirtAddr,
    ) -> Result<(), RemoteSwapRefused> {
        let cluster = self.cluster.clone().expect("swap_out_remote needs remote_nodes > 0");
        let mut cl = cluster.borrow_mut();
        let iommu = cl.node_iommu_mut(node).expect("virt_dma equips every node");
        self.remote_os[node as usize].swap_out(asid, va.page(), iommu)
    }

    // ---- lossy-link reliability -------------------------------------

    /// Chaos-link counters (frames dropped, duplicated, reordered,
    /// corrupted; control packets lost), when a
    /// [`MachineConfig::link_chaos`] plan is attached.
    pub fn link_chaos_stats(&self) -> Option<FaultyLinkStats> {
        self.engine.core().link_chaos_stats()
    }

    /// Receive-side delivery counters of remote `node` (bytes accepted,
    /// retransmitted frames seen, CRC drops, duplicates ignored).
    pub fn node_link_stats(&self, node: u32) -> NodeLinkStats {
        self.cluster.as_ref().map(|c| c.borrow().link_stats(node)).unwrap_or_default()
    }

    /// Whether the circuit breaker has tripped: after
    /// [`ReliabilityConfig::breaker_threshold`] consecutive link-failed
    /// remote transfers, new remote posts fail fast with
    /// [`RejectReason::LinkDown`] until [`Machine::link_repair`].
    pub fn link_down(&self) -> bool {
        self.engine.core().link_down()
    }

    /// Clears the circuit breaker (the operator repaired the link).
    pub fn link_repair(&mut self) {
        self.engine.core_mut().link_repair();
    }

    /// Runs the transfer watchdog at the current simulation time: every
    /// non-terminal remote transfer with no byte progress for longer
    /// than [`ReliabilityConfig::watchdog`] is aborted with
    /// [`VirtState::LinkFailed`] (status [`udma_nic::DMA_LINK_FAILED`]),
    /// leaving exactly the contiguous in-order prefix delivered. Returns
    /// the aborted transfer ids.
    pub fn link_watchdog(&mut self) -> Vec<usize> {
        let now = self.executor.now();
        self.link_watchdog_at(now)
    }

    /// Runs the transfer watchdog at an explicit instant (tests model a
    /// later inspection without running programs to advance the clock).
    pub fn link_watchdog_at(&mut self, now: SimTime) -> Vec<usize> {
        self.engine.core_mut().link_watchdog(now)
    }

    // ---- node fault domain ------------------------------------------

    /// Crashes remote `node`: it goes silent, its NACK backlog and
    /// announced receive windows are fenced, and its OS fault service —
    /// page tables, pin ledger, swap ledger, statistics — dies with it.
    /// Only the persistent grant records survive, and only
    /// [`Machine::reboot_remote_node`] replays them.
    ///
    /// # Panics
    ///
    /// Panics without `remote_nodes > 0`, or if the node does not exist.
    pub fn crash_remote_node(&mut self, node: u32) {
        let cluster = self.cluster.clone().expect("crash_remote_node needs remote_nodes > 0");
        cluster.borrow_mut().crash_node(node);
        // The node's OS state is volatile: a fresh service replaces it
        // (the reboot re-exposes from the persistent grant ledger).
        if let Some(setup) = self.config.virt_dma {
            if let Some(os) = self.remote_os.get_mut(node as usize) {
                *os = RemoteFaultService::new(self.config.remote_node_bytes, setup.fault_costs);
            }
        }
    }

    /// Reboots a crashed remote `node` under a new incarnation epoch:
    /// fresh zeroed memory and a fresh receive-side IOMMU, then the
    /// recovery handshake — every persistent grant record is re-exposed
    /// (and re-pinned under [`VaMode::PinOnPost`]) through the node's
    /// new OS. Returns the new epoch; senders learn it from their next
    /// [`Machine::probe_remote_node`].
    ///
    /// # Panics
    ///
    /// Panics without `remote_nodes > 0`, or if the node is not crashed.
    pub fn reboot_remote_node(&mut self, node: u32) -> u64 {
        let cluster = self.cluster.clone().expect("reboot_remote_node needs remote_nodes > 0");
        let inc = cluster.borrow_mut().reboot_node(node);
        let Some(setup) = self.config.virt_dma else {
            return inc;
        };
        let grants = self.remote_grants.get(node as usize).cloned().unwrap_or_default();
        let os = &mut self.remote_os[node as usize];
        let mut cl = cluster.borrow_mut();
        for g in &grants {
            let iommu = cl.node_iommu_mut(node).expect("virt_dma equips every node");
            let buf = os
                .expose(g.asid, g.va, g.pages, g.perms)
                .expect("replaying a grant that fit before the crash");
            iommu.create_context(g.asid);
            let pinned = setup.mode == VaMode::PinOnPost;
            if pinned {
                os.pin_into(g.asid, buf.va, buf.len(), iommu)
                    .expect("re-pinning a replayed grant into a fresh IOMMU");
            }
            cl.note_regrant(node);
            if pinned {
                cl.note_repin(node);
            }
        }
        inc
    }

    /// Hangs remote `node`'s NI engine: frames to it vanish but state
    /// survives; [`Machine::unhang_remote_node`] lets paused transfers
    /// resume where they stopped.
    ///
    /// # Panics
    ///
    /// Panics without `remote_nodes > 0`, or if the node does not exist.
    pub fn hang_remote_node(&mut self, node: u32) {
        let cluster = self.cluster.clone().expect("hang_remote_node needs remote_nodes > 0");
        cluster.borrow_mut().hang_node(node);
    }

    /// Ends an NI-engine hang on remote `node`.
    ///
    /// # Panics
    ///
    /// Panics without `remote_nodes > 0`, or if the node does not exist.
    pub fn unhang_remote_node(&mut self, node: u32) {
        let cluster = self.cluster.clone().expect("unhang_remote_node needs remote_nodes > 0");
        cluster.borrow_mut().unhang_node(node);
    }

    /// Whether remote `node` is powered and answering.
    pub fn remote_node_up(&self, node: u32) -> bool {
        self.cluster.as_ref().is_some_and(|c| c.borrow().node_responsive(node))
    }

    /// Remote `node`'s current incarnation epoch.
    pub fn remote_node_incarnation(&self, node: u32) -> u64 {
        self.cluster.as_ref().map_or(0, |c| c.borrow().node_incarnation(node))
    }

    /// Remote `node`'s failure accounting (crashes, reboots, fenced
    /// frames, replayed grants).
    pub fn remote_crash_stats(&self, node: u32) -> CrashStats {
        self.cluster.as_ref().map_or_else(CrashStats::default, |c| c.borrow().crash_stats(node))
    }

    /// This machine's health verdict on destination `node`.
    pub fn node_health(&self, node: u32) -> HealthState {
        self.engine.core().node_health(node)
    }

    /// Failure-detector counters summed over every destination.
    pub fn node_health_stats(&self) -> HealthStats {
        self.engine.core().health_stats()
    }

    /// Probes remote `node` (the OS-level Ping after the detector
    /// tripped): on an answer the detector moves `Down → Recovering`
    /// and the second element reports whether the node's incarnation
    /// epoch advanced — i.e. it rebooted and pre-crash receive state is
    /// gone, so paused transfers must repost, not resume.
    pub fn probe_remote_node(&mut self, node: u32) -> (HealthState, bool) {
        let now = self.executor.now();
        self.engine.core_mut().probe_node(node, now)
    }

    /// Runs the node-level watchdog at the current simulation time:
    /// every non-terminal remote transfer whose destination is
    /// unresponsive past the ACK lease aborts with
    /// [`VirtState::NodeDown`] (status [`udma_nic::DMA_NODE_DOWN`]),
    /// keeping exactly its delivered in-order prefix. Returns the
    /// aborted transfer ids.
    pub fn node_watchdog(&mut self) -> Vec<usize> {
        let now = self.executor.now();
        self.node_watchdog_at(now)
    }

    /// Runs the node-level watchdog at an explicit instant.
    pub fn node_watchdog_at(&mut self, now: SimTime) -> Vec<usize> {
        self.engine.core_mut().node_watchdog(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udma_mem::Access;

    #[test]
    fn spawn_maps_buffers_and_shadows() {
        let mut m = Machine::with_method(DmaMethod::Repeated5);
        let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
            assert_eq!(env.buffers.len(), 2);
            assert!(env.can_use_user_level());
            ProgramBuilder::new().halt().build()
        });
        let env = m.env(pid).clone();
        let pt = m.executor().process(pid).page_table().clone();
        // Data and shadow both mapped.
        assert!(pt.translate(env.buffer(0).va, Access::Write).is_ok());
        assert!(pt.translate(env.shadow_of(env.buffer(0).va), Access::Write).is_ok());
        // No context for repeated passing.
        assert!(env.ctx.is_none());
    }

    #[test]
    fn key_based_processes_get_context_and_page() {
        let mut m = Machine::with_method(DmaMethod::KeyBased);
        let pid = m.spawn(&ProcessSpec::two_buffers(), |_| ProgramBuilder::new().halt().build());
        let env = m.env(pid);
        let grant = env.ctx.expect("key-based process needs a context");
        assert!(env.ctx_page_va.is_some());
        // The engine's key table was programmed.
        assert_eq!(m.engine().core().key(grant.ctx), grant.key);
    }

    #[test]
    fn context_exhaustion_falls_back_to_kernel() {
        let mut m = Machine::new(MachineConfig {
            num_contexts: 2,
            ..MachineConfig::new(DmaMethod::KeyBased)
        });
        let mut granted = 0;
        for _ in 0..4 {
            let pid =
                m.spawn(&ProcessSpec::two_buffers(), |_| ProgramBuilder::new().halt().build());
            if m.env(pid).ctx.is_some() {
                granted += 1;
            } else {
                assert!(!m.env(pid).can_use_user_level());
            }
        }
        assert_eq!(granted, 2);
    }

    #[test]
    fn ext_shadow_mappings_carry_the_granted_ctx() {
        let mut m = Machine::with_method(DmaMethod::ExtShadow);
        let pid = m.spawn(&ProcessSpec::two_buffers(), |_| ProgramBuilder::new().halt().build());
        let env = m.env(pid).clone();
        let grant = env.ctx.unwrap();
        let pt = m.executor().process(pid).page_table().clone();
        let spa = pt.translate(env.shadow_of(env.buffer(0).va), Access::Write).unwrap();
        let (_, ctx) = m.config().layout.shadow.decode(spa).unwrap();
        assert_eq!(ctx, grant.ctx);
    }

    #[test]
    fn shared_buffers_alias_frames() {
        let mut m = Machine::with_method(DmaMethod::Repeated5);
        let owner = m.spawn(&ProcessSpec::two_buffers(), |_| ProgramBuilder::new().halt().build());
        let spec = ProcessSpec {
            buffers: vec![BufferSpec::shared(ShareRef { pid: owner, buffer: 0 }, Perms::READ)],
            ..Default::default()
        };
        let reader = m.spawn(&spec, |_| ProgramBuilder::new().halt().build());
        assert_eq!(m.env(owner).buffer(0).first_frame, m.env(reader).buffer(0).first_frame);
        assert_eq!(m.env(reader).buffer(0).perms, Perms::READ);
    }

    #[test]
    fn machine_runs_to_completion() {
        let mut m = Machine::with_method(DmaMethod::Kernel);
        let pid = m.spawn(&ProcessSpec::two_buffers(), |_| {
            ProgramBuilder::new().imm(Reg::R5, 7).halt().build()
        });
        let out = m.run(100);
        assert!(out.finished);
        assert_eq!(m.reg(pid, Reg::R5), 7);
        assert_eq!(m.state(pid), ProcState::Halted);
        assert!(m.time() > SimTime::ZERO);
    }
}
