//! The DMA initiation methods of the paper.

use std::fmt;
use udma_nic::ProtocolKind;
use udma_os::SwitchPolicy;

/// Every initiation scheme the paper discusses, in one enum.
///
/// A method determines three things about a [`crate::Machine`]: which
/// protocol state machine is synthesised into the NIC, which
/// context-switch policy the kernel runs (only SHRIMP-2 and FLASH may
/// patch it), and which instruction sequence [`crate::emit_dma`] compiles.
///
/// ```
/// use udma::DmaMethod;
///
/// // The paper's headline property, queryable per method:
/// assert!(DmaMethod::KeyBased.kernel_free());
/// assert!(!DmaMethod::Flash { patched_kernel: true }.kernel_free());
/// assert_eq!(DmaMethod::TABLE1.len(), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DmaMethod {
    /// Kernel-level DMA (Figure 1): the baseline every scheme is
    /// measured against.
    Kernel,
    /// SHRIMP-1 mapped-out pages (§2.4).
    Shrimp1,
    /// SHRIMP-2 store+load (§2.5). `patched_kernel` selects whether the
    /// context-switch handler aborts half-initiated transfers — without
    /// it the scheme races.
    Shrimp2 {
        /// Apply the SHRIMP kernel patch (abort on context switch)?
        patched_kernel: bool,
    },
    /// FLASH (§2.6). `patched_kernel` selects whether the switch handler
    /// tells the engine who is running.
    Flash {
        /// Apply the FLASH kernel patch (current-pid notification)?
        patched_kernel: bool,
    },
    /// The PAL-code method (§2.7): the SHRIMP-2 two-access sequence
    /// executed inside an uninterruptible Alpha PAL call. No kernel
    /// modification — installing PAL code is privileged but is not a
    /// kernel patch.
    Pal,
    /// Key-based register contexts (§3.1).
    KeyBased,
    /// Extended shadow addressing (§3.2).
    ExtShadow,
    /// Extended shadow addressing on an engine without register
    /// contexts: pairwise CONTEXT_ID check (§3.2, last sentence).
    ExtShadowPairwise,
    /// Repeated passing of arguments, 3-instruction variant (insecure,
    /// Figure 5).
    Repeated3,
    /// Repeated passing of arguments, 4-instruction variant (insecure,
    /// Figure 6).
    Repeated4,
    /// Repeated passing of arguments, 5-instruction variant (§3.3).
    Repeated5,
}

impl DmaMethod {
    /// Every method, secure-variant kernels patched where the original
    /// design requires it.
    pub const ALL: [DmaMethod; 11] = [
        DmaMethod::Kernel,
        DmaMethod::Shrimp1,
        DmaMethod::Shrimp2 { patched_kernel: true },
        DmaMethod::Flash { patched_kernel: true },
        DmaMethod::Pal,
        DmaMethod::KeyBased,
        DmaMethod::ExtShadow,
        DmaMethod::ExtShadowPairwise,
        DmaMethod::Repeated3,
        DmaMethod::Repeated4,
        DmaMethod::Repeated5,
    ];

    /// The four rows of the paper's Table 1, in the paper's order.
    pub const TABLE1: [DmaMethod; 4] =
        [DmaMethod::Kernel, DmaMethod::ExtShadow, DmaMethod::Repeated5, DmaMethod::KeyBased];

    /// The protocol the NIC must implement for this method.
    pub fn protocol(self) -> ProtocolKind {
        match self {
            DmaMethod::Kernel => ProtocolKind::KernelOnly,
            DmaMethod::Shrimp1 => ProtocolKind::Shrimp1,
            // PAL runs the SHRIMP-2 hardware protocol; safety comes from
            // uninterruptible execution, not from the engine.
            DmaMethod::Shrimp2 { .. } | DmaMethod::Pal => ProtocolKind::Shrimp2,
            DmaMethod::Flash { .. } => ProtocolKind::Flash,
            DmaMethod::KeyBased => ProtocolKind::KeyBased,
            DmaMethod::ExtShadow => ProtocolKind::ExtShadow,
            DmaMethod::ExtShadowPairwise => ProtocolKind::ExtShadowPairwise,
            DmaMethod::Repeated3 => ProtocolKind::Repeated3,
            DmaMethod::Repeated4 => ProtocolKind::Repeated4,
            DmaMethod::Repeated5 => ProtocolKind::Repeated5,
        }
    }

    /// The kernel's context-switch policy under this method.
    pub fn switch_policy(self) -> SwitchPolicy {
        match self {
            DmaMethod::Shrimp2 { patched_kernel: true } => SwitchPolicy::ShrimpAbort,
            DmaMethod::Flash { patched_kernel: true } => SwitchPolicy::FlashNotify,
            _ => SwitchPolicy::Vanilla,
        }
    }

    /// Whether the method needs a register context + key grant.
    pub fn needs_ctx(self) -> bool {
        matches!(self, DmaMethod::KeyBased | DmaMethod::ExtShadow | DmaMethod::ExtShadowPairwise)
    }

    /// Whether the machine must install the PAL DMA function.
    pub fn needs_pal(self) -> bool {
        self == DmaMethod::Pal
    }

    /// Whether the method achieves user-level DMA **without any kernel
    /// modification** — the paper's headline property.
    pub fn kernel_free(self) -> bool {
        !matches!(
            self,
            DmaMethod::Kernel
                | DmaMethod::Shrimp2 { patched_kernel: true }
                | DmaMethod::Flash { patched_kernel: true }
        )
    }

    /// The paper's Table 1 measurement in microseconds, where reported.
    pub fn paper_us(self) -> Option<f64> {
        match self {
            DmaMethod::Kernel => Some(18.6),
            DmaMethod::ExtShadow => Some(1.1),
            DmaMethod::Repeated5 => Some(2.6),
            DmaMethod::KeyBased => Some(2.3),
            _ => None,
        }
    }

    /// Table-row label, matching the paper's wording where it has one.
    pub fn name(self) -> &'static str {
        match self {
            DmaMethod::Kernel => "Kernel-level DMA",
            DmaMethod::Shrimp1 => "SHRIMP-1 (mapped-out)",
            DmaMethod::Shrimp2 { patched_kernel: true } => "SHRIMP-2 (patched kernel)",
            DmaMethod::Shrimp2 { patched_kernel: false } => "SHRIMP-2 (unpatched: racy)",
            DmaMethod::Flash { patched_kernel: true } => "FLASH (patched kernel)",
            DmaMethod::Flash { patched_kernel: false } => "FLASH (unpatched: racy)",
            DmaMethod::Pal => "PAL code",
            DmaMethod::KeyBased => "Key-based DMA",
            DmaMethod::ExtShadow => "Ext. Shadow Addressing",
            DmaMethod::ExtShadowPairwise => "Ext. Shadow (pairwise, no contexts)",
            DmaMethod::Repeated3 => "Rep. Passing (3-instr, insecure)",
            DmaMethod::Repeated4 => "Rep. Passing (4-instr, insecure)",
            DmaMethod::Repeated5 => "Rep. Passing of Arguments",
        }
    }
}

impl fmt::Display for DmaMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_freedom_matches_the_paper() {
        // "Our methods allow user applications to securely and atomically
        // start DMA operations from user-level without needing to change
        // the operating system kernel."
        for m in [DmaMethod::Pal, DmaMethod::KeyBased, DmaMethod::ExtShadow, DmaMethod::Repeated5] {
            assert!(m.kernel_free(), "{m}");
        }
        assert!(!DmaMethod::Shrimp2 { patched_kernel: true }.kernel_free());
        assert!(!DmaMethod::Flash { patched_kernel: true }.kernel_free());
        // The unpatched variants don't modify the kernel… and are racy.
        assert!(DmaMethod::Shrimp2 { patched_kernel: false }.kernel_free());
    }

    #[test]
    fn protocols_and_policies_line_up() {
        assert_eq!(DmaMethod::Pal.protocol(), ProtocolKind::Shrimp2);
        assert_eq!(DmaMethod::Pal.switch_policy(), SwitchPolicy::Vanilla);
        assert_eq!(
            DmaMethod::Shrimp2 { patched_kernel: true }.switch_policy(),
            SwitchPolicy::ShrimpAbort
        );
        assert_eq!(
            DmaMethod::Flash { patched_kernel: true }.switch_policy(),
            SwitchPolicy::FlashNotify
        );
        assert_eq!(
            DmaMethod::Flash { patched_kernel: false }.switch_policy(),
            SwitchPolicy::Vanilla
        );
    }

    #[test]
    fn table1_has_paper_numbers() {
        for m in DmaMethod::TABLE1 {
            assert!(m.paper_us().is_some(), "{m}");
        }
        assert_eq!(DmaMethod::Kernel.paper_us(), Some(18.6));
    }

    #[test]
    fn ctx_and_pal_requirements() {
        assert!(DmaMethod::KeyBased.needs_ctx());
        assert!(DmaMethod::ExtShadow.needs_ctx());
        assert!(!DmaMethod::Repeated5.needs_ctx());
        assert!(DmaMethod::Pal.needs_pal());
        assert!(!DmaMethod::KeyBased.needs_pal());
    }
}
