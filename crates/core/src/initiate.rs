//! Initiation compilers: method → instruction sequence.
//!
//! These functions emit, instruction for instruction, the sequences the
//! paper lists: Figure 1's syscall for the kernel baseline, Figure 2/4's
//! two accesses, Figure 3's four, and Figure 7's five-access retry loop.

use crate::machine::PAL_DMA;
use crate::{DmaMethod, DmaRequest, ProcessEnv};
use udma_cpu::{ProgramBuilder, Reg};
use udma_mem::VirtAddr;
use udma_nic::{regs, AtomicOp, DMA_FAILURE, DMA_STARTED};
use udma_os::{SYS_ATOMIC, SYS_DMA};

/// A user-level atomic operation request (§3.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AtomicRequest {
    /// Target virtual address (must be shadow-mapped for user-level
    /// methods).
    pub va: VirtAddr,
    /// The operation.
    pub op: AtomicOp,
    /// First operand.
    pub operand1: u64,
    /// Second operand (compare-and-swap's new value).
    pub operand2: u64,
}

/// Appends one DMA initiation to `b`. The status ends up in `r0`
/// (`udma_nic::DMA_FAILURE` = not started).
///
/// `uniq` disambiguates retry-loop labels when several initiations are
/// emitted into one program; pass the same counter throughout.
///
/// Methods that need a register context fall back to the kernel syscall
/// when the environment holds no grant — the paper's own stance: "if
/// more processes would like to start DMA operations, the rest will have
/// to go through the kernel" (§3.2).
pub fn emit_dma(
    env: &ProcessEnv,
    b: ProgramBuilder,
    req: &DmaRequest,
    uniq: &mut u32,
) -> ProgramBuilder {
    let method = if env.can_use_user_level() { env.method } else { DmaMethod::Kernel };
    let s_src = env.shadow_of(req.src).as_u64();
    let s_dst = env.shadow_of(req.dst).as_u64();
    match method {
        DmaMethod::Kernel => b
            .imm(Reg::R0, req.src.as_u64())
            .imm(Reg::R1, req.dst.as_u64())
            .imm(Reg::R2, req.size)
            .syscall(SYS_DMA),
        // One argument-passing access; the destination is the source
        // page's mapped-out twin. A status load follows (the real SHRIMP
        // used a compare-and-exchange that returned it in one go).
        DmaMethod::Shrimp1 => b.store(s_src, req.size).load(Reg::R0, s_src),
        // Figure 2 / Figure 4: STORE size TO shadow(vdest); LOAD status
        // FROM shadow(vsource).
        DmaMethod::Shrimp2 { .. } | DmaMethod::Flash { .. } | DmaMethod::ExtShadow => {
            b.store(s_dst, req.size).load(Reg::R0, s_src)
        }
        // Same two accesses, but an interleaved pair of another process
        // makes *both* fail with CtxMismatch — so the canonical sequence
        // retries (safe, not wait-free).
        DmaMethod::ExtShadowPairwise => {
            let l = label("esp", uniq);
            b.label(&l).store(s_dst, req.size).load(Reg::R0, s_src).beq(Reg::R0, DMA_FAILURE, &l)
        }
        // §2.7: the same two accesses, inside an uninterruptible PAL call.
        DmaMethod::Pal => {
            b.imm(Reg::R1, s_dst).imm(Reg::R2, req.size).imm(Reg::R3, s_src).call_pal(PAL_DMA)
        }
        // Figure 3: two keyed address stores, a size store, a status load.
        DmaMethod::KeyBased => {
            let grant = env.ctx.expect("can_use_user_level checked");
            let keyctx = regs::encode_key_ctx(grant.key, grant.ctx);
            let ctx_page = env.ctx_page_va.expect("granted ctx has a page").as_u64();
            b.store(s_dst, keyctx)
                .store(s_src, keyctx)
                .store(ctx_page + regs::CTX_SIZE_TRIGGER, req.size)
                .load(Reg::R0, ctx_page + regs::CTX_SIZE_TRIGGER)
        }
        DmaMethod::Repeated3 => {
            let l = label("r3", uniq);
            b.label(&l).load(Reg::R0, s_src).store(s_dst, req.size).load(Reg::R0, s_src).beq(
                Reg::R0,
                DMA_FAILURE,
                &l,
            )
        }
        DmaMethod::Repeated4 => {
            let l = label("r4", uniq);
            b.label(&l)
                .store(s_dst, req.size)
                .load(Reg::R0, s_src)
                .store(s_dst, req.size)
                .load(Reg::R0, s_src)
                .beq(Reg::R0, DMA_FAILURE, &l)
        }
        // Figure 7, verbatim — including the memory barriers §3.4 says
        // the measurement used so the write buffer cannot collapse the
        // repeated stores. The final load must observe DMA_STARTED, not
        // merely non-failure: with a single shared FSM, a broken final
        // load can be absorbed as an argument-passing access of another
        // process's in-flight sequence and read back DMA_PENDING, which
        // would otherwise end the retry loop on a transfer that never
        // happened.
        DmaMethod::Repeated5 => {
            let l = label("r5", uniq);
            b.label(&l)
                .store(s_dst, req.size)
                .mb()
                .load(Reg::R0, s_src)
                .beq(Reg::R0, DMA_FAILURE, &l)
                .store(s_dst, req.size)
                .mb()
                .load(Reg::R0, s_src)
                .beq(Reg::R0, DMA_FAILURE, &l)
                .load(Reg::R0, s_dst)
                .bne(Reg::R0, DMA_STARTED, &l)
        }
    }
}

/// Appends one atomic operation to `b`; the old value (or
/// `udma_nic::DMA_FAILURE`) ends up in `r0`.
///
/// User-level atomics are supported by the key-based and extended-shadow
/// methods (which have per-process context pages); every other method
/// goes through the kernel, as §3.5's motivation assumes.
pub fn emit_atomic(env: &ProcessEnv, b: ProgramBuilder, req: &AtomicRequest) -> ProgramBuilder {
    let kernel_path = |b: ProgramBuilder| {
        b.imm(Reg::R0, req.va.as_u64())
            .imm(Reg::R1, req.op.code())
            .imm(Reg::R2, req.operand1)
            .imm(Reg::R3, req.operand2)
            .syscall(SYS_ATOMIC)
    };
    if !env.can_use_user_level() {
        return kernel_path(b);
    }
    let s_va = env.shadow_of(req.va).as_u64();
    match env.method {
        DmaMethod::KeyBased => {
            let grant = env.ctx.expect("can_use_user_level checked");
            let keyctx = regs::encode_key_ctx(grant.key, grant.ctx);
            let page = env.ctx_page_va.expect("granted ctx has a page").as_u64();
            b.store(s_va, keyctx)
                .store(page + regs::CTX_ATOMIC_OPERAND1, req.operand1)
                .store(page + regs::CTX_ATOMIC_OPERAND2, req.operand2)
                .store(page + regs::CTX_ATOMIC_CMD, req.op.code())
                .load(Reg::R0, page + regs::CTX_ATOMIC_CMD)
        }
        DmaMethod::ExtShadow => {
            let page = env.ctx_page_va.expect("granted ctx has a page").as_u64();
            b.store(s_va, 0)
                .store(page + regs::CTX_ATOMIC_OPERAND1, req.operand1)
                .store(page + regs::CTX_ATOMIC_OPERAND2, req.operand2)
                .store(page + regs::CTX_ATOMIC_CMD, req.op.code())
                .load(Reg::R0, page + regs::CTX_ATOMIC_CMD)
        }
        _ => kernel_path(b),
    }
}

/// Builds a complete program issuing `reqs` in order, then halting.
pub fn dma_program(env: &ProcessEnv, reqs: &[DmaRequest]) -> udma_cpu::Program {
    let mut b = ProgramBuilder::new();
    let mut uniq = 0;
    for req in reqs {
        b = emit_dma(env, b, req, &mut uniq);
    }
    b.halt().build()
}

fn label(prefix: &str, uniq: &mut u32) -> String {
    let l = format!("{prefix}_{uniq}");
    *uniq += 1;
    l
}
