//! Machine-level context virtualization: outcome types.
//!
//! [`crate::Machine::register_logical`] admits thousands of logical
//! processes (no executor state — just a key, a QoS class and a spill
//! slot in the OS [`udma_os::CtxCache`]), and
//! [`crate::Machine::logical_post_at`] posts DMA on their behalf with
//! **transparent context acquisition**: a resident process posts at
//! user level for free; a non-resident one pays the kernel to spill a
//! victim and refill its context; a throttled or starved one falls back
//! to the §3.2 kernel DMA path. The [`LogicalPost`] outcome says which
//! of those happened and what the initiation cost in simulated time.

use udma_bus::SimTime;
use udma_os::LPid;

/// Which initiation path a logical post took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PostPath {
    /// Posted through a register context at user level (possibly after
    /// a kernel fill / steal).
    UserLevel {
        /// The context the post went through.
        ctx: u32,
        /// The process evicted to make room, if the acquisition stole.
        stole: Option<LPid>,
    },
    /// Posted through the §3.2 kernel DMA path (Figure 1): the cache
    /// refused a context.
    KernelFallback {
        /// `true` when the token bucket throttled the steal; `false`
        /// when every victim was busy or QoS-protected (starved).
        throttled: bool,
    },
}

/// Outcome of one [`crate::Machine::logical_post_at`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogicalPost {
    /// The path the post took.
    pub path: PostPath,
    /// End-to-end initiation cost in simulated time: context
    /// acquisition (spill/fill or fruitless kernel entry) plus the
    /// initiation sequence itself (the keyed 4-access user sequence, or
    /// the Figure-1 kernel path).
    pub initiation: SimTime,
    /// Mover record index of the started transfer (`None` when the
    /// engine rejected the post).
    pub record: Option<usize>,
}

impl LogicalPost {
    /// Whether the post went through a register context at user level.
    pub fn user_level(&self) -> bool {
        matches!(self.path, PostPath::UserLevel { .. })
    }

    /// Whether the acquisition stole another process's context.
    pub fn stole(&self) -> bool {
        matches!(self.path, PostPath::UserLevel { stole: Some(_), .. })
    }
}
