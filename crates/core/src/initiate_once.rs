//! Straight-line (no-retry) initiation sequences.
//!
//! The attack figures of the paper (Figures 5, 6, 8) show the *plain*
//! access sequences, without Figure 7's retry loop — the misinformation
//! attack on the 4-instruction variant is only visible when the victim
//! does not retry. Victims in the attack scenarios use these.

use crate::{emit_dma, DmaMethod, DmaRequest, ProcessEnv};
use udma_cpu::{ProgramBuilder, Reg};

/// Appends one initiation **without retry loops**; `r0` ends with the
/// final status load's value. For methods whose sequence has no loop this
/// is identical to [`emit_dma`].
pub fn emit_dma_once(env: &ProcessEnv, b: ProgramBuilder, req: &DmaRequest) -> ProgramBuilder {
    let method = if env.can_use_user_level() { env.method } else { DmaMethod::Kernel };
    let s_src = env.shadow_of(req.src).as_u64();
    let s_dst = env.shadow_of(req.dst).as_u64();
    match method {
        DmaMethod::ExtShadowPairwise => b.store(s_dst, req.size).load(Reg::R0, s_src),
        DmaMethod::Repeated3 => b.load(Reg::R0, s_src).store(s_dst, req.size).load(Reg::R0, s_src),
        DmaMethod::Repeated4 => b
            .store(s_dst, req.size)
            .load(Reg::R0, s_src)
            .store(s_dst, req.size)
            .load(Reg::R0, s_src),
        DmaMethod::Repeated5 => b
            .store(s_dst, req.size)
            .mb()
            .load(Reg::R0, s_src)
            .store(s_dst, req.size)
            .mb()
            .load(Reg::R0, s_src)
            .load(Reg::R0, s_dst),
        _ => {
            let mut uniq = 0;
            emit_dma(env, b, req, &mut uniq)
        }
    }
}
