//! Virtual-address DMA: machine-level configuration and initiation.
//!
//! The base reproduction's protocols all pass **physical** (shadow)
//! addresses, as the paper's hardware demanded. The follow-on
//! Telegraphos IOMMU work lets user code pass **virtual** addresses and
//! puts the translation in the NI. This module is the machine-level
//! surface of that extension: configure a [`VirtDmaSetup`] on the
//! [`crate::MachineConfig`] and processes with a register context can
//! post transfers by virtual address through their context page
//! ([`emit_virt_dma`]), with the OS servicing any I/O page faults the
//! engine raises mid-transfer ([`crate::Machine::service_va_faults`]).

use crate::ProcessEnv;
use udma_cpu::{ProgramBuilder, Reg};
use udma_iommu::IotlbConfig;
use udma_nic::{regs, VirtDmaConfig};
use udma_os::FaultCosts;

/// How the OS keeps the I/O page table in step with process memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VaMode {
    /// Demand paging: the I/O page table starts empty; the first transfer
    /// touching a page faults, the OS maps-and-pins it, the transfer
    /// resumes. Cheap setup, expensive first touch.
    Demand,
    /// Pin-on-post: every buffer is registered (mapped and pinned) when
    /// the process is spawned — RDMA-style memory registration. Transfers
    /// never fault; setup pays for it.
    PinOnPost,
}

/// Machine-level configuration of the virtual-address DMA subsystem.
#[derive(Clone, Copy, Debug)]
pub struct VirtDmaSetup {
    /// IOTLB geometry and replacement.
    pub iotlb: IotlbConfig,
    /// Engine-side tunables (walk latency, retry policy).
    pub virt: VirtDmaConfig,
    /// OS fault-service cost model.
    pub fault_costs: FaultCosts,
    /// I/O page-table population discipline.
    pub mode: VaMode,
}

impl Default for VirtDmaSetup {
    fn default() -> Self {
        VirtDmaSetup {
            iotlb: IotlbConfig::default(),
            virt: VirtDmaConfig::default(),
            fault_costs: FaultCosts::default(),
            mode: VaMode::Demand,
        }
    }
}

impl VirtDmaSetup {
    /// Demand-paging setup with a given IOTLB geometry.
    pub fn demand(iotlb: IotlbConfig) -> Self {
        VirtDmaSetup { iotlb, ..VirtDmaSetup::default() }
    }

    /// Pin-on-post setup with a given IOTLB geometry.
    pub fn pin_on_post(iotlb: IotlbConfig) -> Self {
        VirtDmaSetup { iotlb, mode: VaMode::PinOnPost, ..VirtDmaSetup::default() }
    }
}

/// Why [`crate::Machine::swap_out_va`] refused to take a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwapRefused {
    /// The page is pinned in the I/O page table — a device transfer may
    /// be in flight over it, so the swapper must leave it alone.
    Pinned,
    /// The page is not mapped in the process's page table.
    NotMapped,
}

/// Appends one virtual-address DMA initiation to `b`: three context-page
/// stores (source VA, destination VA, size/GO) and a status load into
/// `r0`. No shadow arithmetic, no physical address, no size limit — the
/// engine's IOMMU translates page by page as the transfer streams.
///
/// # Panics
///
/// Panics if the process has no register context (virtual-address DMA is
/// posted through the context page; the machine grants one automatically
/// when a [`VirtDmaSetup`] is configured).
pub fn emit_virt_dma(
    env: &ProcessEnv,
    b: ProgramBuilder,
    src: udma_mem::VirtAddr,
    dst: udma_mem::VirtAddr,
    size: u64,
) -> ProgramBuilder {
    let page = env.ctx_page_va.expect("virtual-address DMA needs a context page").as_u64();
    b.store(page + regs::CTX_VIRT_SRC, src.as_u64())
        .store(page + regs::CTX_VIRT_DST, dst.as_u64())
        .store(page + regs::CTX_VIRT_GO, size)
        .load(Reg::R0, page + regs::CTX_VIRT_GO)
}
