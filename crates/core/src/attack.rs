//! The interleaving explorer: model-checking the protocols.
//!
//! The paper proves the 5-instruction protocol correct by case analysis
//! over interleavings (§3.3.1, Figure 8) and demonstrates attacks on the
//! 3- and 4-instruction variants by exhibiting one bad interleaving each
//! (Figures 5, 6). The explorer turns both directions into computation:
//! build a fresh machine per schedule, run it under a
//! [`udma_cpu::FixedSchedule`], and evaluate a safety predicate on the
//! final state.
//!
//! The schedule spaces come from [`udma_testkit::sched`]: exhaustive
//! merge-order enumeration while the space fits a budget, seeded-random
//! sampling beyond it, so every exploration is deterministic and
//! replayable.

use crate::Machine;
use udma_cpu::{FixedSchedule, Pid};
use udma_testkit::sched;
pub use udma_testkit::sched::Budget;

/// One schedule on which the predicate fired.
#[derive(Clone, Debug)]
pub struct Finding<R> {
    /// The per-instruction pid schedule that produced the violation.
    pub schedule: Vec<Pid>,
    /// Whatever the predicate returned.
    pub detail: R,
}

/// The outcome of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport<R> {
    /// Schedules executed.
    pub schedules: u64,
    /// Whether the exploration was exhaustive (vs. sampled).
    pub exhaustive: bool,
    /// Violations found.
    pub findings: Vec<Finding<R>>,
}

impl<R> ExploreReport<R> {
    /// Whether the property held on every tested schedule.
    pub fn safe(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Static per-process instruction counts of the machine `factory` builds.
fn process_lens(factory: &impl Fn() -> Machine) -> Vec<usize> {
    factory().executor().processes().iter().map(|p| p.program().len()).collect()
}

/// Runs one schedule (as process indices) and evaluates the predicate.
fn run_schedule<R>(
    factory: &impl Fn() -> Machine,
    max_steps: u64,
    indices: &[usize],
    check: &impl Fn(&Machine) -> Option<R>,
) -> Option<(Vec<Pid>, R)> {
    let schedule: Vec<Pid> = indices.iter().map(|&i| Pid::new(i as u32)).collect();
    let mut m = factory();
    let mut sched = FixedSchedule::new(schedule.clone());
    m.run_with(&mut sched, max_steps);
    check(&m).map(|detail| (schedule, detail))
}

/// Explores under an explicit [`Budget`]: every interleaving of the
/// machine's processes while the space fits `budget.exhaustive`, else
/// `budget.sampled` seeded-random schedules.
///
/// `factory` must build the same machine each time (same processes, same
/// programs). The schedule space is every merge order of the processes'
/// *static* instruction sequences; retry loops may execute longer than
/// their static length, in which case the tail runs under
/// run-to-completion fallback — enough to decide the safety predicates,
/// which are about what transfers happened, not about timing.
///
/// `check` inspects the finished machine and returns `Some(detail)` on a
/// violation.
pub fn explore_bounded<R>(
    factory: impl Fn() -> Machine,
    max_steps: u64,
    budget: Budget,
    check: impl Fn(&Machine) -> Option<R>,
) -> ExploreReport<R> {
    let lens = process_lens(&factory);
    let outcome =
        sched::explore(&lens, budget, |indices| run_schedule(&factory, max_steps, indices, &check));
    ExploreReport {
        schedules: outcome.schedules,
        exhaustive: outcome.exhaustive,
        findings: outcome
            .findings
            .into_iter()
            .map(|(_, (schedule, detail))| Finding { schedule, detail })
            .collect(),
    }
}

/// Exhaustively explores every interleaving of the machine's processes
/// (see [`explore_bounded`] for the machine-building contract).
///
/// # Panics
///
/// Panics if the interleaving space exceeds the enumeration cap; use
/// [`explore_bounded`] or [`explore_sampled`] for large spaces.
pub fn explore<R>(
    factory: impl Fn() -> Machine,
    max_steps: u64,
    check: impl Fn(&Machine) -> Option<R>,
) -> ExploreReport<R> {
    let lens = process_lens(&factory);
    let space = sched::interleaving_count(&lens);
    assert!(
        space <= 20_000_000,
        "{space} interleavings is too many to enumerate; use explore_bounded"
    );
    explore_bounded(
        factory,
        max_steps,
        Budget { exhaustive: space as u64, sampled: 0, seed: 0 },
        check,
    )
}

/// Number of schedules [`explore`] would run for this machine.
pub fn schedule_space(factory: impl Fn() -> Machine) -> u128 {
    sched::interleaving_count(&process_lens(&factory))
}

/// Randomly samples `samples` schedules from the interleaving space
/// (uniform over merge orders), for spaces too large to enumerate.
pub fn explore_sampled<R>(
    factory: impl Fn() -> Machine,
    max_steps: u64,
    samples: u64,
    seed: u64,
    check: impl Fn(&Machine) -> Option<R>,
) -> ExploreReport<R> {
    explore_bounded(factory, max_steps, Budget { exhaustive: 0, sampled: samples, seed }, check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DmaMethod, Machine, ProcessSpec};
    use udma_cpu::{ProgramBuilder, Reg};

    /// Two trivial processes, each writing its pid-specific value.
    fn factory() -> Machine {
        let mut m = Machine::with_method(DmaMethod::Repeated5);
        for v in [1u64, 2] {
            m.spawn(&ProcessSpec::two_buffers(), |env| {
                ProgramBuilder::new().store(env.buffer(0).va.as_u64(), v).mb().halt().build()
            });
        }
        m
    }

    #[test]
    fn explore_covers_the_full_multinomial() {
        // 3 instructions each → C(6,3) = 20 schedules.
        assert_eq!(schedule_space(factory), 20);
        let report = explore(factory, 1_000, |_| None::<()>);
        assert_eq!(report.schedules, 20);
        assert!(report.exhaustive);
        assert!(report.safe());
    }

    #[test]
    fn explore_reports_failing_schedules() {
        // A predicate that fires whenever process 1 finished first.
        let report = explore(factory, 1_000, |m| {
            let p1_done = m.executor().process(udma_cpu::Pid::new(1)).instret;
            (p1_done > 0).then_some(p1_done)
        });
        assert!(!report.safe());
        assert!(report.findings.len() < report.schedules as usize + 1);
        for f in &report.findings {
            assert_eq!(f.schedule.len(), 6);
        }
    }

    #[test]
    fn sampled_exploration_is_deterministic_per_seed() {
        let a =
            explore_sampled(factory, 1_000, 50, 9, |m| Some(m.reg(udma_cpu::Pid::new(0), Reg::R0)));
        let b =
            explore_sampled(factory, 1_000, 50, 9, |m| Some(m.reg(udma_cpu::Pid::new(0), Reg::R0)));
        assert_eq!(a.schedules, 50);
        assert!(!a.exhaustive);
        let sa: Vec<_> = a.findings.iter().map(|f| f.schedule.clone()).collect();
        let sb: Vec<_> = b.findings.iter().map(|f| f.schedule.clone()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn sampled_schedules_are_valid_merge_orders() {
        let report = explore_sampled(factory, 1_000, 30, 3, |_| Some(()));
        for f in &report.findings {
            let zeros = f.schedule.iter().filter(|p| p.as_u32() == 0).count();
            let ones = f.schedule.iter().filter(|p| p.as_u32() == 1).count();
            assert_eq!(zeros, 3);
            assert_eq!(ones, 3);
        }
    }

    #[test]
    fn bounded_explore_goes_exhaustive_within_budget_and_samples_beyond() {
        let exhaustive = explore_bounded(factory, 1_000, Budget::new(100, 0), |_| Some(()));
        assert!(exhaustive.exhaustive);
        assert_eq!(exhaustive.schedules, 20);

        let sampled = explore_bounded(factory, 1_000, Budget::new(5, 42), |_| Some(()));
        assert!(!sampled.exhaustive);
        assert_eq!(sampled.schedules, 5);
        for f in &sampled.findings {
            assert_eq!(f.schedule.len(), 6, "sampled schedules are full merge orders");
        }
    }
}
