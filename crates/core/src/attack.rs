//! The interleaving explorer: model-checking the protocols.
//!
//! The paper proves the 5-instruction protocol correct by case analysis
//! over interleavings (§3.3.1, Figure 8) and demonstrates attacks on the
//! 3- and 4-instruction variants by exhibiting one bad interleaving each
//! (Figures 5, 6). The explorer turns both directions into computation:
//! build a fresh machine per schedule, run it under a
//! [`udma_cpu::FixedSchedule`], and evaluate a safety predicate on the
//! final state.

use crate::Machine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udma_cpu::{interleaving_count, interleavings, FixedSchedule, Pid};

/// One schedule on which the predicate fired.
#[derive(Clone, Debug)]
pub struct Finding<R> {
    /// The per-instruction pid schedule that produced the violation.
    pub schedule: Vec<Pid>,
    /// Whatever the predicate returned.
    pub detail: R,
}

/// The outcome of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport<R> {
    /// Schedules executed.
    pub schedules: u64,
    /// Whether the exploration was exhaustive (vs. sampled).
    pub exhaustive: bool,
    /// Violations found.
    pub findings: Vec<Finding<R>>,
}

impl<R> ExploreReport<R> {
    /// Whether the property held on every tested schedule.
    pub fn safe(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Exhaustively explores every interleaving of the machine's processes.
///
/// `factory` must build the same machine each time (same processes, same
/// programs). The schedule space is every merge order of the processes'
/// *static* instruction sequences; retry loops may execute longer than
/// their static length, in which case the tail runs under
/// run-to-completion fallback — enough to decide the safety predicates,
/// which are about what transfers happened, not about timing.
///
/// `check` inspects the finished machine and returns `Some(detail)` on a
/// violation.
///
/// # Panics
///
/// Panics if the interleaving space exceeds the enumeration cap; use
/// [`explore_sampled`] for large spaces.
pub fn explore<R>(
    factory: impl Fn() -> Machine,
    max_steps: u64,
    check: impl Fn(&Machine) -> Option<R>,
) -> ExploreReport<R> {
    let probe = factory();
    let lens: Vec<usize> = probe
        .executor()
        .processes()
        .iter()
        .map(|p| p.program().len())
        .collect();
    let mut report = ExploreReport { schedules: 0, exhaustive: true, findings: Vec::new() };
    for inter in interleavings(&lens) {
        let schedule: Vec<Pid> = inter.iter().map(|&i| Pid::new(i as u32)).collect();
        let mut m = factory();
        let mut sched = FixedSchedule::new(schedule.clone());
        m.run_with(&mut sched, max_steps);
        report.schedules += 1;
        if let Some(detail) = check(&m) {
            report.findings.push(Finding { schedule, detail });
        }
    }
    report
}

/// Number of schedules [`explore`] would run for this machine.
pub fn schedule_space(factory: impl Fn() -> Machine) -> u128 {
    let probe = factory();
    let lens: Vec<usize> = probe
        .executor()
        .processes()
        .iter()
        .map(|p| p.program().len())
        .collect();
    interleaving_count(&lens)
}

/// Randomly samples `samples` schedules from the interleaving space
/// (uniform over merge orders), for spaces too large to enumerate.
pub fn explore_sampled<R>(
    factory: impl Fn() -> Machine,
    max_steps: u64,
    samples: u64,
    seed: u64,
    check: impl Fn(&Machine) -> Option<R>,
) -> ExploreReport<R> {
    let probe = factory();
    let lens: Vec<usize> = probe
        .executor()
        .processes()
        .iter()
        .map(|p| p.program().len())
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = ExploreReport { schedules: 0, exhaustive: false, findings: Vec::new() };
    for _ in 0..samples {
        // Uniform merge order: repeatedly pick a process with remaining
        // instructions, weighted by how many it has left.
        let mut remaining = lens.clone();
        let mut schedule = Vec::with_capacity(remaining.iter().sum());
        let mut left: usize = remaining.iter().sum();
        while left > 0 {
            let mut pick = rng.gen_range(0..left);
            let mut chosen = 0;
            for (i, &r) in remaining.iter().enumerate() {
                if pick < r {
                    chosen = i;
                    break;
                }
                pick -= r;
            }
            remaining[chosen] -= 1;
            left -= 1;
            schedule.push(Pid::new(chosen as u32));
        }
        let mut m = factory();
        let mut sched = FixedSchedule::new(schedule.clone());
        m.run_with(&mut sched, max_steps);
        report.schedules += 1;
        if let Some(detail) = check(&m) {
            report.findings.push(Finding { schedule, detail });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DmaMethod, Machine, ProcessSpec};
    use udma_cpu::{ProgramBuilder, Reg};

    /// Two trivial processes, each writing its pid-specific value.
    fn factory() -> Machine {
        let mut m = Machine::with_method(DmaMethod::Repeated5);
        for v in [1u64, 2] {
            m.spawn(&ProcessSpec::two_buffers(), |env| {
                ProgramBuilder::new()
                    .store(env.buffer(0).va.as_u64(), v)
                    .mb()
                    .halt()
                    .build()
            });
        }
        m
    }

    #[test]
    fn explore_covers_the_full_multinomial() {
        // 3 instructions each → C(6,3) = 20 schedules.
        assert_eq!(schedule_space(factory), 20);
        let report = explore(factory, 1_000, |_| None::<()>);
        assert_eq!(report.schedules, 20);
        assert!(report.exhaustive);
        assert!(report.safe());
    }

    #[test]
    fn explore_reports_failing_schedules() {
        // A predicate that fires whenever process 1 finished first.
        let report = explore(factory, 1_000, |m| {
            let p1_done = m.executor().process(udma_cpu::Pid::new(1)).instret;
            (p1_done > 0).then_some(p1_done)
        });
        assert!(!report.safe());
        assert!(report.findings.len() < report.schedules as usize + 1);
        for f in &report.findings {
            assert_eq!(f.schedule.len(), 6);
        }
    }

    #[test]
    fn sampled_exploration_is_deterministic_per_seed() {
        let a = explore_sampled(factory, 1_000, 50, 9, |m| {
            Some(m.reg(udma_cpu::Pid::new(0), Reg::R0))
        });
        let b = explore_sampled(factory, 1_000, 50, 9, |m| {
            Some(m.reg(udma_cpu::Pid::new(0), Reg::R0))
        });
        assert_eq!(a.schedules, 50);
        assert!(!a.exhaustive);
        let sa: Vec<_> = a.findings.iter().map(|f| f.schedule.clone()).collect();
        let sb: Vec<_> = b.findings.iter().map(|f| f.schedule.clone()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn sampled_schedules_are_valid_merge_orders() {
        let report = explore_sampled(factory, 1_000, 30, 3, |_| Some(()));
        for f in &report.findings {
            let zeros = f.schedule.iter().filter(|p| p.as_u32() == 0).count();
            let ones = f.schedule.iter().filter(|p| p.as_u32() == 1).count();
            assert_eq!(zeros, 3);
            assert_eq!(ones, 3);
        }
    }
}
