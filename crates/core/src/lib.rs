//! **udma** — user-level DMA initiation without OS kernel modification.
//!
//! This crate is the reproduction's public API for the paper
//! *"User-Level DMA without Operating System Kernel Modification"*
//! (Markatos & Katevenis, HPCA-3, 1997). It assembles the substrates
//! (`udma-mem`, `udma-bus`, `udma-cpu`, `udma-os`, `udma-nic`) into a
//! [`Machine`] — a DEC-Alpha-3000/300-like workstation with a
//! TurboChannel NIC — and exposes:
//!
//! * [`DmaMethod`] — every initiation scheme the paper discusses, from
//!   the kernel baseline through SHRIMP/FLASH/PAL to the paper's own
//!   key-based, extended-shadow and repeated-passing protocols;
//! * initiation compilers ([`emit_dma`], [`emit_atomic`]) that turn a
//!   [`DmaRequest`] into the exact 1–5-instruction user-mode sequences of
//!   the paper (or the Figure-1 syscall for the baseline);
//! * the measurement harness ([`measure_initiation`], [`table1`]) that
//!   regenerates **Table 1**;
//! * the interleaving explorer ([`explore`]) that regenerates the
//!   **Figure 5/6 attacks** and model-checks the §3.3.1 correctness
//!   argument;
//! * the **crossover** trend analysis behind the paper's motivation
//!   ([`crossover_rows`]).
//!
//! # Quickstart
//!
//! ```
//! use udma::{DmaMethod, DmaRequest, Machine, ProcessSpec, emit_dma};
//! use udma_cpu::Reg;
//!
//! let mut m = Machine::with_method(DmaMethod::KeyBased);
//! let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
//!     let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
//!     let mut uniq = 0;
//!     emit_dma(env, udma_cpu::ProgramBuilder::new(), &req, &mut uniq)
//!         .halt()
//!         .build()
//! });
//! m.run(10_000);
//! assert_ne!(m.reg(pid, Reg::R0), udma_nic::DMA_FAILURE);
//! assert_eq!(m.engine().core().stats().started, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod coherence;
mod crossover;
mod ctx_virt;
mod initiate;
mod initiate_once;
mod machine;
mod measure;
mod method;
mod report;
mod request;
mod sharded;
mod trace_report;
mod va;

pub use attack::{
    explore, explore_bounded, explore_sampled, schedule_space, Budget, ExploreReport, Finding,
};
pub use coherence::{CoherenceMode, CoherenceSetup, CoherentPostReport};
pub use crossover::{crossover_rows, os_bound_message_size, CrossoverRow};
pub use ctx_virt::{LogicalPost, PostPath};
pub use initiate::{dma_program, emit_atomic, emit_dma, AtomicRequest};
pub use initiate_once::emit_dma_once;
pub use machine::{BufferSpec, Machine, MachineConfig, ProcessEnv, ProcessSpec, ShareRef, PAL_DMA};
pub use measure::{
    measure_atomic, measure_initiation, measure_initiation_with, measure_ring_initiation,
    measure_transfer_latency, table1, InitiationCost,
};
pub use method::DmaMethod;
pub use report::Table;
pub use request::DmaRequest;
pub use sharded::{ClusterConfig, ClusterDigest, ClusterSim, LogLine, NodeDigest, XferDigest};
pub use trace_report::device_trace_report;
pub use va::{emit_virt_dma, SwapRefused, VaMode, VirtDmaSetup};
