//! Human-readable decoding of the bus trace.
//!
//! The raw [`udma_bus::BusTrace`] records physical addresses; this module
//! translates NIC traffic back into protocol-level language ("keyed
//! shadow store, ctx 1", "context page 2: size trigger") so a downstream
//! user can see exactly what their initiation sequence did on the wire.

use crate::Machine;
use std::fmt::Write as _;
use udma_bus::BusOp;
use udma_mem::Region;
use udma_nic::regs;

/// Renders every *device* transaction of the machine's trace, one line
/// per access, in order. Enable tracing before the run:
///
/// ```
/// use udma::{DmaMethod, Machine, ProcessSpec};
///
/// let mut m = Machine::with_method(DmaMethod::ExtShadow);
/// m.bus_mut().trace_mut().enable();
/// // … spawn and run …
/// let report = udma::device_trace_report(&m);
/// assert!(report.is_empty()); // nothing ran yet
/// ```
pub fn device_trace_report(machine: &Machine) -> String {
    let layout = machine.config().layout;
    let mut out = String::new();
    for ev in machine.bus().trace().events() {
        let decoded = match layout.region_of(ev.paddr) {
            Region::Shadow => {
                let (pa, ctx) = layout.shadow.decode(ev.paddr).expect("shadow region decodes");
                match ev.op {
                    BusOp::Write => format!("shadow store  pa={pa} ctx={ctx} data={:#x}", ev.data),
                    BusOp::Read => format!("shadow load   pa={pa} ctx={ctx} -> {:#x}", ev.data),
                }
            }
            Region::NicRegs { offset } => {
                let name = reg_name(offset);
                match ev.op {
                    BusOp::Write => format!("nic write     {name} = {:#x}", ev.data),
                    BusOp::Read => format!("nic read      {name} -> {:#x}", ev.data),
                }
            }
            _ => continue, // RAM traffic is not device traffic
        };
        let _ = writeln!(out, "[{:>12}] p{} {decoded}", ev.time.to_string(), ev.tag);
    }
    out
}

fn reg_name(offset: u64) -> String {
    if let Some((ctx, off)) = regs::decode_ctx_offset(offset) {
        let what = match off {
            regs::CTX_SIZE_TRIGGER => "size/trigger",
            regs::CTX_ATOMIC_OPERAND1 => "atomic operand 1",
            regs::CTX_ATOMIC_OPERAND2 => "atomic operand 2",
            regs::CTX_ATOMIC_CMD => "atomic cmd/result",
            _ => "??",
        };
        return format!("ctx{ctx}.{what}");
    }
    match offset {
        regs::DMA_SOURCE => "DMA_SOURCE".into(),
        regs::DMA_DEST => "DMA_DEST".into(),
        regs::DMA_SIZE => "DMA_SIZE".into(),
        regs::DMA_STATUS => "DMA_STATUS".into(),
        regs::CURRENT_PID => "CURRENT_PID".into(),
        regs::ABORT => "ABORT".into(),
        regs::ATOMIC_ADDR => "ATOMIC_ADDR".into(),
        regs::ATOMIC_OPERAND1 => "ATOMIC_OPERAND1".into(),
        regs::ATOMIC_OPERAND2 => "ATOMIC_OPERAND2".into(),
        regs::ATOMIC_CMD => "ATOMIC_CMD".into(),
        o if o >= regs::KEY_TABLE_BASE
            && o < regs::KEY_TABLE_BASE + 8 * regs::MAX_CONTEXTS as u64 =>
        {
            format!("KEY_TABLE[{}]", (o - regs::KEY_TABLE_BASE) / 8)
        }
        other => format!("+{other:#x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{emit_dma_once, DmaMethod, DmaRequest, ProcessSpec};
    use udma_cpu::ProgramBuilder;

    fn traced_run(method: DmaMethod) -> String {
        let mut m = Machine::with_method(method);
        m.spawn(&ProcessSpec::two_buffers(), |env| {
            let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, 64);
            emit_dma_once(env, ProgramBuilder::new(), &req).halt().build()
        });
        m.bus_mut().reset_stats();
        m.bus_mut().trace_mut().enable();
        m.run(10_000);
        device_trace_report(&m)
    }

    #[test]
    fn ext_shadow_trace_reads_as_two_shadow_accesses() {
        let report = traced_run(DmaMethod::ExtShadow);
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 2, "{report}");
        assert!(lines[0].contains("shadow store"), "{report}");
        assert!(lines[1].contains("shadow load"), "{report}");
        assert!(lines[0].contains("ctx="));
    }

    #[test]
    fn key_based_trace_names_the_context_page() {
        let report = traced_run(DmaMethod::KeyBased);
        assert_eq!(report.lines().count(), 4, "{report}");
        assert!(report.contains("size/trigger"), "{report}");
        // Two keyed shadow stores carrying key#ctx payloads.
        assert_eq!(report.matches("shadow store").count(), 2);
    }

    #[test]
    fn kernel_trace_names_the_privileged_registers() {
        let report = traced_run(DmaMethod::Kernel);
        for name in ["DMA_SOURCE", "DMA_DEST", "DMA_SIZE", "DMA_STATUS"] {
            assert!(report.contains(name), "{name} missing:\n{report}");
        }
    }

    #[test]
    fn empty_before_running() {
        let mut m = Machine::with_method(DmaMethod::ExtShadow);
        m.bus_mut().trace_mut().enable();
        assert!(device_trace_report(&m).is_empty());
    }
}
