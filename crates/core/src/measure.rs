//! The §3.4 measurement harness: Table 1 and the atomic-operation
//! comparison.

use crate::va::VirtDmaSetup;
use crate::{
    emit_atomic, emit_dma, AtomicRequest, BufferSpec, DmaMethod, DmaRequest, Machine,
    MachineConfig, ProcessSpec,
};
use udma_bus::SimTime;
use udma_cpu::ProgramBuilder;
use udma_iommu::IotlbConfig;
use udma_mem::PAGE_SIZE;
use udma_nic::{regs, AtomicOp, DescDst, DmaDescriptor, RingConfig, DESC_BYTES};

/// The measured cost of one initiation under a method.
#[derive(Clone, Copy, Debug)]
pub struct InitiationCost {
    /// The method measured.
    pub method: DmaMethod,
    /// Mean time per initiation.
    pub mean: SimTime,
    /// Iterations averaged over.
    pub iters: u32,
    /// User-mode instructions per initiation (`None` for the kernel
    /// path's "thousands").
    pub user_instructions: Option<u32>,
    /// The paper's Table 1 number, where it reports one.
    pub paper_us: Option<f64>,
}

impl InitiationCost {
    /// Ratio of our measurement to the paper's, where comparable.
    pub fn vs_paper(&self) -> Option<f64> {
        self.paper_us.map(|p| self.mean.as_us() / p)
    }
}

/// Measures the mean initiation cost of `method` over `iters`
/// initiations, reproducing the paper's §3.4 procedure: "a simple test of
/// initiating 1,000 DMA operations. Successive DMA operations were done
/// to(from) different addresses, so as to eliminate any caching effects."
/// No payload matters (size is 8 bytes; the paper passed arguments only).
///
/// ```
/// use udma::{measure_initiation, DmaMethod};
///
/// let cost = measure_initiation(DmaMethod::ExtShadow, 50);
/// // Two TurboChannel accesses: around a microsecond.
/// assert!((0.5..2.0).contains(&cost.mean.as_us()));
/// ```
///
/// # Panics
///
/// Panics if the run does not complete or an initiation fails — both
/// indicate a broken protocol wiring, not a measurement result.
pub fn measure_initiation(method: DmaMethod, iters: u32) -> InitiationCost {
    assert!(iters > 0, "need at least one iteration");
    let mut m = Machine::with_method(method);
    let pages = 8u64;
    let mut spec = ProcessSpec::two_buffers_of(pages);
    if method == DmaMethod::Shrimp1 {
        spec.mapped_out.push((0, 1));
    }
    let pid = m.spawn(&spec, |env| {
        let mut b = ProgramBuilder::new();
        let mut uniq = 0;
        for i in 0..iters as u64 {
            // Different page and different offset every time.
            let page = i % pages;
            let off = (i * 64) % (PAGE_SIZE - 64);
            let src = env.addr_in(0, page * PAGE_SIZE + off);
            let dst = env.addr_in(1, page * PAGE_SIZE + off);
            b = emit_dma(env, b, &DmaRequest::new(src, dst, 8), &mut uniq);
        }
        b.halt().build()
    });
    let out = m.run(iters as u64 * 64 + 10_000);
    assert!(out.finished, "measurement did not complete");
    assert_eq!(
        m.engine().core().stats().started,
        iters as u64,
        "{method}: not every initiation started a transfer"
    );
    let _ = pid;
    InitiationCost {
        method,
        mean: SimTime::from_ps(m.time().as_ps() / iters as u64),
        iters,
        user_instructions: method.protocol().user_instructions(),
        paper_us: method.paper_us(),
    }
}

/// Regenerates **Table 1**: the paper's four rows, measured on this
/// simulator.
pub fn table1(iters: u32) -> Vec<InitiationCost> {
    DmaMethod::TABLE1.iter().map(|&m| measure_initiation(m, iters)).collect()
}

/// Measures the mean cost of one user-level (or kernel-path) atomic
/// operation under `method` (experiment E9, §3.5).
///
/// # Panics
///
/// Panics if the run does not complete.
pub fn measure_atomic(method: DmaMethod, iters: u32) -> InitiationCost {
    assert!(iters > 0, "need at least one iteration");
    let mut m = Machine::with_method(method);
    let pid = m.spawn(&ProcessSpec::two_buffers(), |env| {
        let mut b = ProgramBuilder::new();
        for i in 0..iters as u64 {
            let va = env.addr_in(0, (i * 8) % PAGE_SIZE);
            let req = AtomicRequest { va, op: AtomicOp::Add, operand1: 1, operand2: 0 };
            b = emit_atomic(env, b, &req);
        }
        b.halt().build()
    });
    let out = m.run(iters as u64 * 64 + 10_000);
    assert!(out.finished, "measurement did not complete");
    assert_eq!(m.engine().core().stats().atomics, iters as u64);
    let _ = pid;
    InitiationCost {
        method,
        mean: SimTime::from_ps(m.time().as_ps() / iters as u64),
        iters,
        user_instructions: None,
        paper_us: None,
    }
}

/// Helper for trend analyses: measure with a custom machine
/// configuration (bus sweeps, cost-model variants).
pub fn measure_initiation_with(config: crate::MachineConfig, iters: u32) -> InitiationCost {
    let method = config.method;
    let mut m = Machine::new(config);
    let pages = 8u64;
    let mut spec = ProcessSpec::two_buffers_of(pages);
    if method == DmaMethod::Shrimp1 {
        spec.mapped_out.push((0, 1));
    }
    m.spawn(&spec, |env| {
        let mut b = ProgramBuilder::new();
        let mut uniq = 0;
        for i in 0..iters as u64 {
            let page = i % pages;
            let off = (i * 64) % (PAGE_SIZE - 64);
            let src = env.addr_in(0, page * PAGE_SIZE + off);
            let dst = env.addr_in(1, page * PAGE_SIZE + off);
            b = emit_dma(env, b, &DmaRequest::new(src, dst, 8), &mut uniq);
        }
        b.halt().build()
    });
    let out = m.run(iters as u64 * 64 + 10_000);
    assert!(out.finished, "measurement did not complete");
    InitiationCost {
        method,
        mean: SimTime::from_ps(m.time().as_ps() / iters as u64),
        iters,
        user_instructions: method.protocol().user_instructions(),
        paper_us: method.paper_us(),
    }
}

/// E20: mean per-transfer initiation cost through a **doorbell-batched
/// descriptor ring** at queue depth `depth`, over `iters` transfers on
/// the key-based machine (the paper's own best register path is the
/// baseline the ring must beat).
///
/// `depth == 1` deliberately takes the plain keyed register path — the
/// ring is enabled and registered but idle — so its cost pins *exactly*
/// to the method's per-post number: the ring is pure opt-in. Deeper
/// batches write `depth` descriptors with plain cached memory stores,
/// issue one memory barrier and one uncached doorbell store, so the
/// TurboChannel device access is paid once per batch and the
/// per-transfer cost falls toward the four-stores-per-descriptor
/// asymptote.
///
/// # Panics
///
/// Panics unless `0 < depth ≤ 128`, `iters` is a positive multiple of
/// `depth`, or if any post or launch fails — wiring bugs, not results.
pub fn measure_ring_initiation(depth: u32, iters: u32) -> InitiationCost {
    assert!(depth > 0, "need a positive queue depth");
    assert!(iters > 0 && iters.is_multiple_of(depth), "iters must be a positive multiple of depth");
    let slots = PAGE_SIZE / DESC_BYTES;
    assert!(depth as u64 <= slots, "depth exceeds the one-page ring ({slots} slots)");

    let method = DmaMethod::KeyBased;
    let mut m = Machine::new(MachineConfig {
        virt_dma: Some(VirtDmaSetup::pin_on_post(IotlbConfig::default())),
        ..MachineConfig::new(method)
    });
    m.enable_desc_rings(RingConfig::default());
    let pages = 8u64;
    // Buffers 0/1 carry the transfers; buffer 2 is the one-page ring.
    let spec = ProcessSpec {
        buffers: vec![BufferSpec::rw(pages), BufferSpec::rw(pages), BufferSpec::rw(1)],
        ..Default::default()
    };
    let pid = m.spawn(&spec, |env| {
        let mut b = ProgramBuilder::new();
        if depth == 1 {
            // The register fast path: rings stay idle, cost pins to the
            // method's own per-post number.
            let mut uniq = 0;
            for i in 0..iters as u64 {
                let page = i % pages;
                let off = (i * 64) % (PAGE_SIZE - 64);
                let src = env.addr_in(0, page * PAGE_SIZE + off);
                let dst = env.addr_in(1, page * PAGE_SIZE + off);
                b = emit_dma(env, b, &DmaRequest::new(src, dst, 8), &mut uniq);
            }
            return b.halt().build();
        }
        let ring_va = env.buffer(2).va.as_u64();
        let db = env.ctx_page_va.expect("ring machines grant a context page").as_u64()
            + regs::CTX_RING_DB;
        for batch in 0..(iters / depth) as u64 {
            for k in 0..depth as u64 {
                let i = batch * depth as u64 + k;
                let page = i % pages;
                let off = (i * 64) % (PAGE_SIZE - 64);
                let src = env.addr_in(0, page * PAGE_SIZE + off);
                let dst = env.addr_in(1, page * PAGE_SIZE + off);
                let words = DmaDescriptor::new(src, DescDst::Local(dst), 8).encode();
                let slot = (i % slots) * DESC_BYTES;
                for (w, word) in words.iter().enumerate() {
                    b = b.store(ring_va + slot + 8 * w as u64, *word);
                }
            }
            // Drain the descriptor stores (and keep successive doorbell
            // stores to the same address from collapsing in the write
            // buffer), then one uncached store covers the whole batch.
            b = b.mb().store(db, (batch + 1) * depth as u64);
        }
        b.mb().halt().build()
    });
    let registered = m.register_ring(pid, 2, slots);
    assert!(registered, "kernel refused a ring window that fits its own buffer");
    let out = m.run(iters as u64 * 64 + 10_000);
    assert!(out.finished, "ring measurement did not complete");
    if depth == 1 {
        assert_eq!(m.engine().core().stats().started, iters as u64);
    } else {
        let s = m.ring_stats();
        assert_eq!(s.launched, iters as u64, "not every descriptor launched");
        assert_eq!(s.rejected, 0, "descriptor rejected during measurement");
        assert_eq!(m.engine().core().virt_stats().completed, iters as u64);
    }
    InitiationCost {
        method,
        mean: SimTime::from_ps(m.time().as_ps() / iters as u64),
        iters,
        user_instructions: None,
        paper_us: None,
    }
}

/// End-to-end latency of ONE transfer of `size` bytes: initiate, then
/// poll the context status word until the wire drains (user-level
/// methods with contexts) or the kernel status reads zero. Message sizes
/// must fit a page for user-level methods.
///
/// # Panics
///
/// Panics if the transfer fails or polling never completes.
pub fn measure_transfer_latency(method: DmaMethod, size: u64) -> SimTime {
    use udma_cpu::Reg;
    let mut m = Machine::with_method(method);
    let mut spec = ProcessSpec::two_buffers();
    if method == DmaMethod::Shrimp1 {
        spec.mapped_out.push((0, 1));
    }
    m.spawn(&spec, |env| {
        let req = DmaRequest::new(env.buffer(0).va, env.buffer(1).va, size);
        let mut uniq = 0;
        let mut b = emit_dma(env, ProgramBuilder::new(), &req, &mut uniq);
        // Poll for completion where a status word exists.
        match (method, env.ctx_page_va) {
            (DmaMethod::Kernel, _) => {
                // The syscall returned remaining bytes; poll by repeating
                // a cheap status syscall? The driver returns remaining at
                // initiation; emulate completion wait with computed wire
                // time via context-free polling: re-issue status reads is
                // not part of the ABI, so just burn the wire time.
                // (Kernel path: r0 holds bytes remaining at start.)
            }
            (_, Some(page)) => {
                b = b
                    .label("wait")
                    .compute(150) // 1 µs between polls
                    .load(Reg::R4, page.as_u64())
                    .bne(Reg::R4, 0, "wait");
            }
            _ => {}
        }
        b.halt().build()
    });
    let out = m.run(10_000_000);
    assert!(out.finished, "{method}: transfer latency run did not finish");
    assert_eq!(m.engine().core().stats().started, 1, "{method}");
    // For methods without a pollable status word, add the residual wire
    // time analytically (initiation time is already in m.time()).
    let rec = m.transfers()[0];
    let finished = rec.finished;
    let now = m.time();
    if finished > now {
        SimTime::from_ps(finished.as_ps())
    } else {
        now
    }
}
