//! Plain-text table reporting for the bench binaries.

use std::fmt;

/// A simple column-aligned table renderable as markdown or CSV.
///
/// ```
/// let mut t = udma::Table::new("Table 1", &["DMA algorithm", "µs"]);
/// t.row(&["Kernel-level DMA", "18.6"]);
/// let md = t.to_markdown();
/// assert!(md.contains("| Kernel-level DMA | 18.6 |"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a markdown table (with title line).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", self.headers.iter().map(|_| "---|").collect::<String>()));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders as CSV (headers first; no title).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1", "2"]).row(&["x, y", "q\"z"]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### T"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escaping() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"x, y\""));
        assert!(csv.contains("\"q\"\"z\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        Table::new("T", &["a"]).row(&["1", "2"]);
    }

    #[test]
    fn len_and_display() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.to_string(), t.to_markdown());
    }
}
