//! The motivation trend (experiment E8): OS overhead vs. wire time.
//!
//! The paper's introduction argues that "soon, the operating system
//! overhead associated with starting a DMA will be larger than the data
//! transfer itself, esp. for small data transfers". Given a measured
//! kernel initiation cost, a user-level initiation cost and a link model,
//! these functions compute the total per-message cost of both paths and
//! the message size below which the OS overhead dominates the wire.

use udma_bus::SimTime;
use udma_nic::LinkModel;

/// One message size in the sweep.
#[derive(Clone, Copy, Debug)]
pub struct CrossoverRow {
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Pure wire time (latency + serialisation).
    pub wire: SimTime,
    /// Kernel-initiated total: initiation + wire.
    pub kernel_total: SimTime,
    /// User-level-initiated total.
    pub user_total: SimTime,
    /// Fraction of the kernel path spent in initiation (the paper's
    /// "ever-increasing percentage").
    pub kernel_init_fraction: f64,
    /// Speedup of the user-level path for this message size.
    pub speedup: f64,
}

/// Sweeps message sizes for one link.
pub fn crossover_rows(
    kernel_init: SimTime,
    user_init: SimTime,
    link: LinkModel,
    sizes: &[u64],
) -> Vec<CrossoverRow> {
    sizes
        .iter()
        .map(|&msg_bytes| {
            let wire = link.transfer_time(msg_bytes);
            let kernel_total = kernel_init + wire;
            let user_total = user_init + wire;
            CrossoverRow {
                msg_bytes,
                wire,
                kernel_total,
                user_total,
                kernel_init_fraction: kernel_init.as_ns() / kernel_total.as_ns(),
                speedup: kernel_total.as_ns() / user_total.as_ns(),
            }
        })
        .collect()
}

/// The largest message size (bytes, power-of-two search up to 1 GiB) for
/// which the *wire time* is still below the kernel initiation overhead —
/// i.e. every message up to this size spends more than half its life in
/// the OS.
pub fn os_bound_message_size(kernel_init: SimTime, link: LinkModel) -> u64 {
    let mut lo = 0u64;
    let mut hi = 1 << 30;
    if link.transfer_time(0) >= kernel_init {
        return 0;
    }
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if link.transfer_time(mid) < kernel_init {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_links_raise_the_os_bound() {
        let init = SimTime::from_us(18); // ~ the measured kernel DMA cost
        let slow = os_bound_message_size(init, LinkModel::ethernet10());
        let fast = os_bound_message_size(init, LinkModel::gigabit());
        // On a faster network, *larger* messages are still OS-dominated:
        // exactly the trend the paper's introduction describes.
        assert!(fast > slow, "gigabit bound {fast} <= ethernet bound {slow}");
    }

    #[test]
    fn bound_is_where_wire_crosses_init() {
        let init = SimTime::from_us(18);
        let link = LinkModel::new("t", 1_000_000_000, SimTime::ZERO);
        let bound = os_bound_message_size(init, link);
        assert!(link.transfer_time(bound) < init);
        assert!(link.transfer_time(bound + 1) >= init);
        // 18 µs at 1 Gb/s = 2250 bytes.
        assert_eq!(bound, 2249);
    }

    #[test]
    fn zero_when_latency_alone_exceeds_init() {
        let init = SimTime::from_us(1);
        let link = LinkModel::new("t", 1_000_000_000, SimTime::from_us(5));
        assert_eq!(os_bound_message_size(init, link), 0);
    }

    #[test]
    fn rows_have_consistent_fractions_and_speedups() {
        let rows = crossover_rows(
            SimTime::from_us(18),
            SimTime::from_us(1),
            LinkModel::atm155(),
            &[64, 1024, 65536],
        );
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.kernel_total > r.user_total);
            assert!(r.speedup > 1.0);
            assert!((0.0..=1.0).contains(&r.kernel_init_fraction));
        }
        // Small messages are more OS-dominated and gain more.
        assert!(rows[0].kernel_init_fraction > rows[2].kernel_init_fraction);
        assert!(rows[0].speedup > rows[2].speedup);
    }
}
