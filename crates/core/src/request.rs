//! DMA transfer requests.

use std::fmt;
use udma_mem::VirtAddr;

/// A user-level transfer request: the `DMA(vsource, vdestination, size)`
/// of the paper's §2.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaRequest {
    /// Source virtual address.
    pub src: VirtAddr,
    /// Destination virtual address.
    pub dst: VirtAddr,
    /// Bytes to transfer.
    pub size: u64,
}

impl DmaRequest {
    /// Creates a request.
    pub fn new(src: VirtAddr, dst: VirtAddr, size: u64) -> Self {
        DmaRequest { src, dst, size }
    }
}

impl fmt::Display for DmaRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DMA({} -> {}, {} bytes)", self.src, self.dst, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let r = DmaRequest::new(VirtAddr::new(0x1000), VirtAddr::new(0x2000), 64);
        assert_eq!(r.to_string(), "DMA(0x1000 -> 0x2000, 64 bytes)");
    }
}
