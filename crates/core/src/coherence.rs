//! Machine-level cache coherence: what shadow-addressed DMA really costs
//! on a cached host.
//!
//! The paper's testbed dodges the question ("successive DMA operations
//! were done to(from) different addresses, so as to eliminate any caching
//! effects", §3.4). This module puts it back, in two config-gated modes
//! on [`MachineConfig`](crate::MachineConfig):
//!
//! * [`CoherenceMode::NonCoherent`] — the engine bypasses the CPU cache.
//!   Software must [`flush_range`](crate::Machine::flush_range) the
//!   source before a from-memory post and
//!   [`invalidate_range`](crate::Machine::invalidate_range) the
//!   destination after a to-memory completion; both are charged per line
//!   on the hot path, so the initiation cost grows with the buffer
//!   footprint — the Table-1 costs stop being size-independent.
//! * [`CoherenceMode::Coherent`] — the NI snoops the coherence bus: its
//!   reads pull Modified lines via intervention, its writes invalidate
//!   sharers. The cost is per *touched* line, charged on the wire.
//!
//! [`Machine::post_dma_coherence_aware`](crate::Machine::post_dma_coherence_aware)
//! runs the correct protocol for the configured mode and itemises where
//! the time went in a [`CoherentPostReport`].

use crate::Machine;
use udma_bus::{CacheConfig, CoherenceStats, CoherenceTiming, SharedCoherence, SimTime};
use udma_mem::PhysAddr;
use udma_nic::{RejectReason, TransferRecord};

/// How DMA and the CPU cache relate on this machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CoherenceMode {
    /// The pre-coherence model: memory is flat, the data cache is
    /// timing-only, DMA is coherent by construction and pays nothing.
    #[default]
    Flat,
    /// The CPU cache carries real data; the engine bypasses it. Correct
    /// DMA requires software flush/invalidate around every transfer —
    /// skipping the flush observably moves stale bytes.
    NonCoherent,
    /// The CPU cache carries real data; the engine snoops the bus, so
    /// transfers are always correct and pay per-touched-line snoop time.
    Coherent,
}

/// Coherence configuration on [`MachineConfig`](crate::MachineConfig).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoherenceSetup {
    /// The mode (default [`CoherenceMode::Flat`]: exactly the machine
    /// the paper built).
    pub mode: CoherenceMode,
    /// Snoop-bus and software-loop latency constants.
    pub timing: CoherenceTiming,
}

impl CoherenceSetup {
    /// The flat (paper-testbed) machine.
    pub fn flat() -> Self {
        CoherenceSetup::default()
    }

    /// Non-coherent DMA with default timing.
    pub fn non_coherent() -> Self {
        CoherenceSetup { mode: CoherenceMode::NonCoherent, timing: CoherenceTiming::default() }
    }

    /// Snooping (coherent) DMA with default timing.
    pub fn coherent() -> Self {
        CoherenceSetup { mode: CoherenceMode::Coherent, timing: CoherenceTiming::default() }
    }
}

/// Where the time of one coherence-aware DMA post went.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoherentPostReport {
    /// The mode the post ran under.
    pub mode: CoherenceMode,
    /// Software cost charged before the engine started (the source
    /// flush loop in non-coherent mode; zero otherwise).
    pub initiation_extra: SimTime,
    /// Software cost charged at completion (the destination invalidate
    /// loop in non-coherent mode; zero otherwise).
    pub completion_extra: SimTime,
    /// Snoop time the engine's own reads/writes paid (coherent mode;
    /// zero otherwise).
    pub snoop_extra: SimTime,
    /// Lines swept by the source flush loop.
    pub flush_lines: u64,
    /// Dirty lines the flush actually wrote back.
    pub flush_dirty: u64,
    /// Lines swept by the destination invalidate loop.
    pub invalidate_lines: u64,
    /// Modified lines the engine pulled via intervention.
    pub interventions: u64,
    /// The mover's record of the transfer.
    pub record: TransferRecord,
}

impl CoherentPostReport {
    /// Everything coherence added on top of the flat-machine post.
    pub fn total_extra(&self) -> SimTime {
        self.initiation_extra + self.completion_extra + self.snoop_extra
    }
}

impl Machine {
    /// The coherence domain, when the machine runs in a non-`Flat` mode.
    pub fn coherence(&self) -> Option<SharedCoherence> {
        self.coherence_domain()
    }

    /// Snoop-bus counters (zeroes in `Flat` mode).
    pub fn coherence_stats(&self) -> CoherenceStats {
        self.coherence_domain().map(|d| d.borrow().stats()).unwrap_or_default()
    }

    /// The MESI safety invariants over every cache in the domain
    /// (trivially holds in `Flat` mode).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn check_coherence_invariants(&self) -> Result<(), String> {
        match self.coherence_domain() {
            Some(d) => d.borrow().check_invariants(),
            None => Ok(()),
        }
    }

    /// Software flush (writeback + invalidate) of `[pa, pa + len)` from
    /// the CPU cache, charged per line against simulation time — what
    /// the OS/user library must run before a non-coherent DMA reads the
    /// range. Returns `(lines_swept, dirty_lines, time_charged)`; a
    /// no-op returning zeroes in `Flat` mode.
    pub fn flush_range(&mut self, pa: PhysAddr, len: u64) -> (u64, u64, SimTime) {
        let Some((domain, agent)) = self.cpu_coherence() else {
            return (0, 0, SimTime::ZERO);
        };
        let (lines, dirty, time) = domain.borrow_mut().flush_range(agent, pa, len);
        self.advance_time(time);
        (lines, dirty, time)
    }

    /// Software invalidate (discard) of `[pa, pa + len)` from the CPU
    /// cache, charged per line against simulation time — what must run
    /// after a non-coherent DMA wrote the range. Returns
    /// `(lines_swept, time_charged)`; a no-op in `Flat` mode.
    pub fn invalidate_range(&mut self, pa: PhysAddr, len: u64) -> (u64, SimTime) {
        let Some((domain, agent)) = self.cpu_coherence() else {
            return (0, SimTime::ZERO);
        };
        let (lines, time) = domain.borrow_mut().invalidate_range(agent, pa, len);
        self.advance_time(time);
        (lines, time)
    }

    /// Writes every Modified line back to memory, leaving caches clean.
    /// Test/inspection surface (not charged): after this, the flat
    /// memory image is authoritative. No-op in `Flat` mode.
    pub fn cache_sync(&mut self) {
        if let Some(domain) = self.coherence_domain() {
            domain.borrow_mut().sync();
        }
    }

    /// Posts a kernel-validated physical DMA the *correct* way for the
    /// configured [`CoherenceMode`], charging every coherence cost where
    /// it belongs:
    ///
    /// * `Flat` — post; nothing else to do.
    /// * `NonCoherent` — flush the source range (per line, on the
    ///   initiation path), post, invalidate the destination range (per
    ///   line, on the completion path).
    /// * `Coherent` — post; the engine's snoops price themselves into
    ///   the transfer.
    ///
    /// # Errors
    ///
    /// The [`RejectReason`] when the engine refused the transfer (range
    /// errors; a refused transfer charges no flush/invalidate beyond the
    /// source flush already performed).
    pub fn post_dma_coherence_aware(
        &mut self,
        src: PhysAddr,
        dst: PhysAddr,
        size: u64,
    ) -> Result<CoherentPostReport, RejectReason> {
        let mode = self.config().coherence.mode;
        let before: CoherenceStats = self.coherence_stats();
        let (initiation_extra, flush_lines, flush_dirty) = match mode {
            CoherenceMode::NonCoherent => {
                let (lines, dirty, t) = self.flush_range(src, size);
                (t, lines, dirty)
            }
            _ => (SimTime::ZERO, 0, 0),
        };
        let now = self.time();
        let idx = self.engine().core_mut().start_kernel_dma_direct(src, dst, size, now)?;
        let record = *self.engine().core().mover().record(idx).expect("just started");
        let (completion_extra, invalidate_lines) = match mode {
            CoherenceMode::NonCoherent => {
                let (lines, t) = self.invalidate_range(dst, size);
                (t, lines)
            }
            _ => (SimTime::ZERO, 0),
        };
        let after = self.coherence_stats();
        let snoop_extra = match mode {
            // The engine folded its snoop time into the record; recover
            // it as the wire time beyond the link model's.
            CoherenceMode::Coherent => (record.finished - record.started)
                .saturating_sub(self.config().link.transfer_time(size)),
            _ => SimTime::ZERO,
        };
        Ok(CoherentPostReport {
            mode,
            initiation_extra,
            completion_extra,
            snoop_extra,
            flush_lines,
            flush_dirty,
            invalidate_lines,
            interventions: after.interventions - before.interventions,
            record,
        })
    }

    /// The geometry the CPU coherence agent runs with (the machine's
    /// cache config), when a domain exists.
    pub fn coherent_cache_config(&self) -> Option<CacheConfig> {
        let (domain, agent) = self.cpu_coherence()?;
        let cfg = domain.borrow().cache(agent).config();
        Some(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DmaMethod, MachineConfig, ProcessSpec};
    use udma_cpu::ProgramBuilder;

    fn machine(setup: CoherenceSetup) -> Machine {
        Machine::new(MachineConfig { coherence: setup, ..MachineConfig::new(DmaMethod::Kernel) })
    }

    fn spawn_idle(m: &mut Machine) -> udma_cpu::Pid {
        m.spawn(&ProcessSpec::two_buffers(), |_| ProgramBuilder::new().halt().build())
    }

    #[test]
    fn flat_machine_has_no_domain_and_noop_surface() {
        let mut m = machine(CoherenceSetup::flat());
        assert!(m.coherence().is_none());
        assert_eq!(m.flush_range(PhysAddr::new(0), 4096), (0, 0, SimTime::ZERO));
        assert_eq!(m.invalidate_range(PhysAddr::new(0), 4096), (0, SimTime::ZERO));
        assert_eq!(m.coherence_stats(), CoherenceStats::default());
        m.check_coherence_invariants().unwrap();
    }

    #[test]
    fn noncoherent_post_charges_per_line_flush_and_invalidate() {
        let mut m = machine(CoherenceSetup::non_coherent());
        let pid = spawn_idle(&mut m);
        let (src, dst) = {
            let env = m.env(pid);
            (env.buffer(0).first_frame.base(), env.buffer(1).first_frame.base())
        };
        let size = 4096u64;
        let report = m.post_dma_coherence_aware(src, dst, size).unwrap();
        assert_eq!(report.mode, CoherenceMode::NonCoherent);
        let lines = size / 32;
        assert_eq!(report.flush_lines, lines);
        assert_eq!(report.invalidate_lines, lines);
        let t = m.config().coherence.timing;
        assert_eq!(report.initiation_extra, SimTime::from_ps(lines * t.flush_line.as_ps()));
        assert_eq!(report.completion_extra, SimTime::from_ps(lines * t.invalidate_line.as_ps()));
        assert_eq!(report.snoop_extra, SimTime::ZERO);
        // The software loops advanced the machine clock.
        assert!(m.time() >= report.initiation_extra + report.completion_extra);
    }

    #[test]
    fn coherent_post_pays_nothing_with_clean_caches() {
        let mut m = machine(CoherenceSetup::coherent());
        let pid = spawn_idle(&mut m);
        let (src, dst) = {
            let env = m.env(pid);
            (env.buffer(0).first_frame.base(), env.buffer(1).first_frame.base())
        };
        let report = m.post_dma_coherence_aware(src, dst, 4096).unwrap();
        assert_eq!(report.total_extra(), SimTime::ZERO, "nothing cached → nothing to snoop");
        assert_eq!(report.interventions, 0);
    }

    #[test]
    fn coherent_post_intervenes_per_dirty_line() {
        let mut m = machine(CoherenceSetup::coherent());
        let pid = spawn_idle(&mut m);
        let (src, dst) = {
            let env = m.env(pid);
            (env.buffer(0).first_frame.base(), env.buffer(1).first_frame.base())
        };
        // Dirty 3 source lines in the CPU cache only.
        let (domain, agent) = {
            let d = m.coherence().unwrap();
            let a = m.executor().coherence().unwrap().1;
            (d, a)
        };
        for i in 0..3u64 {
            domain
                .borrow_mut()
                .agent_write(agent, PhysAddr::new(src.as_u64() + i * 32), &[0xA5u8; 8])
                .unwrap();
        }
        let report = m.post_dma_coherence_aware(src, dst, 4096).unwrap();
        assert_eq!(report.interventions, 3, "one intervention per touched dirty line");
        let t = m.config().coherence.timing;
        assert!(report.snoop_extra >= SimTime::from_ps(3 * t.intervention.as_ps()));
        // The DMA moved the cached (fresh) bytes, not the stale memory.
        let mut b = [0u8; 8];
        m.memory().borrow().read_bytes(dst, &mut b).unwrap();
        assert_eq!(b, [0xA5u8; 8]);
        m.check_coherence_invariants().unwrap();
    }

    #[test]
    fn rejected_post_reports_reason() {
        let mut m = machine(CoherenceSetup::non_coherent());
        let err = m.post_dma_coherence_aware(PhysAddr::new(0), PhysAddr::new(64), 0).unwrap_err();
        assert_eq!(err, RejectReason::ZeroSize);
    }
}
