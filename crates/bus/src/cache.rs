//! A timing-only data cache.
//!
//! The Alpha 21064 carries an 8 KiB direct-mapped write-through data
//! cache with 32-byte lines; cacheable loads hit in a cycle or two, while
//! misses pay a DRAM round trip. The paper's methodology is shaped by
//! caches and buffers ("successive DMA operations were done to(from)
//! different addresses, so as to eliminate any caching effects", §3.4),
//! so the simulator models one — for *timing only*: data always comes
//! from [`crate::SharedMemory`], which keeps DMA traffic coherent by
//! construction (the engine writes memory directly; a stale cache line
//! can cost the model nothing but time, never correctness).
//!
//! Device (NIC) accesses never touch the cache: they are uncached by
//! definition, which is the entire premise of shadow addressing.

use udma_mem::PhysAddr;

/// Geometry and behaviour of the data cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (1 = direct-mapped).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// The 21064's D-cache: 8 KiB, direct-mapped, 32-byte lines.
    pub fn alpha_21064() -> Self {
        CacheConfig { sets: 256, ways: 1, line_bytes: 32 }
    }

    /// A disabled cache: every access misses (the pre-cache model).
    ///
    /// `ways == 0` is a first-class geometry: no storage is allocated,
    /// every access misses, and a coherence agent built from it behaves
    /// as an uncached bus master (see `coherence`).
    pub fn disabled() -> Self {
        CacheConfig { sets: 1, ways: 0, line_bytes: 32 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }

    /// Checks the geometry: set count and line size must be powers of
    /// two (set indexing and line masking are bit operations), and a
    /// line must hold at least one 8-byte word. `ways == 0` is valid.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated constraint.
    pub fn validate(&self) {
        assert!(self.sets > 0, "cache needs at least one set");
        assert!(self.sets.is_power_of_two(), "set count must be a power of two");
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.line_bytes >= 8, "a line must hold at least one 8-byte word");
    }

    /// The base address of the line containing `pa` (line masking).
    pub fn line_base(&self, pa: u64) -> u64 {
        pa & !(self.line_bytes - 1)
    }

    /// The set index of the line containing `pa`.
    pub fn set_index(&self, pa: u64) -> usize {
        ((pa / self.line_bytes) & (self.sets as u64 - 1)) as usize
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses satisfied by the cache.
    pub hits: u64,
    /// Accesses that had to fill from memory.
    pub misses: u64,
    /// Whole-cache invalidations (context switches).
    pub flushes: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; zero when no accesses happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A physically-indexed, physically-tagged, LRU, tags-only cache.
#[derive(Clone, Debug)]
pub struct DataCache {
    config: CacheConfig,
    /// `tags[set][way] = Some(tag)`; parallel `lru[set][way]` ticks.
    tags: Vec<Vec<Option<u64>>>,
    lru: Vec<Vec<u64>>,
    tick: u64,
    stats: CacheStats,
}

impl DataCache {
    /// Creates a cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`CacheConfig::validate`].
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        DataCache {
            config,
            tags: vec![vec![None; config.ways]; config.sets],
            lru: vec![vec![0; config.ways]; config.sets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Looks up (and on miss, fills) the line containing `pa`. Returns
    /// whether the access hit.
    pub fn access(&mut self, pa: PhysAddr) -> bool {
        if self.config.ways == 0 {
            self.stats.misses += 1;
            return false;
        }
        self.tick += 1;
        let line = pa.as_u64() / self.config.line_bytes;
        let set = self.config.set_index(pa.as_u64());
        let tag = line >> self.config.sets.trailing_zeros();

        if let Some(way) = self.tags[set].iter().position(|&t| t == Some(tag)) {
            self.lru[set][way] = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // Fill into the LRU way (or the first invalid one).
        let way = match self.tags[set].iter().position(|t| t.is_none()) {
            Some(w) => w,
            None => {
                let (w, _) =
                    self.lru[set].iter().enumerate().min_by_key(|&(_, &t)| t).expect("ways > 0");
                w
            }
        };
        self.tags[set][way] = Some(tag);
        self.lru[set][way] = self.tick;
        false
    }

    /// Invalidates everything (context switch on a machine without
    /// address-space tags).
    pub fn flush_all(&mut self) {
        for set in &mut self.tags {
            set.fill(None);
        }
        self.stats.flushes += 1;
    }

    /// The counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

impl Default for DataCache {
    fn default() -> Self {
        DataCache::new(CacheConfig::alpha_21064())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(v: u64) -> PhysAddr {
        PhysAddr::new(v)
    }

    #[test]
    fn second_access_to_a_line_hits() {
        let mut c = DataCache::default();
        assert!(!c.access(pa(0x1000)));
        assert!(c.access(pa(0x1000)));
        // Same 32-byte line, different word: still a hit.
        assert!(c.access(pa(0x1008)));
        // Next line: miss.
        assert!(!c.access(pa(0x1020)));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let c8k = CacheConfig::alpha_21064();
        let mut c = DataCache::new(c8k);
        // Two addresses one cache-capacity apart share a set.
        let a = pa(0x0);
        let b = pa(c8k.capacity());
        assert!(!c.access(a));
        assert!(!c.access(b)); // evicts a
        assert!(!c.access(a)); // miss again
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn two_way_lru_keeps_both_then_evicts_oldest() {
        let mut c = DataCache::new(CacheConfig { sets: 4, ways: 2, line_bytes: 32 });
        let stride = 4 * 32; // same set, different tags
        assert!(!c.access(pa(0)));
        assert!(!c.access(pa(stride)));
        assert!(c.access(pa(0)));
        assert!(c.access(pa(stride)));
        // Third tag evicts the LRU (which is `0`? no: 0 touched after
        // stride, so stride… both touched; LRU is the *least recently*
        // touched = pa(0)? order: 0,stride,0,stride → LRU = 0? last
        // touches: 0@3, stride@4 → evict 0.
        assert!(!c.access(pa(2 * stride)));
        assert!(!c.access(pa(0)), "pa(0) was the LRU victim");
        assert!(c.access(pa(2 * stride)));
    }

    #[test]
    fn flush_empties_everything() {
        let mut c = DataCache::default();
        c.access(pa(0x40));
        c.flush_all();
        assert!(!c.access(pa(0x40)));
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn disabled_cache_always_misses() {
        let mut c = DataCache::new(CacheConfig::disabled());
        assert!(!c.access(pa(0)));
        assert!(!c.access(pa(0)));
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().hit_ratio(), 0.0);
    }

    #[test]
    fn alpha_geometry() {
        let c = CacheConfig::alpha_21064();
        assert_eq!(c.capacity(), 8 * 1024);
    }

    #[test]
    fn hit_ratio_counts() {
        let mut c = DataCache::default();
        c.access(pa(0));
        c.access(pa(0));
        c.access(pa(0));
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = DataCache::new(CacheConfig { sets: 4, ways: 1, line_bytes: 24 });
    }

    #[test]
    #[should_panic(expected = "set count must be a power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = DataCache::new(CacheConfig { sets: 3, ways: 1, line_bytes: 32 });
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_rejected() {
        let _ = DataCache::new(CacheConfig { sets: 0, ways: 1, line_bytes: 32 });
    }

    #[test]
    #[should_panic(expected = "8-byte word")]
    fn sub_word_lines_rejected() {
        let _ = DataCache::new(CacheConfig { sets: 4, ways: 1, line_bytes: 4 });
    }

    #[test]
    fn one_way_one_set_still_works() {
        // The degenerate fully-shared geometry: one set, one way.
        let mut c = DataCache::new(CacheConfig { sets: 1, ways: 1, line_bytes: 32 });
        assert!(!c.access(pa(0)));
        assert!(c.access(pa(8)));
        assert!(!c.access(pa(32))); // evicts the only line
        assert!(!c.access(pa(0)));
    }

    #[test]
    fn line_masking_helpers() {
        let c = CacheConfig { sets: 8, ways: 2, line_bytes: 64 };
        assert_eq!(c.line_base(0x1234), 0x1200);
        assert_eq!(c.line_base(0x1200), 0x1200);
        assert_eq!(c.set_index(0x1234), ((0x1234 / 64) % 8) as usize);
        // Addresses one set-stride apart land in the same set.
        let stride = 8 * 64;
        assert_eq!(c.set_index(0x40), c.set_index(0x40 + stride));
    }

    #[test]
    fn disabled_geometry_is_valid_and_empty() {
        let c = CacheConfig::disabled();
        c.validate();
        assert_eq!(c.capacity(), 0);
    }
}
