//! Deterministic simulation time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in integer picoseconds.
///
/// Picoseconds keep every clock in the model exact or near-exact: one
/// 12.5 MHz TurboChannel cycle is exactly 80 000 ps, one 150 MHz Alpha
/// cycle is 6 667 ps (rounded once, at conversion).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero / the zero duration.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Constructs from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Constructs from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Value in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds (fractional).
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in microseconds (fractional).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}ns", self.as_ns())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// A fixed-frequency clock that converts cycle counts to [`SimTime`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Clock {
    hz: u64,
}

impl Clock {
    /// Creates a clock running at `hz` hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub fn new(hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be nonzero");
        Clock { hz }
    }

    /// The clock frequency in hertz.
    pub fn hz(self) -> u64 {
        self.hz
    }

    /// Duration of `cycles` clock cycles (rounded to the nearest
    /// picosecond, computed in 128-bit to avoid overflow).
    pub fn cycles(self, cycles: u64) -> SimTime {
        let ps = (cycles as u128 * 1_000_000_000_000u128 + self.hz as u128 / 2) / self.hz as u128;
        SimTime::from_ps(ps as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turbochannel_cycle_is_exact() {
        let c = Clock::new(12_500_000);
        assert_eq!(c.cycles(1).as_ps(), 80_000);
        assert_eq!(c.cycles(6).as_ns(), 480.0);
    }

    #[test]
    fn alpha_cycle_rounds_once() {
        let c = Clock::new(150_000_000);
        assert_eq!(c.cycles(1).as_ps(), 6_667);
        // 2400 cycles = 16 microseconds exactly.
        assert_eq!(c.cycles(2400).as_ps(), 16_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!((a + b).as_ns(), 14.0);
        assert_eq!((a - b).as_ns(), 6.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ns(), 14.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4u64).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_ps(500).to_string(), "500ps");
        assert_eq!(SimTime::from_ns(42).to_string(), "42.0ns");
        assert_eq!(SimTime::from_us(3).to_string(), "3.000us");
    }

    #[test]
    fn constructors_convert() {
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1000));
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1000));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_hz_panics() {
        let _ = Clock::new(0);
    }
}
