//! I/O bus substrate for the user-level DMA reproduction.
//!
//! Models the path between the CPU and the devices the paper's protocols
//! talk to:
//!
//! * [`SimTime`]/[`Clock`] — deterministic picosecond simulation time,
//! * [`BusTxn`]/[`BusOp`] — uncached single-word bus transactions,
//! * [`BusTiming`] — clocked timing presets ([TurboChannel] at 12.5 MHz as
//!   in the paper's prototype, PCI at 33/66 MHz for the §3.4 sensitivity
//!   discussion),
//! * [`Bus`] — address decoding to RAM and a pluggable NIC
//!   ([`BusDevice`]), with a transaction [`trace`](BusTrace) and counters,
//! * [`WriteBuffer`] — the CPU-side write buffer whose *collapsing* and
//!   *load-servicing* behaviour is exactly the hazard of the paper's
//!   footnote 6 ("some hardware devices may attempt to collapse successive
//!   read/write operations to the same address ... appropriate memory
//!   barrier commands should be used"),
//! * [`CoherentCache`]/[`CoherenceDomain`] — the data-carrying MESI
//!   snooping model (agent caches holding real line contents, DMA ports
//!   that intervene on Modified lines, and the software flush/invalidate
//!   loops non-coherent DMA pays for),
//! * [`sim`] — the deterministic sharded discrete-event kernel
//!   ([`SimComponent`]/[`SimRunner`]/[`ChannelBuilder`]) the cluster
//!   experiments run on, with a sequential oracle and a
//!   conservative-lookahead parallel runner.
//!
//! [TurboChannel]: BusTiming::turbochannel

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod cache;
mod coherence;
mod device;
pub mod sim;
mod time;
mod timing;
mod trace;
mod write_buffer;

pub use bus::{Bus, BusStats};
pub use cache::{CacheConfig, CacheStats, DataCache};
pub use coherence::{
    AgentId, CoherenceDomain, CoherenceStats, CoherenceTiming, CoherentCache, MesiState,
    SharedCoherence,
};
pub use device::{BusDevice, RamDevice, SharedMemory};
pub use sim::{ChannelBuilder, RunReport, RunnerKind, ShardId, SimComponent, SimRunner, Stamped};
pub use time::{Clock, SimTime};
pub use timing::BusTiming;
pub use trace::{BusTrace, TraceEvent};
pub use write_buffer::{PendingStore, WriteBuffer, WriteBufferPolicy};

use udma_mem::PhysAddr;

/// The direction of a bus transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BusOp {
    /// An uncached load.
    Read,
    /// An uncached store.
    Write,
}

impl std::fmt::Display for BusOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusOp::Read => write!(f, "R"),
            BusOp::Write => write!(f, "W"),
        }
    }
}

/// A single-word bus transaction as seen by a device.
///
/// The `tag` field exists *only* for traces and test assertions (it
/// carries the issuing process id). Real buses carry no such information —
/// that is the entire reason the FLASH approach needs the kernel to tell
/// the DMA engine who is running — and devices in this workspace must not
/// base protocol decisions on it. The one legitimate consumer is the trace
/// log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusTxn {
    /// Direction.
    pub op: BusOp,
    /// Physical address.
    pub paddr: PhysAddr,
    /// Data payload for writes; ignored for reads.
    pub data: u64,
    /// Trace-only origin tag (issuing pid); not architecturally visible.
    pub tag: u32,
}

impl BusTxn {
    /// A read transaction.
    pub fn read(paddr: PhysAddr, tag: u32) -> Self {
        BusTxn { op: BusOp::Read, paddr, data: 0, tag }
    }

    /// A write transaction.
    pub fn write(paddr: PhysAddr, data: u64, tag: u32) -> Self {
        BusTxn { op: BusOp::Write, paddr, data, tag }
    }
}
