//! Bus device abstraction and the RAM adapter.

use crate::SimTime;
use std::cell::RefCell;
use std::rc::Rc;
use udma_mem::{MemFault, PhysAddr, PhysMemory};

/// Physical memory shared between the RAM device and any DMA-capable
/// device (the NIC's data mover reads and writes it directly, which is the
/// whole point of DMA).
///
/// The simulation is single-threaded and deterministic, so `Rc<RefCell>`
/// is the right tool; no lock is ever contended.
pub type SharedMemory = Rc<RefCell<PhysMemory>>;

/// Something that responds to bus transactions.
///
/// Devices receive the *full* physical address (not an offset) so that a
/// device owning several windows — the NIC owns both its register window
/// and the entire shadow window — can decode for itself.
pub trait BusDevice {
    /// Handles an uncached read of a 64-bit word.
    ///
    /// `now` is the simulation time at which the transaction reaches the
    /// device; devices with protocol state machines use it for timing
    /// bookkeeping only, never for correctness.
    ///
    /// # Errors
    ///
    /// Devices return [`MemFault::BusError`] for addresses inside their
    /// window that they do not decode.
    fn read(&mut self, paddr: PhysAddr, tag: u32, now: SimTime) -> Result<u64, MemFault>;

    /// Handles an uncached write of a 64-bit word.
    ///
    /// # Errors
    ///
    /// As for [`read`](Self::read).
    fn write(&mut self, paddr: PhysAddr, data: u64, tag: u32, now: SimTime)
        -> Result<(), MemFault>;

    /// Extra device-side latency the last transaction incurred beyond the
    /// bus transfer itself (e.g. a DMA engine checking a key). Polled by
    /// the bus after each access; default none.
    fn extra_latency(&mut self) -> SimTime {
        SimTime::ZERO
    }
}

/// The memory controller: adapts [`PhysMemory`] to the bus.
#[derive(Clone, Debug)]
pub struct RamDevice {
    mem: SharedMemory,
}

impl RamDevice {
    /// Creates a RAM device over shared physical memory.
    pub fn new(mem: SharedMemory) -> Self {
        RamDevice { mem }
    }

    /// The shared memory handle.
    pub fn memory(&self) -> SharedMemory {
        Rc::clone(&self.mem)
    }
}

impl BusDevice for RamDevice {
    fn read(&mut self, paddr: PhysAddr, _tag: u32, _now: SimTime) -> Result<u64, MemFault> {
        self.mem.borrow().read_u64(paddr)
    }

    fn write(
        &mut self,
        paddr: PhysAddr,
        data: u64,
        _tag: u32,
        _now: SimTime,
    ) -> Result<(), MemFault> {
        self.mem.borrow_mut().write_u64(paddr, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(bytes: u64) -> SharedMemory {
        Rc::new(RefCell::new(PhysMemory::new(bytes)))
    }

    #[test]
    fn ram_device_round_trip() {
        let mem = shared(1 << 20);
        let mut dev = RamDevice::new(Rc::clone(&mem));
        dev.write(PhysAddr::new(0x100), 7, 0, SimTime::ZERO).unwrap();
        assert_eq!(dev.read(PhysAddr::new(0x100), 0, SimTime::ZERO).unwrap(), 7);
        // Visible through the shared handle too (what a DMA mover sees).
        assert_eq!(mem.borrow().read_u64(PhysAddr::new(0x100)).unwrap(), 7);
    }

    #[test]
    fn ram_device_propagates_faults() {
        let mut dev = RamDevice::new(shared(1 << 13));
        assert!(dev.read(PhysAddr::new(1 << 20), 0, SimTime::ZERO).is_err());
        assert!(dev.write(PhysAddr::new(0x101), 0, 0, SimTime::ZERO).is_err());
    }

    #[test]
    fn default_extra_latency_is_zero() {
        let mut dev = RamDevice::new(shared(1 << 13));
        assert_eq!(dev.extra_latency(), SimTime::ZERO);
    }
}
