//! A data-carrying MESI snooping cache model.
//!
//! [`crate::DataCache`] is timing-only: data always comes from
//! [`SharedMemory`], so DMA is coherent by construction and a stale line
//! can cost the model nothing but time. The paper leans on that same
//! simplification ("successive DMA operations were done to(from)
//! different addresses, so as to eliminate any caching effects", §3.4).
//! Real user-level DMA on a cached host gets no such grace: either the
//! OS/user library flushes and invalidates around every transfer, or the
//! NI snoops the coherence bus. This module models both prices with real
//! line *contents*:
//!
//! * [`CoherentCache`] — one per caching agent (CPU cores; the NI never
//!   allocates), holding line data in Modified/Exclusive/Shared state;
//! * [`CoherenceDomain`] — the snoop bus: agent reads/writes broadcast
//!   BusRd/BusRdX/BusUpgrade, DMA ports snoop without allocating, and
//!   software [`flush_range`](CoherenceDomain::flush_range) /
//!   [`invalidate_range`](CoherenceDomain::invalidate_range) charge the
//!   per-line costs a non-coherent DMA path pays on the hot path.
//!
//! # Charging model
//!
//! The domain charges only the *extra* time coherence introduces —
//! interventions, invalidation broadcasts, writebacks, and the software
//! flush/invalidate loops. Base memory costs (cache-hit cycles, DRAM
//! latency, wire time) stay where they always lived: in the executor's
//! load/store path and in the DMA link model. This keeps a machine whose
//! caches never conflict byte- and cycle-identical to the flat-memory
//! machine, which the test suite pins.
//!
//! # Ordering
//!
//! Every operation is one atomic bus transaction; within a transaction
//! the order is fixed and load-bearing. In particular, a DMA write that
//! hits a line some cache holds Modified *first* retires that line's
//! writeback and *then* deposits the DMA bytes — the reverse order would
//! let the CPU's stale bytes overwrite the freshly-DMA'd ones whenever
//! the two agents share a line (the false-sharing hazard the race
//! explorer in `tests/coherence.rs` enumerates).

use crate::cache::CacheConfig;
use crate::{CacheStats, SharedMemory, SimTime};
use udma_mem::{MemFault, PhysAddr};

/// Index of a caching agent within a [`CoherenceDomain`].
pub type AgentId = usize;

/// The four MESI states. A line absent from a cache is `Invalid`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MesiState {
    /// Dirty and exclusive: memory is stale, this cache owns the data.
    Modified,
    /// Clean and exclusive: matches memory, no other cache holds it.
    Exclusive,
    /// Clean, possibly held by several caches.
    Shared,
    /// Not present.
    Invalid,
}

/// Latency constants of the snoop bus (the *extra* time coherence adds;
/// see the module docs for what is charged where).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoherenceTiming {
    /// Cache-to-cache supply of a Modified line (snoop hit + writeback
    /// on the way past).
    pub intervention: SimTime,
    /// One invalidation broadcast claiming a line (BusUpgrade/BusRdX).
    pub invalidate: SimTime,
    /// Writing one dirty line back to memory (eviction, flush).
    pub writeback: SimTime,
    /// One iteration of the software flush loop (address generation +
    /// the cache-op itself), charged per line of the range.
    pub flush_line: SimTime,
    /// One iteration of the software invalidate loop.
    pub invalidate_line: SimTime,
}

impl Default for CoherenceTiming {
    /// Constants in the Alpha 3000/300 band: an intervention is a bit
    /// cheaper than the 180 ns DRAM round trip, a writeback costs one,
    /// and the software loops pay a handful of cycles per line.
    fn default() -> Self {
        CoherenceTiming {
            intervention: SimTime::from_ns(140),
            invalidate: SimTime::from_ns(60),
            writeback: SimTime::from_ns(180),
            flush_line: SimTime::from_ns(80),
            invalidate_line: SimTime::from_ns(60),
        }
    }
}

/// Counters kept by the snoop bus.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// BusRd transactions (agent read misses).
    pub bus_rd: u64,
    /// BusRdX transactions (agent write misses).
    pub bus_rdx: u64,
    /// BusUpgrade transactions (Shared → Modified without a data fetch).
    pub upgrades: u64,
    /// Modified lines supplied cache-to-cache (to an agent or the DMA
    /// engine).
    pub interventions: u64,
    /// Lines invalidated in peer caches by snoops.
    pub invalidations: u64,
    /// Dirty lines written back to memory (evictions, snoops, flushes).
    pub writebacks: u64,
    /// Line-grain coherent DMA reads that snooped the bus.
    pub dma_reads: u64,
    /// Line-grain coherent DMA writes that snooped the bus.
    pub dma_writes: u64,
    /// Lines swept by software [`CoherenceDomain::flush_range`].
    pub flush_lines: u64,
    /// Lines swept by software [`CoherenceDomain::invalidate_range`].
    pub invalidate_lines: u64,
    /// Total extra time charged by the domain.
    pub snoop_time: SimTime,
}

impl CoherenceStats {
    /// Total snoop-bus transactions beyond plain memory fills.
    pub fn coherence_traffic(&self) -> u64 {
        self.upgrades + self.interventions + self.invalidations + self.writebacks
    }
}

/// One resident cache line.
#[derive(Clone, Debug)]
struct Line {
    tag: u64,
    state: MesiState,
    data: Box<[u8]>,
    lru: u64,
}

/// A data-carrying, physically-indexed, LRU, write-back cache with MESI
/// state per line. Geometry comes from [`CacheConfig`]; `ways == 0` is
/// the first-class miss-everything mode (no storage at all — the agent
/// behaves like an uncached master and its writes take the DMA path).
#[derive(Clone, Debug)]
pub struct CoherentCache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: CacheStats,
}

impl CoherentCache {
    /// Creates a cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`CacheConfig::validate`].
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        CoherentCache {
            config,
            sets: vec![Vec::new(); config.sets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Hit/miss/flush counters (hits include silent E→M upgrades).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn line_base(&self, pa: u64) -> u64 {
        pa & !(self.config.line_bytes - 1)
    }

    fn set_of(&self, line_base: u64) -> usize {
        ((line_base / self.config.line_bytes) & (self.config.sets as u64 - 1)) as usize
    }

    fn tag_of(&self, line_base: u64) -> u64 {
        (line_base / self.config.line_bytes) >> self.config.sets.trailing_zeros()
    }

    /// The MESI state of the line containing `pa`.
    pub fn state_of(&self, pa: PhysAddr) -> MesiState {
        self.probe(pa.as_u64()).map(|l| l.state).unwrap_or(MesiState::Invalid)
    }

    fn probe(&self, pa: u64) -> Option<&Line> {
        if self.config.ways == 0 {
            return None;
        }
        let base = self.line_base(pa);
        let (set, tag) = (self.set_of(base), self.tag_of(base));
        self.sets[set].iter().find(|l| l.tag == tag)
    }

    fn probe_mut(&mut self, pa: u64) -> Option<&mut Line> {
        if self.config.ways == 0 {
            return None;
        }
        let base = self.line_base(pa);
        let (set, tag) = (self.set_of(base), self.tag_of(base));
        self.tick += 1;
        let tick = self.tick;
        let line = self.sets[set].iter_mut().find(|l| l.tag == tag);
        if let Some(l) = line {
            l.lru = tick;
            return Some(l);
        }
        None
    }

    /// Removes the line containing `pa`, returning `(base, state, data)`
    /// so the caller can write back a Modified victim.
    fn take(&mut self, pa: u64) -> Option<(u64, MesiState, Box<[u8]>)> {
        if self.config.ways == 0 {
            return None;
        }
        let base = self.line_base(pa);
        let (set, tag) = (self.set_of(base), self.tag_of(base));
        let idx = self.sets[set].iter().position(|l| l.tag == tag)?;
        let line = self.sets[set].swap_remove(idx);
        Some((base, line.state, line.data))
    }

    /// Inserts a line, evicting the LRU way if the set is full. Returns
    /// the evicted `(base, state, data)` for the caller to write back.
    fn insert(
        &mut self,
        base: u64,
        state: MesiState,
        data: Box<[u8]>,
    ) -> Option<(u64, MesiState, Box<[u8]>)> {
        debug_assert!(self.config.ways > 0, "ways == 0 caches never allocate");
        debug_assert_eq!(base, self.line_base(base));
        let set = self.set_of(base);
        let tag = self.tag_of(base);
        self.tick += 1;
        let victim = if self.sets[set].len() >= self.config.ways {
            let (idx, _) = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|&(_, l)| l.lru)
                .expect("full set is non-empty");
            let v = self.sets[set].swap_remove(idx);
            let vbase = self.base_of(v.tag, set);
            Some((vbase, v.state, v.data))
        } else {
            None
        };
        self.sets[set].push(Line { tag, state, data, lru: self.tick });
        victim
    }

    fn base_of(&self, tag: u64, set: usize) -> u64 {
        ((tag << self.config.sets.trailing_zeros()) | set as u64) * self.config.line_bytes
    }

    /// Iterates `(line_base, state)` over every resident line.
    pub fn resident(&self) -> Vec<(u64, MesiState)> {
        let mut out = Vec::new();
        for (set, lines) in self.sets.iter().enumerate() {
            for l in lines {
                out.push((self.base_of(l.tag, set), l.state));
            }
        }
        out.sort_unstable();
        out
    }

    /// Drains every resident line, returning them for writeback.
    fn drain(&mut self) -> Vec<(u64, MesiState, Box<[u8]>)> {
        let mut out = Vec::new();
        for set in 0..self.sets.len() {
            while let Some(l) = self.sets[set].pop() {
                out.push((self.base_of(l.tag, set), l.state, l.data));
            }
        }
        self.stats.flushes += 1;
        out
    }
}

/// The snoop bus: every caching agent plus the coherent DMA port, over
/// one shared backing memory.
#[derive(Clone, Debug)]
pub struct CoherenceDomain {
    mem: SharedMemory,
    caches: Vec<CoherentCache>,
    timing: CoherenceTiming,
    stats: CoherenceStats,
}

/// Shared handle to a [`CoherenceDomain`] (single-threaded simulation,
/// same justification as [`SharedMemory`]).
pub type SharedCoherence = std::rc::Rc<std::cell::RefCell<CoherenceDomain>>;

impl CoherenceDomain {
    /// Creates an empty domain over the machine's memory.
    pub fn new(mem: SharedMemory, timing: CoherenceTiming) -> Self {
        CoherenceDomain { mem, caches: Vec::new(), timing, stats: CoherenceStats::default() }
    }

    /// Wraps the domain in the shared handle the executor and the DMA
    /// mover hold.
    pub fn shared(self) -> SharedCoherence {
        std::rc::Rc::new(std::cell::RefCell::new(self))
    }

    /// Adds a caching agent with the given geometry, returning its id.
    pub fn add_agent(&mut self, config: CacheConfig) -> AgentId {
        self.caches.push(CoherentCache::new(config));
        self.caches.len() - 1
    }

    /// The timing constants in force.
    pub fn timing(&self) -> CoherenceTiming {
        self.timing
    }

    /// Snoop-bus counters.
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    /// An agent's cache (state inspection, hit/miss counters).
    ///
    /// # Panics
    ///
    /// Panics if `agent` was not added here.
    pub fn cache(&self, agent: AgentId) -> &CoherentCache {
        &self.caches[agent]
    }

    /// The backing memory handle.
    pub fn memory(&self) -> SharedMemory {
        std::rc::Rc::clone(&self.mem)
    }

    fn line_bytes_of(&self, agent: AgentId) -> u64 {
        self.caches[agent].config.line_bytes
    }

    /// The widest line in the domain (DMA snoops sweep at this grain;
    /// 32 bytes when no agent caches at all).
    fn dma_line_bytes(&self) -> u64 {
        self.caches.iter().map(|c| c.config.line_bytes).max().unwrap_or(32)
    }

    fn charge(&mut self, t: SimTime) -> SimTime {
        self.stats.snoop_time += t;
        t
    }

    fn write_line_back(&mut self, base: u64, data: &[u8]) -> Result<(), MemFault> {
        self.stats.writebacks += 1;
        self.mem.borrow_mut().write_bytes(PhysAddr::new(base), data)
    }

    /// Writes back a peer's Modified copy of `base` (if any) and leaves
    /// the supplier in `after`. Returns whether an intervention happened.
    fn snoop_flush_modified(
        &mut self,
        requester: Option<AgentId>,
        base: u64,
        after: MesiState,
    ) -> Result<bool, MemFault> {
        for i in 0..self.caches.len() {
            if Some(i) == requester {
                continue;
            }
            let holds_m =
                self.caches[i].probe(base).is_some_and(|l| l.state == MesiState::Modified);
            if holds_m {
                let (b, _, data) = self.caches[i].take(base).expect("probe just hit");
                self.write_line_back(b, &data)?;
                if after != MesiState::Invalid {
                    // Re-insert clean; no eviction can happen (slot just
                    // freed).
                    let evicted = self.caches[i].insert(b, after, data);
                    debug_assert!(evicted.is_none());
                }
                self.stats.interventions += 1;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Invalidates every peer copy of `base`; returns how many were
    /// dropped.
    fn snoop_invalidate(&mut self, requester: Option<AgentId>, base: u64) -> u64 {
        let mut dropped = 0;
        for i in 0..self.caches.len() {
            if Some(i) == requester {
                continue;
            }
            if self.caches[i].take(base).is_some() {
                dropped += 1;
            }
        }
        self.stats.invalidations += dropped;
        dropped
    }

    /// Whether any peer (not `requester`) holds `base` in a valid state.
    fn any_peer_holds(&self, requester: Option<AgentId>, base: u64) -> bool {
        self.caches.iter().enumerate().any(|(i, c)| Some(i) != requester && c.probe(base).is_some())
    }

    /// Downgrades every peer copy of `base` to Shared (BusRd snoop on
    /// clean holders).
    fn snoop_downgrade(&mut self, requester: Option<AgentId>, base: u64) {
        for i in 0..self.caches.len() {
            if Some(i) == requester {
                continue;
            }
            if let Some(l) = self.caches[i].probe_mut(base) {
                debug_assert_ne!(l.state, MesiState::Modified, "flushed before downgrade");
                l.state = MesiState::Shared;
            }
        }
    }

    fn evict_victim(
        &mut self,
        victim: Option<(u64, MesiState, Box<[u8]>)>,
    ) -> Result<SimTime, MemFault> {
        match victim {
            Some((base, MesiState::Modified, data)) => {
                self.write_line_back(base, &data)?;
                Ok(self.charge(self.timing.writeback))
            }
            _ => Ok(SimTime::ZERO),
        }
    }

    /// An agent load of `buf.len()` bytes at `pa`. Returns `(hit,
    /// extra)`: whether every touched line was resident (the caller
    /// charges its base hit/miss cost from that) and the coherence time
    /// to add on top.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if the range leaves installed memory.
    pub fn agent_read(
        &mut self,
        agent: AgentId,
        pa: PhysAddr,
        buf: &mut [u8],
    ) -> Result<(bool, SimTime), MemFault> {
        let line_bytes = self.line_bytes_of(agent);
        let mut extra = SimTime::ZERO;
        let mut all_hit = true;
        let (start, end) = (pa.as_u64(), pa.as_u64() + buf.len() as u64);
        let mut base = start & !(line_bytes - 1);
        while base < end {
            let lo = base.max(start);
            let hi = (base + line_bytes).min(end);
            let dst = &mut buf[(lo - start) as usize..(hi - start) as usize];
            if let Some(l) = self.caches[agent].probe_mut(base) {
                let off = (lo - base) as usize;
                dst.copy_from_slice(&l.data[off..off + dst.len()]);
                self.caches[agent].stats.hits += 1;
            } else {
                all_hit = false;
                self.caches[agent].stats.misses += 1;
                // BusRd: a Modified peer supplies via intervention (and
                // memory is updated on the way past); clean peers
                // downgrade to Shared.
                self.stats.bus_rd += 1;
                if self.snoop_flush_modified(Some(agent), base, MesiState::Shared)? {
                    extra += self.charge(self.timing.intervention);
                } else {
                    self.snoop_downgrade(Some(agent), base);
                }
                let shared = self.any_peer_holds(Some(agent), base);
                let mut data = vec![0u8; line_bytes as usize].into_boxed_slice();
                self.mem.borrow().read_bytes(PhysAddr::new(base), &mut data)?;
                let off = (lo - base) as usize;
                dst.copy_from_slice(&data[off..off + dst.len()]);
                if self.caches[agent].config.ways > 0 {
                    let state = if shared { MesiState::Shared } else { MesiState::Exclusive };
                    let victim = self.caches[agent].insert(base, state, data);
                    extra += self.evict_victim(victim)?;
                }
            }
            base += line_bytes;
        }
        Ok((all_hit, extra))
    }

    /// An agent store of `bytes` at `pa`. Data lands in the cache
    /// (Modified) — memory is updated only by writebacks — except for
    /// `ways == 0` agents, which take the uncached-master path. Returns
    /// `(hit, extra)` as for [`agent_read`](Self::agent_read).
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if the range leaves installed memory.
    pub fn agent_write(
        &mut self,
        agent: AgentId,
        pa: PhysAddr,
        bytes: &[u8],
    ) -> Result<(bool, SimTime), MemFault> {
        if self.caches[agent].config.ways == 0 {
            self.caches[agent].stats.misses += 1;
            let extra = self.dma_write_inner(pa, bytes, false)?;
            return Ok((false, extra));
        }
        // Bounds-check the whole range up front so a partially-applied
        // store cannot leave a line allocated for unbacked memory.
        {
            let mem = self.mem.borrow();
            let end = pa.checked_add(bytes.len() as u64).ok_or(MemFault::BusError { pa })?;
            if end.as_u64() > mem.size() {
                return Err(MemFault::BusError { pa });
            }
        }
        let line_bytes = self.line_bytes_of(agent);
        let mut extra = SimTime::ZERO;
        let mut all_hit = true;
        let (start, end) = (pa.as_u64(), pa.as_u64() + bytes.len() as u64);
        let mut base = start & !(line_bytes - 1);
        while base < end {
            let lo = base.max(start);
            let hi = (base + line_bytes).min(end);
            let src = &bytes[(lo - start) as usize..(hi - start) as usize];
            let off = (lo - base) as usize;
            let state = self.caches[agent].probe(base).map(|l| l.state);
            match state {
                Some(MesiState::Modified) | Some(MesiState::Exclusive) => {
                    let l = self.caches[agent].probe_mut(base).expect("probe just hit");
                    l.data[off..off + src.len()].copy_from_slice(src);
                    l.state = MesiState::Modified; // silent E → M
                    self.caches[agent].stats.hits += 1;
                }
                Some(MesiState::Shared) => {
                    // BusUpgrade: claim ownership without a data fetch.
                    self.stats.upgrades += 1;
                    self.snoop_invalidate(Some(agent), base);
                    extra += self.charge(self.timing.invalidate);
                    let l = self.caches[agent].probe_mut(base).expect("probe just hit");
                    l.data[off..off + src.len()].copy_from_slice(src);
                    l.state = MesiState::Modified;
                    self.caches[agent].stats.hits += 1;
                }
                _ => {
                    all_hit = false;
                    self.caches[agent].stats.misses += 1;
                    // BusRdX: fetch the line for ownership; a Modified
                    // peer writes back first, everyone else drops it.
                    self.stats.bus_rdx += 1;
                    if self.snoop_flush_modified(Some(agent), base, MesiState::Invalid)? {
                        extra += self.charge(self.timing.intervention);
                    }
                    if self.snoop_invalidate(Some(agent), base) > 0 {
                        extra += self.charge(self.timing.invalidate);
                    }
                    let mut data = vec![0u8; line_bytes as usize].into_boxed_slice();
                    self.mem.borrow().read_bytes(PhysAddr::new(base), &mut data)?;
                    data[off..off + src.len()].copy_from_slice(src);
                    let victim = self.caches[agent].insert(base, MesiState::Modified, data);
                    extra += self.evict_victim(victim)?;
                }
            }
            base += line_bytes;
        }
        Ok((all_hit, extra))
    }

    /// A coherent DMA read (the NI snooping the bus, never allocating):
    /// Modified lines are pulled via intervention — written back and
    /// downgraded to Shared — then the bytes come from memory.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if the range leaves installed memory.
    pub fn dma_read(&mut self, pa: PhysAddr, buf: &mut [u8]) -> Result<SimTime, MemFault> {
        let line_bytes = self.dma_line_bytes();
        let mut extra = SimTime::ZERO;
        let (start, end) = (pa.as_u64(), pa.as_u64() + buf.len() as u64);
        let mut base = start & !(line_bytes - 1);
        while base < end {
            self.stats.dma_reads += 1;
            if self.snoop_flush_modified(None, base, MesiState::Shared)? {
                extra += self.charge(self.timing.intervention);
            }
            base += line_bytes;
        }
        self.mem.borrow().read_bytes(pa, buf)?;
        Ok(extra)
    }

    /// A coherent DMA write: sharers are invalidated; a Modified holder
    /// of a *partially* overwritten line is written back **first** so
    /// the CPU's bytes outside the DMA range survive (see the module
    /// docs on ordering), then the DMA bytes land in memory.
    ///
    /// # Errors
    ///
    /// [`MemFault::BusError`] if the range leaves installed memory.
    pub fn dma_write(&mut self, pa: PhysAddr, bytes: &[u8]) -> Result<SimTime, MemFault> {
        self.dma_write_inner(pa, bytes, true)
    }

    fn dma_write_inner(
        &mut self,
        pa: PhysAddr,
        bytes: &[u8],
        count_stat: bool,
    ) -> Result<SimTime, MemFault> {
        {
            let mem = self.mem.borrow();
            let end = pa.checked_add(bytes.len() as u64).ok_or(MemFault::BusError { pa })?;
            if end.as_u64() > mem.size() {
                return Err(MemFault::BusError { pa });
            }
        }
        let line_bytes = self.dma_line_bytes();
        let mut extra = SimTime::ZERO;
        let (start, end) = (pa.as_u64(), pa.as_u64() + bytes.len() as u64);
        let mut base = start & !(line_bytes - 1);
        while base < end {
            if count_stat {
                self.stats.dma_writes += 1;
            }
            let full = start <= base && base + line_bytes <= end;
            if !full {
                // Partial-line write: a Modified holder's bytes outside
                // the DMA range must reach memory before ours do.
                if self.snoop_flush_modified(None, base, MesiState::Invalid)? {
                    extra += self.charge(self.timing.writeback);
                }
            }
            if self.snoop_invalidate(None, base) > 0 {
                extra += self.charge(self.timing.invalidate);
            }
            base += line_bytes;
        }
        self.mem.borrow_mut().write_bytes(pa, bytes)?;
        Ok(extra)
    }

    /// Software flush (writeback + invalidate) of every line in
    /// `[pa, pa + len)` from `agent`'s cache — what the OS/user library
    /// runs *before* a non-coherent DMA reads the range. Charged per
    /// line of the range (the loop runs whether or not the line is
    /// resident), plus a writeback per dirty line. Returns
    /// `(lines_swept, dirty_lines, time)`.
    pub fn flush_range(&mut self, agent: AgentId, pa: PhysAddr, len: u64) -> (u64, u64, SimTime) {
        let line_bytes = self.line_bytes_of(agent);
        let mut time = SimTime::ZERO;
        let mut lines = 0;
        let mut dirty = 0;
        let (start, end) = (pa.as_u64(), pa.as_u64() + len);
        let mut base = start & !(line_bytes - 1);
        while base < end {
            lines += 1;
            time += self.charge(self.timing.flush_line);
            if let Some((b, state, data)) = self.caches[agent].take(base) {
                if state == MesiState::Modified {
                    dirty += 1;
                    // The range was validated when the line was filled.
                    self.write_line_back(b, &data).expect("resident line is backed");
                    time += self.charge(self.timing.writeback);
                }
            }
            base += line_bytes;
        }
        self.stats.flush_lines += lines;
        (lines, dirty, time)
    }

    /// Software invalidate (discard, no writeback) of every line in
    /// `[pa, pa + len)` from `agent`'s cache — what the OS/user library
    /// runs *after* a non-coherent DMA wrote the range, so later loads
    /// refetch. Charged per line of the range. Returns
    /// `(lines_swept, time)`.
    pub fn invalidate_range(&mut self, agent: AgentId, pa: PhysAddr, len: u64) -> (u64, SimTime) {
        let line_bytes = self.line_bytes_of(agent);
        let mut time = SimTime::ZERO;
        let mut lines = 0;
        let (start, end) = (pa.as_u64(), pa.as_u64() + len);
        let mut base = start & !(line_bytes - 1);
        while base < end {
            lines += 1;
            time += self.charge(self.timing.invalidate_line);
            let _ = self.caches[agent].take(base);
            base += line_bytes;
        }
        self.stats.invalidate_lines += lines;
        (lines, time)
    }

    /// Writes back and drops every line of `agent`'s cache (context
    /// switch on a machine without address-space tags). Not charged —
    /// the executor's switch path already prices switches; stats only.
    pub fn flush_all(&mut self, agent: AgentId) {
        for (base, state, data) in self.caches[agent].drain() {
            if state == MesiState::Modified {
                self.write_line_back(base, &data).expect("resident line is backed");
            }
        }
    }

    /// Writes every Modified line of every cache back to memory, leaving
    /// the lines resident and clean (Exclusive). Test/inspection surface:
    /// after `sync`, the flat memory image is the authoritative state.
    pub fn sync(&mut self) {
        for agent in 0..self.caches.len() {
            let resident = self.caches[agent].resident();
            for (base, state) in resident {
                if state == MesiState::Modified {
                    let (b, _, data) = self.caches[agent].take(base).expect("resident");
                    self.write_line_back(b, &data).expect("resident line is backed");
                    let evicted = self.caches[agent].insert(b, MesiState::Exclusive, data);
                    debug_assert!(evicted.is_none());
                }
            }
        }
    }

    /// Checks the MESI safety invariants over every line any cache
    /// holds:
    ///
    /// 1. at most one cache holds a line Modified or Exclusive, and if
    ///    one does, no other cache holds the line at all
    ///    (single-writer);
    /// 2. every Exclusive or Shared copy is byte-identical to memory
    ///    (clean means clean).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut holders: HashMap<u64, Vec<(AgentId, MesiState)>> = HashMap::new();
        for (i, c) in self.caches.iter().enumerate() {
            for (base, state) in c.resident() {
                holders.entry(base).or_default().push((i, state));
            }
        }
        let mem = self.mem.borrow();
        for (base, who) in holders {
            let exclusive = who
                .iter()
                .filter(|(_, s)| matches!(s, MesiState::Modified | MesiState::Exclusive))
                .count();
            if exclusive > 1 || (exclusive == 1 && who.len() > 1) {
                return Err(format!("line {base:#x}: M/E held alongside other copies: {who:?}"));
            }
            for &(agent, state) in &who {
                if matches!(state, MesiState::Exclusive | MesiState::Shared) {
                    let c = &self.caches[agent];
                    let l = c.probe(base).expect("resident");
                    let mut memline = vec![0u8; c.config.line_bytes as usize];
                    mem.read_bytes(PhysAddr::new(base), &mut memline)
                        .map_err(|e| format!("line {base:#x}: unbacked clean line: {e:?}"))?;
                    if memline.as_slice() != &l.data[..] {
                        return Err(format!(
                            "line {base:#x}: agent {agent} holds {state:?} ≠ memory"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use udma_mem::PhysMemory;

    fn domain(agents: usize) -> (CoherenceDomain, Vec<AgentId>) {
        let mem: SharedMemory = Rc::new(RefCell::new(PhysMemory::new(1 << 20)));
        let mut d = CoherenceDomain::new(mem, CoherenceTiming::default());
        let ids = (0..agents)
            .map(|_| d.add_agent(CacheConfig { sets: 8, ways: 2, line_bytes: 32 }))
            .collect();
        (d, ids)
    }

    fn pa(v: u64) -> PhysAddr {
        PhysAddr::new(v)
    }

    #[test]
    fn read_fills_exclusive_then_peer_read_shares() {
        let (mut d, a) = domain(2);
        let mut b = [0u8; 8];
        d.agent_read(a[0], pa(0x100), &mut b).unwrap();
        assert_eq!(d.cache(a[0]).state_of(pa(0x100)), MesiState::Exclusive);
        d.agent_read(a[1], pa(0x104), &mut b[..4]).unwrap();
        assert_eq!(d.cache(a[0]).state_of(pa(0x100)), MesiState::Shared);
        assert_eq!(d.cache(a[1]).state_of(pa(0x100)), MesiState::Shared);
        d.check_invariants().unwrap();
    }

    #[test]
    fn write_is_cached_not_in_memory_until_writeback() {
        let (mut d, a) = domain(1);
        d.agent_write(a[0], pa(0x200), &7u64.to_le_bytes()).unwrap();
        assert_eq!(d.cache(a[0]).state_of(pa(0x200)), MesiState::Modified);
        assert_eq!(d.memory().borrow().read_u64(pa(0x200)).unwrap(), 0, "memory still stale");
        let mut b = [0u8; 8];
        d.agent_read(a[0], pa(0x200), &mut b).unwrap();
        assert_eq!(u64::from_le_bytes(b), 7, "own cache serves the store");
        d.sync();
        assert_eq!(d.memory().borrow().read_u64(pa(0x200)).unwrap(), 7);
        assert_eq!(d.cache(a[0]).state_of(pa(0x200)), MesiState::Exclusive);
        d.check_invariants().unwrap();
    }

    #[test]
    fn peer_read_of_modified_line_intervenes() {
        let (mut d, a) = domain(2);
        d.agent_write(a[0], pa(0x300), &1u64.to_le_bytes()).unwrap();
        let mut b = [0u8; 8];
        let (_, extra) = d.agent_read(a[1], pa(0x300), &mut b).unwrap();
        assert_eq!(u64::from_le_bytes(b), 1, "intervention supplied the dirty data");
        assert_eq!(extra, d.timing().intervention);
        assert_eq!(d.stats().interventions, 1);
        assert_eq!(d.cache(a[0]).state_of(pa(0x300)), MesiState::Shared);
        assert_eq!(d.cache(a[1]).state_of(pa(0x300)), MesiState::Shared);
        assert_eq!(d.memory().borrow().read_u64(pa(0x300)).unwrap(), 1, "writeback on the way");
        d.check_invariants().unwrap();
    }

    #[test]
    fn shared_write_upgrades_and_invalidates_peers() {
        let (mut d, a) = domain(2);
        let mut b = [0u8; 8];
        d.agent_read(a[0], pa(0x400), &mut b).unwrap();
        d.agent_read(a[1], pa(0x400), &mut b).unwrap();
        let (hit, extra) = d.agent_write(a[0], pa(0x400), &9u64.to_le_bytes()).unwrap();
        assert!(hit, "upgrade is a hit");
        assert_eq!(extra, d.timing().invalidate);
        assert_eq!(d.stats().upgrades, 1);
        assert_eq!(d.cache(a[1]).state_of(pa(0x400)), MesiState::Invalid);
        assert_eq!(d.cache(a[0]).state_of(pa(0x400)), MesiState::Modified);
        d.check_invariants().unwrap();
    }

    #[test]
    fn write_miss_with_modified_peer_pulls_then_owns() {
        let (mut d, a) = domain(2);
        d.agent_write(a[0], pa(0x500), &0xAAu64.to_le_bytes()).unwrap();
        // Peer writes a *different word of the same line*: the merge must
        // keep a0's word.
        d.agent_write(a[1], pa(0x508), &0xBBu64.to_le_bytes()).unwrap();
        assert_eq!(d.cache(a[0]).state_of(pa(0x500)), MesiState::Invalid);
        assert_eq!(d.cache(a[1]).state_of(pa(0x500)), MesiState::Modified);
        let mut b = [0u8; 8];
        d.agent_read(a[1], pa(0x500), &mut b).unwrap();
        assert_eq!(u64::from_le_bytes(b), 0xAA, "earlier store survived the ownership transfer");
        d.check_invariants().unwrap();
    }

    #[test]
    fn eviction_writes_back_dirty_victim() {
        let (mut d, a) = domain(1);
        // 8 sets × 32-byte lines, 2 ways: three lines with the same set
        // index force an eviction.
        let stride = 8 * 32;
        d.agent_write(a[0], pa(0), &5u64.to_le_bytes()).unwrap();
        d.agent_write(a[0], pa(stride), &6u64.to_le_bytes()).unwrap();
        d.agent_write(a[0], pa(2 * stride), &7u64.to_le_bytes()).unwrap();
        assert_eq!(d.stats().writebacks, 1);
        assert_eq!(d.memory().borrow().read_u64(pa(0)).unwrap(), 5, "LRU victim written back");
        d.check_invariants().unwrap();
    }

    #[test]
    fn dma_read_pulls_modified_lines() {
        let (mut d, a) = domain(1);
        d.agent_write(a[0], pa(0x600), &0x11u64.to_le_bytes()).unwrap();
        let mut buf = [0u8; 8];
        let extra = d.dma_read(pa(0x600), &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 0x11);
        assert_eq!(extra, d.timing().intervention);
        assert_eq!(d.cache(a[0]).state_of(pa(0x600)), MesiState::Shared);
        d.check_invariants().unwrap();
    }

    #[test]
    fn dma_write_invalidates_sharers_and_merges_partial_lines() {
        let (mut d, a) = domain(1);
        // CPU dirties bytes 8..16 of the line; DMA writes bytes 0..8.
        d.agent_write(a[0], pa(0x708), &0xCCu64.to_le_bytes()).unwrap();
        let extra = d.dma_write(pa(0x700), &0xDDu64.to_le_bytes()).unwrap();
        assert!(extra >= d.timing().writeback, "partial overlap forces the writeback first");
        assert_eq!(d.cache(a[0]).state_of(pa(0x700)), MesiState::Invalid);
        let mem = d.memory();
        assert_eq!(mem.borrow().read_u64(pa(0x700)).unwrap(), 0xDD);
        assert_eq!(mem.borrow().read_u64(pa(0x708)).unwrap(), 0xCC, "CPU bytes survived");
        d.check_invariants().unwrap();
    }

    #[test]
    fn dma_write_of_full_line_skips_the_writeback() {
        let (mut d, a) = domain(1);
        d.agent_write(a[0], pa(0x800), &[1u8; 32]).unwrap();
        let extra = d.dma_write(pa(0x800), &[2u8; 32]).unwrap();
        // Full-line overwrite: the dirty data is dead, only the
        // invalidation is charged.
        assert_eq!(extra, d.timing().invalidate);
        assert_eq!(d.stats().writebacks, 0);
        assert_eq!(d.memory().borrow().read_u64(pa(0x800)).unwrap(), u64::from_le_bytes([2; 8]));
        d.check_invariants().unwrap();
    }

    #[test]
    fn flush_range_charges_per_line_and_writes_back_dirty() {
        let (mut d, a) = domain(1);
        d.agent_write(a[0], pa(0x900), &3u64.to_le_bytes()).unwrap();
        let (lines, dirty, time) = d.flush_range(a[0], pa(0x900), 4 * 32);
        assert_eq!((lines, dirty), (4, 1));
        let t = d.timing();
        assert_eq!(time, SimTime::from_ps(4 * t.flush_line.as_ps() + t.writeback.as_ps()));
        assert_eq!(d.memory().borrow().read_u64(pa(0x900)).unwrap(), 3);
        assert_eq!(d.cache(a[0]).state_of(pa(0x900)), MesiState::Invalid);
    }

    #[test]
    fn invalidate_range_discards_without_writeback() {
        let (mut d, a) = domain(1);
        d.agent_write(a[0], pa(0xA00), &4u64.to_le_bytes()).unwrap();
        let (lines, time) = d.invalidate_range(a[0], pa(0xA00), 32);
        assert_eq!(lines, 1);
        assert_eq!(time, d.timing().invalidate_line);
        assert_eq!(d.stats().writebacks, 0);
        assert_eq!(d.cache(a[0]).state_of(pa(0xA00)), MesiState::Invalid);
        // The dirty data was deliberately dropped.
        assert_eq!(d.memory().borrow().read_u64(pa(0xA00)).unwrap(), 0);
    }

    #[test]
    fn disabled_agents_add_zero_time_and_zero_traffic() {
        let mem: SharedMemory = Rc::new(RefCell::new(PhysMemory::new(1 << 20)));
        let mut d = CoherenceDomain::new(mem, CoherenceTiming::default());
        let a = d.add_agent(CacheConfig::disabled());
        let mut b = [0u8; 8];
        let (hit, extra) = d.agent_read(a, pa(0x100), &mut b).unwrap();
        assert!(!hit);
        assert_eq!(extra, SimTime::ZERO);
        let (hit, extra) = d.agent_write(a, pa(0x100), &1u64.to_le_bytes()).unwrap();
        assert!(!hit);
        assert_eq!(extra, SimTime::ZERO);
        // ways == 0 writes go straight to memory (uncached master).
        assert_eq!(d.memory().borrow().read_u64(pa(0x100)).unwrap(), 1);
        let mut buf = [0u8; 8];
        assert_eq!(d.dma_read(pa(0x100), &mut buf).unwrap(), SimTime::ZERO);
        assert_eq!(d.dma_write(pa(0x100), &buf).unwrap(), SimTime::ZERO);
        assert_eq!(d.stats().coherence_traffic(), 0);
        assert_eq!(d.stats().snoop_time, SimTime::ZERO);
        d.check_invariants().unwrap();
    }

    #[test]
    fn out_of_range_accesses_fault() {
        let (mut d, a) = domain(1);
        let far = pa(1 << 20);
        let mut b = [0u8; 8];
        assert!(d.agent_read(a[0], far, &mut b).is_err());
        assert!(d.agent_write(a[0], far, &b).is_err());
        assert!(d.dma_read(far, &mut b).is_err());
        assert!(d.dma_write(far, &b).is_err());
    }

    #[test]
    fn flush_all_writes_back_everything() {
        let (mut d, a) = domain(1);
        d.agent_write(a[0], pa(0x40), &8u64.to_le_bytes()).unwrap();
        d.agent_write(a[0], pa(0x80), &9u64.to_le_bytes()).unwrap();
        d.flush_all(a[0]);
        assert!(d.cache(a[0]).resident().is_empty());
        let mem = d.memory();
        assert_eq!(mem.borrow().read_u64(pa(0x40)).unwrap(), 8);
        assert_eq!(mem.borrow().read_u64(pa(0x80)).unwrap(), 9);
    }

    #[test]
    fn invariant_checker_catches_a_violation() {
        let (mut d, a) = domain(2);
        let mut b = [0u8; 8];
        d.agent_read(a[0], pa(0x100), &mut b).unwrap();
        // Corrupt memory behind the domain's back: the clean Exclusive
        // copy no longer matches.
        d.memory().borrow_mut().write_u64(pa(0x100), 0xBAD).unwrap();
        assert!(d.check_invariants().is_err());
    }
}
