//! Deterministic sharded discrete-event simulation kernel.
//!
//! The single-machine experiments advance one sequential [`SimTime`]
//! world. Cluster-scale experiments (E13–E16) want many nodes, each with
//! its own NI/IOMMU/OS state, and ideally many host threads — without
//! giving up bit-exact reproducibility. This module is the kernel that
//! makes that safe, in the shape of the satacc-style
//! `SimComponent`/`SimRunner`/`ChannelBuilder` architecture:
//!
//! * a **shard** ([`SimComponent`]) owns a disjoint slice of simulation
//!   state and a local event queue;
//! * all cross-shard traffic travels over explicit [`SimChannel`]s whose
//!   messages carry an *arrival* stamp at least one link latency in the
//!   future ([`Stamped`]);
//! * a [`SimRunner`] advances the shards in lock-stepped rounds —
//!   sequentially (the oracle) or on one host thread per shard
//!   ([`RunnerKind::Parallel`]).
//!
//! # The conservative-lookahead determinism argument
//!
//! Every round the runner computes the global minimum next event time
//! `next` over all shards and sets the round's **horizon** to
//! `next + lookahead`, where `lookahead` is the minimum channel latency.
//! Each shard then processes exactly its events with `at < horizon`, in
//! `(at, src, seq)` order. Any message such processing emits is stamped
//! `arrival ≥ t + lookahead` for some event time `t ≥ next`, hence
//! `arrival ≥ horizon`: no message generated during a round can land
//! *inside* that round. Barriers separate the send phase of round *k*
//! from the drain phase of round *k + 1*, so every shard sees exactly
//! the same message set at the same point of simulated time regardless
//! of host thread scheduling — the parallel runner is observably
//! identical to the sequential one, which `tests/sharded_determinism.rs`
//! verifies differentially.

use crate::SimTime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Index of a shard within a runner's shard vector.
pub type ShardId = usize;

/// A message in flight on a [`SimChannel`], carrying the deterministic
/// ordering key `(at, src, seq)`: arrival time, sending shard, and the
/// sender's monotonic emission counter. Receivers that process their
/// merged inboxes in this key order behave identically no matter how
/// shards are scheduled onto host threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stamped<T> {
    /// Simulated arrival time at the receiving shard.
    pub at: SimTime,
    /// The sending shard.
    pub src: ShardId,
    /// Per-sender monotonic sequence number (ties on `at` break by
    /// `(src, seq)`, which is stable across runs and shard layouts).
    pub seq: u64,
    /// The message itself.
    pub payload: T,
}

impl<T> Stamped<T> {
    /// The total ordering key receivers must process in.
    pub fn key(&self) -> (SimTime, ShardId, u64) {
        (self.at, self.src, self.seq)
    }
}

/// One direction of a cross-shard link: a latency-stamping FIFO. Built
/// by [`ChannelBuilder`]; the sender half lives with the producing
/// shard, the receiver half with the consuming shard.
pub type SimChannel<T> = (SimSender<T>, SimReceiver<T>);

/// Constructs the channels of a sharded simulation with one uniform
/// minimum latency — which doubles as the runner's conservative
/// lookahead.
#[derive(Clone, Debug)]
pub struct ChannelBuilder {
    latency: SimTime,
}

impl ChannelBuilder {
    /// A builder whose channels stamp arrivals at least `latency` in
    /// the future.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero: with zero lookahead a message could
    /// arrive inside the round that sent it and the conservative
    /// barrier argument collapses.
    pub fn new(latency: SimTime) -> Self {
        assert!(latency > SimTime::ZERO, "channel latency must be positive for lookahead");
        ChannelBuilder { latency }
    }

    /// The uniform channel latency — the lookahead a [`SimRunner`] over
    /// these channels must use.
    pub fn lookahead(&self) -> SimTime {
        self.latency
    }

    /// A new channel whose sender half belongs to shard `src`.
    pub fn channel<T>(&self, src: ShardId) -> SimChannel<T> {
        let queue = Arc::new(Mutex::new(VecDeque::new()));
        (
            SimSender { queue: Arc::clone(&queue), src, latency: self.latency, seq: 0 },
            SimReceiver { queue },
        )
    }
}

/// The producing half of a [`SimChannel`].
#[derive(Debug)]
pub struct SimSender<T> {
    queue: Arc<Mutex<VecDeque<Stamped<T>>>>,
    src: ShardId,
    latency: SimTime,
    seq: u64,
}

impl<T> SimSender<T> {
    /// Sends `payload` at local time `now`; it arrives one channel
    /// latency later. Returns the arrival stamp.
    pub fn send(&mut self, now: SimTime, payload: T) -> SimTime {
        self.send_arriving(now, now + self.latency, payload)
    }

    /// Sends `payload` with an explicit `arrival` stamp (a transfer
    /// whose wire time exceeds the base latency). Returns `arrival`.
    ///
    /// # Panics
    ///
    /// Panics if `arrival < now + latency` — that would violate the
    /// lookahead contract the parallel runner's correctness rests on.
    pub fn send_arriving(&mut self, now: SimTime, arrival: SimTime, payload: T) -> SimTime {
        assert!(
            arrival >= now + self.latency,
            "lookahead violation: arrival {arrival} < now {now} + latency {}",
            self.latency
        );
        let stamped = Stamped { at: arrival, src: self.src, seq: self.seq, payload };
        self.seq += 1;
        self.queue.lock().expect("channel poisoned").push_back(stamped);
        arrival
    }

    /// The shard this sender belongs to.
    pub fn src(&self) -> ShardId {
        self.src
    }

    /// The channel's base latency.
    pub fn latency(&self) -> SimTime {
        self.latency
    }
}

/// The consuming half of a [`SimChannel`].
#[derive(Debug)]
pub struct SimReceiver<T> {
    queue: Arc<Mutex<VecDeque<Stamped<T>>>>,
}

impl<T> SimReceiver<T> {
    /// Moves every queued message into `out` (in send order, which for
    /// one channel is also `(at, seq)` order — senders' clocks only move
    /// forward).
    pub fn drain_into(&mut self, out: &mut Vec<Stamped<T>>) {
        let mut q = self.queue.lock().expect("channel poisoned");
        out.extend(q.drain(..));
    }

    /// Whether no message is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("channel poisoned").is_empty()
    }
}

/// One shard of a sharded simulation: a disjoint slice of world state
/// plus its local event queue and channel endpoints.
///
/// The runner's contract, which implementations must honour for the
/// determinism guarantee to hold:
///
/// * [`drain`](Self::drain) merges everything queued on the shard's
///   receivers into its local event queue;
/// * [`next_time`](Self::next_time) reports the earliest pending local
///   event (drained messages included);
/// * [`advance`](Self::advance) processes exactly the events with
///   `at < horizon`, in `(at, src, seq)` order, and stamps every
///   message it sends with `arrival ≥ event time + lookahead`
///   (enforced by [`SimSender`]).
pub trait SimComponent: Send {
    /// Pull all queued channel messages into the local event queue.
    fn drain(&mut self);

    /// Earliest pending local event, if any.
    fn next_time(&self) -> Option<SimTime>;

    /// Process every local event strictly before `horizon`; returns the
    /// number of events processed.
    fn advance(&mut self, horizon: SimTime) -> u64;
}

/// How a [`SimRunner`] advances its shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunnerKind {
    /// One host thread walks the shards in index order every round —
    /// the oracle the parallel runner is differentially tested against.
    Sequential,
    /// One host thread per shard, synchronised by two barriers per
    /// round (slot-publish and advance). Deterministic by the
    /// conservative-lookahead argument in the module docs.
    Parallel,
}

/// What a [`SimRunner::run`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Simulation events processed across all shards.
    pub events: u64,
}

/// Advances a set of [`SimComponent`] shards to global quiescence.
#[derive(Clone, Copy, Debug)]
pub struct SimRunner {
    kind: RunnerKind,
    lookahead: SimTime,
}

impl SimRunner {
    /// A runner of the given kind with the given conservative lookahead
    /// (the minimum latency of any channel between the shards — use
    /// [`ChannelBuilder::lookahead`]).
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero.
    pub fn new(kind: RunnerKind, lookahead: SimTime) -> Self {
        assert!(lookahead > SimTime::ZERO, "runner lookahead must be positive");
        SimRunner { kind, lookahead }
    }

    /// The runner's kind.
    pub fn kind(&self) -> RunnerKind {
        self.kind
    }

    /// Runs the shards until no shard has a pending event and no
    /// message is in flight.
    pub fn run<C: SimComponent>(&self, shards: &mut [C]) -> RunReport {
        match self.kind {
            RunnerKind::Sequential => self.run_sequential(shards),
            RunnerKind::Parallel => self.run_parallel(shards),
        }
    }

    fn run_sequential<C: SimComponent>(&self, shards: &mut [C]) -> RunReport {
        let mut report = RunReport::default();
        loop {
            for s in shards.iter_mut() {
                s.drain();
            }
            let Some(next) = shards.iter().filter_map(SimComponent::next_time).min() else {
                return report;
            };
            let horizon = next + self.lookahead;
            for s in shards.iter_mut() {
                report.events += s.advance(horizon);
            }
            report.rounds += 1;
        }
    }

    fn run_parallel<C: SimComponent>(&self, shards: &mut [C]) -> RunReport {
        let n = shards.len();
        if n == 0 {
            return RunReport::default();
        }
        let barrier = Barrier::new(n);
        // One published next-event slot per shard. Writes happen between
        // the two barriers of a round, reads after the second — the next
        // round's writes cannot start until every reader passed its
        // advance phase and re-entered the first barrier.
        let slots: Vec<Mutex<Option<SimTime>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let events = AtomicU64::new(0);
        let rounds = AtomicU64::new(0);
        let lookahead = self.lookahead;
        std::thread::scope(|scope| {
            for (i, shard) in shards.iter_mut().enumerate() {
                let barrier = &barrier;
                let slots = &slots;
                let events = &events;
                let rounds = &rounds;
                scope.spawn(move || {
                    loop {
                        // (a) every shard finished the previous round's
                        // sends — safe to drain.
                        barrier.wait();
                        shard.drain();
                        *slots[i].lock().expect("slot poisoned") = shard.next_time();
                        // (b) every slot is published — safe to read.
                        barrier.wait();
                        let next =
                            slots.iter().filter_map(|s| *s.lock().expect("slot poisoned")).min();
                        // All threads compute the same minimum from the
                        // same stable slots, so they break together.
                        let Some(next) = next else { break };
                        let horizon = next + lookahead;
                        let done = shard.advance(horizon);
                        events.fetch_add(done, Ordering::Relaxed);
                        if i == 0 {
                            rounds.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        RunReport { rounds: rounds.into_inner(), events: events.into_inner() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    /// A ping-pong token passer: shard i forwards a counter token to
    /// (i + 1) % n until the hop budget is spent, logging every receipt.
    struct TokenShard {
        id: ShardId,
        rx: Vec<SimReceiver<u64>>,
        tx: SimSender<u64>,
        queue: BinaryHeap<std::cmp::Reverse<(SimTime, ShardId, u64, u64)>>,
        scratch: Vec<Stamped<u64>>,
        log: Vec<(SimTime, ShardId, u64)>,
    }

    impl SimComponent for TokenShard {
        fn drain(&mut self) {
            for r in &mut self.rx {
                r.drain_into(&mut self.scratch);
            }
            for m in self.scratch.drain(..) {
                self.queue.push(std::cmp::Reverse((m.at, m.src, m.seq, m.payload)));
            }
        }

        fn next_time(&self) -> Option<SimTime> {
            self.queue.peek().map(|std::cmp::Reverse((at, ..))| *at)
        }

        fn advance(&mut self, horizon: SimTime) -> u64 {
            let mut done = 0;
            while let Some(std::cmp::Reverse((at, src, _seq, hops))) = self.queue.peek().copied() {
                if at >= horizon {
                    break;
                }
                self.queue.pop();
                self.log.push((at, src, hops));
                if hops > 0 {
                    self.tx.send(at, hops - 1);
                }
                done += 1;
            }
            done
        }
    }

    fn build_ring(n: usize, hops: u64) -> Vec<TokenShard> {
        let builder = ChannelBuilder::new(SimTime::from_us(3));
        let mut senders = Vec::new();
        let mut receivers: Vec<Vec<SimReceiver<u64>>> = (0..n).map(|_| Vec::new()).collect();
        for i in 0..n {
            let (tx, rx) = builder.channel(i);
            senders.push(Some(tx));
            receivers[(i + 1) % n].push(rx);
        }
        let mut shards: Vec<TokenShard> = (0..n)
            .zip(receivers)
            .map(|(id, rx)| TokenShard {
                id,
                rx,
                tx: senders[id].take().unwrap(),
                queue: BinaryHeap::new(),
                scratch: Vec::new(),
                log: Vec::new(),
            })
            .collect();
        // Seed the token as a message shard 0 "already sent" to shard 1.
        shards[0].tx.send(SimTime::ZERO, hops);
        shards
    }

    fn merged_log(shards: &[TokenShard]) -> Vec<(SimTime, ShardId, ShardId, u64)> {
        let mut all: Vec<_> = shards
            .iter()
            .flat_map(|s| s.log.iter().map(move |&(at, src, hops)| (at, src, s.id, hops)))
            .collect();
        all.sort();
        all
    }

    #[test]
    fn sequential_ring_delivers_every_hop_in_order() {
        let mut shards = build_ring(4, 10);
        let report = SimRunner::new(RunnerKind::Sequential, SimTime::from_us(3)).run(&mut shards);
        assert_eq!(report.events, 11, "initial token + 10 forwarded hops");
        let log = merged_log(&shards);
        assert_eq!(log.len(), 11);
        // Hop k arrives at (k + 1) * latency with a strictly descending
        // hop budget.
        for (k, &(at, _, _, hops)) in log.iter().enumerate() {
            assert_eq!(at, SimTime::from_us(3 * (k as u64 + 1)));
            assert_eq!(hops, 10 - k as u64);
        }
    }

    #[test]
    fn parallel_runner_matches_sequential_oracle() {
        for n in [1usize, 2, 4, 8] {
            let mut seq = build_ring(n, 23);
            let seq_report =
                SimRunner::new(RunnerKind::Sequential, SimTime::from_us(3)).run(&mut seq);
            let mut par = build_ring(n, 23);
            let par_report =
                SimRunner::new(RunnerKind::Parallel, SimTime::from_us(3)).run(&mut par);
            assert_eq!(seq_report.events, par_report.events, "{n} shards");
            assert_eq!(merged_log(&seq), merged_log(&par), "{n} shards");
        }
    }

    #[test]
    fn stamps_are_monotonic_per_sender_and_seq_increments() {
        let builder = ChannelBuilder::new(SimTime::from_us(5));
        let (mut tx, mut rx) = builder.channel::<u8>(2);
        tx.send(SimTime::ZERO, 1);
        tx.send_arriving(SimTime::ZERO, SimTime::from_us(9), 2);
        tx.send(SimTime::from_us(10), 3);
        let mut got = Vec::new();
        rx.drain_into(&mut got);
        assert!(rx.is_empty());
        let keys: Vec<_> = got.iter().map(Stamped::key).collect();
        assert_eq!(
            keys,
            vec![
                (SimTime::from_us(5), 2, 0),
                (SimTime::from_us(9), 2, 1),
                (SimTime::from_us(15), 2, 2),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn arrival_under_latency_is_rejected() {
        let builder = ChannelBuilder::new(SimTime::from_us(5));
        let (mut tx, _rx) = builder.channel::<u8>(0);
        tx.send_arriving(SimTime::from_us(10), SimTime::from_us(12), 1);
    }

    #[test]
    #[should_panic(expected = "latency must be positive")]
    fn zero_latency_channels_are_rejected() {
        let _ = ChannelBuilder::new(SimTime::ZERO);
    }

    #[test]
    fn empty_and_quiescent_worlds_terminate_immediately() {
        let mut none: Vec<TokenShard> = Vec::new();
        let r = SimRunner::new(RunnerKind::Parallel, SimTime::from_us(1)).run(&mut none);
        assert_eq!(r, RunReport::default());
        let mut idle = build_ring(2, 0);
        // Consume the seed token (hops = 0 forwards nothing)…
        SimRunner::new(RunnerKind::Sequential, SimTime::from_us(3)).run(&mut idle);
        // …then a second run finds a quiescent world.
        let r = SimRunner::new(RunnerKind::Sequential, SimTime::from_us(3)).run(&mut idle);
        assert_eq!(r, RunReport::default());
    }
}
